#!/usr/bin/env sh
# Runs the checked-in benchmark suites with JSON output and writes the
# results at the repo root:
#   BENCH_closure.json     bench_closure (rule-engine closure fixpoint).
#   BENCH_query.json       bench_join_order + bench_probing (query
#                          planner, merge-join ablation, probing waves),
#                          combined into one object keyed by suite name.
#   BENCH_server.json      bench_server (serving-layer throughput and
#                          latency percentiles from 1 to 4096+ sessions
#                          in both the text and the pipelined binary
#                          protocol).
#   BENCH_recovery.json    bench_recovery (cold Open() recovery time vs
#                          WAL size, with and without checkpoints).
#   BENCH_wal.json         bench_server write mix (group commit: acked
#                          writes/sec at fsync-on as concurrent writer
#                          sessions scale, with group-size stats).
#   BENCH_replication.json bench_replication (follower catch-up-from-
#                          cold and aggregate follower reads/sec at 1/2/4
#                          followers under an fsync-on primary write
#                          load, with worst observed staleness).
#   BENCH_compaction.json  bench_compaction (E16 churn sweep: mixed
#                          read/write throughput and latency with and
#                          without background compaction as the churned
#                          overlay grows).
#
# Numbers checked into the tree must come from an optimized build, so
# this script configures and builds its own Release tree (default
# ./build-release) before running anything, and refuses to write JSON
# whose context does not say "library_build_type": "release" — the
# shared bench_main.cc stamps that field from the tree's own NDEBUG, so
# a Debug binary cannot sneak numbers past this gate.
#
# Usage: tools/bench_json.sh [release-build-dir] [benchmark-filter]
#   release-build-dir  defaults to ./build-release
#   benchmark-filter   defaults to all benchmarks in each suite
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-release"}
filter=${2:-}

echo "configuring Release tree at $build_dir"
cmake -S "$repo_root" -B "$build_dir" -DCMAKE_BUILD_TYPE=Release \
  > /dev/null
cmake --build "$build_dir" -j "$(nproc)" --target \
  bench_closure bench_join_order bench_probing bench_server \
  bench_recovery bench_replication bench_compaction > /dev/null

require() {
  if [ ! -x "$1" ]; then
    echo "error: $1 not found or not executable." >&2
    exit 1
  fi
}

check_release() {
  # check_release <json-file>: refuse non-Release numbers.
  if ! grep -q '"library_build_type": "release"' "$1"; then
    echo "error: $1 was produced by a non-release build;" \
         "refusing to publish its numbers." >&2
    exit 1
  fi
}

run_bench() {
  # run_bench <binary> <output-file>
  if [ -n "$filter" ]; then
    "$1" --benchmark_format=json --benchmark_filter="$filter" > "$2"
  else
    "$1" --benchmark_format=json > "$2"
  fi
  check_release "$2"
}

closure="$build_dir/bench/bench_closure"
join_order="$build_dir/bench/bench_join_order"
probing="$build_dir/bench/bench_probing"
require "$closure"
require "$join_order"
require "$probing"

out="$repo_root/BENCH_closure.json"
run_bench "$closure" "$out"
echo "wrote $out"

tmp_join=$(mktemp)
tmp_probe=$(mktemp)
trap 'rm -f "$tmp_join" "$tmp_probe"' EXIT
run_bench "$join_order" "$tmp_join"
run_bench "$probing" "$tmp_probe"

out="$repo_root/BENCH_query.json"
{
  printf '{"comment": "Release bench_join_order + bench_probing runs (E11 conjunct-ordering + merge-join ablation and E4 probing waves) for the current tree; regenerate with tools/bench_json.sh",\n'
  printf '"bench_join_order":'
  cat "$tmp_join"
  printf ',"bench_probing":'
  cat "$tmp_probe"
  printf '}\n'
} > "$out"
echo "wrote $out"

# BENCH_server.json: the serving-layer load generator (throughput and
# p50/p99 latency as concurrent sessions scale), swept in both wire
# protocols: text (synchronous) and binary (pipelined, 16-deep window).
# Session counts past the process fd budget — e.g. 10000 under a modest
# RLIMIT_NOFILE — are skipped with a note, not failed. Not a
# google-benchmark suite, so it writes its JSON directly; it is built
# by the same Release tree, which is the gate that matters.
server_bench="$build_dir/bench/bench_server"
require "$server_bench"
out="$repo_root/BENCH_server.json"
tmp_browse=$(mktemp)
tmp_hostile=$(mktemp)
trap 'rm -f "$tmp_join" "$tmp_probe" "$tmp_browse" "$tmp_hostile"' EXIT
"$server_bench" --sessions 1,4,16,64,256,1024,4096,10000 --requests 100 \
  --protocols text,binary --window 16 --json "$tmp_browse"
# Hostile governance sweep: a slice of each session's requests is a
# poison query the request deadline kills with a typed error. The
# `cancelled` column counts those kills and p50/p99/p999 cover only the
# surviving cheap requests, so the section shows what hostile load does
# to well-behaved sessions. Merged under "hostile" so the top-level keys
# (the no-hostile browsing sweep) stay comparable across revisions.
"$server_bench" --sessions 4,16,64 --requests 100 \
  --protocols text,binary --window 16 --hostile-pct 12 \
  --json "$tmp_hostile" --check
{
  sed '$d' "$tmp_browse"
  printf ',\n  "hostile":\n'
  cat "$tmp_hostile"
  printf '}\n'
} > "$out"
echo "wrote $out"

# BENCH_wal.json: the group-commit write sweep. Every request is a
# unique assert against a durable store (one real fsync per commit
# group); the store is preloaded so the serial baseline clones the same
# tip the concurrent rows do. The interesting ratio is writes_per_sec
# at N sessions over the sessions=1 row — group commit amortizes the
# per-group clone + WAL fsync across every writer in the group.
out="$repo_root/BENCH_wal.json"
"$server_bench" --sessions 1,4,16,64 --requests 100 --protocols binary \
  --window 4 --write-pct 100 --sync fsync --json "$out"
echo "wrote $out"

# BENCH_recovery.json: recovery time vs log size, checkpoints off/on.
# Also not google-benchmark (each point is one cold Open()).
recovery_bench="$build_dir/bench/bench_recovery"
require "$recovery_bench"
out="$repo_root/BENCH_recovery.json"
"$recovery_bench" --json "$out"
echo "wrote $out"

# BENCH_replication.json: follower catch-up-from-cold plus read fan-out
# at 1/2/4 followers under a continuous fsync-on write load on the
# primary. Aggregate follower reads/sec should scale with follower
# count (the replicas share nothing); max_lag_* is the worst staleness
# any reader observed. Also direct JSON (wall-clock convergence, not
# iteration throughput).
repl_bench="$build_dir/bench/bench_replication"
require "$repl_bench"
out="$repo_root/BENCH_replication.json"
"$repl_bench" --followers 1,2,4 --json "$out"
echo "wrote $out"

# BENCH_compaction.json: the E16 churn sweep. Reader threads browse the
# churned relation on pinned snapshots while writer threads keep
# committing sub-threshold batches; each shape is measured with the
# background compactor off (the overlay-accumulating configuration) and
# on. The interesting ratio is ops_per_sec on/off at the largest shape;
# read_max_ms in the "on" rows shows merges never stall pinned readers.
# Direct JSON again, stamped with the tree's own build type.
compaction_bench="$build_dir/bench/bench_compaction"
require "$compaction_bench"
out="$repo_root/BENCH_compaction.json"
"$compaction_bench" --json "$out"
check_release "$out"
echo "wrote $out"
