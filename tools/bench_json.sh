#!/usr/bin/env sh
# Runs the checked-in benchmark suites with JSON output and writes the
# results at the repo root, for checking benchmark numbers into the tree:
#   BENCH_closure.json.new  bench_closure (rule-engine closure); the
#                           checked-in BENCH_closure.json is a curated
#                           before/after pair — compare by hand, don't
#                           clobber it.
#   BENCH_query.json        bench_join_order + bench_probing (query
#                           planner and probing waves), combined into
#                           one object keyed by suite name.
#   BENCH_server.json       bench_server (serving-layer throughput and
#                           latency percentiles at 1/4/16/64 sessions).
#   BENCH_recovery.json     bench_recovery (cold Open() recovery time vs
#                           WAL size, with and without checkpoints).
#
# Usage: tools/bench_json.sh [build-dir] [benchmark-filter]
#   build-dir          defaults to ./build
#   benchmark-filter   defaults to all benchmarks in each suite
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
filter=${2:-}

require() {
  if [ ! -x "$1" ]; then
    echo "error: $1 not found or not executable." >&2
    echo "Build it first: cmake -B build -S . && cmake --build build -j" >&2
    exit 1
  fi
}

run_bench() {
  # run_bench <binary> <output-file>
  if [ -n "$filter" ]; then
    "$1" --benchmark_format=json --benchmark_filter="$filter" > "$2"
  else
    "$1" --benchmark_format=json > "$2"
  fi
}

closure="$build_dir/bench/bench_closure"
join_order="$build_dir/bench/bench_join_order"
probing="$build_dir/bench/bench_probing"
require "$closure"
require "$join_order"
require "$probing"

out="$repo_root/BENCH_closure.json.new"
run_bench "$closure" "$out"
echo "wrote $out"

tmp_join=$(mktemp)
tmp_probe=$(mktemp)
trap 'rm -f "$tmp_join" "$tmp_probe"' EXIT
run_bench "$join_order" "$tmp_join"
run_bench "$probing" "$tmp_probe"

out="$repo_root/BENCH_query.json"
{
  printf '{"comment": "raw bench_join_order + bench_probing runs (E11 conjunct-ordering ablation and E4 probing waves) for the current tree; regenerate with tools/bench_json.sh",\n'
  printf '"bench_join_order":'
  cat "$tmp_join"
  printf ',"bench_probing":'
  cat "$tmp_probe"
  printf '}\n'
} > "$out"
echo "wrote $out"

# BENCH_server.json: the serving-layer load generator (throughput and
# p50/p99 latency at 1/4/16/64 concurrent sessions). Not a
# google-benchmark suite, so it writes its JSON directly.
server_bench="$build_dir/bench/bench_server"
require "$server_bench"
out="$repo_root/BENCH_server.json"
"$server_bench" --sessions 1,4,16,64 --json "$out"
echo "wrote $out"

# BENCH_recovery.json: recovery time vs log size, checkpoints off/on.
# Also not google-benchmark (each point is one cold Open()).
recovery_bench="$build_dir/bench/bench_recovery"
require "$recovery_bench"
out="$repo_root/BENCH_recovery.json"
"$recovery_bench" --json "$out"
echo "wrote $out"
