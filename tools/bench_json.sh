#!/usr/bin/env sh
# Runs bench_closure with JSON output and writes BENCH_closure.json at
# the repo root, for checking benchmark numbers into the tree.
#
# Usage: tools/bench_json.sh [build-dir] [benchmark-filter]
#   build-dir          defaults to ./build
#   benchmark-filter   defaults to all closure benchmarks
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
filter=${2:-}

bench="$build_dir/bench/bench_closure"
if [ ! -x "$bench" ]; then
  echo "error: $bench not found or not executable." >&2
  echo "Build it first: cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

out="$repo_root/BENCH_closure.json"
if [ -n "$filter" ]; then
  "$bench" --benchmark_format=json --benchmark_filter="$filter" > "$out"
else
  "$bench" --benchmark_format=json > "$out"
fi
echo "wrote $out"
