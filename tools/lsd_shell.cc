// lsd_shell: an interactive browser for loosely structured databases —
// the user-facing surface the paper describes: standard queries,
// navigation, probing with retraction menus, and the Sec 6.1 operators.
//
//   $ ./lsd_shell [path-prefix]       # optional snapshot+WAL to open
//
// Commands:
//   assert (S, R, T)                  add a fact
//   retract (S, R, T)                 remove a fact
//   rule NAME: (..) => (..)           define an inference rule
//   integrity NAME: (..) => (..)      define an integrity rule
//   query FORMULA                     evaluate; prints a table
//   probe FORMULA                     evaluate with automatic retraction
//   nav ENTITY                        neighborhood table
//   assoc S T                         associations (incl. compositions)
//   try ENTITY                        all facts mentioning ENTITY
//   relation CLASS R1 T1 [R2 T2 ...]  structured view
//   limit N                           composition chain bound
//   include NAME | exclude NAME       toggle a rule
//   rules                             list rules
//   check                             integrity check
//   load FILE                         load .lsd text file
//   save PREFIX                       snapshot + attach WAL
//   stats                             store/closure statistics
//   help, quit
#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "browse/dot_export.h"
#include "browse/session.h"
#include "core/loose_db.h"
#include "query/table_formatter.h"
#include "store/text_format.h"
#include "util/budget.h"
#include "util/string_util.h"

namespace {

using lsd::LooseDb;
using lsd::Status;
using lsd::WalSegmentInfo;

// Shell-local governance: `timeout N` arms a per-command deadline
// (same QueryBudget machinery the server threads through requests),
// and `stats` reports what it killed.
struct ShellGovernance {
  int timeout_ms = 0;  // 0 = ungoverned
  uint64_t cancelled_deadline = 0;
  uint64_t cancelled_budget = 0;
  uint64_t worst_command_ms = 0;
};

void PrintStatus(const Status& s) {
  if (!s.ok()) std::printf("! %s\n", s.ToString().c_str());
}

// Parses "(S, R, T)" into a ground fact, interning entities.
lsd::StatusOr<lsd::Fact> ParseGroundFact(LooseDb& db,
                                         std::string_view text) {
  auto q = lsd::ParseQuery(text, &db.entities());
  if (!q.ok()) return q.status();
  if (q->root()->kind != lsd::NodeKind::kAtom ||
      q->root()->atom.HasVariables()) {
    return Status::InvalidArgument("expected a ground template (S, R, T)");
  }
  return q->root()->atom.Substitute(lsd::Binding(0));
}

void DoQuery(LooseDb& db, const std::string& text,
             const lsd::QueryBudget* budget) {
  lsd::EvalOptions options;
  options.budget = budget;
  auto r = db.Query(text, options);
  if (!r.ok()) {
    PrintStatus(r.status());
    return;
  }
  std::printf("%s", lsd::FormatResult(*r, db.entities()).c_str());
}

void DoProbe(LooseDb& db, const std::string& text,
             const lsd::QueryBudget* budget) {
  lsd::ProbeOptions options;
  options.budget = budget;
  auto probe = db.Probe(text, options);
  if (!probe.ok()) {
    PrintStatus(probe.status());
    return;
  }
  if (probe->original_succeeded) {
    std::printf("%s", lsd::FormatResult(probe->original_result,
                                        db.entities())
                          .c_str());
    return;
  }
  std::printf("%s", probe->Menu(db.entities()).c_str());
  for (size_t i = 0; i < probe->successes.size(); ++i) {
    std::printf("%zu) %s\n%s", i + 1,
                probe->successes[i].query.DebugString(db.entities())
                    .c_str(),
                lsd::FormatResult(probe->successes[i].result,
                                  db.entities())
                    .c_str());
  }
}

void DoRelation(LooseDb& db, std::istringstream& args) {
  std::string klass;
  args >> klass;
  std::vector<std::pair<std::string, std::string>> columns;
  std::string rel, target;
  while (args >> rel >> target) columns.emplace_back(rel, target);
  if (klass.empty() || columns.empty()) {
    std::printf("usage: relation CLASS R1 T1 [R2 T2 ...]\n");
    return;
  }
  auto table = db.Relation(klass, columns);
  if (!table.ok()) {
    PrintStatus(table.status());
    return;
  }
  std::printf("%s", table->Render(db.entities()).c_str());
}

void DoStats(LooseDb& db, const ShellGovernance& gov) {
  std::printf("entities:       %zu\n", db.entities().size());
  std::printf("asserted facts: %zu\n", db.store().size());
  auto view = db.View();
  if (view.ok() && db.closure_stats() != nullptr) {
    std::printf("derived facts:  %zu (in %zu rounds)\n",
                db.closure_stats()->derived_facts,
                db.closure_stats()->rounds);
  }
  auto mem = db.MemoryUsage();
  if (mem.ok()) {
    std::printf("base tier:      %zu bytes (frozen %zu in %zu segments, "
                "overlay %zu)\n",
                mem->base.total(), mem->base.frozen.total(),
                mem->base.runs, mem->base.overlay_bytes);
    std::printf("derived tier:   %zu bytes (frozen %zu in %zu segments, "
                "overlay %zu)\n",
                mem->derived.total(), mem->derived.frozen.total(),
                mem->derived.runs, mem->derived.overlay_bytes);
  }
  std::printf("rules:          %zu\n", db.rules().size());
  std::printf("limit(n):       %d\n", db.composition_limit());
  if (gov.timeout_ms > 0) {
    std::printf("governance:     timeout %d ms\n", gov.timeout_ms);
  } else {
    std::printf("governance:     ungoverned (set with 'timeout N')\n");
  }
  std::printf("cancelled:      %llu (deadline %llu, budget %llu)\n",
              static_cast<unsigned long long>(gov.cancelled_deadline +
                                              gov.cancelled_budget),
              static_cast<unsigned long long>(gov.cancelled_deadline),
              static_cast<unsigned long long>(gov.cancelled_budget));
  std::printf("worst command:  %llu ms\n",
              static_cast<unsigned long long>(gov.worst_command_ms));
  std::printf("store version:  %llu\n",
              static_cast<unsigned long long>(db.store_version()));
  std::printf("rules version:  %llu\n",
              static_cast<unsigned long long>(db.rules_version()));
  uint64_t hits = db.planner_hits(), misses = db.planner_misses();
  std::printf("planner cache:  %zu plans, %llu hits / %llu misses",
              db.planner_plan_count(), static_cast<unsigned long long>(hits),
              static_cast<unsigned long long>(misses));
  if (hits + misses > 0) {
    std::printf(" (%.1f%% hit rate)",
                100.0 * static_cast<double>(hits) /
                    static_cast<double>(hits + misses));
  }
  std::printf("\n");
  if (db.wal().is_open()) {
    std::printf("wal:            %llu records in %llu batches, %llu fsyncs"
                " (gen %llu, %llu bytes since checkpoint)\n",
                static_cast<unsigned long long>(db.wal().appended_records()),
                static_cast<unsigned long long>(db.wal().append_batches()),
                static_cast<unsigned long long>(db.wal().fsyncs()),
                static_cast<unsigned long long>(db.wal().generation()),
                static_cast<unsigned long long>(db.wal().generation_bytes()));
    if (!db.wal_status().ok()) {
      std::printf("wal status:     DEGRADED: %s\n",
                  db.wal_status().ToString().c_str());
    }
    // The on-disk segment inventory: what a crash would recover from,
    // and what a replication subscriber can still resume from.
    const std::vector<WalSegmentInfo> segments = db.wal().SegmentInventory();
    uint64_t total = 0;
    for (const WalSegmentInfo& seg : segments) total += seg.bytes;
    std::printf("wal segments:   %zu live, %llu bytes on disk\n",
                segments.size(), static_cast<unsigned long long>(total));
    for (const WalSegmentInfo& seg : segments) {
      std::printf("  seg %06llu    gen %llu, %llu bytes (%s)\n",
                  static_cast<unsigned long long>(seg.seq),
                  static_cast<unsigned long long>(seg.generation),
                  static_cast<unsigned long long>(seg.bytes),
                  seg.path.c_str());
    }
  }
}

void Help() {
  std::printf(
      "commands: assert|retract (S,R,T) · rule/integrity NAME: b => h\n"
      "          define NAME(?P..) := F · call NAME(args..)\n"
      "          query F · probe F · nav E · visit E · back · forward\n"
      "          assoc S T · try E · near E [r] · dist A B · dot [E]\n"
      "          relation CLASS R T [R T..] · limit N · include/exclude"
      " NAME\n"
      "          rules · check · load FILE · save PREFIX · checkpoint\n"
      "          timeout N · stats · quit\n");
}

}  // namespace

int main(int argc, char** argv) {
  LooseDb db;
  if (argc > 1) {
    Status s = db.Open(argv[1]);
    if (!s.ok()) {
      std::fprintf(stderr, "open %s: %s\n", argv[1],
                   s.ToString().c_str());
      return 1;
    }
    std::printf("opened %s (%zu facts): %s\n", argv[1], db.store().size(),
                db.last_recovery().ToString().c_str());
  }
  std::printf("lsd shell — type 'help' for commands\n");
  lsd::BrowseSession session(&db);
  ShellGovernance gov;

  std::string line;
  while (std::printf("lsd> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    std::string_view stripped = lsd::StripWhitespace(line);
    if (stripped.empty()) continue;
    std::istringstream in{std::string(stripped)};
    std::string cmd;
    in >> cmd;
    cmd = lsd::AsciiToLower(cmd);
    std::string rest;
    std::getline(in, rest);
    rest = std::string(lsd::StripWhitespace(rest));

    if (cmd == "quit" || cmd == "exit") break;

    // Arm this command's budget (if `timeout N` is set). The shell is
    // single-threaded, so handing the budget to the db's lazy closure
    // rebuild (set_read_budget) is safe.
    std::unique_ptr<lsd::QueryBudget> command_budget;
    if (gov.timeout_ms > 0) {
      command_budget = std::make_unique<lsd::QueryBudget>(
          std::chrono::milliseconds(gov.timeout_ms));
    }
    const lsd::QueryBudget* budget = command_budget.get();
    db.set_read_budget(budget);
    const auto command_start = std::chrono::steady_clock::now();
    if (cmd == "help") {
      Help();
    } else if (cmd == "assert") {
      auto f = ParseGroundFact(db, rest);
      if (!f.ok()) {
        PrintStatus(f.status());
      } else {
        std::printf(db.Assert(*f) ? "added\n" : "already present\n");
      }
    } else if (cmd == "retract") {
      auto f = ParseGroundFact(db, rest);
      if (!f.ok()) {
        PrintStatus(f.status());
      } else {
        std::printf(db.Retract(*f) ? "removed\n" : "not asserted\n");
      }
    } else if (cmd == "rule" || cmd == "integrity") {
      PrintStatus(db.DefineRule(rest, cmd == "rule"
                                          ? lsd::RuleKind::kInference
                                          : lsd::RuleKind::kIntegrity));
    } else if (cmd == "query") {
      DoQuery(db, rest, budget);
    } else if (cmd == "define") {
      PrintStatus(db.DefineOperator(rest));
    } else if (cmd == "call") {
      lsd::EvalOptions call_options;
      call_options.budget = budget;
      auto r = db.Call(rest, call_options);
      if (!r.ok()) {
        PrintStatus(r.status());
      } else {
        std::printf("%s", lsd::FormatResult(*r, db.entities()).c_str());
      }
    } else if (cmd == "probe") {
      DoProbe(db, rest, budget);
    } else if (cmd == "nav" || cmd == "visit") {
      // visit/back/forward keep a browsing trail (Sec 4.1's iterative
      // process); nav is the stateless variant.
      auto hood =
          cmd == "nav" ? db.Navigate(rest, budget) : session.Visit(rest);
      if (!hood.ok()) {
        PrintStatus(hood.status());
      } else {
        if (cmd == "visit") {
          std::printf("%s\n", session.Breadcrumbs().c_str());
        }
        std::printf("%s", hood->Render(db.entities()).c_str());
      }
    } else if (cmd == "back" || cmd == "forward") {
      auto hood = cmd == "back" ? session.Back() : session.Forward();
      if (!hood.ok()) {
        PrintStatus(hood.status());
      } else {
        std::printf("%s\n%s", session.Breadcrumbs().c_str(),
                    hood->Render(db.entities()).c_str());
      }
    } else if (cmd == "dot") {
      auto view = db.View();
      if (!view.ok()) {
        PrintStatus(view.status());
      } else if (rest.empty()) {
        auto dot = lsd::ExportDot(**view);
        if (!dot.ok()) {
          PrintStatus(dot.status());
        } else {
          std::printf("%s", dot->c_str());
        }
      } else {
        auto id = db.entities().Lookup(rest);
        if (!id.has_value()) {
          std::printf("! unknown entity: %s\n", rest.c_str());
        } else {
          auto dot = lsd::ExportNeighborhoodDot(**view, *id, 2);
          if (!dot.ok()) {
            PrintStatus(dot.status());
          } else {
            std::printf("%s", dot->c_str());
          }
        }
      }
    } else if (cmd == "assoc") {
      std::istringstream args(rest);
      std::string s, t;
      args >> s >> t;
      auto table = db.RenderAssociations(s, t, budget);
      if (!table.ok()) {
        PrintStatus(table.status());
      } else {
        std::printf("%s", table->c_str());
      }
    } else if (cmd == "near") {
      std::istringstream args(rest);
      std::string entity;
      int radius = 2;
      args >> entity >> radius;
      auto nearby = db.Nearby(entity, radius, budget);
      if (!nearby.ok()) {
        PrintStatus(nearby.status());
      } else {
        for (const lsd::NearbyEntity& n : *nearby) {
          std::printf("  %d  %s\n", n.distance,
                      db.entities().Name(n.entity).c_str());
        }
      }
    } else if (cmd == "dist") {
      std::istringstream args(rest);
      std::string a, b;
      args >> a >> b;
      auto d = db.SemanticDistance(a, b, /*max_radius=*/4, budget);
      if (!d.ok()) {
        PrintStatus(d.status());
      } else if (d->has_value()) {
        std::printf("semantic distance %d\n", **d);
      } else {
        std::printf("not connected within the search radius\n");
      }
    } else if (cmd == "try") {
      auto out = db.Try(rest);
      if (!out.ok()) {
        PrintStatus(out.status());
      } else {
        std::printf("%s", out->c_str());
      }
    } else if (cmd == "relation") {
      std::istringstream args(rest);
      DoRelation(db, args);
    } else if (cmd == "limit") {
      int n = 0;
      if (std::istringstream(rest) >> n) {
        db.SetCompositionLimit(n);
        std::printf("limit(%d)\n", n);
      } else {
        std::printf("usage: limit N\n");
      }
    } else if (cmd == "include" || cmd == "exclude") {
      PrintStatus(
          db.SetRuleEnabled(lsd::AsciiToLower(rest), cmd == "include"));
    } else if (cmd == "rules") {
      for (const lsd::Rule& r : db.rules()) {
        std::printf("  [%c] %s\n", r.enabled ? 'x' : ' ',
                    lsd::SerializeRule(r, db.entities()).c_str());
      }
    } else if (cmd == "check") {
      auto violations = db.FindIntegrityViolations();
      if (!violations.ok()) {
        PrintStatus(violations.status());
      } else if (violations->empty()) {
        std::printf("closure is contradiction-free\n");
      } else {
        for (const auto& v : *violations) {
          std::printf("  %s\n", v.description.c_str());
        }
      }
    } else if (cmd == "load") {
      PrintStatus(db.LoadTextFile(rest));
    } else if (cmd == "save") {
      PrintStatus(db.Save(rest));
    } else if (cmd == "checkpoint") {
      PrintStatus(db.Checkpoint());
    } else if (cmd == "timeout") {
      int n = 0;
      if (std::istringstream(rest) >> n && n >= 0) {
        gov.timeout_ms = n;
        if (n > 0) {
          std::printf("timeout %d ms\n", n);
        } else {
          std::printf("timeout disabled\n");
        }
      } else {
        std::printf("usage: timeout MILLISECONDS (0 disables)\n");
      }
    } else if (cmd == "stats") {
      DoStats(db, gov);
    } else {
      std::printf("unknown command '%s'; try 'help'\n", cmd.c_str());
    }

    db.set_read_budget(nullptr);
    const auto command_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - command_start)
            .count();
    if (static_cast<uint64_t>(command_ms) > gov.worst_command_ms) {
      gov.worst_command_ms = static_cast<uint64_t>(command_ms);
    }
    if (command_budget != nullptr && command_budget->cancelled()) {
      if (command_budget->cancel_reason() == lsd::CancelReason::kDeadline) {
        ++gov.cancelled_deadline;
      } else {
        ++gov.cancelled_budget;
      }
    }
  }
  return 0;
}
