// lsd_client — interactive (or piped) client for lsd_serve.
//
//   lsd_client [--port N] [--host A.B.C.D]
//
// Reads command lines from stdin, sends each to the server, and prints
// the response payload (or "error: ..." on ERR). The same grammar as
// lsd_shell, plus the server verbs: hypo, session, ping, stats.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "server/protocol.h"

int main(int argc, char** argv) {
  const char* host = "127.0.0.1";
  uint16_t port = 7420;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--host A.B.C.D] [--port N]\n",
                   argv[0]);
      return 2;
    }
  }

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("socket");
    return 1;
  }
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host, &addr.sin_addr) != 1) {
    std::fprintf(stderr, "bad host: %s\n", host);
    return 1;
  }
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    std::perror("connect");
    return 1;
  }

  lsd::LineReader reader(fd);
  auto greeting = lsd::ReadResponse(&reader);
  if (!greeting.ok()) {
    std::fprintf(stderr, "greeting: %s\n",
                 greeting.status().ToString().c_str());
    return 1;
  }
  if (!greeting->ok) {
    std::fprintf(stderr, "rejected: %s\n", greeting->error.c_str());
    return 1;
  }
  bool tty = ::isatty(STDIN_FILENO) != 0;
  if (tty) std::printf("%s", greeting->payload.c_str());

  std::string line;
  while ((tty && (std::printf("lsd> "), std::fflush(stdout), true), true) &&
         std::getline(std::cin, line)) {
    if (line.empty()) continue;
    lsd::Status sent = lsd::WriteAll(fd, line + "\n");
    if (!sent.ok()) {
      std::fprintf(stderr, "send: %s\n", sent.ToString().c_str());
      return 1;
    }
    auto response = lsd::ReadResponse(&reader);
    if (!response.ok()) {
      std::fprintf(stderr, "recv: %s\n",
                   response.status().ToString().c_str());
      return 1;
    }
    if (response->ok) {
      std::printf("%s", response->payload.c_str());
    } else {
      std::printf("error: %s\n", response->error.c_str());
    }
    std::fflush(stdout);
    if (line == "quit" || line == "exit") break;
  }
  ::close(fd);
  return 0;
}
