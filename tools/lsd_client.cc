// lsd_client — interactive (or piped) client for lsd_serve.
//
//   lsd_client [--port N] [--host A.B.C.D] [--max-attempts N]
//              [--binary] [--window N] [--retry-writes]
//              [--follower A.B.C.D:PORT]
//
// --follower splits the session across a primary/follower pair: read
// verbs go to the follower (a read-only replica), everything else —
// mutations, but also session-local verbs like hypo/limit/save whose
// state should live in one place — goes to the primary at
// --host:--port. A follower past its staleness bound answers reads
// with "error: FailedPrecondition: stale: ..."; that is the contract,
// not a client-side retry condition. Text mode only (the two
// connections are separate sessions, so pipelined request ids cannot
// interleave): --binary/--window are rejected with --follower.
//
// Reads command lines from stdin, sends each to the server, and prints
// the response payload (or "error: ..." on ERR). The same grammar as
// lsd_shell, plus the server verbs: hypo, session, ping, stats.
//
// --binary switches to the length-prefixed binary framing after the
// text greeting; --window N (implies --binary) pipelines up to N
// requests before waiting for replies, so piped scripts amortize
// round trips. Responses print in request order — the server executes
// one connection's requests FIFO and tags each reply with its request
// id, which the client checks. Interactive (tty) use keeps window 1 so
// the prompt stays in step.
//
// Connection setup is retried with exponential backoff plus jitter:
// both a refused/failed connect and an "ERR server busy" admission
// rejection are transient (the server sheds load instead of queueing),
// so the client backs off and tries again up to --max-attempts times.
//
// Mid-stream failures (the connection dies with requests un-answered)
// are retried — reconnect, resend — ONLY when every unanswered request
// is a read verb. A write (assert/retract/rule/...) that dies after
// being sent is AMBIGUOUS: the server may have committed it before the
// connection broke, and blindly resending would apply it twice
// (re-asserting is harmless, but a retract or a rule definition is
// not). By default the client refuses to guess and exits with an error
// naming the verb; --retry-writes opts back into resending everything.
// Note a retry lands on a fresh session: shared-store state is intact,
// but session-local state (trail, hypo overlay, limit) starts over.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <iostream>
#include <memory>
#include <random>
#include <string>

#include "server/protocol.h"

namespace {

void SleepMs(long ms) {
  struct timespec ts;
  ts.tv_sec = ms / 1000;
  ts.tv_nsec = (ms % 1000) * 1000000L;
  ::nanosleep(&ts, nullptr);
}

// Does `line` only read? Writes — anything that commits through the
// shared store, plus session-local mutations whose duplication would be
// visible (hypo) — are not safe to resend after an ambiguous failure.
bool IsReadVerb(const std::string& line) {
  std::string verb;
  for (char c : line) {
    if (c == ' ' || c == '\t') break;
    verb.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  static const char* kWrites[] = {
      "assert", "retract", "assert*", "retract*", "rule",
      "integrity", "define", "include", "exclude", "load",
      "save", "hypo",
  };
  for (const char* w : kWrites) {
    if (verb == w) return false;
  }
  return true;
}

// One connect + greeting exchange. Returns the connected fd, or -1
// with `transient` set when the failure is worth retrying (connect
// refused, greeting cut short, or admission rejection).
int TryConnect(const struct sockaddr_in& addr, bool* transient,
               std::string* error) {
  *transient = false;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<const struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    *error = std::string("connect: ") + std::strerror(errno);
    *transient = true;  // server not up yet, or backlog full
    ::close(fd);
    return -1;
  }
  lsd::LineReader reader(fd);
  auto greeting = lsd::ReadResponse(&reader);
  if (!greeting.ok()) {
    *error = "greeting: " + greeting.status().ToString();
    *transient = true;  // connection died mid-greeting
    ::close(fd);
    return -1;
  }
  if (!greeting->ok) {
    *error = "rejected: " + greeting->error;
    // Admission backpressure is the canonical transient rejection.
    *transient = greeting->error.find("busy") != std::string::npos;
    ::close(fd);
    return -1;
  }
  if (::isatty(STDIN_FILENO) != 0) {
    std::printf("%s", greeting->payload.c_str());
  }
  return fd;
}

// Full backoff-jitter connect loop; -1 after max_attempts.
int ConnectWithBackoff(const struct sockaddr_in& addr, int max_attempts,
                       std::mt19937_64* rng) {
  std::string error;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    bool transient = false;
    int fd = TryConnect(addr, &transient, &error);
    if (fd >= 0) return fd;
    if (!transient || attempt == max_attempts) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return -1;
    }
    long cap_ms = 100L << (attempt - 1 < 5 ? attempt - 1 : 5);
    long wait_ms = static_cast<long>(
        std::uniform_int_distribution<long>(0, cap_ms - 1)(*rng));
    std::fprintf(stderr, "%s; retrying in %ldms (attempt %d/%d)\n",
                 error.c_str(), wait_ms, attempt, max_attempts);
    SleepMs(wait_ms);
  }
  return -1;
}

}  // namespace

int main(int argc, char** argv) {
  const char* host = "127.0.0.1";
  uint16_t port = 7420;
  int max_attempts = 5;
  bool binary = false;
  bool retry_writes = false;
  size_t window = 1;
  std::string follower_spec;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--max-attempts" && i + 1 < argc) {
      max_attempts = std::atoi(argv[++i]);
      if (max_attempts < 1) max_attempts = 1;
    } else if (arg == "--binary") {
      binary = true;
    } else if (arg == "--retry-writes") {
      retry_writes = true;
    } else if (arg == "--window" && i + 1 < argc) {
      long w = std::atol(argv[++i]);
      window = w < 1 ? 1 : static_cast<size_t>(w);
      binary = true;  // pipelining needs request ids
    } else if (arg == "--follower" && i + 1 < argc) {
      follower_spec = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--host A.B.C.D] [--port N] "
                   "[--max-attempts N] [--binary] [--window N] "
                   "[--retry-writes] [--follower A.B.C.D:PORT]\n",
                   argv[0]);
      return 2;
    }
  }
  if (!follower_spec.empty() && binary) {
    std::fprintf(stderr,
                 "--follower routes per line over two text sessions; it "
                 "excludes --binary/--window\n");
    return 2;
  }

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host, &addr.sin_addr) != 1) {
    std::fprintf(stderr, "bad host: %s\n", host);
    return 1;
  }
  struct sockaddr_in follower_addr;
  std::memset(&follower_addr, 0, sizeof(follower_addr));
  if (!follower_spec.empty()) {
    size_t colon = follower_spec.rfind(':');
    long fport = colon == std::string::npos
                     ? 0
                     : std::atol(follower_spec.c_str() + colon + 1);
    std::string fhost =
        colon == std::string::npos ? "" : follower_spec.substr(0, colon);
    follower_addr.sin_family = AF_INET;
    follower_addr.sin_port = htons(static_cast<uint16_t>(fport));
    if (fhost.empty() || fport <= 0 || fport > 65535 ||
        ::inet_pton(AF_INET, fhost.c_str(), &follower_addr.sin_addr) != 1) {
      std::fprintf(stderr, "bad --follower spec: %s\n",
                   follower_spec.c_str());
      return 1;
    }
  }

  // Exponential backoff with full jitter: 100ms base doubling to a 3.2s
  // cap, each wait drawn uniformly from [0, cap) so a burst of clients
  // stampeding a recovering server spreads out.
  std::mt19937_64 rng(
      static_cast<uint64_t>(::getpid()) * 2654435761u ^
      static_cast<uint64_t>(time(nullptr)));
  int fd = ConnectWithBackoff(addr, max_attempts, &rng);
  if (fd < 0) return 1;

  bool tty = ::isatty(STDIN_FILENO) != 0;
  if (tty) window = 1;  // keep the prompt in step with replies

  // Are all of `unanswered` safe to resend on a fresh connection?
  // Returns the offending line when not (and retry-writes is off).
  auto refusal = [&](const std::deque<std::string>& unanswered)
      -> const std::string* {
    if (retry_writes) return nullptr;
    for (const std::string& l : unanswered) {
      if (!IsReadVerb(l)) return &l;
    }
    return nullptr;
  };

  if (binary) {
    // Pipelined binary mode: keep up to `window` requests in flight,
    // print replies in request order (the server answers FIFO).
    lsd::BinaryFrameParser parser;
    uint64_t next_id = 1;
    std::deque<uint64_t> inflight;
    std::deque<std::string> inflight_lines;  // parallel to inflight

    // Reconnect and resend every unanswered request, oldest first.
    // Only called once refusal() cleared them.
    auto recover = [&]() -> bool {
      ::close(fd);
      fd = ConnectWithBackoff(addr, max_attempts, &rng);
      if (fd < 0) return false;
      parser = lsd::BinaryFrameParser();
      inflight.clear();
      for (const std::string& l : inflight_lines) {
        lsd::Status sent = lsd::WriteAll(
            fd, lsd::EncodeFrame(lsd::FrameType::kRequest, next_id, l));
        if (!sent.ok()) {
          std::fprintf(stderr, "resend: %s\n", sent.ToString().c_str());
          return false;
        }
        inflight.push_back(next_id++);
      }
      return true;
    };
    auto drain_one = [&]() -> bool {
      for (;;) {
        auto reply = lsd::ReadFrame(fd, &parser);
        if (!reply.ok()) {
          const std::string* blocked = refusal(inflight_lines);
          if (blocked != nullptr) {
            std::fprintf(stderr,
                         "recv: %s\nerror: connection lost with '%s' "
                         "unanswered — a write may or may not have "
                         "committed; not resending (pass --retry-writes "
                         "to resend anyway)\n",
                         reply.status().ToString().c_str(),
                         blocked->c_str());
            return false;
          }
          std::fprintf(stderr, "recv: %s; reconnecting\n",
                       reply.status().ToString().c_str());
          if (!recover()) return false;
          continue;
        }
        if (inflight.empty() || reply->request_id != inflight.front()) {
          std::fprintf(stderr, "recv: response id %llu out of order\n",
                       static_cast<unsigned long long>(reply->request_id));
          return false;
        }
        inflight.pop_front();
        inflight_lines.pop_front();
        if (reply->type == lsd::FrameType::kOk) {
          std::printf("%s", reply->payload.c_str());
        } else {
          // ERR payloads carry the one-line error message.
          std::string msg = reply->payload;
          while (!msg.empty() && msg.back() == '\n') msg.pop_back();
          std::printf("error: %s\n", msg.c_str());
        }
        std::fflush(stdout);
        return true;
      }
    };
    std::string line;
    bool quitting = false;
    while ((tty && (std::printf("lsd> "), std::fflush(stdout), true),
            true) &&
           std::getline(std::cin, line)) {
      if (line.empty()) continue;
      lsd::Status sent = lsd::WriteAll(
          fd, lsd::EncodeFrame(lsd::FrameType::kRequest, next_id, line));
      if (!sent.ok()) {
        // A send failure is ambiguous too: earlier pipelined writes may
        // still be unanswered. Same policy as recv.
        const std::string* blocked = refusal(inflight_lines);
        if (blocked != nullptr) {
          std::fprintf(stderr,
                       "send: %s\nerror: connection lost with '%s' "
                       "unanswered — not resending writes (pass "
                       "--retry-writes to override)\n",
                       sent.ToString().c_str(), blocked->c_str());
          return 1;
        }
        inflight_lines.push_back(line);
        std::fprintf(stderr, "send: %s; reconnecting\n",
                     sent.ToString().c_str());
        if (!recover()) return 1;
      } else {
        inflight.push_back(next_id++);
        inflight_lines.push_back(line);
      }
      quitting = line == "quit" || line == "exit";
      while (inflight.size() >= (quitting ? 1 : window)) {
        if (!drain_one()) return 1;
      }
      if (quitting) break;
    }
    while (!inflight.empty()) {
      if (!drain_one()) return 1;
    }
    ::close(fd);
    return 0;
  }

  // Text mode runs over one or two endpoints: the primary, plus (with
  // --follower) a replica that read verbs route to. Each endpoint is
  // its own connection/session and reconnects independently.
  struct Endpoint {
    const struct sockaddr_in* addr = nullptr;
    int fd = -1;
    std::unique_ptr<lsd::LineReader> reader;
  };
  Endpoint primary;
  primary.addr = &addr;
  primary.fd = fd;
  primary.reader = std::make_unique<lsd::LineReader>(fd);
  Endpoint follower;
  follower.addr = &follower_addr;
  if (!follower_spec.empty()) {
    follower.fd = ConnectWithBackoff(follower_addr, max_attempts, &rng);
    if (follower.fd < 0) return 1;
    follower.reader = std::make_unique<lsd::LineReader>(follower.fd);
  }

  std::string line;
  while ((tty && (std::printf("lsd> "), std::fflush(stdout), true), true) &&
         std::getline(std::cin, line)) {
    if (line.empty()) continue;
    // Reads go to the follower when one is configured; writes — and
    // the session-local verbs IsReadVerb treats as writes — go to the
    // primary, preserving the read-verb-only auto-resend discipline on
    // both connections.
    Endpoint& ep =
        (!follower_spec.empty() && IsReadVerb(line)) ? follower : primary;
    for (int attempt = 1;; ++attempt) {
      lsd::Status sent = lsd::WriteAll(ep.fd, line + "\n");
      lsd::StatusOr<lsd::WireResponse> response =
          sent.ok() ? lsd::ReadResponse(ep.reader.get())
                    : lsd::StatusOr<lsd::WireResponse>(sent);
      if (response.ok()) {
        if (response->ok) {
          std::printf("%s", response->payload.c_str());
        } else {
          std::printf("error: %s\n", response->error.c_str());
        }
        std::fflush(stdout);
        break;
      }
      // The connection died with `line` unanswered. Reads are safe to
      // replay on a fresh connection; a write may already have
      // committed, so resending it needs explicit consent.
      if (!retry_writes && !IsReadVerb(line)) {
        std::fprintf(stderr,
                     "recv: %s\nerror: '%s' was sent but not answered — "
                     "the write may or may not have committed; not "
                     "resending (pass --retry-writes to resend anyway)\n",
                     response.status().ToString().c_str(), line.c_str());
        return 1;
      }
      if (attempt >= max_attempts) {
        std::fprintf(stderr, "recv: %s (gave up after %d attempts)\n",
                     response.status().ToString().c_str(), attempt);
        return 1;
      }
      std::fprintf(stderr, "recv: %s; reconnecting\n",
                   response.status().ToString().c_str());
      ::close(ep.fd);
      ep.fd = ConnectWithBackoff(*ep.addr, max_attempts, &rng);
      if (ep.fd < 0) return 1;
      ep.reader = std::make_unique<lsd::LineReader>(ep.fd);
    }
    if (line == "quit" || line == "exit") break;
  }
  ::close(primary.fd);
  if (follower.fd >= 0) ::close(follower.fd);
  return 0;
}
