// lsd_client — interactive (or piped) client for lsd_serve.
//
//   lsd_client [--port N] [--host A.B.C.D] [--max-attempts N]
//              [--binary] [--window N]
//
// Reads command lines from stdin, sends each to the server, and prints
// the response payload (or "error: ..." on ERR). The same grammar as
// lsd_shell, plus the server verbs: hypo, session, ping, stats.
//
// --binary switches to the length-prefixed binary framing after the
// text greeting; --window N (implies --binary) pipelines up to N
// requests before waiting for replies, so piped scripts amortize
// round trips. Responses print in request order — the server executes
// one connection's requests FIFO and tags each reply with its request
// id, which the client checks. Interactive (tty) use keeps window 1 so
// the prompt stays in step.
//
// Connection setup is retried with exponential backoff plus jitter:
// both a refused/failed connect and an "ERR server busy" admission
// rejection are transient (the server sheds load instead of queueing),
// so the client backs off and tries again up to --max-attempts times.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <iostream>
#include <random>
#include <string>

#include "server/protocol.h"

namespace {

void SleepMs(long ms) {
  struct timespec ts;
  ts.tv_sec = ms / 1000;
  ts.tv_nsec = (ms % 1000) * 1000000L;
  ::nanosleep(&ts, nullptr);
}

// One connect + greeting exchange. Returns the connected fd, or -1
// with `transient` set when the failure is worth retrying (connect
// refused, greeting cut short, or admission rejection).
int TryConnect(const struct sockaddr_in& addr, bool* transient,
               std::string* error) {
  *transient = false;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<const struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    *error = std::string("connect: ") + std::strerror(errno);
    *transient = true;  // server not up yet, or backlog full
    ::close(fd);
    return -1;
  }
  lsd::LineReader reader(fd);
  auto greeting = lsd::ReadResponse(&reader);
  if (!greeting.ok()) {
    *error = "greeting: " + greeting.status().ToString();
    *transient = true;  // connection died mid-greeting
    ::close(fd);
    return -1;
  }
  if (!greeting->ok) {
    *error = "rejected: " + greeting->error;
    // Admission backpressure is the canonical transient rejection.
    *transient = greeting->error.find("busy") != std::string::npos;
    ::close(fd);
    return -1;
  }
  if (::isatty(STDIN_FILENO) != 0) {
    std::printf("%s", greeting->payload.c_str());
  }
  return fd;
}

}  // namespace

int main(int argc, char** argv) {
  const char* host = "127.0.0.1";
  uint16_t port = 7420;
  int max_attempts = 5;
  bool binary = false;
  size_t window = 1;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--max-attempts" && i + 1 < argc) {
      max_attempts = std::atoi(argv[++i]);
      if (max_attempts < 1) max_attempts = 1;
    } else if (arg == "--binary") {
      binary = true;
    } else if (arg == "--window" && i + 1 < argc) {
      long w = std::atol(argv[++i]);
      window = w < 1 ? 1 : static_cast<size_t>(w);
      binary = true;  // pipelining needs request ids
    } else {
      std::fprintf(stderr,
                   "usage: %s [--host A.B.C.D] [--port N] "
                   "[--max-attempts N] [--binary] [--window N]\n",
                   argv[0]);
      return 2;
    }
  }

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host, &addr.sin_addr) != 1) {
    std::fprintf(stderr, "bad host: %s\n", host);
    return 1;
  }

  // Exponential backoff with full jitter: 100ms base doubling to a 3.2s
  // cap, each wait drawn uniformly from [0, cap) so a burst of clients
  // stampeding a recovering server spreads out.
  std::mt19937_64 rng(
      static_cast<uint64_t>(::getpid()) * 2654435761u ^
      static_cast<uint64_t>(time(nullptr)));
  int fd = -1;
  std::string error;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    bool transient = false;
    fd = TryConnect(addr, &transient, &error);
    if (fd >= 0) break;
    if (!transient || attempt == max_attempts) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    long cap_ms = 100L << (attempt - 1 < 5 ? attempt - 1 : 5);
    long wait_ms = static_cast<long>(
        std::uniform_int_distribution<long>(0, cap_ms - 1)(rng));
    std::fprintf(stderr, "%s; retrying in %ldms (attempt %d/%d)\n",
                 error.c_str(), wait_ms, attempt, max_attempts);
    SleepMs(wait_ms);
  }

  bool tty = ::isatty(STDIN_FILENO) != 0;
  if (tty) window = 1;  // keep the prompt in step with replies

  if (binary) {
    // Pipelined binary mode: keep up to `window` requests in flight,
    // print replies in request order (the server answers FIFO).
    lsd::BinaryFrameParser parser;
    uint64_t next_id = 1;
    std::deque<uint64_t> inflight;
    auto drain_one = [&]() -> bool {
      auto reply = lsd::ReadFrame(fd, &parser);
      if (!reply.ok()) {
        std::fprintf(stderr, "recv: %s\n",
                     reply.status().ToString().c_str());
        return false;
      }
      if (inflight.empty() || reply->request_id != inflight.front()) {
        std::fprintf(stderr, "recv: response id %llu out of order\n",
                     static_cast<unsigned long long>(reply->request_id));
        return false;
      }
      inflight.pop_front();
      if (reply->type == lsd::FrameType::kOk) {
        std::printf("%s", reply->payload.c_str());
      } else {
        // ERR payloads carry the one-line error message.
        std::string msg = reply->payload;
        while (!msg.empty() && msg.back() == '\n') msg.pop_back();
        std::printf("error: %s\n", msg.c_str());
      }
      std::fflush(stdout);
      return true;
    };
    std::string line;
    bool quitting = false;
    while ((tty && (std::printf("lsd> "), std::fflush(stdout), true),
            true) &&
           std::getline(std::cin, line)) {
      if (line.empty()) continue;
      lsd::Status sent = lsd::WriteAll(
          fd, lsd::EncodeFrame(lsd::FrameType::kRequest, next_id, line));
      if (!sent.ok()) {
        std::fprintf(stderr, "send: %s\n", sent.ToString().c_str());
        return 1;
      }
      inflight.push_back(next_id++);
      quitting = line == "quit" || line == "exit";
      while (inflight.size() >= (quitting ? 1 : window)) {
        if (!drain_one()) return 1;
      }
      if (quitting) break;
    }
    while (!inflight.empty()) {
      if (!drain_one()) return 1;
    }
    ::close(fd);
    return 0;
  }

  lsd::LineReader reader(fd);
  std::string line;
  while ((tty && (std::printf("lsd> "), std::fflush(stdout), true), true) &&
         std::getline(std::cin, line)) {
    if (line.empty()) continue;
    lsd::Status sent = lsd::WriteAll(fd, line + "\n");
    if (!sent.ok()) {
      std::fprintf(stderr, "send: %s\n", sent.ToString().c_str());
      return 1;
    }
    auto response = lsd::ReadResponse(&reader);
    if (!response.ok()) {
      std::fprintf(stderr, "recv: %s\n",
                   response.status().ToString().c_str());
      return 1;
    }
    if (response->ok) {
      std::printf("%s", response->payload.c_str());
    } else {
      std::printf("error: %s\n", response->error.c_str());
    }
    std::fflush(stdout);
    if (line == "quit" || line == "exit") break;
  }
  ::close(fd);
  return 0;
}
