// lsd_serve — the multi-session browsing server.
//
// Serves the lsd_shell command grammar over TCP (see
// src/server/protocol.h for the framing). Each connection gets its own
// session with a private navigation trail and hypothetical overlay;
// asserts/retracts/rules commit through the shared store and become
// visible to every session at its next request.
//
//   lsd_serve [--port N] [--max-sessions N] [--seed campus|music|org]
//             [--load FILE] [--request-timeout-ms N]
//             [--db PREFIX] [--sync fsync|flush] [--checkpoint-bytes N]
//
// --db attaches durability: <PREFIX>.snap + <PREFIX>.wal.NNNNNN are
// recovered on startup and every commit group is batch-appended (one
// fsync per group at --sync fsync) before its epoch publishes.
//
// Try it with nc:  printf 'probe (STUDENT, TAKE, MATH)\nquit\n' | nc 127.0.0.1 7420

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "server/server.h"
#include "server/shared_store.h"
#include "workload/music_domain.h"
#include "workload/org_domain.h"
#include "workload/university_domain.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port N] [--max-sessions N] "
               "[--seed campus|music|org] [--load FILE] "
               "[--request-timeout-ms N] [--db PREFIX] "
               "[--sync fsync|flush] [--checkpoint-bytes N]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  lsd::ServerOptions options;
  options.port = 7420;
  std::string seed;
  std::string load_path;
  std::string db_prefix;
  lsd::SharedStoreDurability durability;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.port = static_cast<uint16_t>(std::atoi(v));
    } else if (arg == "--max-sessions") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.max_sessions = static_cast<size_t>(std::atol(v));
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      seed = v;
    } else if (arg == "--load") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      load_path = v;
    } else if (arg == "--request-timeout-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.request_timeout = std::chrono::milliseconds(std::atol(v));
    } else if (arg == "--db") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      db_prefix = v;
    } else if (arg == "--sync") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      if (std::strcmp(v, "fsync") == 0) {
        durability.sync = lsd::WalSync::kFsync;
      } else if (std::strcmp(v, "flush") == 0) {
        durability.sync = lsd::WalSync::kFlush;
      } else {
        return Usage(argv[0]);
      }
    } else if (arg == "--checkpoint-bytes") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      durability.checkpoint_bytes = static_cast<uint64_t>(std::atoll(v));
    } else {
      return Usage(argv[0]);
    }
  }

  lsd::SharedStore store;
  if (!db_prefix.empty()) {
    lsd::Status opened = store.OpenDurable(db_prefix, durability);
    if (!opened.ok()) {
      std::fprintf(stderr, "recovery failed: %s\n",
                   opened.ToString().c_str());
      return 1;
    }
    std::printf("recovered %s: %s\n", db_prefix.c_str(),
                store.last_recovery().ToString().c_str());
    // Seed only on the very first boot: a restart must not re-apply
    // the seed on top of its own snapshot/WAL replay.
    if (store.last_recovery().snapshot_loaded ||
        store.last_recovery().records_replayed > 0) {
      seed.clear();
      load_path.clear();
    }
  }
  if (!seed.empty() || !load_path.empty()) {
    auto seeded = store.Commit([&](lsd::LooseDb& db) -> lsd::Status {
      if (seed == "campus") {
        lsd::workload::BuildCampusDomain(&db);
      } else if (seed == "music") {
        lsd::workload::BuildMusicDomain(&db);
      } else if (seed == "org") {
        (void)lsd::workload::BuildOrgDomain(&db, lsd::workload::OrgOptions());
      } else if (!seed.empty()) {
        return lsd::Status::InvalidArgument("unknown seed: " + seed);
      }
      if (!load_path.empty()) {
        return db.LoadTextFile(load_path);
      }
      return lsd::Status::OK();
    });
    if (!seeded.ok()) {
      std::fprintf(stderr, "seed failed: %s\n",
                   seeded.status().ToString().c_str());
      return 1;
    }
  }

  lsd::LsdServer server(&store, options);
  lsd::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("lsd_serve listening on 127.0.0.1:%u (max %zu sessions, "
              "epoch %llu, %zu facts)\n",
              server.port(), options.max_sessions,
              static_cast<unsigned long long>(store.snapshot()->sequence()),
              store.snapshot()->db().store().size());
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (g_stop == 0) {
    struct timespec ts = {0, 200 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
  std::printf("shutting down (%llu requests served)\n",
              static_cast<unsigned long long>(server.requests_served()));
  server.Stop();
  return 0;
}
