// lsd_serve — the multi-session browsing server.
//
// Serves the lsd_shell command grammar over TCP (see
// src/server/protocol.h for the framing). Each connection gets its own
// session with a private navigation trail and hypothetical overlay;
// asserts/retracts/rules commit through the shared store and become
// visible to every session at its next request.
//
//   lsd_serve [--port N] [--max-sessions N] [--seed campus|music|org]
//             [--load FILE] [--request-timeout-ms N]
//             [--db PREFIX] [--sync fsync|flush] [--checkpoint-bytes N]
//             [--repl-port N]
//             [--follow HOST:PORT] [--scratch PREFIX]
//             [--max-lag-ms N] [--max-lag-bytes N]
//             [--compact-off] [--compact-min-runs N]
//             [--compact-ratio F] [--compact-min-overlay-bytes N]
//             [--compact-poll-ms N] [--compact-backpressure-runs N]
//
// --db attaches durability: <PREFIX>.snap + <PREFIX>.wal.NNNNNN are
// recovered on startup and every commit group is batch-appended (one
// fsync per group at --sync fsync) before its epoch publishes.
//
// Background compaction is ON by default (primaries and followers both
// compact their own tiers; compaction ships no WAL bytes): a merge
// thread folds the closure's accumulated segments into one CSR
// generation per tier whenever --compact-min-runs segments pile up or
// the overlay outgrows --compact-ratio of the frozen bytes. Readers are
// never stalled; writers see at most --compact-backpressure-runs-deep
// backlogs before brief commit-side sleeps. --compact-off disables.
//
// --repl-port makes a durable primary ship its WAL to followers on
// that port. --follow runs this server as a read-only follower of the
// primary's replication port: reads serve from the replica (rejected
// with "ERR stale" past --max-lag-ms/--max-lag-bytes; 0 = unbounded),
// mutations are rejected, and staleness shows up under `stats`.
//
// Try it with nc:  printf 'probe (STUDENT, TAKE, MATH)\nquit\n' | nc 127.0.0.1 7420

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include <unistd.h>

#include "replication/log_shipper.h"
#include "replication/monitor.h"
#include "replication/replication_client.h"
#include "server/server.h"
#include "server/shared_store.h"
#include "workload/music_domain.h"
#include "workload/org_domain.h"
#include "workload/university_domain.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port N] [--max-sessions N] "
               "[--seed campus|music|org] [--load FILE] "
               "[--request-timeout-ms N] [--db PREFIX] "
               "[--sync fsync|flush] [--checkpoint-bytes N] "
               "[--repl-port N] [--follow HOST:PORT] [--scratch PREFIX] "
               "[--max-lag-ms N] [--max-lag-bytes N] "
               "[--compact-off] [--compact-min-runs N] [--compact-ratio F] "
               "[--compact-min-overlay-bytes N] [--compact-poll-ms N] "
               "[--compact-backpressure-runs N]\n",
               argv0);
  return 2;
}

// "HOST:PORT" -> (host, port); false on malformed input.
bool ParseHostPort(const std::string& spec, std::string* host,
                   uint16_t* port) {
  size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= spec.size()) {
    return false;
  }
  long p = std::atol(spec.c_str() + colon + 1);
  if (p <= 0 || p > 65535) return false;
  *host = spec.substr(0, colon);
  *port = static_cast<uint16_t>(p);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  lsd::ServerOptions options;
  options.port = 7420;
  std::string seed;
  std::string load_path;
  std::string db_prefix;
  lsd::SharedStoreDurability durability;
  uint16_t repl_port = 0;
  bool ship = false;
  std::string follow_spec;
  std::string scratch_prefix;
  lsd::ReplicationBounds bounds;
  bool compact = true;
  lsd::CompactionOptions compaction;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.port = static_cast<uint16_t>(std::atoi(v));
    } else if (arg == "--max-sessions") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.max_sessions = static_cast<size_t>(std::atol(v));
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      seed = v;
    } else if (arg == "--load") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      load_path = v;
    } else if (arg == "--request-timeout-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.request_timeout = std::chrono::milliseconds(std::atol(v));
    } else if (arg == "--db") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      db_prefix = v;
    } else if (arg == "--sync") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      if (std::strcmp(v, "fsync") == 0) {
        durability.sync = lsd::WalSync::kFsync;
      } else if (std::strcmp(v, "flush") == 0) {
        durability.sync = lsd::WalSync::kFlush;
      } else {
        return Usage(argv[0]);
      }
    } else if (arg == "--checkpoint-bytes") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      durability.checkpoint_bytes = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--repl-port") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      repl_port = static_cast<uint16_t>(std::atoi(v));
      ship = true;  // port 0 = ephemeral, still ships
    } else if (arg == "--follow") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      follow_spec = v;
    } else if (arg == "--scratch") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      scratch_prefix = v;
    } else if (arg == "--max-lag-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      bounds.max_lag_ms = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--max-lag-bytes") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      bounds.max_lag_bytes = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--compact-off") {
      compact = false;
    } else if (arg == "--compact-min-runs") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      compaction.min_runs = static_cast<size_t>(std::atol(v));
    } else if (arg == "--compact-ratio") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      compaction.overlay_ratio = std::atof(v);
    } else if (arg == "--compact-min-overlay-bytes") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      compaction.min_overlay_bytes = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--compact-poll-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      compaction.poll_ms = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--compact-backpressure-runs") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      compaction.backpressure_runs = static_cast<size_t>(std::atol(v));
    } else {
      return Usage(argv[0]);
    }
  }

  const bool follower = !follow_spec.empty();
  if (follower && (!db_prefix.empty() || ship || !seed.empty() ||
                   !load_path.empty())) {
    // A follower's state is the primary's, replayed — local durability,
    // shipping, or seeding would fork it.
    std::fprintf(stderr,
                 "--follow excludes --db/--repl-port/--seed/--load\n");
    return 2;
  }
  if (ship && db_prefix.empty()) {
    std::fprintf(stderr, "--repl-port needs --db (the WAL is what ships)\n");
    return 2;
  }

  lsd::SharedStore store;
  if (!db_prefix.empty()) {
    lsd::Status opened = store.OpenDurable(db_prefix, durability);
    if (!opened.ok()) {
      std::fprintf(stderr, "recovery failed: %s\n",
                   opened.ToString().c_str());
      return 1;
    }
    std::printf("recovered %s: %s\n", db_prefix.c_str(),
                store.last_recovery().ToString().c_str());
    // Seed only on the very first boot: a restart must not re-apply
    // the seed on top of its own snapshot/WAL replay.
    if (store.last_recovery().snapshot_loaded ||
        store.last_recovery().records_replayed > 0) {
      seed.clear();
      load_path.clear();
    }
  }
  if (!seed.empty() || !load_path.empty()) {
    auto seeded = store.Commit([&](lsd::LooseDb& db) -> lsd::Status {
      if (seed == "campus") {
        lsd::workload::BuildCampusDomain(&db);
      } else if (seed == "music") {
        lsd::workload::BuildMusicDomain(&db);
      } else if (seed == "org") {
        (void)lsd::workload::BuildOrgDomain(&db, lsd::workload::OrgOptions());
      } else if (!seed.empty()) {
        return lsd::Status::InvalidArgument("unknown seed: " + seed);
      }
      if (!load_path.empty()) {
        return db.LoadTextFile(load_path);
      }
      return lsd::Status::OK();
    });
    if (!seeded.ok()) {
      std::fprintf(stderr, "seed failed: %s\n",
                   seeded.status().ToString().c_str());
      return 1;
    }
  }

  // Primary side: ship the WAL to followers.
  lsd::LogShipperOptions ship_options;
  ship_options.port = repl_port;
  lsd::LogShipper shipper(&store, ship_options);
  if (ship) {
    lsd::Status shipping = shipper.Start();
    if (!shipping.ok()) {
      std::fprintf(stderr, "replication start failed: %s\n",
                   shipping.ToString().c_str());
      return 1;
    }
    std::printf("shipping WAL on 127.0.0.1:%u\n", shipper.port());
  }

  // Follower side: replay the primary's log, gate reads on staleness.
  lsd::ReplicationMonitor monitor(bounds);
  lsd::ReplicationClientOptions follow_options;
  std::unique_ptr<lsd::ReplicationClient> follow_client;
  if (follower) {
    if (!ParseHostPort(follow_spec, &follow_options.host,
                       &follow_options.port)) {
      std::fprintf(stderr, "bad --follow spec: %s\n", follow_spec.c_str());
      return 2;
    }
    follow_options.scratch_prefix =
        scratch_prefix.empty()
            ? "/tmp/lsd_follower." + std::to_string(::getpid())
            : scratch_prefix;
    follow_client = std::make_unique<lsd::ReplicationClient>(
        &store, &monitor, follow_options);
    lsd::Status following = follow_client->Start();
    if (!following.ok()) {
      std::fprintf(stderr, "follow failed: %s\n",
                   following.ToString().c_str());
      return 1;
    }
    options.replication = &monitor;
    std::printf("following %s:%u (max lag %llu ms / %llu bytes; 0 = "
                "unbounded)\n",
                follow_options.host.c_str(), follow_options.port,
                static_cast<unsigned long long>(bounds.max_lag_ms),
                static_cast<unsigned long long>(bounds.max_lag_bytes));
  }

  if (compact) {
    // Primaries and followers alike: compaction is local storage
    // maintenance and never touches the WAL stream.
    lsd::Status compacting = store.EnableCompaction(compaction);
    if (!compacting.ok()) {
      std::fprintf(stderr, "compaction start failed: %s\n",
                   compacting.ToString().c_str());
      return 1;
    }
  }

  lsd::LsdServer server(&store, options);
  lsd::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("lsd_serve listening on 127.0.0.1:%u (max %zu sessions, "
              "epoch %llu, %zu facts)\n",
              server.port(), options.max_sessions,
              static_cast<unsigned long long>(store.snapshot()->sequence()),
              store.snapshot()->db().store().size());
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (g_stop == 0) {
    struct timespec ts = {0, 200 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
  std::printf("shutting down (%llu requests served)\n",
              static_cast<unsigned long long>(server.requests_served()));
  server.Stop();
  if (follow_client != nullptr) follow_client->Stop();
  if (ship) shipper.Stop();
  return 0;
}
