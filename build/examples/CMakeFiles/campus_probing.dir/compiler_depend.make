# Empty compiler generated dependencies file for campus_probing.
# This may be replaced when dependencies are built.
