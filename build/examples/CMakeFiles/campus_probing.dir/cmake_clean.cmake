file(REMOVE_RECURSE
  "CMakeFiles/campus_probing.dir/campus_probing.cpp.o"
  "CMakeFiles/campus_probing.dir/campus_probing.cpp.o.d"
  "campus_probing"
  "campus_probing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campus_probing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
