file(REMOVE_RECURSE
  "CMakeFiles/music_browser.dir/music_browser.cpp.o"
  "CMakeFiles/music_browser.dir/music_browser.cpp.o.d"
  "music_browser"
  "music_browser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/music_browser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
