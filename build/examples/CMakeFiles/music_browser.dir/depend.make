# Empty dependencies file for music_browser.
# This may be replaced when dependencies are built.
