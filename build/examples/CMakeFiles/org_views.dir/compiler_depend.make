# Empty compiler generated dependencies file for org_views.
# This may be replaced when dependencies are built.
