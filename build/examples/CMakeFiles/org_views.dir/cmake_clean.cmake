file(REMOVE_RECURSE
  "CMakeFiles/org_views.dir/org_views.cpp.o"
  "CMakeFiles/org_views.dir/org_views.cpp.o.d"
  "org_views"
  "org_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/org_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
