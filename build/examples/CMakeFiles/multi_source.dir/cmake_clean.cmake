file(REMOVE_RECURSE
  "CMakeFiles/multi_source.dir/multi_source.cpp.o"
  "CMakeFiles/multi_source.dir/multi_source.cpp.o.d"
  "multi_source"
  "multi_source.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_source.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
