# Empty dependencies file for multi_source.
# This may be replaced when dependencies are built.
