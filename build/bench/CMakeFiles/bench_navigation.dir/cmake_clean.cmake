file(REMOVE_RECURSE
  "CMakeFiles/bench_navigation.dir/bench_navigation.cc.o"
  "CMakeFiles/bench_navigation.dir/bench_navigation.cc.o.d"
  "bench_navigation"
  "bench_navigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_navigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
