# Empty dependencies file for bench_navigation.
# This may be replaced when dependencies are built.
