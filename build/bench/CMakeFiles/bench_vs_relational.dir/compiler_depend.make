# Empty compiler generated dependencies file for bench_vs_relational.
# This may be replaced when dependencies are built.
