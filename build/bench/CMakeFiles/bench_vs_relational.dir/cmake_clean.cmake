file(REMOVE_RECURSE
  "CMakeFiles/bench_vs_relational.dir/bench_vs_relational.cc.o"
  "CMakeFiles/bench_vs_relational.dir/bench_vs_relational.cc.o.d"
  "bench_vs_relational"
  "bench_vs_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vs_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
