file(REMOVE_RECURSE
  "CMakeFiles/bench_composition.dir/bench_composition.cc.o"
  "CMakeFiles/bench_composition.dir/bench_composition.cc.o.d"
  "bench_composition"
  "bench_composition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
