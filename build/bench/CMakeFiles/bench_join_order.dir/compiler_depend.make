# Empty compiler generated dependencies file for bench_join_order.
# This may be replaced when dependencies are built.
