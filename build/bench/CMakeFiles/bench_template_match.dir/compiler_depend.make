# Empty compiler generated dependencies file for bench_template_match.
# This may be replaced when dependencies are built.
