file(REMOVE_RECURSE
  "CMakeFiles/bench_template_match.dir/bench_template_match.cc.o"
  "CMakeFiles/bench_template_match.dir/bench_template_match.cc.o.d"
  "bench_template_match"
  "bench_template_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_template_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
