file(REMOVE_RECURSE
  "CMakeFiles/bench_integrity.dir/bench_integrity.cc.o"
  "CMakeFiles/bench_integrity.dir/bench_integrity.cc.o.d"
  "bench_integrity"
  "bench_integrity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_integrity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
