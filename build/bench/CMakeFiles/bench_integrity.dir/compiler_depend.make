# Empty compiler generated dependencies file for bench_integrity.
# This may be replaced when dependencies are built.
