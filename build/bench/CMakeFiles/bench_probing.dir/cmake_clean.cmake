file(REMOVE_RECURSE
  "CMakeFiles/bench_probing.dir/bench_probing.cc.o"
  "CMakeFiles/bench_probing.dir/bench_probing.cc.o.d"
  "bench_probing"
  "bench_probing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_probing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
