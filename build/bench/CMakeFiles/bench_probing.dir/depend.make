# Empty dependencies file for bench_probing.
# This may be replaced when dependencies are built.
