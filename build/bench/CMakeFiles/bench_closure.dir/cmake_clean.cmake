file(REMOVE_RECURSE
  "CMakeFiles/bench_closure.dir/bench_closure.cc.o"
  "CMakeFiles/bench_closure.dir/bench_closure.cc.o.d"
  "bench_closure"
  "bench_closure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_closure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
