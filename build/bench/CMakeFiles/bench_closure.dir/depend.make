# Empty dependencies file for bench_closure.
# This may be replaced when dependencies are built.
