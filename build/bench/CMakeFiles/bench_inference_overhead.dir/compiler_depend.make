# Empty compiler generated dependencies file for bench_inference_overhead.
# This may be replaced when dependencies are built.
