file(REMOVE_RECURSE
  "CMakeFiles/bench_inference_overhead.dir/bench_inference_overhead.cc.o"
  "CMakeFiles/bench_inference_overhead.dir/bench_inference_overhead.cc.o.d"
  "bench_inference_overhead"
  "bench_inference_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_inference_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
