file(REMOVE_RECURSE
  "CMakeFiles/probing_test.dir/browse/probing_test.cc.o"
  "CMakeFiles/probing_test.dir/browse/probing_test.cc.o.d"
  "probing_test"
  "probing_test.pdb"
  "probing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
