file(REMOVE_RECURSE
  "CMakeFiles/rule_engine_test.dir/rules/rule_engine_test.cc.o"
  "CMakeFiles/rule_engine_test.dir/rules/rule_engine_test.cc.o.d"
  "rule_engine_test"
  "rule_engine_test.pdb"
  "rule_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
