# Empty dependencies file for rule_engine_test.
# This may be replaced when dependencies are built.
