file(REMOVE_RECURSE
  "CMakeFiles/closure_view_test.dir/rules/closure_view_test.cc.o"
  "CMakeFiles/closure_view_test.dir/rules/closure_view_test.cc.o.d"
  "closure_view_test"
  "closure_view_test.pdb"
  "closure_view_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/closure_view_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
