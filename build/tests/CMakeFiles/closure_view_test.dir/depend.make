# Empty dependencies file for closure_view_test.
# This may be replaced when dependencies are built.
