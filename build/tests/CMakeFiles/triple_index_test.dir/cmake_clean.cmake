file(REMOVE_RECURSE
  "CMakeFiles/triple_index_test.dir/store/triple_index_test.cc.o"
  "CMakeFiles/triple_index_test.dir/store/triple_index_test.cc.o.d"
  "triple_index_test"
  "triple_index_test.pdb"
  "triple_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triple_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
