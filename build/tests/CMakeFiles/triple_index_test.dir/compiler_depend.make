# Empty compiler generated dependencies file for triple_index_test.
# This may be replaced when dependencies are built.
