# Empty dependencies file for data_files_test.
# This may be replaced when dependencies are built.
