file(REMOVE_RECURSE
  "CMakeFiles/data_files_test.dir/data_files_test.cc.o"
  "CMakeFiles/data_files_test.dir/data_files_test.cc.o.d"
  "data_files_test"
  "data_files_test.pdb"
  "data_files_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_files_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
