file(REMOVE_RECURSE
  "CMakeFiles/frozen_index_test.dir/store/frozen_index_test.cc.o"
  "CMakeFiles/frozen_index_test.dir/store/frozen_index_test.cc.o.d"
  "frozen_index_test"
  "frozen_index_test.pdb"
  "frozen_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frozen_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
