# Empty dependencies file for frozen_index_test.
# This may be replaced when dependencies are built.
