# Empty compiler generated dependencies file for text_format_test.
# This may be replaced when dependencies are built.
