file(REMOVE_RECURSE
  "CMakeFiles/text_format_test.dir/store/text_format_test.cc.o"
  "CMakeFiles/text_format_test.dir/store/text_format_test.cc.o.d"
  "text_format_test"
  "text_format_test.pdb"
  "text_format_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_format_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
