# Empty compiler generated dependencies file for definitions_test.
# This may be replaced when dependencies are built.
