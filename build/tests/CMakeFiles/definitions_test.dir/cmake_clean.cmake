file(REMOVE_RECURSE
  "CMakeFiles/definitions_test.dir/query/definitions_test.cc.o"
  "CMakeFiles/definitions_test.dir/query/definitions_test.cc.o.d"
  "definitions_test"
  "definitions_test.pdb"
  "definitions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/definitions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
