# Empty dependencies file for import_test.
# This may be replaced when dependencies are built.
