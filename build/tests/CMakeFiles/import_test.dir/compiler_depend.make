# Empty compiler generated dependencies file for import_test.
# This may be replaced when dependencies are built.
