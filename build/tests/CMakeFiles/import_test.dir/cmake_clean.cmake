file(REMOVE_RECURSE
  "CMakeFiles/import_test.dir/baseline/import_test.cc.o"
  "CMakeFiles/import_test.dir/baseline/import_test.cc.o.d"
  "import_test"
  "import_test.pdb"
  "import_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/import_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
