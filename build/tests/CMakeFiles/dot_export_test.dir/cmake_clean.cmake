file(REMOVE_RECURSE
  "CMakeFiles/dot_export_test.dir/browse/dot_export_test.cc.o"
  "CMakeFiles/dot_export_test.dir/browse/dot_export_test.cc.o.d"
  "dot_export_test"
  "dot_export_test.pdb"
  "dot_export_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dot_export_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
