file(REMOVE_RECURSE
  "CMakeFiles/proximity_test.dir/browse/proximity_test.cc.o"
  "CMakeFiles/proximity_test.dir/browse/proximity_test.cc.o.d"
  "proximity_test"
  "proximity_test.pdb"
  "proximity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proximity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
