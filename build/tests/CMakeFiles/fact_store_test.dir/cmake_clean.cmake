file(REMOVE_RECURSE
  "CMakeFiles/fact_store_test.dir/store/fact_store_test.cc.o"
  "CMakeFiles/fact_store_test.dir/store/fact_store_test.cc.o.d"
  "fact_store_test"
  "fact_store_test.pdb"
  "fact_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fact_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
