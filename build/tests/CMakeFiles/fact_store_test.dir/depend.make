# Empty dependencies file for fact_store_test.
# This may be replaced when dependencies are built.
