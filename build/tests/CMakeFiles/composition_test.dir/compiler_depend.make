# Empty compiler generated dependencies file for composition_test.
# This may be replaced when dependencies are built.
