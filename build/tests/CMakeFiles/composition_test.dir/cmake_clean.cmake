file(REMOVE_RECURSE
  "CMakeFiles/composition_test.dir/rules/composition_test.cc.o"
  "CMakeFiles/composition_test.dir/rules/composition_test.cc.o.d"
  "composition_test"
  "composition_test.pdb"
  "composition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/composition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
