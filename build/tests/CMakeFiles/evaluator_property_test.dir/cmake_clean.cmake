file(REMOVE_RECURSE
  "CMakeFiles/evaluator_property_test.dir/query/evaluator_property_test.cc.o"
  "CMakeFiles/evaluator_property_test.dir/query/evaluator_property_test.cc.o.d"
  "evaluator_property_test"
  "evaluator_property_test.pdb"
  "evaluator_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evaluator_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
