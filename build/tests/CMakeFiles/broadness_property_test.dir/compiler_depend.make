# Empty compiler generated dependencies file for broadness_property_test.
# This may be replaced when dependencies are built.
