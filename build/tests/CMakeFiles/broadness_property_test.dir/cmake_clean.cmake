file(REMOVE_RECURSE
  "CMakeFiles/broadness_property_test.dir/browse/broadness_property_test.cc.o"
  "CMakeFiles/broadness_property_test.dir/browse/broadness_property_test.cc.o.d"
  "broadness_property_test"
  "broadness_property_test.pdb"
  "broadness_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/broadness_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
