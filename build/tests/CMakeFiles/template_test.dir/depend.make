# Empty dependencies file for template_test.
# This may be replaced when dependencies are built.
