file(REMOVE_RECURSE
  "CMakeFiles/template_test.dir/rules/template_test.cc.o"
  "CMakeFiles/template_test.dir/rules/template_test.cc.o.d"
  "template_test"
  "template_test.pdb"
  "template_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/template_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
