file(REMOVE_RECURSE
  "CMakeFiles/navigation_test.dir/browse/navigation_test.cc.o"
  "CMakeFiles/navigation_test.dir/browse/navigation_test.cc.o.d"
  "navigation_test"
  "navigation_test.pdb"
  "navigation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/navigation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
