# Empty dependencies file for navigation_test.
# This may be replaced when dependencies are built.
