file(REMOVE_RECURSE
  "CMakeFiles/evaluator_test.dir/query/evaluator_test.cc.o"
  "CMakeFiles/evaluator_test.dir/query/evaluator_test.cc.o.d"
  "evaluator_test"
  "evaluator_test.pdb"
  "evaluator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evaluator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
