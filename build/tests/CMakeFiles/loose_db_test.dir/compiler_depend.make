# Empty compiler generated dependencies file for loose_db_test.
# This may be replaced when dependencies are built.
