file(REMOVE_RECURSE
  "CMakeFiles/loose_db_test.dir/core/loose_db_test.cc.o"
  "CMakeFiles/loose_db_test.dir/core/loose_db_test.cc.o.d"
  "loose_db_test"
  "loose_db_test.pdb"
  "loose_db_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loose_db_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
