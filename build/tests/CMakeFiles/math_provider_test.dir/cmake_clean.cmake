file(REMOVE_RECURSE
  "CMakeFiles/math_provider_test.dir/rules/math_provider_test.cc.o"
  "CMakeFiles/math_provider_test.dir/rules/math_provider_test.cc.o.d"
  "math_provider_test"
  "math_provider_test.pdb"
  "math_provider_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/math_provider_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
