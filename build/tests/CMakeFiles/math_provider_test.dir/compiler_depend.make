# Empty compiler generated dependencies file for math_provider_test.
# This may be replaced when dependencies are built.
