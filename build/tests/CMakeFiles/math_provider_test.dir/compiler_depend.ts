# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for math_provider_test.
