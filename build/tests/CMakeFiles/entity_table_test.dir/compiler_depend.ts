# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for entity_table_test.
