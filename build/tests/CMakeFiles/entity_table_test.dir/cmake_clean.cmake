file(REMOVE_RECURSE
  "CMakeFiles/entity_table_test.dir/store/entity_table_test.cc.o"
  "CMakeFiles/entity_table_test.dir/store/entity_table_test.cc.o.d"
  "entity_table_test"
  "entity_table_test.pdb"
  "entity_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/entity_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
