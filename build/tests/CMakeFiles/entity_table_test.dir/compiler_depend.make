# Empty compiler generated dependencies file for entity_table_test.
# This may be replaced when dependencies are built.
