# Empty compiler generated dependencies file for builtin_rules_test.
# This may be replaced when dependencies are built.
