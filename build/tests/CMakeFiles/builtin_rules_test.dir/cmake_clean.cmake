file(REMOVE_RECURSE
  "CMakeFiles/builtin_rules_test.dir/rules/builtin_rules_test.cc.o"
  "CMakeFiles/builtin_rules_test.dir/rules/builtin_rules_test.cc.o.d"
  "builtin_rules_test"
  "builtin_rules_test.pdb"
  "builtin_rules_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/builtin_rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
