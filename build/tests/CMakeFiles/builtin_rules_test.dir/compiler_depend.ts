# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for builtin_rules_test.
