file(REMOVE_RECURSE
  "CMakeFiles/table_formatter_test.dir/query/table_formatter_test.cc.o"
  "CMakeFiles/table_formatter_test.dir/query/table_formatter_test.cc.o.d"
  "table_formatter_test"
  "table_formatter_test.pdb"
  "table_formatter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_formatter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
