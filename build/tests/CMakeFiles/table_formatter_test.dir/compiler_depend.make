# Empty compiler generated dependencies file for table_formatter_test.
# This may be replaced when dependencies are built.
