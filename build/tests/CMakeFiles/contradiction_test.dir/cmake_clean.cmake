file(REMOVE_RECURSE
  "CMakeFiles/contradiction_test.dir/rules/contradiction_test.cc.o"
  "CMakeFiles/contradiction_test.dir/rules/contradiction_test.cc.o.d"
  "contradiction_test"
  "contradiction_test.pdb"
  "contradiction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contradiction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
