file(REMOVE_RECURSE
  "liblsd.a"
)
