# Empty compiler generated dependencies file for lsd.
# This may be replaced when dependencies are built.
