
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/import.cc" "src/CMakeFiles/lsd.dir/baseline/import.cc.o" "gcc" "src/CMakeFiles/lsd.dir/baseline/import.cc.o.d"
  "/root/repo/src/baseline/relational.cc" "src/CMakeFiles/lsd.dir/baseline/relational.cc.o" "gcc" "src/CMakeFiles/lsd.dir/baseline/relational.cc.o.d"
  "/root/repo/src/browse/dot_export.cc" "src/CMakeFiles/lsd.dir/browse/dot_export.cc.o" "gcc" "src/CMakeFiles/lsd.dir/browse/dot_export.cc.o.d"
  "/root/repo/src/browse/navigation.cc" "src/CMakeFiles/lsd.dir/browse/navigation.cc.o" "gcc" "src/CMakeFiles/lsd.dir/browse/navigation.cc.o.d"
  "/root/repo/src/browse/operators.cc" "src/CMakeFiles/lsd.dir/browse/operators.cc.o" "gcc" "src/CMakeFiles/lsd.dir/browse/operators.cc.o.d"
  "/root/repo/src/browse/probing.cc" "src/CMakeFiles/lsd.dir/browse/probing.cc.o" "gcc" "src/CMakeFiles/lsd.dir/browse/probing.cc.o.d"
  "/root/repo/src/browse/proximity.cc" "src/CMakeFiles/lsd.dir/browse/proximity.cc.o" "gcc" "src/CMakeFiles/lsd.dir/browse/proximity.cc.o.d"
  "/root/repo/src/browse/session.cc" "src/CMakeFiles/lsd.dir/browse/session.cc.o" "gcc" "src/CMakeFiles/lsd.dir/browse/session.cc.o.d"
  "/root/repo/src/core/loose_db.cc" "src/CMakeFiles/lsd.dir/core/loose_db.cc.o" "gcc" "src/CMakeFiles/lsd.dir/core/loose_db.cc.o.d"
  "/root/repo/src/query/ast.cc" "src/CMakeFiles/lsd.dir/query/ast.cc.o" "gcc" "src/CMakeFiles/lsd.dir/query/ast.cc.o.d"
  "/root/repo/src/query/definitions.cc" "src/CMakeFiles/lsd.dir/query/definitions.cc.o" "gcc" "src/CMakeFiles/lsd.dir/query/definitions.cc.o.d"
  "/root/repo/src/query/evaluator.cc" "src/CMakeFiles/lsd.dir/query/evaluator.cc.o" "gcc" "src/CMakeFiles/lsd.dir/query/evaluator.cc.o.d"
  "/root/repo/src/query/lexer.cc" "src/CMakeFiles/lsd.dir/query/lexer.cc.o" "gcc" "src/CMakeFiles/lsd.dir/query/lexer.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/CMakeFiles/lsd.dir/query/parser.cc.o" "gcc" "src/CMakeFiles/lsd.dir/query/parser.cc.o.d"
  "/root/repo/src/query/table_formatter.cc" "src/CMakeFiles/lsd.dir/query/table_formatter.cc.o" "gcc" "src/CMakeFiles/lsd.dir/query/table_formatter.cc.o.d"
  "/root/repo/src/rules/builtin_rules.cc" "src/CMakeFiles/lsd.dir/rules/builtin_rules.cc.o" "gcc" "src/CMakeFiles/lsd.dir/rules/builtin_rules.cc.o.d"
  "/root/repo/src/rules/closure_view.cc" "src/CMakeFiles/lsd.dir/rules/closure_view.cc.o" "gcc" "src/CMakeFiles/lsd.dir/rules/closure_view.cc.o.d"
  "/root/repo/src/rules/composition.cc" "src/CMakeFiles/lsd.dir/rules/composition.cc.o" "gcc" "src/CMakeFiles/lsd.dir/rules/composition.cc.o.d"
  "/root/repo/src/rules/contradiction.cc" "src/CMakeFiles/lsd.dir/rules/contradiction.cc.o" "gcc" "src/CMakeFiles/lsd.dir/rules/contradiction.cc.o.d"
  "/root/repo/src/rules/incremental.cc" "src/CMakeFiles/lsd.dir/rules/incremental.cc.o" "gcc" "src/CMakeFiles/lsd.dir/rules/incremental.cc.o.d"
  "/root/repo/src/rules/matcher.cc" "src/CMakeFiles/lsd.dir/rules/matcher.cc.o" "gcc" "src/CMakeFiles/lsd.dir/rules/matcher.cc.o.d"
  "/root/repo/src/rules/math_provider.cc" "src/CMakeFiles/lsd.dir/rules/math_provider.cc.o" "gcc" "src/CMakeFiles/lsd.dir/rules/math_provider.cc.o.d"
  "/root/repo/src/rules/rule.cc" "src/CMakeFiles/lsd.dir/rules/rule.cc.o" "gcc" "src/CMakeFiles/lsd.dir/rules/rule.cc.o.d"
  "/root/repo/src/rules/rule_engine.cc" "src/CMakeFiles/lsd.dir/rules/rule_engine.cc.o" "gcc" "src/CMakeFiles/lsd.dir/rules/rule_engine.cc.o.d"
  "/root/repo/src/rules/template.cc" "src/CMakeFiles/lsd.dir/rules/template.cc.o" "gcc" "src/CMakeFiles/lsd.dir/rules/template.cc.o.d"
  "/root/repo/src/store/entity_table.cc" "src/CMakeFiles/lsd.dir/store/entity_table.cc.o" "gcc" "src/CMakeFiles/lsd.dir/store/entity_table.cc.o.d"
  "/root/repo/src/store/fact.cc" "src/CMakeFiles/lsd.dir/store/fact.cc.o" "gcc" "src/CMakeFiles/lsd.dir/store/fact.cc.o.d"
  "/root/repo/src/store/fact_store.cc" "src/CMakeFiles/lsd.dir/store/fact_store.cc.o" "gcc" "src/CMakeFiles/lsd.dir/store/fact_store.cc.o.d"
  "/root/repo/src/store/frozen_index.cc" "src/CMakeFiles/lsd.dir/store/frozen_index.cc.o" "gcc" "src/CMakeFiles/lsd.dir/store/frozen_index.cc.o.d"
  "/root/repo/src/store/persistence.cc" "src/CMakeFiles/lsd.dir/store/persistence.cc.o" "gcc" "src/CMakeFiles/lsd.dir/store/persistence.cc.o.d"
  "/root/repo/src/store/text_format.cc" "src/CMakeFiles/lsd.dir/store/text_format.cc.o" "gcc" "src/CMakeFiles/lsd.dir/store/text_format.cc.o.d"
  "/root/repo/src/store/triple_index.cc" "src/CMakeFiles/lsd.dir/store/triple_index.cc.o" "gcc" "src/CMakeFiles/lsd.dir/store/triple_index.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/lsd.dir/util/random.cc.o" "gcc" "src/CMakeFiles/lsd.dir/util/random.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/lsd.dir/util/status.cc.o" "gcc" "src/CMakeFiles/lsd.dir/util/status.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/lsd.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/lsd.dir/util/string_util.cc.o.d"
  "/root/repo/src/workload/music_domain.cc" "src/CMakeFiles/lsd.dir/workload/music_domain.cc.o" "gcc" "src/CMakeFiles/lsd.dir/workload/music_domain.cc.o.d"
  "/root/repo/src/workload/org_domain.cc" "src/CMakeFiles/lsd.dir/workload/org_domain.cc.o" "gcc" "src/CMakeFiles/lsd.dir/workload/org_domain.cc.o.d"
  "/root/repo/src/workload/random_graph.cc" "src/CMakeFiles/lsd.dir/workload/random_graph.cc.o" "gcc" "src/CMakeFiles/lsd.dir/workload/random_graph.cc.o.d"
  "/root/repo/src/workload/university_domain.cc" "src/CMakeFiles/lsd.dir/workload/university_domain.cc.o" "gcc" "src/CMakeFiles/lsd.dir/workload/university_domain.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
