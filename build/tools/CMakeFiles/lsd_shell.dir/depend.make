# Empty dependencies file for lsd_shell.
# This may be replaced when dependencies are built.
