file(REMOVE_RECURSE
  "CMakeFiles/lsd_shell.dir/lsd_shell.cc.o"
  "CMakeFiles/lsd_shell.dir/lsd_shell.cc.o.d"
  "lsd_shell"
  "lsd_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsd_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
