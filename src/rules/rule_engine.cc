#include "rules/rule_engine.h"

#include "rules/matcher.h"

namespace lsd {

namespace {

// True if this body atom addresses a virtual relation: such atoms are
// never new between rounds, so semi-naive evaluation must not pin them
// to the delta.
bool IsVirtualAtom(const Template& t) {
  return t.relationship.is_entity() &&
         MathProvider::IsComparator(t.relationship.entity());
}

}  // namespace

StatusOr<std::unique_ptr<Closure>> RuleEngine::ComputeClosure(
    const std::vector<Rule>& rules, const ClosureOptions& options) const {
  for (const Rule& rule : rules) {
    if (!rule.enabled) continue;
    LSD_RETURN_IF_ERROR(rule.Validate());
  }

  TripleIndex derived;
  IndexSource derived_source(&derived);
  TripleIndex delta;
  IndexSource delta_source(&delta);

  // Stored facts known so far, plus the virtual math layer for rule
  // bodies that test comparisons.
  UnionSource full({&store_->base_source(), &derived_source, math_});

  ClosureStats stats;
  const bool semi_naive =
      options.strategy == ClosureOptions::Strategy::kSemiNaive;

  bool first_round = true;
  for (;;) {
    if (++stats.rounds > options.max_rounds) {
      return Status::FailedPrecondition(
          "closure did not converge within max_rounds");
    }

    TripleIndex next;
    auto derive = [&](const Rule& rule, const Binding& binding) {
      for (const Template& head : rule.head) {
        ++stats.candidate_facts;
        Fact f = head.Substitute(binding);
        // A derived comparison that already holds virtually adds nothing;
        // one that does not hold is stored so the integrity checker can
        // report the contradiction.
        if (MathProvider::IsComparator(f.relationship) && math_->Holds(f)) {
          continue;
        }
        if (store_->Contains(f) || derived.Contains(f)) continue;
        next.Insert(f);
      }
      return true;
    };

    for (const Rule& rule : rules) {
      if (!rule.enabled) continue;
      auto filter = [this, &rule](VarId v, EntityId e) {
        switch (rule.var_constraints[v]) {
          case VarConstraint::kIndividualRelationship:
            return !store_->IsClassRelationship(e);
          case VarConstraint::kClassRelationship:
            return store_->IsClassRelationship(e);
          case VarConstraint::kNone:
            return true;
        }
        return true;
      };
      auto on_match = [&](const Binding& b) { return derive(rule, b); };

      if (!semi_naive) {
        // Naive: every atom against everything, every round.
        Binding binding(rule.num_vars());
        LSD_RETURN_IF_ERROR(
            MatchConjunction(full, rule.body, binding, filter, on_match));
        continue;
      }

      // Semi-naive: require at least one body atom to match a fact that
      // is new since the last round (round 1: any asserted fact).
      size_t pinnable = 0;
      for (const Template& t : rule.body) {
        if (!IsVirtualAtom(t)) ++pinnable;
      }
      if (pinnable == 0) {
        // Purely virtual body: fires (at most) once, in round 1.
        if (first_round) {
          Binding binding(rule.num_vars());
          LSD_RETURN_IF_ERROR(
              MatchConjunction(full, rule.body, binding, filter, on_match));
        }
        continue;
      }
      const FactSource* pin_source =
          first_round ? static_cast<const FactSource*>(&store_->base_source())
                      : &delta_source;
      for (size_t i = 0; i < rule.body.size(); ++i) {
        if (IsVirtualAtom(rule.body[i])) continue;
        std::vector<AtomSpec> specs;
        specs.reserve(rule.body.size());
        for (size_t j = 0; j < rule.body.size(); ++j) {
          specs.push_back(
              AtomSpec{rule.body[j], j == i ? pin_source : &full});
        }
        Binding binding(rule.num_vars());
        LSD_RETURN_IF_ERROR(
            MatchConjunction(std::move(specs), binding, filter, on_match));
      }
    }

    if (next.empty()) break;
    for (const Fact& f : next.Match(Pattern())) {
      derived.Insert(f);
    }
    if (derived.size() > options.max_derived_facts) {
      return Status::OutOfRange(
          "closure exceeded max_derived_facts (" +
          std::to_string(options.max_derived_facts) +
          "); consider excluding rules or raising the limit");
    }
    delta = std::move(next);
    first_round = false;
  }

  stats.derived_facts = derived.size();
  return std::make_unique<Closure>(store_, math_, std::move(derived),
                                   stats);
}

}  // namespace lsd
