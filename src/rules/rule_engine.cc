#include "rules/rule_engine.h"

#include <algorithm>
#include <thread>
#include <utility>
#include <vector>

#include "rules/matcher.h"
#include "store/frozen_index.h"

namespace lsd {

namespace {

// True if this body atom addresses a virtual relation: such atoms are
// never new between rounds, so semi-naive evaluation must not pin them
// to the delta.
bool IsVirtualAtom(const Template& t) {
  return t.relationship.is_entity() &&
         MathProvider::IsComparator(t.relationship.entity());
}

// Below this many delta facts per worker a round stays on the calling
// thread: spawning would cost more than the match work it distributes.
constexpr size_t kMinFactsPerWorker = 64;

// One rule prepared for seed-first matching: for every non-virtual
// ("pinnable") body atom, the prebuilt specs of the remaining atoms,
// each joined against the full snapshot once a delta fact has been
// unified into the pinned atom.
struct PinnedRule {
  const Rule* rule = nullptr;
  std::vector<size_t> pins;
  std::vector<std::vector<AtomSpec>> rest;
  // rest_enumerable[k]: the k-th rest conjunction is enumerable under any
  // binding (single atom with a concrete, non-comparator relationship),
  // so the per-seed Enumerable probe can be skipped.
  std::vector<uint8_t> rest_enumerable;
};

// Everything a round's match reads. All pointees are immutable while
// workers run; mutation (installing the merged round output) happens
// single-threaded between rounds.
struct RoundContext {
  const std::vector<PinnedRule>* prules;
  const FactStore* store;
  const MathProvider* math;
  const DeltaIndex* base;
  const DeltaIndex* derived;
  // class_rel[e] caches store->IsClassRelationship(e) for every interned
  // entity: the var filter probes it per candidate binding, and a flat
  // array beats a tree lookup into the store's node-based index. No new
  // entities are interned during a fixpoint, so the snapshot stays valid.
  const std::vector<uint8_t>* class_rel;
  // Shared cancellation token (may be null). Each worker amortizes it
  // through its own BudgetTicker; the step counter is atomic, so the cap
  // holds across threads.
  const QueryBudget* budget = nullptr;
};

// Output buffer of one worker (or of the sequential path). Candidates
// may repeat within and across workers; the round merge deduplicates.
struct WorkerResult {
  std::vector<Fact> candidates;
  size_t candidate_facts = 0;
  Status status;
};

// Per-variable admissibility check against the rule's VarConstraints.
// A concrete functor (not std::function) so the hot loops inline it;
// `active` is false for the common unconstrained rule, letting callers
// skip the check entirely.
struct FilterFn {
  const std::vector<uint8_t>* class_rel = nullptr;
  const Rule* rule = nullptr;
  bool active = false;

  bool operator()(VarId v, EntityId e) const {
    const bool is_class = e < class_rel->size() && (*class_rel)[e] != 0;
    switch (rule->var_constraints[v]) {
      case VarConstraint::kIndividualRelationship:
        return !is_class;
      case VarConstraint::kClassRelationship:
        return is_class;
      case VarConstraint::kNone:
        return true;
    }
    return true;
  }
};

FilterFn MakeFilterFn(const RoundContext& ctx, const Rule& rule) {
  FilterFn f{ctx.class_rel, &rule, false};
  for (VarConstraint c : rule.var_constraints) {
    if (c != VarConstraint::kNone) {
      f.active = true;
      break;
    }
  }
  return f;
}

// Instantiates the rule heads for one admissible body binding. Concrete
// for the same reason as FilterFn: this runs once per candidate binding,
// and the Substitute/Contains chain inlines into the join loops.
struct DeriveFn {
  const MathProvider* math;
  const DeltaIndex* base;
  const DeltaIndex* derived;
  const Rule* rule;
  WorkerResult* out;

  bool operator()(const Binding& binding) const {
    for (const Template& head : rule->head) {
      ++out->candidate_facts;
      Fact f = head.Substitute(binding);
      // A derived comparison that already holds virtually adds nothing;
      // one that does not hold is stored so the integrity checker can
      // report the contradiction.
      if (MathProvider::IsComparator(f.relationship) && math->Holds(f)) {
        continue;
      }
      if (base->Contains(f) || derived->Contains(f)) continue;
      out->candidates.push_back(f);
    }
    return true;
  }
};

DeriveFn MakeDerive(const RoundContext& ctx, const Rule& rule,
                    WorkerResult* out) {
  return DeriveFn{ctx.math, ctx.base, ctx.derived, &rule, out};
}

// Matches every body atom of `rule` against the full snapshot. Used by
// the naive strategy and, in round 1 of semi-naive, by rules whose body
// is purely virtual (they fire at most once).
Status MatchFullRule(const RoundContext& ctx, const Rule& rule,
                     const FactSource& full, WorkerResult* out) {
  FilterFn filter = MakeFilterFn(ctx, rule);
  VarFilter vf = filter.active ? VarFilter(filter) : VarFilter();
  BindingVisitor derive = MakeDerive(ctx, rule, out);
  Binding binding(rule.num_vars());
  // Closure bodies are 1-2 atoms matched once per round: the dynamic
  // bound-count pick is already optimal there and skips the planner's
  // estimation step.
  return MatchConjunction(full, rule.body, binding, vf, derive,
                          JoinOrder::kBoundCount, /*planner=*/nullptr,
                          /*merge_join=*/true, ctx.budget);
}

// Joins the single remaining body atom against its source under the
// seed binding, calling `derive` for every admissible extension. This is
// the dominant shape (every standard rule has a body of one or two
// atoms), so it bypasses MatchRec's atom-selection scan and runs
// allocation-free per seed.
Status MatchSingleRest(const AtomSpec& atom, bool always_enumerable,
                       Binding& binding, const FilterFn& filter,
                       const DeriveFn& derive, BudgetTicker& ticker) {
  const Pattern p = atom.tmpl.Bind(binding);
  if (!always_enumerable && p.BoundCount() < 3 &&
      !atom.source->Enumerable(p)) {
    return Status::InvalidArgument(
        "unsafe conjunction: remaining atoms have unbound operands of a "
        "non-enumerable (virtual) relation");
  }
  VarId atom_vars[3];
  const size_t num_atom_vars = atom.tmpl.CollectVars(atom_vars);
  Status budget_status = Status::OK();
  atom.source->ForEach(p, [&](const Fact& g) {
    if (!ticker.TickOk()) {
      budget_status = ticker.trip();
      return false;
    }
    VarId newly_bound[3];
    size_t num_newly_bound = 0;
    for (size_t i = 0; i < num_atom_vars; ++i) {
      if (!binding.IsBound(atom_vars[i])) {
        newly_bound[num_newly_bound++] = atom_vars[i];
      }
    }
    if (!atom.tmpl.Unify(g, binding)) return true;  // shared-var clash
    bool admissible = true;
    if (filter.active) {
      for (size_t i = 0; i < num_newly_bound; ++i) {
        const VarId v = newly_bound[i];
        if (!filter(v, binding.Get(v))) {
          admissible = false;
          break;
        }
      }
    }
    if (admissible) derive(binding);
    for (size_t i = 0; i < num_newly_bound; ++i) {
      binding.Unset(newly_bound[i]);
    }
    return true;
  });
  return budget_status;
}

// Seed-first semi-naive match of one contiguous slice of the round's
// delta: each delta fact is unified into each pinnable atom, then the
// remaining atoms join against the snapshot. Reads only the RoundContext
// snapshot; writes only into `out`, so slices run concurrently.
void MatchDeltaSlice(const RoundContext& ctx, const Fact* facts, size_t n,
                     WorkerResult* out) {
  BudgetTicker ticker(ctx.budget);
  for (const PinnedRule& pr : *ctx.prules) {
    const Rule& rule = *pr.rule;
    FilterFn filter = MakeFilterFn(ctx, rule);
    DeriveFn derive = MakeDerive(ctx, rule, out);
    // Type-erased wrappers, needed only by the general (>= 2 rest atoms)
    // path; built lazily since no standard rule takes it.
    VarFilter vf;
    BindingVisitor bv;
    for (size_t k = 0; k < pr.pins.size(); ++k) {
      const Template& pin = rule.body[pr.pins[k]];
      const std::vector<AtomSpec>& rest = pr.rest[k];
      VarId pin_vars[3];
      const size_t num_pin_vars = pin.CollectVars(pin_vars);
      Binding binding(rule.num_vars());
      for (size_t fi = 0; fi < n; ++fi) {
        if (!ticker.TickOk()) {
          out->status = ticker.trip();
          return;
        }
        if (!pin.Unify(facts[fi], binding)) continue;
        bool admissible = true;
        if (filter.active) {
          for (size_t i = 0; i < num_pin_vars; ++i) {
            const VarId v = pin_vars[i];
            if (!filter(v, binding.Get(v))) {
              admissible = false;
              break;
            }
          }
        }
        if (admissible) {
          Status s;
          if (rest.empty()) {
            derive(binding);
          } else if (rest.size() == 1) {
            s = MatchSingleRest(rest[0], pr.rest_enumerable[k] != 0,
                                binding, filter, derive, ticker);
          } else {
            if (!bv) {
              bv = BindingVisitor(derive);
              if (filter.active) vf = VarFilter(filter);
            }
            // Per-delta-fact residual joins: planning each one would
            // cost more than the dynamic bound-count pick saves.
            s = MatchConjunction(rest, binding, vf, bv,
                                 JoinOrder::kBoundCount, /*planner=*/nullptr,
                                 /*merge_join=*/true, ctx.budget);
          }
          if (!s.ok()) {
            out->status = s;
            return;
          }
        }
        for (size_t i = 0; i < num_pin_vars; ++i) {
          binding.Unset(pin_vars[i]);
        }
      }
    }
  }
}

}  // namespace

StatusOr<std::unique_ptr<Closure>> RuleEngine::ComputeClosure(
    const std::vector<Rule>& rules, const ClosureOptions& options) const {
  for (const Rule& rule : rules) {
    if (!rule.enabled) continue;
    LSD_RETURN_IF_ERROR(rule.Validate());
  }
  // Read-only generational snapshot of the asserted facts: the store
  // cannot change during the fixpoint, and frozen segments are much
  // faster to probe than the store's node-based index.
  DeltaIndex base(FrozenIndex::FromTripleIndex(store_->base()));
  std::vector<Fact> delta_facts;
  if (options.strategy == ClosureOptions::Strategy::kSemiNaive) {
    // Round 1 treats every asserted fact as new.
    delta_facts = base.Materialize();
  }
  return RunFixpoint(rules, options, std::move(base), DeltaIndex(),
                     ClosureStats(), std::move(delta_facts),
                     /*fire_virtual_only=*/true);
}

StatusOr<std::unique_ptr<Closure>> RuleEngine::ExtendClosure(
    const std::vector<Rule>& rules, DeltaIndex base, DeltaIndex derived,
    ClosureStats stats, std::vector<Fact> new_facts,
    const ClosureOptions& options) const {
  if (options.strategy != ClosureOptions::Strategy::kSemiNaive) {
    return Status::InvalidArgument(
        "ExtendClosure requires the semi-naive strategy");
  }
  for (const Rule& rule : rules) {
    if (!rule.enabled) continue;
    LSD_RETURN_IF_ERROR(rule.Validate());
  }
  // The new facts join the base tier, then seed the first semi-naive
  // round. Virtual-only rules are skipped: they fired when the seed
  // closure was computed, and nothing they read has changed.
  base.InsertRun(new_facts);
  return RunFixpoint(rules, options, std::move(base), std::move(derived),
                     stats, std::move(new_facts),
                     /*fire_virtual_only=*/false);
}

StatusOr<std::unique_ptr<Closure>> RuleEngine::RunFixpoint(
    const std::vector<Rule>& rules, const ClosureOptions& options,
    DeltaIndex base, DeltaIndex derived, ClosureStats stats,
    std::vector<Fact> delta_facts, bool fire_virtual_only) const {
  const bool semi_naive =
      options.strategy == ClosureOptions::Strategy::kSemiNaive;
  size_t num_threads = options.num_threads;
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }

  UnionSource full({&base, &derived, math_});
  std::vector<uint8_t> class_rel(store_->entities().size());
  for (EntityId e = 0; e < class_rel.size(); ++e) {
    class_rel[e] = store_->IsClassRelationship(e) ? 1 : 0;
  }
  RoundContext ctx{nullptr,  store_,     math_,         &base,
                   &derived, &class_rel, options.budget};

  // Prepare the seed-first plans; rules with no pinnable atom fire (at
  // most) once, in round 1.
  std::vector<PinnedRule> prules;
  std::vector<const Rule*> virtual_only;
  if (semi_naive) {
    for (const Rule& rule : rules) {
      if (!rule.enabled) continue;
      PinnedRule pr;
      pr.rule = &rule;
      for (size_t i = 0; i < rule.body.size(); ++i) {
        if (IsVirtualAtom(rule.body[i])) continue;
        pr.pins.push_back(i);
        std::vector<AtomSpec> rest;
        rest.reserve(rule.body.size() - 1);
        for (size_t j = 0; j < rule.body.size(); ++j) {
          if (j != i) rest.push_back(AtomSpec{rule.body[j], &full});
        }
        const bool enumerable =
            rest.size() == 1 && !IsVirtualAtom(rest[0].tmpl) &&
            rest[0].tmpl.relationship.is_entity();
        pr.rest_enumerable.push_back(enumerable ? 1 : 0);
        pr.rest.push_back(std::move(rest));
      }
      if (pr.pins.empty()) {
        virtual_only.push_back(&rule);
      } else {
        prules.push_back(std::move(pr));
      }
    }
  }
  ctx.prules = &prules;

  bool first_round = true;
  // `stats.rounds` accumulates across a seed closure and its extensions;
  // the convergence valve bounds only this run.
  size_t rounds_this_run = 0;
  for (;;) {
    ++stats.rounds;
    if (++rounds_this_run > options.max_rounds) {
      return Status::FailedPrecondition(
          "closure did not converge within max_rounds");
    }
    // Round boundary: re-check the shared token even when the round's
    // delta is too small for the per-fact tickers to settle a stride.
    if (options.budget != nullptr) {
      LSD_RETURN_IF_ERROR(options.budget->Check());
    }

    WorkerResult seq;
    std::vector<Fact> merged;
    if (!semi_naive) {
      for (const Rule& rule : rules) {
        if (!rule.enabled) continue;
        LSD_RETURN_IF_ERROR(MatchFullRule(ctx, rule, full, &seq));
      }
      stats.candidate_facts += seq.candidate_facts;
      merged = std::move(seq.candidates);
    } else {
      if (first_round && fire_virtual_only) {
        for (const Rule* rule : virtual_only) {
          LSD_RETURN_IF_ERROR(MatchFullRule(ctx, *rule, full, &seq));
        }
      }
      const size_t n = delta_facts.size();
      const size_t workers = std::max<size_t>(
          1, std::min(num_threads, n / kMinFactsPerWorker));
      if (workers == 1) {
        MatchDeltaSlice(ctx, delta_facts.data(), n, &seq);
        LSD_RETURN_IF_ERROR(seq.status);
        stats.candidate_facts += seq.candidate_facts;
        merged = std::move(seq.candidates);
      } else {
        std::vector<WorkerResult> results(workers);
        std::vector<std::thread> threads;
        threads.reserve(workers - 1);
        const size_t chunk = (n + workers - 1) / workers;
        const Fact* facts = delta_facts.data();
        for (size_t w = 1; w < workers; ++w) {
          const size_t begin = std::min(n, w * chunk);
          const size_t count = std::min(n - begin, chunk);
          threads.emplace_back([&ctx, &results, facts, begin, count, w] {
            MatchDeltaSlice(ctx, facts + begin, count, &results[w]);
          });
        }
        MatchDeltaSlice(ctx, facts, std::min(n, chunk), &results[0]);
        for (std::thread& t : threads) t.join();

        // Deterministic single-threaded merge, in worker order.
        stats.candidate_facts += seq.candidate_facts;
        merged = std::move(seq.candidates);
        for (WorkerResult& r : results) {
          LSD_RETURN_IF_ERROR(r.status);
          stats.candidate_facts += r.candidate_facts;
          merged.insert(merged.end(), r.candidates.begin(),
                        r.candidates.end());
        }
      }
    }

    // Dedup candidates (the same fact may be derived along several
    // paths, possibly in different workers) and install the round.
    std::sort(merged.begin(), merged.end(), OrderSrt());
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    if (merged.empty()) break;
    // InsertRun appends an L0 segment (or overlay facts) plus a bounded
    // geometric tail-merge — never a full rebuild, so the commit path no
    // longer stalls when the derived set crosses a size threshold;
    // merging generations down is the background compactor's job.
    derived.InsertRun(merged);
    if (derived.size() > options.max_derived_facts) {
      return Status::OutOfRange(
          "closure exceeded max_derived_facts (" +
          std::to_string(options.max_derived_facts) +
          "); consider excluding rules or raising the limit");
    }
    delta_facts = std::move(merged);
    first_round = false;
  }

  stats.derived_facts = derived.size();
  return std::make_unique<Closure>(store_, math_, std::move(base),
                                   std::move(derived), stats);
}

}  // namespace lsd
