// The paper's standard inference rules (Sec 3) expressed as ordinary
// conjunctive rules, plus the seed facts that make inversion and
// contradiction self-describing. Each rule is named so the Sec 6.1
// operators include(rule)/exclude(rule) can toggle it.
#ifndef LSD_RULES_BUILTIN_RULES_H_
#define LSD_RULES_BUILTIN_RULES_H_

#include <vector>

#include "rules/rule.h"
#include "store/fact.h"

namespace lsd {

// Rule names (stable identifiers for include/exclude and tests).
inline constexpr char kRuleGenSource[] = "gen-source";      // Sec 3.1 (1a)
inline constexpr char kRuleGenRelationship[] = "gen-rel";   // Sec 3.1 (1b)
inline constexpr char kRuleGenTarget[] = "gen-target";      // Sec 3.1 (1c)
inline constexpr char kRuleMemSource[] = "mem-source";      // Sec 3.2 (2a)
inline constexpr char kRuleMemTarget[] = "mem-target";      // Sec 3.2 (2b)
inline constexpr char kRuleMemUp[] = "mem-up";              // Sec 3.2 derived
inline constexpr char kRuleSynIsa[] = "syn-isa";            // Sec 3.3 def
inline constexpr char kRuleSynIntro[] = "syn-intro";        // Sec 3.3 def
inline constexpr char kRuleSynSource[] = "syn-source";      // Sec 3.3 subst
inline constexpr char kRuleSynRelationship[] = "syn-rel";   // Sec 3.3 subst
inline constexpr char kRuleSynTarget[] = "syn-target";      // Sec 3.3 subst
inline constexpr char kRuleInversion[] = "inversion";       // Sec 3.4

// Returns the full standard rule set, all enabled.
std::vector<Rule> StandardRules();

// Seed facts (Sec 3.4-3.5): (INV, INV, INV) makes inversion self-inverse
// so inversion facts come in pairs; (CONTRA, INV, CONTRA) does the same
// for contradiction facts.
std::vector<Fact> StandardSeedFacts();

}  // namespace lsd

#endif  // LSD_RULES_BUILTIN_RULES_H_
