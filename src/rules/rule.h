// Conjunctive rules <L, R> (Sec 2.6): one set of templates implies
// another. Inference rules and integrity constraints share this single
// representation — exactly the paper's "single mechanism" (feature 3 of
// its conclusion). A variable may carry a relationship-class constraint
// to express the paper's "∀ r ∈ R_i" side conditions.
#ifndef LSD_RULES_RULE_H_
#define LSD_RULES_RULE_H_

#include <string>
#include <vector>

#include "rules/template.h"
#include "util/status.h"

namespace lsd {

class EntityTable;
class FactStore;

// Side condition on a rule variable (Sec 2.2 / 3.1-3.2).
enum class VarConstraint : uint8_t {
  kNone = 0,
  kIndividualRelationship,  // must be in R_i
  kClassRelationship,       // must be in R_c
};

// Distinguishes how a rule participates in closure/integrity processing.
// The paper treats both uniformly ("integrity constraints are identical
// to inference rules"); the kind only tags provenance for reporting.
enum class RuleKind : uint8_t {
  kInference = 0,
  kIntegrity,
};

struct Rule {
  std::string name;  // for include()/exclude() and diagnostics
  RuleKind kind = RuleKind::kInference;
  std::vector<Template> body;  // L: antecedent templates (conjunction)
  std::vector<Template> head;  // R: consequent templates (conjunction)
  std::vector<std::string> var_names;
  std::vector<VarConstraint> var_constraints;  // parallel to var_names
  bool enabled = true;

  size_t num_vars() const { return var_names.size(); }

  // Renders "(?X, IN, EMPLOYEE) => (?X, EARNS, SALARY)".
  std::string DebugString(const EntityTable& entities) const;

  // Structural validation: variable ids in range, head variables all
  // appear in the body (safety: rules must not invent bindings),
  // constraints sized correctly.
  Status Validate() const;
};

// Helper for building rules programmatically (used heavily by
// builtin_rules.cc and tests).
class RuleBuilder {
 public:
  explicit RuleBuilder(std::string name);

  // Declares (or reuses) a variable by name; returns a Term for it.
  Term Var(std::string_view name,
           VarConstraint constraint = VarConstraint::kNone);

  RuleBuilder& Body(Term s, Term r, Term t);
  RuleBuilder& Head(Term s, Term r, Term t);
  RuleBuilder& SetKind(RuleKind kind);

  Rule Build() &&;

 private:
  Rule rule_;
};

}  // namespace lsd

#endif  // LSD_RULES_RULE_H_
