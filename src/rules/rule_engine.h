// Fixpoint computation of the database closure (Sec 2.6): "the set of
// facts that may be obtained by repeated application of the rules".
//
// The default strategy is semi-naive evaluation: each round only matches
// rule bodies against derivations that are new since the previous round,
// which avoids re-deriving the same facts quadratically. The naive
// strategy (re-match everything each round) is kept as the experiment E1
// baseline.
//
// The semi-naive round is seed-first and parallel: the round's delta
// facts are partitioned across worker threads, each worker unifies every
// delta fact with every pinnable body atom and joins the remaining atoms
// against a read-only snapshot (frozen base run + two-tier derived
// index), accumulating candidates in a thread-local buffer; a
// single-threaded merge then deduplicates and installs the new facts.
// The derived set is identical for every thread count, including 1.
//
// Facts whose relationship is a virtual comparator are special-cased on
// derivation: if the comparison already holds virtually it is not stored;
// otherwise it is stored so the integrity checker can flag it (e.g. an
// integrity rule deriving (-5, >, 0)).
#ifndef LSD_RULES_RULE_ENGINE_H_
#define LSD_RULES_RULE_ENGINE_H_

#include <memory>
#include <vector>

#include "rules/closure_view.h"
#include "rules/math_provider.h"
#include "rules/rule.h"
#include "store/delta_index.h"
#include "store/fact_store.h"
#include "util/budget.h"
#include "util/status.h"

namespace lsd {

struct ClosureOptions {
  enum class Strategy { kSemiNaive, kNaive };
  Strategy strategy = Strategy::kSemiNaive;

  // Safety valves: computing a closure never runs away silently.
  size_t max_derived_facts = 10'000'000;
  size_t max_rounds = 100'000;

  // Worker threads for the semi-naive delta match; 0 means
  // hardware_concurrency. The result is the same for any value; small
  // rounds stay on the calling thread regardless.
  unsigned num_threads = 0;

  // Optional cooperative cancellation / deadline token. Borrowed; must
  // outlive the ComputeClosure call. Checked at every round boundary and
  // (stride-amortized) per delta fact inside each worker; a tripped
  // budget aborts the fixpoint with its typed error. Each worker thread
  // gets its own ticker over the shared token.
  const QueryBudget* budget = nullptr;
};

struct ClosureStats {
  size_t rounds = 0;
  size_t derived_facts = 0;
  // Number of head instantiations attempted (including duplicates).
  size_t candidate_facts = 0;
};

// The materialized closure. Owns two generational tiers — the columnar
// snapshot of the asserted facts the fixpoint ran against (base) and the
// derived fact index — and exposes the queryable view (base ∪ derived ∪
// virtual layers). The view serves the base layer from the snapshot —
// valid because any store mutation bumps the store version and
// invalidates the whole closure. Both tiers are DeltaIndexes, so a
// serving tip can extend them across epochs (RuleEngine::ExtendClosure)
// and the background compactor can fold their accumulated segments
// (LooseDb::InstallCompactedTiers, which uses the mutable accessors —
// only ever on a private, unpublished clone).
class Closure {
 public:
  Closure(const FactStore* store, const MathProvider* math,
          DeltaIndex base, DeltaIndex derived, ClosureStats stats)
      : base_(std::move(base)),
        derived_(std::move(derived)),
        stats_(stats),
        view_(store, &derived_, math, &base_) {}

  Closure(const Closure&) = delete;
  Closure& operator=(const Closure&) = delete;

  const DeltaIndex& base() const { return base_; }
  const DeltaIndex& derived() const { return derived_; }
  const ClosureView& view() const { return view_; }
  const ClosureStats& stats() const { return stats_; }

  // In-place tier surgery for the compaction swap. The view holds stable
  // pointers to both tiers, so swapping their segment lists under it is
  // safe — but only while no reader can see this closure (a commit
  // clone before publication).
  DeltaIndex* mutable_base() { return &base_; }
  DeltaIndex* mutable_derived() { return &derived_; }

 private:
  DeltaIndex base_;
  DeltaIndex derived_;
  ClosureStats stats_;
  ClosureView view_;
};

class RuleEngine {
 public:
  // Both pointers are borrowed and must outlive the engine.
  RuleEngine(const FactStore* store, const MathProvider* math)
      : store_(store), math_(math) {}

  // Computes the closure of the store's facts under the enabled rules.
  // Disabled rules (rule.enabled == false) are skipped — this implements
  // the include()/exclude() operators of Sec 6.1.
  StatusOr<std::unique_ptr<Closure>> ComputeClosure(
      const std::vector<Rule>& rules,
      const ClosureOptions& options = ClosureOptions()) const;

  // Extends a previously computed closure with `new_facts` — the facts
  // asserted since `base`/`derived` were fixed — by running semi-naive
  // rounds whose first delta is exactly the new facts. Because the
  // closure is monotone in the asserted facts (the caller guarantees no
  // retraction, no rule change, and no class-relationship re-marking
  // happened since), every derivation involving at least one new fact is
  // found and everything else is already present, so the result equals
  // ComputeClosure from scratch. Preconditions (caller-checked):
  // `new_facts` is SRT-sorted, duplicate-free, disjoint from both tiers,
  // and the strategy is kSemiNaive. `stats` is the seed closure's stats,
  // accumulated into. Virtual-only rules are skipped (they fired when
  // the seed was computed).
  StatusOr<std::unique_ptr<Closure>> ExtendClosure(
      const std::vector<Rule>& rules, DeltaIndex base, DeltaIndex derived,
      ClosureStats stats, std::vector<Fact> new_facts,
      const ClosureOptions& options = ClosureOptions()) const;

 private:
  // Shared fixpoint driver: seeds the first round with `delta_facts`
  // and loops until no new fact is derived. `fire_virtual_only` controls
  // whether rules with no pinnable atom fire in round 1 (fresh closures
  // yes, extensions no).
  StatusOr<std::unique_ptr<Closure>> RunFixpoint(
      const std::vector<Rule>& rules, const ClosureOptions& options,
      DeltaIndex base, DeltaIndex derived, ClosureStats stats,
      std::vector<Fact> delta_facts, bool fire_virtual_only) const;

  const FactStore* store_;
  const MathProvider* math_;
};

}  // namespace lsd

#endif  // LSD_RULES_RULE_ENGINE_H_
