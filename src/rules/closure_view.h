// ClosureView: the queryable database closure (Sec 2.6) as a FactSource.
//
// Layers, deduplicated:
//   1. asserted facts (FactStore base);
//   2. derived facts (rule engine output);
//   3. virtual mathematical relations (MathProvider, Sec 3.6);
//   4. generalization axioms (Sec 2.3): (E, ISA, E) reflexivity,
//      (E, ISA, ANY) and (NONE, ISA, E) for the top/bottom entities;
//   5. Δ-generalization semantics: a pattern position holding the
//      constant ANY matches "related somehow". E.g. (?Z, ANY, FREE)
//      holds iff some fact (z, r, FREE) exists — exactly what rule (1)
//      implies, since every relationship r satisfies (r, ISA, ANY).
//      Matches are emitted with ANY in that position so unification with
//      the ANY constant succeeds.
//
// Virtual layers (3)-(4) only respond when the pattern's relationship is
// bound (to a comparator resp. ISA): browsing with an unbound
// relationship shows stored information only, matching the paper's
// treatment of mathematical facts as non-ordinary.
#ifndef LSD_RULES_CLOSURE_VIEW_H_
#define LSD_RULES_CLOSURE_VIEW_H_

#include "rules/math_provider.h"
#include "store/delta_index.h"
#include "store/fact_store.h"
#include "store/frozen_index.h"
#include "store/triple_index.h"

namespace lsd {

class ClosureView final : public FactSource {
 public:
  // All pointers are borrowed and must outlive the view. `derived` is any
  // FactSource holding the rule engine's output (the generational
  // DeltaIndex for batch closures, an IndexSource for the incremental
  // engine); it may be null (no rules applied). `base_index`, when
  // non-null, is a generational snapshot of exactly the store's asserted
  // facts: the view then serves the base layer from its columnar
  // segments instead of the store's node-based index. Pass null when the
  // store may mutate under the view (the incremental engine).
  ClosureView(const FactStore* store, const FactSource* derived,
              const MathProvider* math,
              const DeltaIndex* base_index = nullptr);

  bool Contains(const Fact& f) const override;
  bool ForEach(const Pattern& p, const FactVisitor& visit) const override;
  bool Enumerable(const Pattern& p) const override;
  size_t EstimateMatches(const Pattern& p) const override;

  // Planner estimate mirroring ForEach's dispatch: ISA axioms and
  // comparator sweeps are priced in, and a pattern holding a literal
  // ANY/NONE is estimated as the wildcarded rewrite scan it triggers
  // (EstimateMatches prices the literal range, which is usually empty —
  // exactly wrong for probing waves that generalize toward ANY).
  double EstimateMatchesBound(const Pattern& p,
                              uint8_t bound_mask) const override;

  // Sorted free-position values of a two-bound pattern, merged across the
  // stored tiers. Declines when a virtual layer (ISA axioms, comparator
  // sweeps, ANY/NONE rewrites) would add values the stored tiers do not
  // stream.
  bool SortedFreeValues(const Pattern& p, std::vector<EntityId>* scratch,
                        SortedIdSpan* out) const override;
  bool CanSortFreeValues(const Pattern& p) const override;

  const FactStore& store() const { return *store_; }

 private:
  // Enumerates stored (base ∪ derived) matches only.
  bool ForEachStored(const Pattern& p, const FactVisitor& visit) const;
  bool StoredContains(const Fact& f) const;

  // ISA axiom handling (layer 4).
  bool IsaAxiomHolds(const Fact& f) const;
  bool ForEachIsaAxiom(const Pattern& p, const FactVisitor& visit) const;

  // ANY-rewrite handling (layer 5).
  bool AnyRewriteForEach(const Pattern& p, const FactVisitor& visit) const;

  const FactStore* store_;
  const FactSource* derived_;
  const MathProvider* math_;
  const DeltaIndex* base_index_;
};

}  // namespace lsd

#endif  // LSD_RULES_CLOSURE_VIEW_H_
