#include "rules/contradiction.h"

#include <map>
#include <set>
#include <vector>

#include "rules/math_provider.h"
#include "store/entity_table.h"

namespace lsd {

namespace {

// A stored comparator fact is decidable when the virtual layer knows its
// truth value: equality/inequality always, order comparisons only for
// numeric operands.
bool Decidable(const EntityTable& entities, const Fact& f) {
  switch (f.relationship) {
    case kEntEq:
    case kEntNeq:
      return true;
    case kEntLess:
    case kEntGreater:
    case kEntLessEq:
    case kEntGreaterEq:
      return entities.NumericValue(f.source).has_value() &&
             entities.NumericValue(f.target).has_value();
    default:
      return false;
  }
}

}  // namespace

std::vector<IntegrityViolation> FindViolations(const ClosureView& view) {
  std::vector<IntegrityViolation> out;
  const EntityTable& entities = view.store().entities();
  MathProvider math(&entities);

  // Contradictory relationship pairs declared in the closure.
  std::multimap<EntityId, EntityId> contra;
  view.ForEach(Pattern(kAnyEntity, kEntContra, kAnyEntity),
               [&](const Fact& f) {
                 contra.emplace(f.source, f.target);
                 return true;
               });

  std::set<std::pair<Fact, Fact>, bool (*)(const std::pair<Fact, Fact>&,
                                           const std::pair<Fact, Fact>&)>
      reported([](const std::pair<Fact, Fact>& a,
                  const std::pair<Fact, Fact>& b) {
        OrderSrt less;
        if (a.first != b.first) return less(a.first, b.first);
        return less(a.second, b.second);
      });

  view.ForEach(Pattern(), [&](const Fact& f) {
    // Declared contradictions: (f.s, r', f.t) present for a declared
    // contradictory r'.
    auto range = contra.equal_range(f.relationship);
    for (auto it = range.first; it != range.second; ++it) {
      Fact g(f.source, it->second, f.target);
      if (g == f) continue;
      if (!view.Contains(g)) continue;
      Fact lo = f, hi = g;
      if (OrderSrt()(hi, lo)) std::swap(lo, hi);
      if (!reported.emplace(lo, hi).second) continue;
      out.push_back(IntegrityViolation{
          lo, hi,
          "facts " + lo.DebugString(entities) + " and " +
              hi.DebugString(entities) +
              " hold contradictory relationships"});
    }
    // Built-in arithmetic: a stored, decidable, false comparison.
    if (MathProvider::IsComparator(f.relationship) &&
        Decidable(entities, f) && !math.Holds(f)) {
      // Name the virtual fact it collides with.
      EntityId actual = kEntEq;
      if (!math.Holds(Fact(f.source, kEntEq, f.target))) {
        auto va = entities.NumericValue(f.source);
        auto vb = entities.NumericValue(f.target);
        if (va && vb) {
          actual = (*va < *vb) ? kEntLess : kEntGreater;
        } else {
          actual = kEntNeq;
        }
      }
      Fact g(f.source, actual, f.target);
      out.push_back(IntegrityViolation{
          f, g,
          "fact " + f.DebugString(entities) +
              " contradicts built-in arithmetic (" +
              g.DebugString(entities) + " holds)"});
    }
    return true;
  });
  return out;
}

Status CheckIntegrity(const ClosureView& view) {
  std::vector<IntegrityViolation> violations = FindViolations(view);
  if (violations.empty()) return Status::OK();
  std::string msg = std::to_string(violations.size()) +
                    " integrity violation(s); first: " +
                    violations.front().description;
  return Status::IntegrityViolation(std::move(msg));
}

}  // namespace lsd
