#include "rules/closure_view.h"

#include <unordered_set>

namespace lsd {

ClosureView::ClosureView(const FactStore* store, const FactSource* derived,
                         const MathProvider* math,
                         const DeltaIndex* base_index)
    : store_(store),
      derived_(derived),
      math_(math),
      base_index_(base_index) {}

bool ClosureView::StoredContains(const Fact& f) const {
  const bool in_base = base_index_ != nullptr ? base_index_->Contains(f)
                                               : store_->Contains(f);
  if (in_base) return true;
  return derived_ != nullptr && derived_->Contains(f);
}

bool ClosureView::ForEachStored(const Pattern& p,
                                const FactVisitor& visit) const {
  // Base and derived are disjoint by construction (the rule engine never
  // re-derives an asserted fact), so plain concatenation is duplicate
  // free.
  if (base_index_ != nullptr) {
    if (!base_index_->ForEach(p, visit)) return false;
  } else {
    if (!store_->base().ForEach(p, visit)) return false;
  }
  if (derived_ != nullptr && !derived_->ForEach(p, visit)) return false;
  return true;
}

bool ClosureView::IsaAxiomHolds(const Fact& f) const {
  if (f.relationship != kEntIsa) return false;
  if (f.source == f.target) return true;       // reflexivity
  if (f.target == kEntTop) return true;        // (E, ISA, ANY)
  if (f.source == kEntBottom) return true;     // (NONE, ISA, E)
  return false;
}

bool ClosureView::ForEachIsaAxiom(const Pattern& p,
                                  const FactVisitor& visit) const {
  // Only called with relationship bound to ISA. Emits axiom facts not
  // already stored. The unbounded families ((E,ISA,E) etc.) are swept
  // over the interned universe, which is finite.
  auto emit = [&](const Fact& f) {
    if (StoredContains(f)) return true;  // dedup against layer 1-2
    return visit(f);
  };
  const size_t n = store_->entities().size();
  if (p.SourceBound() && p.TargetBound()) {
    Fact f(p.source, kEntIsa, p.target);
    if (IsaAxiomHolds(f)) return emit(f);
    return true;
  }
  if (p.SourceBound()) {
    if (!emit(Fact(p.source, kEntIsa, p.source))) return false;
    if (p.source != kEntTop) {
      if (!emit(Fact(p.source, kEntIsa, kEntTop))) return false;
    }
    if (p.source == kEntBottom) {
      for (EntityId e = 0; e < n; ++e) {
        if (e == kEntBottom || e == kEntTop) continue;
        if (!emit(Fact(kEntBottom, kEntIsa, e))) return false;
      }
    }
    return true;
  }
  if (p.TargetBound()) {
    if (!emit(Fact(p.target, kEntIsa, p.target))) return false;
    if (p.target != kEntBottom) {
      if (!emit(Fact(kEntBottom, kEntIsa, p.target))) return false;
    }
    if (p.target == kEntTop) {
      for (EntityId e = 0; e < n; ++e) {
        if (e == kEntBottom || e == kEntTop) continue;
        if (!emit(Fact(e, kEntIsa, kEntTop))) return false;
      }
    }
    return true;
  }
  // Fully unbounded (?, ISA, ?): reflexivity plus top/bottom families.
  for (EntityId e = 0; e < n; ++e) {
    if (!emit(Fact(e, kEntIsa, e))) return false;
    if (e != kEntTop) {
      if (!emit(Fact(e, kEntIsa, kEntTop))) return false;
    }
    if (e != kEntBottom) {
      if (!emit(Fact(kEntBottom, kEntIsa, e))) return false;
    }
  }
  return true;
}

bool ClosureView::AnyRewriteForEach(const Pattern& p,
                                    const FactVisitor& visit) const {
  // Positions holding the constant ANY (or NONE in the source) are
  // "generalized away": they match any stored value there, and matches
  // are re-projected onto the constant. Which positions may generalize
  // follows the direction of the inference rules (Sec 3.1): rules 1b/1c
  // generalize the relationship/target upward (to ANY), rule 1a
  // specializes the source downward (to NONE). All three rules carry the
  // "r ∈ R_i" side condition, so facts with class relationships do not
  // participate.
  const bool mask_source = (p.source == kEntBottom);
  const bool mask_rel = (p.relationship == kEntTop);
  const bool mask_target = (p.target == kEntTop);
  Pattern scan = p;
  if (mask_source) scan.source = kAnyEntity;
  if (mask_rel) scan.relationship = kAnyEntity;
  if (mask_target) scan.target = kAnyEntity;

  std::unordered_set<Fact, FactHash> emitted;
  return ForEachStored(scan, [&](const Fact& f) {
    // All three rewrite rules carry the r ∈ R_i side condition.
    if (store_->IsClassRelationship(f.relationship)) return true;
    Fact projected = f;
    if (mask_source) projected.source = p.source;
    if (mask_rel) projected.relationship = kEntTop;
    if (mask_target) projected.target = kEntTop;
    if (!emitted.insert(projected).second) return true;
    if (StoredContains(projected) && projected != f) return true;
    return visit(projected);
  });
}

bool ClosureView::ForEach(const Pattern& p, const FactVisitor& visit) const {
  const bool any_in_position = (p.source == kEntBottom) ||
                               (p.relationship == kEntTop) ||
                               (p.target == kEntTop);
  if (p.RelationshipBound()) {
    if (p.relationship == kEntIsa) {
      if (!ForEachStored(p, visit)) return false;
      return ForEachIsaAxiom(p, visit);
    }
    if (MathProvider::IsComparator(p.relationship)) {
      if (!ForEachStored(p, visit)) return false;
      // Dedup virtual math facts against stored ones.
      return math_->ForEach(p, [&](const Fact& f) {
        if (StoredContains(f)) return true;
        return visit(f);
      });
    }
    if (any_in_position) return AnyRewriteForEach(p, visit);
    return ForEachStored(p, visit);
  }
  // Relationship unbound: virtual layers stay silent; ANY constants in
  // source/target still rewrite.
  if (any_in_position) return AnyRewriteForEach(p, visit);
  return ForEachStored(p, visit);
}

bool ClosureView::Contains(const Fact& f) const {
  Pattern p(f.source, f.relationship, f.target);
  // Found iff enumeration is stopped by an equal fact.
  bool found = false;
  ForEach(p, [&](const Fact& g) {
    if (g == f) {
      found = true;
      return false;
    }
    return true;
  });
  return found;
}

bool ClosureView::SortedFreeValues(const Pattern& p,
                                   std::vector<EntityId>* scratch,
                                   SortedIdSpan* out) const {
  if (p.BoundCount() != 2) return false;
  // Virtual layers inject values the stored tiers do not stream: ISA
  // axioms and comparator sweeps (when the relationship is bound to one)
  // and the ANY/NONE rewrites (when a literal ANY or NONE sits in a
  // pattern position). Decline those; the matcher falls back to
  // nested-loop enumeration, which handles them.
  if (p.RelationshipBound() &&
      (p.relationship == kEntIsa ||
       MathProvider::IsComparator(p.relationship))) {
    return false;
  }
  if (p.source == kEntBottom || p.relationship == kEntTop ||
      p.target == kEntTop) {
    return false;
  }
  if (derived_ == nullptr) {
    return base_index_ != nullptr
               ? base_index_->SortedFreeValues(p, scratch, out)
               : store_->base().SortedFreeValues(p, scratch, out);
  }
  // The base run goes into the caller's scratch so that when the derived
  // tier contributes nothing to this pattern — most patterns, since
  // derivation concentrates on a few relationships — the base span
  // (possibly a zero-copy frozen column slice) passes through without
  // another copy.
  SortedIdSpan base_vals;
  const bool base_ok =
      base_index_ != nullptr
          ? base_index_->SortedFreeValues(p, scratch, &base_vals)
          : store_->base().SortedFreeValues(p, scratch, &base_vals);
  if (!base_ok) return false;
  std::vector<EntityId> derived_scratch;
  SortedIdSpan derived_vals;
  if (!derived_->SortedFreeValues(p, &derived_scratch, &derived_vals)) {
    return false;
  }
  if (derived_vals.size == 0) {
    *out = base_vals;
    return true;
  }
  if (base_vals.size == 0) {
    scratch->assign(derived_vals.data, derived_vals.data + derived_vals.size);
    out->data = scratch->data();
    out->size = scratch->size();
    return true;
  }
  std::vector<EntityId> merged;
  MergeSortedIds(base_vals, derived_vals, &merged);
  scratch->swap(merged);
  out->data = scratch->data();
  out->size = scratch->size();
  return true;
}

bool ClosureView::CanSortFreeValues(const Pattern& p) const {
  // Mirrors SortedFreeValues' decline conditions exactly, without
  // touching the tiers: the stored layers (frozen run, delta index,
  // dynamic base) can always stream a two-bound pattern, so only the
  // virtual-layer conditions can decline.
  if (p.BoundCount() != 2) return false;
  if (p.RelationshipBound() &&
      (p.relationship == kEntIsa ||
       MathProvider::IsComparator(p.relationship))) {
    return false;
  }
  if (p.source == kEntBottom || p.relationship == kEntTop ||
      p.target == kEntTop) {
    return false;
  }
  return true;
}

bool ClosureView::Enumerable(const Pattern& p) const {
  if (p.RelationshipBound() && MathProvider::IsComparator(p.relationship)) {
    return math_->Enumerable(p);
  }
  return true;
}

double ClosureView::EstimateMatchesBound(const Pattern& p,
                                         uint8_t bound_mask) const {
  auto stored = [&](const Pattern& q) {
    double n = base_index_ != nullptr
                   ? base_index_->EstimateMatchesBound(q, bound_mask)
                   : store_->base_source().EstimateMatchesBound(q, bound_mask);
    if (derived_ != nullptr) {
      n += derived_->EstimateMatchesBound(q, bound_mask);
    }
    return n;
  };
  auto rewrite_scan = [&]() {
    // A literal ANY/NONE position matches every stored value there, so
    // the real work is the wildcarded scan (see AnyRewriteForEach).
    Pattern scan = p;
    if (p.source == kEntBottom) scan.source = kAnyEntity;
    if (p.relationship == kEntTop) scan.relationship = kAnyEntity;
    if (p.target == kEntTop) scan.target = kAnyEntity;
    return stored(scan);
  };
  if (p.RelationshipBound()) {
    if (p.relationship == kEntIsa) {
      const bool s = p.SourceBound() || (bound_mask & kBindSource);
      const bool t = p.TargetBound() || (bound_mask & kBindTarget);
      // Reflexivity plus top/bottom axioms: a handful once an operand is
      // pinned, an entity-table sweep otherwise.
      const double axioms =
          (s || t) ? 2.0 : 2.0 * static_cast<double>(store_->entities().size());
      return stored(p) + axioms;
    }
    if (MathProvider::IsComparator(p.relationship)) {
      return stored(p) + math_->EstimateMatchesBound(p, bound_mask);
    }
    if (p.relationship == kEntTop || p.source == kEntBottom ||
        p.target == kEntTop) {
      return rewrite_scan();
    }
    return stored(p);
  }
  if (p.source == kEntBottom || p.target == kEntTop) return rewrite_scan();
  if (bound_mask & kBindRelationship) {
    // The relationship will hold some unknown value, which may land on
    // the virtual math layer; price that possibility in as an upper
    // bound.
    return stored(p) + math_->EstimateMatchesBound(p, bound_mask);
  }
  return stored(p);
}

size_t ClosureView::EstimateMatches(const Pattern& p) const {
  size_t n = base_index_ != nullptr ? base_index_->CountMatches(p)
                                     : store_->base().CountMatches(p);
  if (derived_ != nullptr) n += derived_->EstimateMatches(p);
  if (p.RelationshipBound() && MathProvider::IsComparator(p.relationship)) {
    n += math_->EstimateMatches(p);
  } else if (p.RelationshipBound() && p.relationship == kEntIsa) {
    n += 2;  // reflexive + top axiom, order-of-magnitude only
  }
  return n;
}

}  // namespace lsd
