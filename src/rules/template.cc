#include "rules/template.h"

#include <algorithm>
#include <cassert>

#include "store/entity_table.h"

namespace lsd {

std::vector<EntityId> Binding::Project(const std::vector<VarId>& vars) const {
  std::vector<EntityId> out;
  out.reserve(vars.size());
  for (VarId v : vars) {
    assert(IsBound(v));
    out.push_back(values_[v]);
  }
  return out;
}

void Template::CollectVars(std::vector<VarId>* out) const {
  for (int i = 0; i < 3; ++i) {
    const Term& term = at(i);
    if (term.is_variable() &&
        std::find(out->begin(), out->end(), term.var()) == out->end()) {
      out->push_back(term.var());
    }
  }
}

std::string Template::DebugString(
    const EntityTable& entities,
    const std::vector<std::string>& var_names) const {
  auto render = [&](const Term& t) -> std::string {
    if (t.is_entity()) {
      return entities.IsValid(t.entity()) ? entities.Name(t.entity())
                                          : "<invalid>";
    }
    if (t.var() < var_names.size()) return "?" + var_names[t.var()];
    return "?v" + std::to_string(t.var());
  };
  return "(" + render(source) + ", " + render(relationship) + ", " +
         render(target) + ")";
}

}  // namespace lsd
