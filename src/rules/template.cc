#include "rules/template.h"

#include <algorithm>
#include <cassert>

#include "store/entity_table.h"

namespace lsd {

std::vector<EntityId> Binding::Project(const std::vector<VarId>& vars) const {
  std::vector<EntityId> out;
  out.reserve(vars.size());
  for (VarId v : vars) {
    assert(IsBound(v));
    out.push_back(values_[v]);
  }
  return out;
}

namespace {
EntityId ResolveTerm(const Term& t, const Binding& b) {
  if (t.is_entity()) return t.entity();
  return b.IsBound(t.var()) ? b.Get(t.var()) : kAnyEntity;
}
}  // namespace

Pattern Template::Bind(const Binding& b) const {
  return Pattern(ResolveTerm(source, b), ResolveTerm(relationship, b),
                 ResolveTerm(target, b));
}

bool Template::IsGroundUnder(const Binding& b) const {
  Pattern p = Bind(b);
  return p.BoundCount() == 3;
}

Fact Template::Substitute(const Binding& b) const {
  Pattern p = Bind(b);
  assert(p.BoundCount() == 3);
  return Fact(p.source, p.relationship, p.target);
}

bool Template::Unify(const Fact& f, Binding& b) const {
  // Record which variables this unification newly binds, so we can roll
  // back on failure (a variable may occur in several positions).
  VarId touched[3];
  int num_touched = 0;
  const EntityId fact_pos[3] = {f.source, f.relationship, f.target};
  for (int i = 0; i < 3; ++i) {
    const Term& term = at(i);
    if (term.is_entity()) {
      if (term.entity() != fact_pos[i]) {
        for (int j = 0; j < num_touched; ++j) b.Unset(touched[j]);
        return false;
      }
      continue;
    }
    VarId v = term.var();
    if (b.IsBound(v)) {
      if (b.Get(v) != fact_pos[i]) {
        for (int j = 0; j < num_touched; ++j) b.Unset(touched[j]);
        return false;
      }
    } else {
      b.Set(v, fact_pos[i]);
      touched[num_touched++] = v;
    }
  }
  return true;
}

void Template::CollectVars(std::vector<VarId>* out) const {
  for (int i = 0; i < 3; ++i) {
    const Term& term = at(i);
    if (term.is_variable() &&
        std::find(out->begin(), out->end(), term.var()) == out->end()) {
      out->push_back(term.var());
    }
  }
}

std::string Template::DebugString(
    const EntityTable& entities,
    const std::vector<std::string>& var_names) const {
  auto render = [&](const Term& t) -> std::string {
    if (t.is_entity()) {
      return entities.IsValid(t.entity()) ? entities.Name(t.entity())
                                          : "<invalid>";
    }
    if (t.var() < var_names.size()) return "?" + var_names[t.var()];
    return "?v" + std::to_string(t.var());
  };
  return "(" + render(source) + ", " + render(relationship) + ", " +
         render(target) + ")";
}

}  // namespace lsd
