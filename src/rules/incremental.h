// Incremental closure maintenance — the "update of data" problem the
// paper leaves open (Sec 6.2). Instead of recomputing the closure after
// every mutation, the derived fact set is maintained:
//
//   - OnAssert(f): a semi-naive continuation seeded with {f} derives
//     exactly the new consequences;
//   - OnRetract(f): delete-and-rederive (DRed). First over-approximate
//     the derived facts whose derivations may involve f (transitively),
//     delete them, then put back every deleted fact that still has a
//     derivation from the remaining closure.
//
// The maintained state is equivalent to a full recomputation after each
// mutation (tested property), at a fraction of the cost for point
// updates (experiment E10).
#ifndef LSD_RULES_INCREMENTAL_H_
#define LSD_RULES_INCREMENTAL_H_

#include <memory>
#include <vector>

#include "rules/closure_view.h"
#include "rules/math_provider.h"
#include "rules/rule.h"
#include "store/fact_store.h"
#include "store/triple_index.h"
#include "util/status.h"

namespace lsd {

struct IncrementalStats {
  size_t assert_derivations = 0;   // facts added by OnAssert calls
  size_t retract_deleted = 0;      // overestimate removed by OnRetract
  size_t retract_rederived = 0;    // facts put back by rederivation
  size_t rule_applications = 0;    // candidate head instantiations
};

class IncrementalClosure {
 public:
  // `store` and `math` are borrowed. `rules` is copied; disabled rules
  // are skipped. Call Initialize() before use.
  IncrementalClosure(const FactStore* store, const MathProvider* math,
                     std::vector<Rule> rules);

  IncrementalClosure(const IncrementalClosure&) = delete;
  IncrementalClosure& operator=(const IncrementalClosure&) = delete;

  // Full semi-naive computation of the initial closure.
  Status Initialize();

  // Maintains the closure after `f` was asserted into the store. The
  // fact must already be present in the base store.
  Status OnAssert(const Fact& f);

  // Maintains the closure after `f` was retracted from the store.
  Status OnRetract(const Fact& f);

  const ClosureView& view() const { return *view_; }
  const TripleIndex& derived() const { return derived_; }
  const IncrementalStats& stats() const { return stats_; }

 private:
  // Runs semi-naive rounds starting from `delta` (facts assumed already
  // inserted into base or derived), inserting new conclusions into
  // derived_. Stops at fixpoint.
  Status Propagate(TripleIndex delta);

  // True if `f` has at least one derivation whose body is satisfied by
  // the current view (or is asserted).
  StatusOr<bool> Derivable(const Fact& f) const;

  const FactStore* store_;
  const MathProvider* math_;
  std::vector<Rule> rules_;
  TripleIndex derived_;
  IndexSource derived_source_{&derived_};
  std::unique_ptr<ClosureView> view_;
  IncrementalStats stats_;
};

}  // namespace lsd

#endif  // LSD_RULES_INCREMENTAL_H_
