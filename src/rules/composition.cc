#include "rules/composition.h"

#include <unordered_set>

#include "rules/math_provider.h"

namespace lsd {

namespace {

bool IsMetaRelationship(EntityId r) {
  return r == kEntIsa || r == kEntIn || r == kEntSyn || r == kEntInv ||
         r == kEntContra || r == kEntClassRel;
}

}  // namespace

bool CompositionEngine::LinkAllowed(const Fact& f,
                                    const CompositionOptions& options) const {
  if (MathProvider::IsComparator(f.relationship)) return false;
  if (!options.include_meta_relationships &&
      IsMetaRelationship(f.relationship)) {
    return false;
  }
  // Never compose through previously minted composition entities: chains
  // are built from elementary facts, and limit(n) already controls depth.
  if (entities_->Kind(f.relationship) == EntityKind::kComposed) return false;
  return f.source != f.target;  // self-loops never extend a simple path
}

std::string CompositionEngine::ComposedName(
    const std::vector<Fact>& chain) const {
  std::string name;
  for (size_t i = 0; i < chain.size(); ++i) {
    if (i > 0) {
      name += ".";
      name += entities_->Name(chain[i].source);
      name += ".";
    }
    name += entities_->Name(chain[i].relationship);
  }
  return name;
}

StatusOr<std::vector<ComposedFact>> CompositionEngine::PathsBetween(
    const FactSource& view, EntityId source, EntityId target,
    const CompositionOptions& options) const {
  std::vector<ComposedFact> out;
  if (options.limit < 2 || source == target) return out;

  std::vector<Fact> chain;
  std::unordered_set<EntityId> visited{source};
  BudgetTicker ticker(options.budget);
  Status budget_status = Status::OK();

  // Depth-first enumeration of simple paths source -> target. The dfs
  // returns false (and unwinds) once the budget trips.
  std::function<bool(EntityId)> dfs = [&](EntityId at) -> bool {
    if (static_cast<int>(chain.size()) >= options.limit) return true;
    return view.ForEach(Pattern(at, kAnyEntity, kAnyEntity),
                        [&](const Fact& f) {
      if (!ticker.TickOk()) {
        budget_status = ticker.trip();
        return false;
      }
      if (!LinkAllowed(f, options)) return true;
      if (f.target == target) {
        if (chain.size() + 1 >= 2) {
          chain.push_back(f);
          ComposedFact cf;
          cf.chain = chain;
          cf.fact = Fact(source, entities_->InternComposed(
                                     ComposedName(chain)),
                         target);
          out.push_back(std::move(cf));
          chain.pop_back();
        }
        return true;
      }
      if (visited.count(f.target)) return true;
      chain.push_back(f);
      visited.insert(f.target);
      const bool keep_going = dfs(f.target);
      visited.erase(f.target);
      chain.pop_back();
      return keep_going;
    });
  };
  dfs(source);
  LSD_RETURN_IF_ERROR(budget_status);
  return out;
}

StatusOr<std::vector<ComposedFact>> CompositionEngine::MaterializeAll(
    const FactSource& view, const CompositionOptions& options) const {
  std::vector<ComposedFact> out;
  if (options.limit < 2) return out;

  // Collect the distinct sources present in the view, then run a simple-
  // path DFS from each, emitting every prefix of length >= 2.
  std::unordered_set<EntityId> sources;
  view.ForEach(Pattern(), [&](const Fact& f) {
    sources.insert(f.source);
    return true;
  });

  Status overflow = Status::OK();
  BudgetTicker ticker(options.budget);
  for (EntityId start : sources) {
    std::vector<Fact> chain;
    std::unordered_set<EntityId> visited{start};
    std::function<bool(EntityId)> dfs = [&](EntityId at) -> bool {
      if (static_cast<int>(chain.size()) >= options.limit) return true;
      return view.ForEach(
          Pattern(at, kAnyEntity, kAnyEntity), [&](const Fact& f) {
            if (!ticker.TickOk()) {
              overflow = ticker.trip();
              return false;
            }
            if (!LinkAllowed(f, options)) return true;
            if (visited.count(f.target)) return true;
            chain.push_back(f);
            visited.insert(f.target);
            bool keep_going = true;
            if (chain.size() >= 2) {
              if (out.size() >= options.max_results) {
                overflow = Status::OutOfRange(
                    "composition exceeded max_results (" +
                    std::to_string(options.max_results) + ")");
                keep_going = false;
              } else {
                ComposedFact cf;
                cf.chain = chain;
                cf.fact =
                    Fact(start,
                         entities_->InternComposed(ComposedName(chain)),
                         f.target);
                out.push_back(std::move(cf));
              }
            }
            if (keep_going) keep_going = dfs(f.target);
            visited.erase(f.target);
            chain.pop_back();
            return keep_going;
          });
    };
    if (!dfs(start)) break;
  }
  if (!overflow.ok()) return overflow;
  return out;
}

}  // namespace lsd
