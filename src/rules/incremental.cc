#include "rules/incremental.h"

#include "rules/matcher.h"

namespace lsd {

namespace {

bool IsVirtualAtom(const Template& t) {
  return t.relationship.is_entity() &&
         MathProvider::IsComparator(t.relationship.entity());
}

}  // namespace

IncrementalClosure::IncrementalClosure(const FactStore* store,
                                       const MathProvider* math,
                                       std::vector<Rule> rules)
    : store_(store), math_(math), rules_(std::move(rules)) {
  view_ = std::make_unique<ClosureView>(store_, &derived_source_, math_);
}

Status IncrementalClosure::Initialize() {
  derived_.Clear();
  // Seed the continuation with every asserted fact.
  TripleIndex delta;
  store_->base().ForEach(Pattern(), [&](const Fact& f) {
    delta.Insert(f);
    return true;
  });
  return Propagate(std::move(delta));
}

Status IncrementalClosure::Propagate(TripleIndex delta) {
  IndexSource delta_source(&delta);
  IndexSource derived_source(&derived_);
  UnionSource full({&store_->base_source(), &derived_source, math_});

  while (!delta.empty()) {
    TripleIndex next;
    for (const Rule& rule : rules_) {
      if (!rule.enabled) continue;
      auto filter = [this, &rule](VarId v, EntityId e) {
        switch (rule.var_constraints[v]) {
          case VarConstraint::kIndividualRelationship:
            return !store_->IsClassRelationship(e);
          case VarConstraint::kClassRelationship:
            return store_->IsClassRelationship(e);
          case VarConstraint::kNone:
            return true;
        }
        return true;
      };
      auto derive = [&](const Binding& binding) {
        for (const Template& head : rule.head) {
          ++stats_.rule_applications;
          Fact f = head.Substitute(binding);
          if (MathProvider::IsComparator(f.relationship) &&
              math_->Holds(f)) {
            continue;
          }
          if (store_->Contains(f) || derived_.Contains(f)) continue;
          next.Insert(f);
        }
        return true;
      };
      for (size_t i = 0; i < rule.body.size(); ++i) {
        if (IsVirtualAtom(rule.body[i])) continue;
        std::vector<AtomSpec> specs;
        specs.reserve(rule.body.size());
        for (size_t j = 0; j < rule.body.size(); ++j) {
          specs.push_back(AtomSpec{
              rule.body[j],
              j == i ? static_cast<const FactSource*>(&delta_source)
                     : &full});
        }
        Binding binding(rule.num_vars());
        // Delta-pinned closure joins stay on the dynamic bound-count
        // pick: bodies are 1-2 atoms, so a planner pass per delta fact
        // would cost more than it saves.
        LSD_RETURN_IF_ERROR(MatchConjunction(std::move(specs), binding,
                                             filter, derive,
                                             JoinOrder::kBoundCount));
      }
    }
    if (next.empty()) break;
    for (const Fact& f : next.Match(Pattern())) {
      derived_.Insert(f);
      ++stats_.assert_derivations;
    }
    delta = std::move(next);
  }
  return Status::OK();
}

Status IncrementalClosure::OnAssert(const Fact& f) {
  if (!store_->Contains(f)) {
    return Status::FailedPrecondition(
        "OnAssert: fact is not in the base store");
  }
  if (derived_.Contains(f)) {
    // Already a consequence; it merely moved layers (base and derived
    // are kept disjoint). All its consequences are present.
    derived_.Erase(f);
    return Status::OK();
  }
  TripleIndex delta;
  delta.Insert(f);
  return Propagate(std::move(delta));
}

StatusOr<bool> IncrementalClosure::Derivable(const Fact& f) const {
  if (store_->Contains(f)) return true;
  IndexSource derived_source(&derived_);
  UnionSource full({&store_->base_source(), &derived_source, math_});
  for (const Rule& rule : rules_) {
    if (!rule.enabled) continue;
    auto filter = [this, &rule](VarId v, EntityId e) {
      switch (rule.var_constraints[v]) {
        case VarConstraint::kIndividualRelationship:
          return !store_->IsClassRelationship(e);
        case VarConstraint::kClassRelationship:
          return store_->IsClassRelationship(e);
        case VarConstraint::kNone:
          return true;
      }
      return true;
    };
    for (const Template& head : rule.head) {
      Binding binding(rule.num_vars());
      if (!head.Unify(f, binding)) continue;
      bool found = false;
      Status s = MatchConjunction(
          full, rule.body, binding, filter,
          [&](const Binding&) {
            found = true;
            return false;  // one proof suffices
          },
          JoinOrder::kBoundCount);
      LSD_RETURN_IF_ERROR(s);
      if (found) return true;
    }
  }
  return false;
}

Status IncrementalClosure::OnRetract(const Fact& f) {
  if (store_->Contains(f)) {
    return Status::FailedPrecondition(
        "OnRetract: fact is still in the base store");
  }
  // Phase 1 (DRed overestimate): delete every derived fact reachable
  // through a rule application that used a deleted fact.
  TripleIndex deleted;
  deleted.Insert(f);
  TripleIndex delta_del;
  delta_del.Insert(f);

  IndexSource deleted_source(&deleted);
  IndexSource delta_source(&delta_del);
  IndexSource derived_source(&derived_);
  // Bodies are evaluated against the pre-deletion state: current layers
  // plus everything deleted so far.
  UnionSource pre_state(
      {&store_->base_source(), &derived_source, &deleted_source, math_});

  while (!delta_del.empty()) {
    TripleIndex next_del;
    for (const Rule& rule : rules_) {
      if (!rule.enabled) continue;
      auto filter = [this, &rule](VarId v, EntityId e) {
        switch (rule.var_constraints[v]) {
          case VarConstraint::kIndividualRelationship:
            return !store_->IsClassRelationship(e);
          case VarConstraint::kClassRelationship:
            return store_->IsClassRelationship(e);
          case VarConstraint::kNone:
            return true;
        }
        return true;
      };
      // Heads are buffered: applying the deletion while the matcher is
      // iterating derived_/deleted would invalidate its iterators.
      std::vector<Fact> buffered;
      auto overestimate = [&](const Binding& binding) {
        for (const Template& head : rule.head) {
          ++stats_.rule_applications;
          buffered.push_back(head.Substitute(binding));
        }
        return true;
      };
      for (size_t i = 0; i < rule.body.size(); ++i) {
        if (IsVirtualAtom(rule.body[i])) continue;
        std::vector<AtomSpec> specs;
        specs.reserve(rule.body.size());
        for (size_t j = 0; j < rule.body.size(); ++j) {
          specs.push_back(AtomSpec{
              rule.body[j],
              j == i ? static_cast<const FactSource*>(&delta_source)
                     : &pre_state});
        }
        Binding binding(rule.num_vars());
        buffered.clear();
        LSD_RETURN_IF_ERROR(MatchConjunction(std::move(specs), binding,
                                             filter, overestimate,
                                             JoinOrder::kBoundCount));
        for (const Fact& h : buffered) {
          if (!derived_.Contains(h)) continue;
          derived_.Erase(h);
          deleted.Insert(h);
          next_del.Insert(h);
          ++stats_.retract_deleted;
        }
      }
    }
    delta_del = std::move(next_del);
  }

  // Phase 2 (rederive): put back deleted facts that still have a
  // derivation from the surviving closure, to fixpoint. The retracted
  // base fact itself may be rederivable as a derived fact.
  std::vector<Fact> candidates = deleted.Match(Pattern());
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Fact& d : candidates) {
      if (derived_.Contains(d)) continue;
      LSD_ASSIGN_OR_RETURN(bool ok, Derivable(d));
      if (ok) {
        derived_.Insert(d);
        ++stats_.retract_rederived;
        changed = true;
      }
    }
  }
  return Status::OK();
}

}  // namespace lsd
