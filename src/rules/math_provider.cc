#include "rules/math_provider.h"

namespace lsd {

bool MathProvider::IsComparator(EntityId r) {
  return r >= kEntLess && r <= kEntGreaterEq;
}

bool MathProvider::Holds(const Fact& f) const {
  if (!IsComparator(f.relationship)) return false;
  const EntityId a = f.source;
  const EntityId b = f.target;
  auto va = entities_->NumericValue(a);
  auto vb = entities_->NumericValue(b);
  const bool numeric = va.has_value() && vb.has_value();
  const bool equal = (a == b) || (numeric && *va == *vb);
  switch (f.relationship) {
    case kEntEq:
      return equal;
    case kEntNeq:
      return !equal;
    case kEntLess:
      return numeric && *va < *vb;
    case kEntGreater:
      return numeric && *va > *vb;
    case kEntLessEq:
      return equal || (numeric && *va < *vb);
    case kEntGreaterEq:
      return equal || (numeric && *va > *vb);
    default:
      return false;
  }
}

bool MathProvider::Enumerable(const Pattern& p) const {
  if (!p.RelationshipBound()) return true;  // responds with nothing
  if (!IsComparator(p.relationship)) return true;
  if (p.SourceBound() && p.TargetBound()) return true;
  if (!p.SourceBound() && !p.TargetBound()) return false;
  // One operand bound. Equality enumerates the small twin set; the other
  // comparators sweep the entity table, which is finite — enumerable, but
  // expensive (EstimateMatches steers the join order away from it).
  return true;
}

bool MathProvider::ForEach(const Pattern& p, const FactVisitor& visit) const {
  if (!p.RelationshipBound() || !IsComparator(p.relationship)) {
    return true;  // virtual facts are not browsable
  }
  const EntityId r = p.relationship;
  if (p.SourceBound() && p.TargetBound()) {
    Fact f(p.source, r, p.target);
    if (Holds(f)) return visit(f);
    return true;
  }
  if (!p.SourceBound() && !p.TargetBound()) {
    return true;  // not enumerable; matcher never asks (Enumerable=false)
  }
  // One operand bound: sweep the interned universe. For '=' this yields
  // the entity itself plus numeric twins; for inequalities, every entity
  // standing in the relation.
  const size_t n = entities_->size();
  for (EntityId e = 0; e < n; ++e) {
    Fact f = p.SourceBound() ? Fact(p.source, r, e) : Fact(e, r, p.target);
    if (Holds(f)) {
      if (!visit(f)) return false;
    }
  }
  return true;
}

size_t MathProvider::EstimateMatches(const Pattern& p) const {
  if (!p.RelationshipBound() || !IsComparator(p.relationship)) return 0;
  if (p.SourceBound() && p.TargetBound()) return 1;
  if (p.relationship == kEntEq && (p.SourceBound() || p.TargetBound())) {
    return 2;
  }
  return entities_->size();
}

double MathProvider::EstimateMatchesBound(const Pattern& p,
                                          uint8_t bound_mask) const {
  // Masked positions will hold one (unknown) value at match time, so they
  // count as bound. An unknown relationship might be any comparator, so
  // the comparator-shaped estimates apply as an upper bound.
  const bool rel_known = p.RelationshipBound();
  if (!rel_known && !(bound_mask & kBindRelationship)) return 0.0;
  if (rel_known && !IsComparator(p.relationship)) return 0.0;
  const bool s = p.SourceBound() || (bound_mask & kBindSource);
  const bool t = p.TargetBound() || (bound_mask & kBindTarget);
  if (s && t) return 1.0;
  if (rel_known && p.relationship == kEntEq && (s || t)) return 2.0;
  return static_cast<double>(entities_->size());
}

bool MathProvider::Contradictory(EntityId r1, EntityId r2) {
  if (r1 > r2) std::swap(r1, r2);
  return (r1 == kEntLess && r2 == kEntGreater) ||
         (r1 == kEntLess && r2 == kEntEq) ||
         (r1 == kEntGreater && r2 == kEntEq) ||
         (r1 == kEntEq && r2 == kEntNeq);
}

}  // namespace lsd
