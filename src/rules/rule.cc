#include "rules/rule.h"

#include <algorithm>

#include "store/entity_table.h"

namespace lsd {

std::string Rule::DebugString(const EntityTable& entities) const {
  std::string out;
  for (size_t i = 0; i < body.size(); ++i) {
    if (i > 0) out += ", ";
    out += body[i].DebugString(entities, var_names);
  }
  out += " => ";
  for (size_t i = 0; i < head.size(); ++i) {
    if (i > 0) out += ", ";
    out += head[i].DebugString(entities, var_names);
  }
  return out;
}

Status Rule::Validate() const {
  if (body.empty()) {
    return Status::InvalidArgument("rule '" + name + "' has empty body");
  }
  if (head.empty()) {
    return Status::InvalidArgument("rule '" + name + "' has empty head");
  }
  if (var_constraints.size() != var_names.size()) {
    return Status::Internal("rule '" + name +
                            "' constraint table size mismatch");
  }
  std::vector<VarId> body_vars;
  for (const Template& t : body) t.CollectVars(&body_vars);
  std::vector<VarId> head_vars;
  for (const Template& t : head) t.CollectVars(&head_vars);
  for (VarId v : body_vars) {
    if (v >= var_names.size()) {
      return Status::Internal("rule '" + name + "' variable out of range");
    }
  }
  for (VarId v : head_vars) {
    if (v >= var_names.size()) {
      return Status::Internal("rule '" + name + "' variable out of range");
    }
    if (std::find(body_vars.begin(), body_vars.end(), v) ==
        body_vars.end()) {
      return Status::InvalidArgument(
          "rule '" + name + "' is unsafe: head variable ?" + var_names[v] +
          " does not appear in the body");
    }
  }
  return Status::OK();
}

RuleBuilder::RuleBuilder(std::string name) { rule_.name = std::move(name); }

Term RuleBuilder::Var(std::string_view name, VarConstraint constraint) {
  for (size_t i = 0; i < rule_.var_names.size(); ++i) {
    if (rule_.var_names[i] == name) {
      if (constraint != VarConstraint::kNone) {
        rule_.var_constraints[i] = constraint;
      }
      return Term::Var(static_cast<VarId>(i));
    }
  }
  rule_.var_names.emplace_back(name);
  rule_.var_constraints.push_back(constraint);
  return Term::Var(static_cast<VarId>(rule_.var_names.size() - 1));
}

RuleBuilder& RuleBuilder::Body(Term s, Term r, Term t) {
  rule_.body.emplace_back(s, r, t);
  return *this;
}

RuleBuilder& RuleBuilder::Head(Term s, Term r, Term t) {
  rule_.head.emplace_back(s, r, t);
  return *this;
}

RuleBuilder& RuleBuilder::SetKind(RuleKind kind) {
  rule_.kind = kind;
  return *this;
}

Rule RuleBuilder::Build() && { return std::move(rule_); }

}  // namespace lsd
