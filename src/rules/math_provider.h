// Virtual mathematical relations (Sec 3.6).
//
// The paper assumes the database "includes all relevant mathematical
// relationships" — (25000, >, 20000), (E1, =, E2) / (E1, /=, E2) for all
// entity pairs — while noting they need not be stored. MathProvider is a
// FactSource that answers these facts on demand:
//
//   =   true iff same entity, or both numeric with equal value
//       (so $25000 = 25000);
//   /=  the complement of =;
//   <,> defined for numeric entities, exactly one holds for each
//       distinct numeric pair;
//   <=, >= derived (the paper: "defined through simple inference rules").
//
// Patterns with an unbound relationship produce nothing: mathematical
// facts are not browsable, matching the paper's remark that they are not
// "ordinary facts". Patterns whose operands are too unbound to enumerate
// finitely report Enumerable() == false and the matcher defers or rejects
// them.
#ifndef LSD_RULES_MATH_PROVIDER_H_
#define LSD_RULES_MATH_PROVIDER_H_

#include "store/entity_table.h"
#include "store/fact_store.h"

namespace lsd {

class MathProvider final : public FactSource {
 public:
  explicit MathProvider(const EntityTable* entities)
      : entities_(entities) {}

  // True for the six comparator relationship ids.
  static bool IsComparator(EntityId r);

  // Truth of a fully ground comparison; false if r is not a comparator.
  bool Holds(const Fact& f) const;

  bool Contains(const Fact& f) const override { return Holds(f); }
  bool ForEach(const Pattern& p, const FactVisitor& visit) const override;
  bool Enumerable(const Pattern& p) const override;
  size_t EstimateMatches(const Pattern& p) const override;
  double EstimateMatchesBound(const Pattern& p,
                              uint8_t bound_mask) const override;

  // Merge-join hook: a comparator's value set is numeric-ordered, not
  // id-ordered, so it cannot feed an id-sorted intersection; every other
  // pattern produces no mathematical facts at all, hence an empty run.
  bool SortedFreeValues(const Pattern& p, std::vector<EntityId>* scratch,
                        SortedIdSpan* out) const override {
    (void)scratch;
    if (p.RelationshipBound() && IsComparator(p.relationship)) return false;
    *out = SortedIdSpan{};
    return true;
  }
  bool CanSortFreeValues(const Pattern& p) const override {
    return !(p.RelationshipBound() && IsComparator(p.relationship));
  }

  // True when facts (a, r1, b) and (a, r2, b) can never both hold — the
  // built-in contradiction pairs among comparators (Sec 3.5: "(<, ⊥, >)").
  static bool Contradictory(EntityId r1, EntityId r2);

 private:
  const EntityTable* entities_;
};

}  // namespace lsd

#endif  // LSD_RULES_MATH_PROVIDER_H_
