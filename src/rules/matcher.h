// Conjunction matching: enumerate all variable bindings that satisfy a
// set of templates against fact sources. This is the join kernel shared
// by the rule engine (which pins one atom to the semi-naive delta) and
// the query evaluator (which matches conjunctions of query atoms).
//
// Atom ordering is a policy (JoinOrder). The default, kEstimatedCost, is
// a static cost-based plan computed once per conjunction before the
// search starts: atoms are ordered greedily by binding-pattern-aware
// cardinality estimates (FactSource::EstimateMatchesBound), with a strict
// connectivity preference — an atom sharing no variable with the join
// chain built so far is never scheduled ahead of a connected one, no
// matter how bound it looks, because an unconnected atom is a cross
// product. Plans are pure orderings, so they can be cached and reused
// across queries with the same shape (PlannerCache); the probing search
// re-binds constants across a wave's sibling queries this way.
//
// Whatever the policy decided, execution keeps a runtime safety check:
// atoms over virtual relations that cannot be enumerated under the
// current binding (e.g. (?X, <, ?Y) with both operands unbound) are
// deferred; if only such atoms remain, matching fails with an "unsafe"
// error rather than attempting an infinite enumeration. Enumerability
// under a binding depends only on which variables are bound — never on
// their values — so every policy defers, succeeds, and errors on exactly
// the same conjunctions; order changes performance, not results.
//
// Thread safety: MatchConjunction keeps all search state (the done set,
// the binding, the stopped flag) on the caller's stack, so concurrent
// calls with distinct Binding instances are safe as long as every
// FactSource involved is only read during the match. The parallel rule
// engine and the parallel probing waves rely on this: all stored indexes
// are immutable for the duration of a round, and MathProvider is
// stateless over a const EntityTable. PlannerCache is internally
// synchronized and may be shared across matching threads.
#ifndef LSD_RULES_MATCHER_H_
#define LSD_RULES_MATCHER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "rules/template.h"
#include "store/fact_store.h"
#include "util/budget.h"
#include "util/status.h"

namespace lsd {

// One conjunct: a template plus the source it must match against.
struct AtomSpec {
  Template tmpl;
  const FactSource* source = nullptr;
};

// Called for each complete extension of the initial binding. Return
// false to stop enumeration early.
using BindingVisitor = std::function<bool(const Binding&)>;

// Optional per-variable admissibility check, e.g. "this variable must be
// bound to an individual relationship" (Sec 2.2). Called whenever a
// variable becomes bound; returning false rejects the candidate.
using VarFilter = std::function<bool(VarId, EntityId)>;

// How the matcher orders conjuncts (ablation experiment E11):
//   kBoundCount     dynamic greedy on number of bound positions at each
//                   recursion node (the former default; kept as an
//                   ablation — it has no defense against picking a
//                   highly-bound but unconnected atom, i.e. a cross
//                   product);
//   kEstimatedCost  static cost-based, connectivity-aware plan computed
//                   once per conjunction from EstimateMatchesBound
//                   statistics (the default);
//   kFixed          left-to-right as written, deferring only atoms that
//                   are not yet enumerable (the "no optimizer" baseline).
enum class JoinOrder : uint8_t {
  kBoundCount = 0,
  kEstimatedCost,
  kFixed,
};

// A static join order for one conjunction: rank[i] is the scheduling
// priority of atoms[i] (0 = first). Execution follows ranks but still
// defers atoms that are not enumerable under the actual binding, so a
// plan is advice, never a soundness obligation.
struct ConjunctionPlan {
  std::vector<uint32_t> rank;
};

// Computes a cost-based, connectivity-aware plan for `atoms` under the
// initial `binding`. Greedy: at each step, among the atoms connected to
// the variables bound so far (falling back to all remaining atoms when
// none is connected, e.g. for the first pick), choose the one with the
// lowest EstimateMatchesBound — the pattern carries the constants known
// at plan time, the mask marks positions earlier steps will have pinned.
// `estimate` lets callers memoize the underlying source probes; pass
// nullptr to query sources directly.
using EstimateFn =
    std::function<double(const FactSource*, const Pattern&, uint8_t)>;
ConjunctionPlan PlanConjunction(const std::vector<AtomSpec>& atoms,
                                const Binding& binding,
                                const EstimateFn* estimate = nullptr);

// Shape-keyed plan cache. Two conjunctions share a plan iff they have the
// same atom sources, the same variable structure, and the same constants
// in planner-significant positions: relationship constants and built-in
// entities (ANY/NONE trigger rewrites, comparators hit the virtual math
// layer) are part of the key, while regular source/target constants are
// abstracted away — under the uniformity assumption they all have the
// same expected cardinality, which is exactly what lets a retraction
// wave's sibling queries (same template, different constants) reuse one
// plan. Also memoizes the per-(source, pattern, mask) estimate probes
// that planning performs. Valid for one closure snapshot: the owner must
// Clear() (or discard) the cache when the underlying store or rules
// change. Thread-safe.
class PlannerCache {
 public:
  PlannerCache() = default;
  PlannerCache(const PlannerCache&) = delete;
  PlannerCache& operator=(const PlannerCache&) = delete;

  // Returns the plan for the conjunction's shape, computing and caching
  // it on first sight. The pointer stays valid until Clear().
  const ConjunctionPlan* GetOrPlan(const std::vector<AtomSpec>& atoms,
                                   const Binding& binding);

  void Clear();
  size_t plan_count() const;

  // Cumulative GetOrPlan outcomes across the cache's lifetime (Clear()
  // does not reset them) — the shell's `stats` and the server's STATS
  // verb report the hit rate.
  uint64_t hits() const;
  uint64_t misses() const;

 private:
  mutable std::mutex mu_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  std::unordered_map<std::string, std::unique_ptr<ConjunctionPlan>> plans_;
  struct EstimateKey {
    const FactSource* source;
    Pattern pattern;
    uint8_t mask;
    friend bool operator==(const EstimateKey&, const EstimateKey&) = default;
  };
  struct EstimateKeyHash {
    size_t operator()(const EstimateKey& k) const;
  };
  std::unordered_map<EstimateKey, double, EstimateKeyHash> estimates_;
};

// Enumerates bindings extending `binding` (modified during the search,
// restored on return) that satisfy all atoms. Visits each satisfying
// binding exactly once per derivation path (callers needing set semantics
// deduplicate on projected variables). `atoms` is borrowed for the call
// only, so hot loops can prebuild the spec list and reuse it.
//
// Under kEstimatedCost a plan is computed (or fetched from `planner`
// when one is supplied) before the search; other policies ignore
// `planner`.
//
// `merge_join` enables the order-exploiting execution path: when two
// pending atoms each have exactly one free position holding the same
// variable and both sources stream that position's values in ascending
// order (FactSource::SortedFreeValues), the runs are intersected by
// galloping instead of enumerating one side and probing per candidate.
// An execution strategy, not an ordering policy: the visited binding set
// is identical either way, under every JoinOrder.
//
// `budget` (optional) is ticked once per enumerated fact and per
// merge-join intersection step through a stride-amortized BudgetTicker;
// a tripped budget unwinds the whole search with its typed error.
Status MatchConjunction(const std::vector<AtomSpec>& atoms, Binding& binding,
                        const VarFilter& var_filter,
                        const BindingVisitor& visit,
                        JoinOrder order = JoinOrder::kEstimatedCost,
                        PlannerCache* planner = nullptr,
                        bool merge_join = true,
                        const QueryBudget* budget = nullptr);

// Convenience overload: all atoms against one source.
Status MatchConjunction(const FactSource& source,
                        const std::vector<Template>& atoms,
                        Binding& binding, const VarFilter& var_filter,
                        const BindingVisitor& visit,
                        JoinOrder order = JoinOrder::kEstimatedCost,
                        PlannerCache* planner = nullptr,
                        bool merge_join = true,
                        const QueryBudget* budget = nullptr);

}  // namespace lsd

#endif  // LSD_RULES_MATCHER_H_
