// Conjunction matching: enumerate all variable bindings that satisfy a
// set of templates against fact sources. This is the join kernel shared
// by the rule engine (which pins one atom to the semi-naive delta) and
// the query evaluator (which matches conjunctions of query atoms).
//
// Atom ordering is greedy: at each step the most-bound enumerable atom is
// matched next. Atoms over virtual relations that cannot be enumerated
// under the current binding (e.g. (?X, <, ?Y) with both operands unbound)
// are deferred; if only such atoms remain, matching fails with an
// "unsafe" error rather than attempting an infinite enumeration.
//
// Thread safety: MatchConjunction keeps all search state (the done set,
// the binding, the stopped flag) on the caller's stack, so concurrent
// calls with distinct Binding instances are safe as long as every
// FactSource involved is only read during the match. The parallel rule
// engine relies on this: all stored indexes are immutable for the
// duration of a round, and MathProvider is stateless over a const
// EntityTable.
#ifndef LSD_RULES_MATCHER_H_
#define LSD_RULES_MATCHER_H_

#include <functional>
#include <vector>

#include "rules/template.h"
#include "store/fact_store.h"
#include "util/status.h"

namespace lsd {

// One conjunct: a template plus the source it must match against.
struct AtomSpec {
  Template tmpl;
  const FactSource* source = nullptr;
};

// Called for each complete extension of the initial binding. Return
// false to stop enumeration early.
using BindingVisitor = std::function<bool(const Binding&)>;

// Optional per-variable admissibility check, e.g. "this variable must be
// bound to an individual relationship" (Sec 2.2). Called whenever a
// variable becomes bound; returning false rejects the candidate.
using VarFilter = std::function<bool(VarId, EntityId)>;

// How the matcher orders conjuncts (ablation experiment E11):
//   kBoundCount     greedy on number of bound positions (default: cheap
//                   to decide, usually close to optimal);
//   kEstimatedCost  greedy on the source's match-count estimate under
//                   the current binding (better orders, estimation cost
//                   per step);
//   kFixed          left-to-right as written, deferring only atoms that
//                   are not yet enumerable (the "no optimizer" baseline).
enum class JoinOrder : uint8_t {
  kBoundCount = 0,
  kEstimatedCost,
  kFixed,
};

// Enumerates bindings extending `binding` (modified during the search,
// restored on return) that satisfy all atoms. Visits each satisfying
// binding exactly once per derivation path (callers needing set semantics
// deduplicate on projected variables). `atoms` is borrowed for the call
// only, so hot loops can prebuild the spec list and reuse it.
Status MatchConjunction(const std::vector<AtomSpec>& atoms, Binding& binding,
                        const VarFilter& var_filter,
                        const BindingVisitor& visit,
                        JoinOrder order = JoinOrder::kBoundCount);

// Convenience overload: all atoms against one source.
Status MatchConjunction(const FactSource& source,
                        const std::vector<Template>& atoms,
                        Binding& binding, const VarFilter& var_filter,
                        const BindingVisitor& visit,
                        JoinOrder order = JoinOrder::kBoundCount);

}  // namespace lsd

#endif  // LSD_RULES_MATCHER_H_
