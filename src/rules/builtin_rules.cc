#include "rules/builtin_rules.h"

#include "store/entity.h"

namespace lsd {

namespace {

Term Ent(EntityId e) { return Term::Entity(e); }

// (s, r, t), (s', ISA, s) => (s', r, t)        for r in R_i
Rule GenSource() {
  RuleBuilder b(kRuleGenSource);
  Term s = b.Var("S"), t = b.Var("T"), s2 = b.Var("S2");
  Term r = b.Var("R", VarConstraint::kIndividualRelationship);
  b.Body(s, r, t).Body(s2, Ent(kEntIsa), s).Head(s2, r, t);
  return std::move(b).Build();
}

// (s, r, t), (r, ISA, r') => (s, r', t)        for r in R_i
Rule GenRelationship() {
  RuleBuilder b(kRuleGenRelationship);
  Term s = b.Var("S"), t = b.Var("T"), r2 = b.Var("R2");
  Term r = b.Var("R", VarConstraint::kIndividualRelationship);
  b.Body(s, r, t).Body(r, Ent(kEntIsa), r2).Head(s, r2, t);
  return std::move(b).Build();
}

// (s, r, t), (t, ISA, t') => (s, r, t')        for r in R_i
Rule GenTarget() {
  RuleBuilder b(kRuleGenTarget);
  Term s = b.Var("S"), t = b.Var("T"), t2 = b.Var("T2");
  Term r = b.Var("R", VarConstraint::kIndividualRelationship);
  b.Body(s, r, t).Body(t, Ent(kEntIsa), t2).Head(s, r, t2);
  return std::move(b).Build();
}

// (s, r, t), (s', IN, s) => (s', r, t)         for r in R_i
Rule MemSource() {
  RuleBuilder b(kRuleMemSource);
  Term s = b.Var("S"), t = b.Var("T"), s2 = b.Var("S2");
  Term r = b.Var("R", VarConstraint::kIndividualRelationship);
  b.Body(s, r, t).Body(s2, Ent(kEntIn), s).Head(s2, r, t);
  return std::move(b).Build();
}

// (s, r, t), (t, IN, t') => (s, r, t')         for r in R_i
Rule MemTarget() {
  RuleBuilder b(kRuleMemTarget);
  Term s = b.Var("S"), t = b.Var("T"), t2 = b.Var("T2");
  Term r = b.Var("R", VarConstraint::kIndividualRelationship);
  b.Body(s, r, t).Body(t, Ent(kEntIn), t2).Head(s, r, t2);
  return std::move(b).Build();
}

// (x, IN, y), (y, ISA, z) => (x, IN, z)
// "an instance of an entity is an instance of every more general entity"
Rule MemUp() {
  RuleBuilder b(kRuleMemUp);
  Term x = b.Var("X"), y = b.Var("Y"), z = b.Var("Z");
  b.Body(x, Ent(kEntIn), y).Body(y, Ent(kEntIsa), z).Head(x, Ent(kEntIn), z);
  return std::move(b).Build();
}

// (s, SYN, t) => (s, ISA, t), (t, ISA, s)   — the definition of synonymy
Rule SynIsa() {
  RuleBuilder b(kRuleSynIsa);
  Term s = b.Var("S"), t = b.Var("T");
  b.Body(s, Ent(kEntSyn), t)
      .Head(s, Ent(kEntIsa), t)
      .Head(t, Ent(kEntIsa), s);
  return std::move(b).Build();
}

// (s, ISA, t), (t, ISA, s) => (s, SYN, t) — mutual generalization is
// synonymy; together with SynIsa this yields symmetry and transitivity.
Rule SynIntro() {
  RuleBuilder b(kRuleSynIntro);
  Term s = b.Var("S"), t = b.Var("T");
  b.Body(s, Ent(kEntIsa), t)
      .Body(t, Ent(kEntIsa), s)
      .Head(s, Ent(kEntSyn), t);
  return std::move(b).Build();
}

// Substitution (Sec 3.3: "r may be replaced with r' in every fact").
// Unlike the generalization rules these carry no R_i condition, so
// synonyms substitute into class-relationship facts too.
Rule SynSource() {
  RuleBuilder b(kRuleSynSource);
  Term s = b.Var("S"), r = b.Var("R"), t = b.Var("T"), s2 = b.Var("S2");
  b.Body(s, r, t).Body(s, Ent(kEntSyn), s2).Head(s2, r, t);
  return std::move(b).Build();
}

Rule SynRelationship() {
  RuleBuilder b(kRuleSynRelationship);
  Term s = b.Var("S"), r = b.Var("R"), t = b.Var("T"), r2 = b.Var("R2");
  b.Body(s, r, t).Body(r, Ent(kEntSyn), r2).Head(s, r2, t);
  return std::move(b).Build();
}

Rule SynTarget() {
  RuleBuilder b(kRuleSynTarget);
  Term s = b.Var("S"), r = b.Var("R"), t = b.Var("T"), t2 = b.Var("T2");
  b.Body(s, r, t).Body(t, Ent(kEntSyn), t2).Head(s, r, t2);
  return std::move(b).Build();
}

// (s, r, t), (r, INV, r') => (t, r', s)
Rule Inversion() {
  RuleBuilder b(kRuleInversion);
  Term s = b.Var("S"), r = b.Var("R"), t = b.Var("T"), r2 = b.Var("R2");
  b.Body(s, r, t).Body(r, Ent(kEntInv), r2).Head(t, r2, s);
  return std::move(b).Build();
}

}  // namespace

std::vector<Rule> StandardRules() {
  std::vector<Rule> rules;
  rules.push_back(GenSource());
  rules.push_back(GenRelationship());
  rules.push_back(GenTarget());
  rules.push_back(MemSource());
  rules.push_back(MemTarget());
  rules.push_back(MemUp());
  rules.push_back(SynIsa());
  rules.push_back(SynIntro());
  rules.push_back(SynSource());
  rules.push_back(SynRelationship());
  rules.push_back(SynTarget());
  rules.push_back(Inversion());
  return rules;
}

std::vector<Fact> StandardSeedFacts() {
  return {
      Fact(kEntInv, kEntInv, kEntInv),        // ↔ is its own inverse
      Fact(kEntContra, kEntInv, kEntContra),  // ⊥ is its own inverse
  };
}

}  // namespace lsd
