// Integrity checking (Sec 2.5, 3.5): a loosely structured database is a
// set of facts and rules whose closure is free of contradictions. Two
// facts (x, r, y) and (x, r', y) contradict when (r, CONTRA, r') is in
// the closure; a stored comparison fact that disagrees with the built-in
// arithmetic (e.g. a derived (-5, >, 0)) contradicts a virtual fact.
#ifndef LSD_RULES_CONTRADICTION_H_
#define LSD_RULES_CONTRADICTION_H_

#include <string>
#include <vector>

#include "rules/closure_view.h"
#include "store/fact.h"
#include "util/status.h"

namespace lsd {

struct IntegrityViolation {
  Fact fact;         // the offending stored fact
  Fact conflicting;  // the fact it contradicts (stored or virtual)
  std::string description;
};

// Scans the closure for contradictions. Detects:
//   - pairs (x, r, y), (x, r', y) with (r, CONTRA, r') in the closure
//     (each unordered pair reported once);
//   - stored comparator facts whose truth value is decidable and false
//     (false (a,=,b)//(a,/=,b) for any entities; false (a,<,b) etc. for
//     numeric operands).
std::vector<IntegrityViolation> FindViolations(const ClosureView& view);

// OK if the closure is contradiction-free, otherwise an
// IntegrityViolation status naming the first few conflicts.
Status CheckIntegrity(const ClosureView& view);

}  // namespace lsd

#endif  // LSD_RULES_CONTRADICTION_H_
