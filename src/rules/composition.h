// Inference by composition (Sec 3.7): when the target of one fact is the
// source of another, their composition is a fact relating the two ends
// via a minted relationship entity that spells out the path, e.g.
//
//   (TOM, ENROLLED-IN, CS100) ∘ (CS100, TAUGHT-BY, HARRY)
//     = (TOM, ENROLLED-IN.CS100.TAUGHT-BY, HARRY)
//
// The paper avoids cyclic compositions by requiring the chain's two ends
// to differ. That alone does not bound chains on graphs with cycles of
// length ≥ 3 (A→B→C→A→B… has distinct ends at every prefix), so we
// strengthen it to the natural condition the paper's "strolling" image
// suggests: composition chains are simple paths (no repeated entity).
// DESIGN.md documents this deviation.
//
// The limit(n) operator (Sec 6.1) bounds the number of facts in a chain:
// n = 1 disables composition altogether (a chain of one fact is just the
// fact), n = 2 allows single compositions whose results cannot compose
// further, and so on.
#ifndef LSD_RULES_COMPOSITION_H_
#define LSD_RULES_COMPOSITION_H_

#include <string>
#include <vector>

#include "store/entity_table.h"
#include "store/fact_store.h"
#include "util/budget.h"
#include "util/status.h"

namespace lsd {

struct ComposedFact {
  Fact fact;                // (chain start, minted relationship, chain end)
  std::vector<Fact> chain;  // the participating facts, in order (>= 2)
};

struct CompositionOptions {
  // Maximum number of facts per chain (the limit(n) operator). Chains of
  // length 1 are ordinary facts and never emitted here.
  int limit = 3;

  // Composing along the built-in meta relationships (ISA, IN, SYN, INV,
  // CONTRA) produces technically valid but semantically empty paths like
  // X.ISA.Y.ISA — excluded by default.
  bool include_meta_relationships = false;

  // Safety valve for MaterializeAll.
  size_t max_results = 1'000'000;

  // Optional cooperative cancellation / deadline token. Borrowed; ticked
  // per scanned fact during the simple-path DFS; a tripped budget aborts
  // enumeration with its typed error.
  const QueryBudget* budget = nullptr;
};

class CompositionEngine {
 public:
  // `entities` is mutated: composed relationship entities are interned.
  explicit CompositionEngine(EntityTable* entities) : entities_(entities) {}

  // All simple-path compositions from `source` to `target` over the
  // facts of `view`, with 2..limit links. The view should be the closure
  // so compositions see inferred facts too.
  StatusOr<std::vector<ComposedFact>> PathsBetween(
      const FactSource& view, EntityId source, EntityId target,
      const CompositionOptions& options) const;

  // Every composition fact derivable within the options' bounds. Errors
  // with OutOfRange if max_results is exceeded.
  StatusOr<std::vector<ComposedFact>> MaterializeAll(
      const FactSource& view, const CompositionOptions& options) const;

  // "ENROLLED-IN.CS100.TAUGHT-BY" for a chain of facts.
  std::string ComposedName(const std::vector<Fact>& chain) const;

 private:
  bool LinkAllowed(const Fact& f, const CompositionOptions& options) const;

  EntityTable* entities_;
};

}  // namespace lsd

#endif  // LSD_RULES_COMPOSITION_H_
