#include "rules/matcher.h"

#include <cassert>

namespace lsd {

namespace {

// Recursive backtracking join. `done` marks atoms already matched.
Status MatchRec(const std::vector<AtomSpec>& atoms, std::vector<bool>& done,
                size_t remaining, Binding& binding,
                const VarFilter& var_filter, const BindingVisitor& visit,
                JoinOrder order, bool& stopped) {
  if (remaining == 0) {
    if (!visit(binding)) stopped = true;
    return Status::OK();
  }

  // Pick the next atom per the ordering policy. Atoms that are not
  // enumerable under the current binding (virtual relations with
  // unbound operands) are always deferred.
  int best = -1;
  double best_score = 0;
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (done[i]) continue;
    Pattern p = atoms[i].tmpl.Bind(binding);
    const bool enumerable =
        p.BoundCount() == 3 || atoms[i].source->Enumerable(p);
    if (!enumerable) continue;
    double score = 0;
    switch (order) {
      case JoinOrder::kBoundCount:
        // Maximize bound positions; ground atoms win outright.
        score = -static_cast<double>(p.BoundCount());
        break;
      case JoinOrder::kEstimatedCost:
        score = static_cast<double>(
            atoms[i].source->EstimateMatches(p));
        break;
      case JoinOrder::kFixed:
        score = static_cast<double>(i);
        break;
    }
    if (best < 0 || score < best_score) {
      best_score = score;
      best = static_cast<int>(i);
    }
  }
  if (best < 0) {
    return Status::InvalidArgument(
        "unsafe conjunction: remaining atoms have unbound operands of a "
        "non-enumerable (virtual) relation");
  }

  const AtomSpec& atom = atoms[best];
  done[best] = true;

  // Variables this atom can newly bind; used both for the filter hook and
  // for rollback. A template mentions at most 3 variables, so fixed
  // arrays keep this recursion allocation-free.
  VarId atom_vars[3];
  const size_t num_atom_vars = atom.tmpl.CollectVars(atom_vars);

  Status status = Status::OK();
  atom.source->ForEach(atom.tmpl.Bind(binding), [&](const Fact& f) {
    // Remember which vars were unbound before unification.
    VarId newly_bound[3];
    size_t num_newly_bound = 0;
    for (size_t i = 0; i < num_atom_vars; ++i) {
      if (!binding.IsBound(atom_vars[i])) {
        newly_bound[num_newly_bound++] = atom_vars[i];
      }
    }
    if (!atom.tmpl.Unify(f, binding)) return true;  // shared-var clash
    bool admissible = true;
    if (var_filter) {
      for (size_t i = 0; i < num_newly_bound; ++i) {
        const VarId v = newly_bound[i];
        if (binding.IsBound(v) && !var_filter(v, binding.Get(v))) {
          admissible = false;
          break;
        }
      }
    }
    if (admissible) {
      status = MatchRec(atoms, done, remaining - 1, binding, var_filter,
                        visit, order, stopped);
    }
    for (size_t i = 0; i < num_newly_bound; ++i) {
      binding.Unset(newly_bound[i]);
    }
    return status.ok() && !stopped;
  });

  done[best] = false;
  return status;
}

}  // namespace

Status MatchConjunction(const std::vector<AtomSpec>& atoms, Binding& binding,
                        const VarFilter& var_filter,
                        const BindingVisitor& visit, JoinOrder order) {
  for (const AtomSpec& a : atoms) {
    assert(a.source != nullptr);
    (void)a;
  }
  std::vector<bool> done(atoms.size(), false);
  bool stopped = false;
  return MatchRec(atoms, done, atoms.size(), binding, var_filter, visit,
                  order, stopped);
}

Status MatchConjunction(const FactSource& source,
                        const std::vector<Template>& atoms,
                        Binding& binding, const VarFilter& var_filter,
                        const BindingVisitor& visit, JoinOrder order) {
  std::vector<AtomSpec> specs;
  specs.reserve(atoms.size());
  for (const Template& t : atoms) specs.push_back(AtomSpec{t, &source});
  return MatchConjunction(std::move(specs), binding, var_filter, visit,
                          order);
}

}  // namespace lsd
