#include "rules/matcher.h"

#include <algorithm>
#include <cassert>

#include "rules/math_provider.h"

namespace lsd {

namespace {

// `merge_partners` is null when merge joins are disabled; otherwise
// merge_partners[i] is a bitmask of the atoms that could ever partner
// atoms[i] in one (see ComputeMergePartners). `pending` mirrors `done`
// as a bitmask (bit i set = atoms[i] not yet matched) so the merge-join
// check can decline in one AND; atoms beyond index 63 are simply not
// tracked, costing at worst a missed merge join in 65-atom
// conjunctions, never a wrong result.
Status MatchRec(const std::vector<AtomSpec>& atoms, std::vector<bool>& done,
                size_t remaining, Binding& binding,
                const VarFilter& var_filter, const BindingVisitor& visit,
                JoinOrder order, const uint32_t* rank,
                const uint64_t* merge_partners, uint64_t pending,
                bool& stopped, BudgetTicker& ticker);

uint64_t ClearBit(uint64_t mask, size_t i) {
  return i < 64 ? (mask & ~(uint64_t{1} << i)) : mask;
}

// Whether a template could ever feed the merge-join kernel. Constant
// positions survive every Bind unchanged, so a constant ISA, comparator,
// or ANY relationship, a NONE source, or an ANY target — the shapes
// every SortedFreeValues implementation declines — disqualify the atom
// for the whole conjunction.
bool StaticallyMergeEligible(const Template& t) {
  const Term& r = t.relationship;
  if (r.is_entity() &&
      (r.entity() == kEntIsa || r.entity() == kEntTop ||
       MathProvider::IsComparator(r.entity()))) {
    return false;
  }
  if (t.source.is_entity() && t.source.entity() == kEntBottom) return false;
  if (t.target.is_entity() && t.target.entity() == kEntTop) return false;
  return true;
}

// Per-atom bitmask of potential merge-join partners, computed once per
// conjunction: atom j can partner atom i only if both are statically
// eligible and their templates share a variable (the shared single free
// variable the kernel intersects on). The per-node check then collapses
// to one load — crucial because a pathological plan revisits the
// merge-join question once per cross-product row. Conjunctions wider
// than 64 atoms fall back to "any eligible atom may partner"; the
// dynamic CanSortFreeValues probes stay authoritative regardless.
std::vector<uint64_t> ComputeMergePartners(
    const std::vector<AtomSpec>& atoms) {
  const size_t n = atoms.size();
  std::vector<uint64_t> partners(n, 0);
  std::vector<uint8_t> elig(n);
  for (size_t i = 0; i < n; ++i) {
    elig[i] = StaticallyMergeEligible(atoms[i].tmpl) ? 1 : 0;
  }
  if (n > 64) {
    for (size_t i = 0; i < n; ++i) {
      if (elig[i]) partners[i] = ~uint64_t{0};
    }
    return partners;
  }
  VarId vi[3];
  VarId vj[3];
  for (size_t i = 0; i < n; ++i) {
    if (!elig[i]) continue;
    const size_t ni = atoms[i].tmpl.CollectVars(vi);
    for (size_t j = i + 1; j < n; ++j) {
      if (!elig[j]) continue;
      const size_t nj = atoms[j].tmpl.CollectVars(vj);
      bool shared = false;
      for (size_t a = 0; a < ni && !shared; ++a) {
        for (size_t b = 0; b < nj; ++b) {
          if (vi[a] == vj[b]) {
            shared = true;
            break;
          }
        }
      }
      if (shared) {
        partners[i] |= uint64_t{1} << j;
        partners[j] |= uint64_t{1} << i;
      }
    }
  }
  return partners;
}

// The position of the single wildcard of a two-bound pattern.
int SingleFreePos(const Pattern& p) {
  if (!p.SourceBound()) return 0;
  if (!p.RelationshipBound()) return 1;
  return 2;
}

// First element of [first, last) not less than `key`, located by
// exponential probing from the front. The probe cost is logarithmic in
// the distance advanced, so intersecting two runs costs
// O(min(|a|,|b|) * log(max/min)) — the small side drives the work.
const EntityId* GallopLower(const EntityId* first, const EntityId* last,
                            EntityId key) {
  const size_t n = static_cast<size_t>(last - first);
  size_t step = 1;
  while (step < n && first[step] < key) step <<= 1;
  return std::lower_bound(first + (step >> 1),
                          first + std::min(step, n), key);
}

// Order-exploiting merge join. When the chosen atom has exactly one free
// position, another pending atom's only free position holds the same
// variable, and both sources stream that position's values in ascending
// order (FactSource::SortedFreeValues), the two runs are intersected by
// galloping instead of enumerating one side and probing the other per
// candidate. Sound: with the other two positions bound, each run value
// corresponds to exactly one fact of its source, so visiting each common
// value once is exactly what nested-loop enumeration would do, minus the
// misses. Returns true if the join ran (`status`/`stopped` updated);
// false to fall back to nested-loop enumeration.
bool TryMergeJoin(const std::vector<AtomSpec>& atoms, std::vector<bool>& done,
                  size_t remaining, size_t best, const Pattern& p_best,
                  Binding& binding, const VarFilter& var_filter,
                  const BindingVisitor& visit, JoinOrder order,
                  const uint32_t* rank, const uint64_t* merge_partners,
                  uint64_t pending, bool& stopped, Status& status,
                  BudgetTicker& ticker) {
  // One AND decides most nodes: no statically-possible partner of the
  // chosen atom is still pending.
  const uint64_t mask = merge_partners[best] & ClearBit(pending, best);
  if (mask == 0) return false;
  if (p_best.BoundCount() != 2) return false;
  const Term& free_term = atoms[best].tmpl.at(SingleFreePos(p_best));
  if (!free_term.is_variable()) return false;
  const VarId v = free_term.var();
  // Declining must cost no allocations and no estimates: a pathological
  // plan revisits this node once per cross-product row. Hence the static
  // partner masks, the allocation-free CanSortFreeValues probes, and
  // materializing the chosen atom's run only once a partner has passed
  // every cheap check.
  std::vector<EntityId> scratch_a;
  SortedIdSpan a;
  bool have_a = false;
  for (size_t j = 0; j < atoms.size(); ++j) {
    if (j < 64 && !(mask & (uint64_t{1} << j))) continue;
    if (done[j] || j == best) continue;
    const Pattern pj = atoms[j].tmpl.Bind(binding);
    if (pj.BoundCount() != 2) continue;
    const Term& tj = atoms[j].tmpl.at(SingleFreePos(pj));
    if (!tj.is_variable() || tj.var() != v) continue;
    if (!atoms[j].source->CanSortFreeValues(pj)) continue;
    if (!have_a) {
      if (!atoms[best].source->SortedFreeValues(p_best, &scratch_a, &a)) {
        return false;
      }
      have_a = true;
    }
    // Cost guard: materializing a partner run far larger than the
    // candidate set it filters would cost more than the per-candidate
    // probes it saves (a probe is ~32x a sequential column copy).
    const size_t k = atoms[j].source->EstimateMatches(pj);
    if (k > 32 * (a.size + 1)) continue;
    std::vector<EntityId> scratch_b;
    SortedIdSpan b;
    if (!atoms[j].source->SortedFreeValues(pj, &scratch_b, &b)) continue;
    done[best] = true;
    done[j] = true;
    const EntityId* pa = a.data;
    const EntityId* ea = a.data + a.size;
    const EntityId* pb = b.data;
    const EntityId* eb = b.data + b.size;
    while (pa < ea && pb < eb && status.ok() && !stopped) {
      if (!ticker.TickOk()) {
        status = ticker.trip();
        break;
      }
      if (*pa < *pb) {
        pa = GallopLower(pa, ea, *pb);
      } else if (*pb < *pa) {
        pb = GallopLower(pb, eb, *pa);
      } else {
        const EntityId value = *pa;
        if (!var_filter || var_filter(v, value)) {
          binding.Set(v, value);
          status = MatchRec(atoms, done, remaining - 2, binding, var_filter,
                            visit, order, rank, merge_partners,
                            ClearBit(ClearBit(pending, best), j), stopped,
                            ticker);
          binding.Unset(v);
        }
        ++pa;
        ++pb;
      }
    }
    done[best] = false;
    done[j] = false;
    return true;
  }
  return false;
}

// Recursive backtracking join. `done` marks atoms already matched.
// `rank` (kEstimatedCost only) is the static plan's priority per atom;
// the recursion follows it but still defers atoms that are not
// enumerable under the actual binding.
Status MatchRec(const std::vector<AtomSpec>& atoms, std::vector<bool>& done,
                size_t remaining, Binding& binding,
                const VarFilter& var_filter, const BindingVisitor& visit,
                JoinOrder order, const uint32_t* rank,
                const uint64_t* merge_partners, uint64_t pending,
                bool& stopped, BudgetTicker& ticker) {
  if (remaining == 0) {
    if (!visit(binding)) stopped = true;
    return Status::OK();
  }

  // Pick the next atom per the ordering policy. Atoms that are not
  // enumerable under the current binding (virtual relations with
  // unbound operands) are always deferred.
  int best = -1;
  double best_score = 0;
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (done[i]) continue;
    Pattern p = atoms[i].tmpl.Bind(binding);
    const bool enumerable =
        p.BoundCount() == 3 || atoms[i].source->Enumerable(p);
    if (!enumerable) continue;
    double score = 0;
    switch (order) {
      case JoinOrder::kBoundCount:
        // Maximize bound positions; ground atoms win outright.
        score = -static_cast<double>(p.BoundCount());
        break;
      case JoinOrder::kEstimatedCost:
        // Follow the static plan; fall back to a per-node estimate when
        // no plan was provided.
        score = rank != nullptr
                    ? static_cast<double>(rank[i])
                    : static_cast<double>(atoms[i].source->EstimateMatches(p));
        break;
      case JoinOrder::kFixed:
        score = static_cast<double>(i);
        break;
    }
    if (best < 0 || score < best_score) {
      best_score = score;
      best = static_cast<int>(i);
    }
  }
  if (best < 0) {
    return Status::InvalidArgument(
        "unsafe conjunction: remaining atoms have unbound operands of a "
        "non-enumerable (virtual) relation");
  }

  const AtomSpec& atom = atoms[best];
  const Pattern p_best = atom.tmpl.Bind(binding);

  if (merge_partners != nullptr && remaining >= 2) {
    Status mj_status = Status::OK();
    if (TryMergeJoin(atoms, done, remaining, static_cast<size_t>(best),
                     p_best, binding, var_filter, visit, order, rank,
                     merge_partners, pending, stopped, mj_status, ticker)) {
      return mj_status;
    }
  }

  done[best] = true;

  // Variables this atom can newly bind; used both for the filter hook and
  // for rollback. A template mentions at most 3 variables, so fixed
  // arrays keep this recursion allocation-free.
  VarId atom_vars[3];
  const size_t num_atom_vars = atom.tmpl.CollectVars(atom_vars);

  Status status = Status::OK();
  atom.source->ForEach(p_best, [&](const Fact& f) {
    // Budget tick per enumerated fact: facts that fail Unify below never
    // reach deeper recursion, so an entry-only check would let a huge
    // no-match scan run unchecked.
    if (!ticker.TickOk()) {
      status = ticker.trip();
      return false;
    }
    // Remember which vars were unbound before unification.
    VarId newly_bound[3];
    size_t num_newly_bound = 0;
    for (size_t i = 0; i < num_atom_vars; ++i) {
      if (!binding.IsBound(atom_vars[i])) {
        newly_bound[num_newly_bound++] = atom_vars[i];
      }
    }
    if (!atom.tmpl.Unify(f, binding)) return true;  // shared-var clash
    bool admissible = true;
    if (var_filter) {
      for (size_t i = 0; i < num_newly_bound; ++i) {
        const VarId v = newly_bound[i];
        if (binding.IsBound(v) && !var_filter(v, binding.Get(v))) {
          admissible = false;
          break;
        }
      }
    }
    if (admissible) {
      status = MatchRec(atoms, done, remaining - 1, binding, var_filter,
                        visit, order, rank, merge_partners,
                        ClearBit(pending, static_cast<size_t>(best)),
                        stopped, ticker);
    }
    for (size_t i = 0; i < num_newly_bound; ++i) {
      binding.Unset(newly_bound[i]);
    }
    return status.ok() && !stopped;
  });

  done[best] = false;
  return status;
}

void AppendBytes(std::string& key, const void* data, size_t n) {
  key.append(reinterpret_cast<const char*>(data), n);
}

}  // namespace

ConjunctionPlan PlanConjunction(const std::vector<AtomSpec>& atoms,
                                const Binding& binding,
                                const EstimateFn* estimate) {
  const size_t n = atoms.size();
  ConjunctionPlan plan;
  plan.rank.assign(n, 0);

  // Variables pinned so far: initially-bound ones plus those the steps
  // already planned will have bound ("simulated bound").
  std::vector<char> bound(binding.num_vars(), 0);
  for (VarId v = 0; v < binding.num_vars(); ++v) {
    bound[v] = binding.IsBound(v) ? 1 : 0;
  }

  struct AtomInfo {
    VarId vars[3];
    size_t num_vars;
  };
  std::vector<AtomInfo> info(n);
  for (size_t i = 0; i < n; ++i) {
    info[i].num_vars = atoms[i].tmpl.CollectVars(info[i].vars);
  }

  std::vector<bool> chosen(n, false);
  for (uint32_t step = 0; step < n; ++step) {
    int best = -1;
    double best_cost = 0;
    bool best_connected = false;
    for (size_t i = 0; i < n; ++i) {
      if (chosen[i]) continue;
      const Template& t = atoms[i].tmpl;
      Pattern p = t.Bind(binding);

      // Positions a variable pinned by an earlier planned step will fill
      // at match time. Initially-bound variables are already concrete in
      // `p` and need no mask bit.
      uint8_t mask = 0;
      auto mask_term = [&](const Term& term, uint8_t bit) {
        if (term.is_variable() && !binding.IsBound(term.var()) &&
            bound[term.var()]) {
          mask |= bit;
        }
      };
      mask_term(t.source, kBindSource);
      mask_term(t.relationship, kBindRelationship);
      mask_term(t.target, kBindTarget);

      // Plan-time enumerability probe: masked positions hold a neutral
      // built-in sentinel. Enumerable implementations only inspect
      // boundness except for comparator checks on the relationship, and
      // the sentinel is not a comparator, so this never falsely reports
      // non-enumerable; the runtime deferral in MatchRec covers whatever
      // value actually arrives.
      Pattern probe = p;
      if (mask & kBindSource) probe.source = kEntClassRel;
      if (mask & kBindRelationship) probe.relationship = kEntClassRel;
      if (mask & kBindTarget) probe.target = kEntClassRel;
      if (probe.BoundCount() != 3 && !atoms[i].source->Enumerable(probe)) {
        continue;
      }

      // Connected = joins the chain built so far (mentions a pinned
      // variable) or is a pure constant existence test. A conjunct with
      // only fresh variables is a cross product against the chain and
      // must never be preferred over a connected one, no matter how
      // cheap it looks.
      bool connected = info[i].num_vars == 0;
      for (size_t j = 0; j < info[i].num_vars; ++j) {
        if (bound[info[i].vars[j]]) {
          connected = true;
          break;
        }
      }

      const double cost = estimate != nullptr
                              ? (*estimate)(atoms[i].source, p, mask)
                              : atoms[i].source->EstimateMatchesBound(p, mask);
      const bool better =
          best < 0 || (connected && !best_connected) ||
          (connected == best_connected && cost < best_cost);
      if (better) {
        best = static_cast<int>(i);
        best_cost = cost;
        best_connected = connected;
      }
    }
    if (best < 0) {
      // Nothing left is plan-enumerable (an unsafe conjunction, or one
      // whose safety hinges on runtime values). Schedule the leftovers
      // in written order; MatchRec's deferral and unsafe error handle
      // them identically under every policy.
      for (size_t i = 0; i < n; ++i) {
        if (!chosen[i]) {
          chosen[i] = true;
          plan.rank[i] = step++;
        }
      }
      break;
    }
    chosen[best] = true;
    plan.rank[best] = step;
    for (size_t j = 0; j < info[best].num_vars; ++j) {
      bound[info[best].vars[j]] = 1;
    }
  }
  return plan;
}

size_t PlannerCache::EstimateKeyHash::operator()(const EstimateKey& k) const {
  uint64_t h = static_cast<uint64_t>(reinterpret_cast<uintptr_t>(k.source));
  h = h * 0x9e3779b97f4a7c15ULL + k.pattern.source;
  h = h * 0x9e3779b97f4a7c15ULL + k.pattern.relationship;
  h = h * 0x9e3779b97f4a7c15ULL + k.pattern.target;
  h = h * 0x9e3779b97f4a7c15ULL + k.mask;
  h ^= h >> 29;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 32;
  return static_cast<size_t>(h);
}

const ConjunctionPlan* PlannerCache::GetOrPlan(
    const std::vector<AtomSpec>& atoms, const Binding& binding) {
  // Shape key: atom sources, variable structure (with boundness), and
  // planner-significant constants. Regular source/target constants are
  // abstracted to a generic marker so sibling queries differing only in
  // those constants share a plan.
  std::string key;
  key.reserve(atoms.size() * 32);
  for (const AtomSpec& a : atoms) {
    const FactSource* src = a.source;
    AppendBytes(key, &src, sizeof(src));
    for (int pos = 0; pos < 3; ++pos) {
      const Term& t = a.tmpl.at(pos);
      if (t.is_variable()) {
        key.push_back(binding.IsBound(t.var()) ? 'B' : 'V');
        const VarId v = t.var();
        AppendBytes(key, &v, sizeof(v));
      } else if (pos == 1 || t.entity() < kNumBuiltinEntities) {
        // Relationship constants and built-ins (ANY/NONE rewrites,
        // comparators, ISA) change what the pattern even means — keep
        // them in the key.
        key.push_back('E');
        const EntityId e = t.entity();
        AppendBytes(key, &e, sizeof(e));
      } else {
        key.push_back('C');
      }
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  auto it = plans_.find(key);
  if (it != plans_.end()) {
    ++hits_;
    return it->second.get();
  }
  ++misses_;

  EstimateFn memo = [this](const FactSource* s, const Pattern& p,
                           uint8_t m) {
    EstimateKey k{s, p, m};
    auto eit = estimates_.find(k);
    if (eit != estimates_.end()) return eit->second;
    const double v = s->EstimateMatchesBound(p, m);
    estimates_.emplace(k, v);
    return v;
  };
  auto plan =
      std::make_unique<ConjunctionPlan>(PlanConjunction(atoms, binding, &memo));
  const ConjunctionPlan* out = plan.get();
  plans_.emplace(std::move(key), std::move(plan));
  return out;
}

void PlannerCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  plans_.clear();
  estimates_.clear();
}

size_t PlannerCache::plan_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plans_.size();
}

uint64_t PlannerCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t PlannerCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

Status MatchConjunction(const std::vector<AtomSpec>& atoms, Binding& binding,
                        const VarFilter& var_filter,
                        const BindingVisitor& visit, JoinOrder order,
                        PlannerCache* planner, bool merge_join,
                        const QueryBudget* budget) {
  for (const AtomSpec& a : atoms) {
    assert(a.source != nullptr);
    (void)a;
  }
  std::vector<bool> done(atoms.size(), false);
  bool stopped = false;
  ConjunctionPlan local_plan;
  const uint32_t* rank = nullptr;
  if (order == JoinOrder::kEstimatedCost && !atoms.empty()) {
    if (planner != nullptr) {
      rank = planner->GetOrPlan(atoms, binding)->rank.data();
    } else {
      local_plan = PlanConjunction(atoms, binding);
      rank = local_plan.rank.data();
    }
  }
  std::vector<uint64_t> merge_partners;
  if (merge_join && !atoms.empty()) {
    merge_partners = ComputeMergePartners(atoms);
  }
  const uint64_t pending = atoms.size() >= 64
                               ? ~uint64_t{0}
                               : (uint64_t{1} << atoms.size()) - 1;
  BudgetTicker ticker(budget);
  return MatchRec(atoms, done, atoms.size(), binding, var_filter, visit,
                  order, rank,
                  merge_partners.empty() ? nullptr : merge_partners.data(),
                  pending, stopped, ticker);
}

Status MatchConjunction(const FactSource& source,
                        const std::vector<Template>& atoms,
                        Binding& binding, const VarFilter& var_filter,
                        const BindingVisitor& visit, JoinOrder order,
                        PlannerCache* planner, bool merge_join,
                        const QueryBudget* budget) {
  std::vector<AtomSpec> specs;
  specs.reserve(atoms.size());
  for (const Template& t : atoms) specs.push_back(AtomSpec{t, &source});
  return MatchConjunction(specs, binding, var_filter, visit, order, planner,
                          merge_join, budget);
}

}  // namespace lsd
