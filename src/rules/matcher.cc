#include "rules/matcher.h"

#include <cassert>

namespace lsd {

namespace {

// Recursive backtracking join. `done` marks atoms already matched.
// `rank` (kEstimatedCost only) is the static plan's priority per atom;
// the recursion follows it but still defers atoms that are not
// enumerable under the actual binding.
Status MatchRec(const std::vector<AtomSpec>& atoms, std::vector<bool>& done,
                size_t remaining, Binding& binding,
                const VarFilter& var_filter, const BindingVisitor& visit,
                JoinOrder order, const uint32_t* rank, bool& stopped) {
  if (remaining == 0) {
    if (!visit(binding)) stopped = true;
    return Status::OK();
  }

  // Pick the next atom per the ordering policy. Atoms that are not
  // enumerable under the current binding (virtual relations with
  // unbound operands) are always deferred.
  int best = -1;
  double best_score = 0;
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (done[i]) continue;
    Pattern p = atoms[i].tmpl.Bind(binding);
    const bool enumerable =
        p.BoundCount() == 3 || atoms[i].source->Enumerable(p);
    if (!enumerable) continue;
    double score = 0;
    switch (order) {
      case JoinOrder::kBoundCount:
        // Maximize bound positions; ground atoms win outright.
        score = -static_cast<double>(p.BoundCount());
        break;
      case JoinOrder::kEstimatedCost:
        // Follow the static plan; fall back to a per-node estimate when
        // no plan was provided.
        score = rank != nullptr
                    ? static_cast<double>(rank[i])
                    : static_cast<double>(atoms[i].source->EstimateMatches(p));
        break;
      case JoinOrder::kFixed:
        score = static_cast<double>(i);
        break;
    }
    if (best < 0 || score < best_score) {
      best_score = score;
      best = static_cast<int>(i);
    }
  }
  if (best < 0) {
    return Status::InvalidArgument(
        "unsafe conjunction: remaining atoms have unbound operands of a "
        "non-enumerable (virtual) relation");
  }

  const AtomSpec& atom = atoms[best];
  done[best] = true;

  // Variables this atom can newly bind; used both for the filter hook and
  // for rollback. A template mentions at most 3 variables, so fixed
  // arrays keep this recursion allocation-free.
  VarId atom_vars[3];
  const size_t num_atom_vars = atom.tmpl.CollectVars(atom_vars);

  Status status = Status::OK();
  atom.source->ForEach(atom.tmpl.Bind(binding), [&](const Fact& f) {
    // Remember which vars were unbound before unification.
    VarId newly_bound[3];
    size_t num_newly_bound = 0;
    for (size_t i = 0; i < num_atom_vars; ++i) {
      if (!binding.IsBound(atom_vars[i])) {
        newly_bound[num_newly_bound++] = atom_vars[i];
      }
    }
    if (!atom.tmpl.Unify(f, binding)) return true;  // shared-var clash
    bool admissible = true;
    if (var_filter) {
      for (size_t i = 0; i < num_newly_bound; ++i) {
        const VarId v = newly_bound[i];
        if (binding.IsBound(v) && !var_filter(v, binding.Get(v))) {
          admissible = false;
          break;
        }
      }
    }
    if (admissible) {
      status = MatchRec(atoms, done, remaining - 1, binding, var_filter,
                        visit, order, rank, stopped);
    }
    for (size_t i = 0; i < num_newly_bound; ++i) {
      binding.Unset(newly_bound[i]);
    }
    return status.ok() && !stopped;
  });

  done[best] = false;
  return status;
}

void AppendBytes(std::string& key, const void* data, size_t n) {
  key.append(reinterpret_cast<const char*>(data), n);
}

}  // namespace

ConjunctionPlan PlanConjunction(const std::vector<AtomSpec>& atoms,
                                const Binding& binding,
                                const EstimateFn* estimate) {
  const size_t n = atoms.size();
  ConjunctionPlan plan;
  plan.rank.assign(n, 0);

  // Variables pinned so far: initially-bound ones plus those the steps
  // already planned will have bound ("simulated bound").
  std::vector<char> bound(binding.num_vars(), 0);
  for (VarId v = 0; v < binding.num_vars(); ++v) {
    bound[v] = binding.IsBound(v) ? 1 : 0;
  }

  struct AtomInfo {
    VarId vars[3];
    size_t num_vars;
  };
  std::vector<AtomInfo> info(n);
  for (size_t i = 0; i < n; ++i) {
    info[i].num_vars = atoms[i].tmpl.CollectVars(info[i].vars);
  }

  std::vector<bool> chosen(n, false);
  for (uint32_t step = 0; step < n; ++step) {
    int best = -1;
    double best_cost = 0;
    bool best_connected = false;
    for (size_t i = 0; i < n; ++i) {
      if (chosen[i]) continue;
      const Template& t = atoms[i].tmpl;
      Pattern p = t.Bind(binding);

      // Positions a variable pinned by an earlier planned step will fill
      // at match time. Initially-bound variables are already concrete in
      // `p` and need no mask bit.
      uint8_t mask = 0;
      auto mask_term = [&](const Term& term, uint8_t bit) {
        if (term.is_variable() && !binding.IsBound(term.var()) &&
            bound[term.var()]) {
          mask |= bit;
        }
      };
      mask_term(t.source, kBindSource);
      mask_term(t.relationship, kBindRelationship);
      mask_term(t.target, kBindTarget);

      // Plan-time enumerability probe: masked positions hold a neutral
      // built-in sentinel. Enumerable implementations only inspect
      // boundness except for comparator checks on the relationship, and
      // the sentinel is not a comparator, so this never falsely reports
      // non-enumerable; the runtime deferral in MatchRec covers whatever
      // value actually arrives.
      Pattern probe = p;
      if (mask & kBindSource) probe.source = kEntClassRel;
      if (mask & kBindRelationship) probe.relationship = kEntClassRel;
      if (mask & kBindTarget) probe.target = kEntClassRel;
      if (probe.BoundCount() != 3 && !atoms[i].source->Enumerable(probe)) {
        continue;
      }

      // Connected = joins the chain built so far (mentions a pinned
      // variable) or is a pure constant existence test. A conjunct with
      // only fresh variables is a cross product against the chain and
      // must never be preferred over a connected one, no matter how
      // cheap it looks.
      bool connected = info[i].num_vars == 0;
      for (size_t j = 0; j < info[i].num_vars; ++j) {
        if (bound[info[i].vars[j]]) {
          connected = true;
          break;
        }
      }

      const double cost = estimate != nullptr
                              ? (*estimate)(atoms[i].source, p, mask)
                              : atoms[i].source->EstimateMatchesBound(p, mask);
      const bool better =
          best < 0 || (connected && !best_connected) ||
          (connected == best_connected && cost < best_cost);
      if (better) {
        best = static_cast<int>(i);
        best_cost = cost;
        best_connected = connected;
      }
    }
    if (best < 0) {
      // Nothing left is plan-enumerable (an unsafe conjunction, or one
      // whose safety hinges on runtime values). Schedule the leftovers
      // in written order; MatchRec's deferral and unsafe error handle
      // them identically under every policy.
      for (size_t i = 0; i < n; ++i) {
        if (!chosen[i]) {
          chosen[i] = true;
          plan.rank[i] = step++;
        }
      }
      break;
    }
    chosen[best] = true;
    plan.rank[best] = step;
    for (size_t j = 0; j < info[best].num_vars; ++j) {
      bound[info[best].vars[j]] = 1;
    }
  }
  return plan;
}

size_t PlannerCache::EstimateKeyHash::operator()(const EstimateKey& k) const {
  uint64_t h = static_cast<uint64_t>(reinterpret_cast<uintptr_t>(k.source));
  h = h * 0x9e3779b97f4a7c15ULL + k.pattern.source;
  h = h * 0x9e3779b97f4a7c15ULL + k.pattern.relationship;
  h = h * 0x9e3779b97f4a7c15ULL + k.pattern.target;
  h = h * 0x9e3779b97f4a7c15ULL + k.mask;
  h ^= h >> 29;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 32;
  return static_cast<size_t>(h);
}

const ConjunctionPlan* PlannerCache::GetOrPlan(
    const std::vector<AtomSpec>& atoms, const Binding& binding) {
  // Shape key: atom sources, variable structure (with boundness), and
  // planner-significant constants. Regular source/target constants are
  // abstracted to a generic marker so sibling queries differing only in
  // those constants share a plan.
  std::string key;
  key.reserve(atoms.size() * 32);
  for (const AtomSpec& a : atoms) {
    const FactSource* src = a.source;
    AppendBytes(key, &src, sizeof(src));
    for (int pos = 0; pos < 3; ++pos) {
      const Term& t = a.tmpl.at(pos);
      if (t.is_variable()) {
        key.push_back(binding.IsBound(t.var()) ? 'B' : 'V');
        const VarId v = t.var();
        AppendBytes(key, &v, sizeof(v));
      } else if (pos == 1 || t.entity() < kNumBuiltinEntities) {
        // Relationship constants and built-ins (ANY/NONE rewrites,
        // comparators, ISA) change what the pattern even means — keep
        // them in the key.
        key.push_back('E');
        const EntityId e = t.entity();
        AppendBytes(key, &e, sizeof(e));
      } else {
        key.push_back('C');
      }
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  auto it = plans_.find(key);
  if (it != plans_.end()) {
    ++hits_;
    return it->second.get();
  }
  ++misses_;

  EstimateFn memo = [this](const FactSource* s, const Pattern& p,
                           uint8_t m) {
    EstimateKey k{s, p, m};
    auto eit = estimates_.find(k);
    if (eit != estimates_.end()) return eit->second;
    const double v = s->EstimateMatchesBound(p, m);
    estimates_.emplace(k, v);
    return v;
  };
  auto plan =
      std::make_unique<ConjunctionPlan>(PlanConjunction(atoms, binding, &memo));
  const ConjunctionPlan* out = plan.get();
  plans_.emplace(std::move(key), std::move(plan));
  return out;
}

void PlannerCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  plans_.clear();
  estimates_.clear();
}

size_t PlannerCache::plan_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plans_.size();
}

uint64_t PlannerCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t PlannerCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

Status MatchConjunction(const std::vector<AtomSpec>& atoms, Binding& binding,
                        const VarFilter& var_filter,
                        const BindingVisitor& visit, JoinOrder order,
                        PlannerCache* planner) {
  for (const AtomSpec& a : atoms) {
    assert(a.source != nullptr);
    (void)a;
  }
  std::vector<bool> done(atoms.size(), false);
  bool stopped = false;
  ConjunctionPlan local_plan;
  const uint32_t* rank = nullptr;
  if (order == JoinOrder::kEstimatedCost && !atoms.empty()) {
    if (planner != nullptr) {
      rank = planner->GetOrPlan(atoms, binding)->rank.data();
    } else {
      local_plan = PlanConjunction(atoms, binding);
      rank = local_plan.rank.data();
    }
  }
  return MatchRec(atoms, done, atoms.size(), binding, var_filter, visit,
                  order, rank, stopped);
}

Status MatchConjunction(const FactSource& source,
                        const std::vector<Template>& atoms,
                        Binding& binding, const VarFilter& var_filter,
                        const BindingVisitor& visit, JoinOrder order,
                        PlannerCache* planner) {
  std::vector<AtomSpec> specs;
  specs.reserve(atoms.size());
  for (const Template& t : atoms) specs.push_back(AtomSpec{t, &source});
  return MatchConjunction(specs, binding, var_filter, visit, order, planner);
}

}  // namespace lsd
