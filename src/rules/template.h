// Templates: facts whose positions may hold variables (Sec 2.4, 2.7).
// Templates are both the bodies/heads of rules and the atomic predicates
// of the query language.
#ifndef LSD_RULES_TEMPLATE_H_
#define LSD_RULES_TEMPLATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "store/entity.h"
#include "store/fact.h"

namespace lsd {

class EntityTable;

using VarId = uint32_t;

// One position of a template: either a concrete entity or a variable.
class Term {
 public:
  Term() : is_var_(false), id_(kAnyEntity) {}

  static Term Entity(EntityId e) { return Term(false, e); }
  static Term Var(VarId v) { return Term(true, v); }

  bool is_variable() const { return is_var_; }
  bool is_entity() const { return !is_var_; }

  EntityId entity() const { return id_; }
  VarId var() const { return id_; }

  friend bool operator==(const Term& a, const Term& b) = default;

 private:
  Term(bool is_var, uint32_t id) : is_var_(is_var), id_(id) {}

  bool is_var_;
  uint32_t id_;  // EntityId or VarId depending on is_var_
};

// A partial assignment of variables to entities. Indexed by VarId;
// kAnyEntity means unbound.
class Binding {
 public:
  explicit Binding(size_t num_vars)
      : values_(num_vars, kAnyEntity) {}

  bool IsBound(VarId v) const { return values_[v] != kAnyEntity; }
  EntityId Get(VarId v) const { return values_[v]; }
  void Set(VarId v, EntityId e) { values_[v] = e; }
  void Unset(VarId v) { values_[v] = kAnyEntity; }

  size_t num_vars() const { return values_.size(); }

  // Entities bound to the given variables, in order. All must be bound.
  std::vector<EntityId> Project(const std::vector<VarId>& vars) const;

  friend bool operator==(const Binding& a, const Binding& b) = default;

 private:
  std::vector<EntityId> values_;
};

// A template triple. Variables are indices into a surrounding scope's
// variable table (a Rule or a Query owns the names).
struct Template {
  Term source;
  Term relationship;
  Term target;

  Template() = default;
  Template(Term s, Term r, Term t)
      : source(s), relationship(r), target(t) {}

  // Builds an entity-only template (a ground fact as a template).
  static Template Ground(const Fact& f) {
    return Template(Term::Entity(f.source), Term::Entity(f.relationship),
                    Term::Entity(f.target));
  }

  const Term& at(int pos) const {
    return pos == 0 ? source : (pos == 1 ? relationship : target);
  }
  Term& at(int pos) {
    return pos == 0 ? source : (pos == 1 ? relationship : target);
  }

  // The match pattern under a (possibly partial) binding: bound variables
  // and entities become concrete, unbound variables become wildcards.
  // Defined inline below: Bind/Unify/Substitute run millions of times per
  // closure and are too small to carry a cross-TU call each.
  Pattern Bind(const Binding& b) const;

  // True if all three positions are entities or bound variables.
  bool IsGroundUnder(const Binding& b) const;

  // The ground fact under a binding; requires IsGroundUnder(b).
  Fact Substitute(const Binding& b) const;

  // Attempts to unify this template with a concrete fact, extending `b`.
  // On success returns true with `b` extended; on failure leaves `b`
  // unchanged and returns false.
  bool Unify(const Fact& f, Binding& b) const;

  // All variables mentioned, without duplicates, in position order.
  void CollectVars(std::vector<VarId>* out) const;

  // Allocation-free variant for the match hot path: writes into a
  // caller-provided array of capacity >= 3 and returns the count.
  size_t CollectVars(VarId out[3]) const;

  bool HasVariables() const {
    return source.is_variable() || relationship.is_variable() ||
           target.is_variable();
  }

  friend bool operator==(const Template& a, const Template& b) = default;

  // Renders "(?X, ISA, PERSON)" given names for variables.
  std::string DebugString(const EntityTable& entities,
                          const std::vector<std::string>& var_names) const;
};

namespace internal {
inline EntityId ResolveTerm(const Term& t, const Binding& b) {
  if (t.is_entity()) return t.entity();
  return b.IsBound(t.var()) ? b.Get(t.var()) : kAnyEntity;
}
}  // namespace internal

inline Pattern Template::Bind(const Binding& b) const {
  return Pattern(internal::ResolveTerm(source, b),
                 internal::ResolveTerm(relationship, b),
                 internal::ResolveTerm(target, b));
}

inline bool Template::IsGroundUnder(const Binding& b) const {
  return Bind(b).BoundCount() == 3;
}

inline Fact Template::Substitute(const Binding& b) const {
  Pattern p = Bind(b);
  return Fact(p.source, p.relationship, p.target);
}

inline bool Template::Unify(const Fact& f, Binding& b) const {
  // Record which variables this unification newly binds, so we can roll
  // back on failure (a variable may occur in several positions).
  VarId touched[3];
  int num_touched = 0;
  const EntityId fact_pos[3] = {f.source, f.relationship, f.target};
  for (int i = 0; i < 3; ++i) {
    const Term& term = at(i);
    if (term.is_entity()) {
      if (term.entity() != fact_pos[i]) {
        for (int j = 0; j < num_touched; ++j) b.Unset(touched[j]);
        return false;
      }
      continue;
    }
    VarId v = term.var();
    if (b.IsBound(v)) {
      if (b.Get(v) != fact_pos[i]) {
        for (int j = 0; j < num_touched; ++j) b.Unset(touched[j]);
        return false;
      }
    } else {
      b.Set(v, fact_pos[i]);
      touched[num_touched++] = v;
    }
  }
  return true;
}

inline size_t Template::CollectVars(VarId out[3]) const {
  size_t n = 0;
  for (int i = 0; i < 3; ++i) {
    const Term& term = at(i);
    if (!term.is_variable()) continue;
    const VarId v = term.var();
    bool seen = false;
    for (size_t j = 0; j < n; ++j) {
      if (out[j] == v) {
        seen = true;
        break;
      }
    }
    if (!seen) out[n++] = v;
  }
  return n;
}

}  // namespace lsd

#endif  // LSD_RULES_TEMPLATE_H_
