#include "browse/operators.h"

#include <algorithm>
#include <unordered_set>

#include "query/table_formatter.h"
#include "util/string_util.h"

namespace lsd {

std::vector<Fact> TryEntity(const ClosureView& view, EntityId entity) {
  std::vector<Fact> out;
  std::unordered_set<Fact, FactHash> seen;
  auto collect = [&](const Fact& f) {
    if (seen.insert(f).second) out.push_back(f);
    return true;
  };
  view.ForEach(Pattern(entity, kAnyEntity, kAnyEntity), collect);
  view.ForEach(Pattern(kAnyEntity, entity, kAnyEntity), collect);
  view.ForEach(Pattern(kAnyEntity, kAnyEntity, entity), collect);
  return out;
}

std::string RenderTry(const ClosureView& view, EntityId entity) {
  const EntityTable& entities = view.store().entities();
  std::string out = "try(" + entities.Name(entity) + "):\n";
  for (const Fact& f : TryEntity(view, entity)) {
    out += "  " + f.DebugString(entities) + "\n";
  }
  return out;
}

RelationTable RelationOp(const ClosureView& view, EntityId klass,
                         std::vector<RelationColumnSpec> columns) {
  RelationTable table;
  table.source_class = klass;
  table.columns = std::move(columns);

  std::vector<EntityId> instances;
  view.ForEach(Pattern(kAnyEntity, kEntIn, klass), [&](const Fact& f) {
    instances.push_back(f.source);
    return true;
  });
  std::sort(instances.begin(), instances.end());
  instances.erase(std::unique(instances.begin(), instances.end()),
                  instances.end());

  for (EntityId y : instances) {
    std::vector<std::vector<EntityId>> row;
    row.push_back({y});
    for (const RelationColumnSpec& col : table.columns) {
      std::vector<EntityId> values;
      view.ForEach(Pattern(y, col.relationship, kAnyEntity),
                   [&](const Fact& f) {
                     if (view.Contains(
                             Fact(f.target, kEntIn, col.target_class))) {
                       values.push_back(f.target);
                     }
                     return true;
                   });
      std::sort(values.begin(), values.end());
      values.erase(std::unique(values.begin(), values.end()), values.end());
      row.push_back(std::move(values));
    }
    table.rows.push_back(std::move(row));
  }
  return table;
}

std::string RelationTable::Render(const EntityTable& entities) const {
  std::vector<std::string> headers;
  headers.push_back(entities.Name(source_class));
  for (const RelationColumnSpec& col : columns) {
    headers.push_back(entities.Name(col.relationship) + " " +
                      entities.Name(col.target_class));
  }
  TableFormatter formatter(std::move(headers));
  for (const auto& row : rows) {
    std::vector<std::string> cells;
    for (const auto& values : row) {
      std::vector<std::string> names;
      names.reserve(values.size());
      for (EntityId e : values) names.push_back(entities.Name(e));
      cells.push_back(Join(names, "\n"));
    }
    formatter.AddRow(std::move(cells));
  }
  return formatter.Render();
}

}  // namespace lsd
