// Semantic distance (Sec 6.1): the paper observes that "as the chain of
// compositions gets longer, the relationship between its two end
// entities becomes less significant (the length of such a path is
// sometimes called the semantic distance between these entities)".
//
// This module makes the notion operational for browsing:
//   SemanticDistance(a, b)  length of the shortest fact chain relating
//                           a and b (1 = directly related);
//   Nearby(center, radius)  every entity within a given semantic
//                           distance, BFS order — a "what is around
//                           here?" browsing aid complementing try(e).
#ifndef LSD_BROWSE_PROXIMITY_H_
#define LSD_BROWSE_PROXIMITY_H_

#include <optional>
#include <vector>

#include "rules/closure_view.h"
#include "util/budget.h"
#include "util/status.h"

namespace lsd {

struct ProximityOptions {
  // Follow facts in both directions (a relationship and its inverse are
  // the same association, Sec 3.4).
  bool undirected = true;
  // Meta relationships (ISA, IN, SYN, INV, CONTRA) and comparators do
  // not count as associations by default, matching the composition
  // engine.
  bool include_meta_relationships = false;
  // Safety valve on BFS size.
  size_t max_visited = 1'000'000;
  // Optional cooperative cancellation / deadline token. Borrowed; ticked
  // per scanned fact during frontier expansion; a tripped budget aborts
  // the search with its typed error.
  const QueryBudget* budget = nullptr;
};

// Shortest chain length between two entities, or nullopt if they are
// not connected within `max_radius`.
StatusOr<std::optional<int>> SemanticDistance(
    const ClosureView& view, EntityId a, EntityId b, int max_radius,
    const ProximityOptions& options = {});

struct NearbyEntity {
  EntityId entity;
  int distance;
};

// All entities within `radius` of `center`, closest first (BFS layers;
// ties in id order). The center itself is excluded.
StatusOr<std::vector<NearbyEntity>> Nearby(
    const ClosureView& view, EntityId center, int radius,
    const ProximityOptions& options = {});

}  // namespace lsd

#endif  // LSD_BROWSE_PROXIMITY_H_
