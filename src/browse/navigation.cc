#include "browse/navigation.h"

#include <algorithm>
#include <map>

#include "query/table_formatter.h"
#include "util/string_util.h"

namespace lsd {

namespace {

std::string JoinNames(const EntityTable& entities,
                      const std::vector<EntityId>& ids) {
  std::vector<std::string> names;
  names.reserve(ids.size());
  for (EntityId e : ids) names.push_back(entities.Name(e));
  return Join(names, "\n");
}

}  // namespace

StatusOr<NeighborhoodView> Navigator::Neighborhood(
    EntityId entity, const QueryBudget* budget) const {
  NeighborhoodView out;
  out.entity = entity;
  BudgetTicker ticker(budget);
  Status budget_status = Status::OK();

  std::map<EntityId, std::vector<EntityId>> outgoing;
  view_->ForEach(Pattern(entity, kAnyEntity, kAnyEntity),
                 [&](const Fact& f) {
                   if (!ticker.TickOk()) {
                     budget_status = ticker.trip();
                     return false;
                   }
                   if (f.relationship == kEntIn) {
                     out.classes.push_back(f.target);
                   } else if (f.relationship == kEntIsa) {
                     if (f.target != entity && f.target != kEntTop) {
                       out.generalizations.push_back(f.target);
                     }
                   } else {
                     outgoing[f.relationship].push_back(f.target);
                   }
                   return true;
                 });
  LSD_RETURN_IF_ERROR(budget_status);
  std::map<EntityId, std::vector<EntityId>> incoming;
  view_->ForEach(Pattern(kAnyEntity, kAnyEntity, entity),
                 [&](const Fact& f) {
                   if (!ticker.TickOk()) {
                     budget_status = ticker.trip();
                     return false;
                   }
                   if (f.relationship == kEntIn || f.relationship == kEntIsa) {
                     return true;  // shown from the member's side
                   }
                   incoming[f.relationship].push_back(f.source);
                   return true;
                 });
  LSD_RETURN_IF_ERROR(budget_status);

  std::sort(out.classes.begin(), out.classes.end());
  std::sort(out.generalizations.begin(), out.generalizations.end());
  for (auto& [rel, targets] : outgoing) {
    std::sort(targets.begin(), targets.end());
    out.outgoing.push_back(
        NeighborhoodView::RelationGroup{rel, std::move(targets)});
  }
  for (auto& [rel, sources] : incoming) {
    std::sort(sources.begin(), sources.end());
    out.incoming.push_back(
        NeighborhoodView::RelationGroup{rel, std::move(sources)});
  }
  return out;
}

std::string NeighborhoodView::Render(const EntityTable& table) const {
  std::vector<std::string> headers;
  std::vector<std::string> cells;
  headers.push_back(table.Name(entity) + " **");
  std::vector<EntityId> first;
  first.insert(first.end(), classes.begin(), classes.end());
  for (EntityId g : generalizations) {
    if (std::find(first.begin(), first.end(), g) == first.end()) {
      first.push_back(g);
    }
  }
  cells.push_back(JoinNames(table, first));
  for (const RelationGroup& g : outgoing) {
    headers.push_back(table.Name(g.relationship));
    cells.push_back(JoinNames(table, g.entities));
  }
  for (const RelationGroup& g : incoming) {
    headers.push_back("<- " + table.Name(g.relationship));
    cells.push_back(JoinNames(table, g.entities));
  }
  TableFormatter formatter(std::move(headers));
  formatter.AddRow(std::move(cells));
  return formatter.Render();
}

StatusOr<std::vector<Association>> Navigator::Associations(
    EntityId source, EntityId target,
    const CompositionOptions& options) const {
  std::vector<Association> out;
  BudgetTicker ticker(options.budget);
  Status budget_status = Status::OK();
  view_->ForEach(Pattern(source, kAnyEntity, target), [&](const Fact& f) {
    if (!ticker.TickOk()) {
      budget_status = ticker.trip();
      return false;
    }
    out.push_back(Association{f.relationship, {f}});
    return true;
  });
  LSD_RETURN_IF_ERROR(budget_status);
  LSD_ASSIGN_OR_RETURN(
      std::vector<ComposedFact> composed,
      composer_.PathsBetween(*view_, source, target, options));
  for (ComposedFact& cf : composed) {
    out.push_back(
        Association{cf.fact.relationship, std::move(cf.chain)});
  }
  return out;
}

std::string Navigator::RenderAssociations(
    EntityId source, EntityId target,
    const std::vector<Association>& assocs) const {
  TableFormatter formatter({entities_->Name(source) + " * " +
                            entities_->Name(target)});
  std::vector<std::string> names;
  names.reserve(assocs.size());
  for (const Association& a : assocs) {
    names.push_back(entities_->Name(a.relationship));
  }
  formatter.AddRow({Join(names, "\n")});
  return formatter.Render();
}

}  // namespace lsd
