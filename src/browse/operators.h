// The Sec 6.1 retrieval operators that do not live on LooseDb itself:
//
//   try(e)                    all facts that mention an entity, the
//                             start-up aid for navigation;
//   relation(s, r1 t1, ...)   a structured (relational) view over the
//                             loose store, possibly non-first-normal-form.
//
// limit(n) and include/exclude(rule) are settings on LooseDb.
#ifndef LSD_BROWSE_OPERATORS_H_
#define LSD_BROWSE_OPERATORS_H_

#include <string>
#include <vector>

#include "rules/closure_view.h"
#include "util/status.h"

namespace lsd {

// try(e): every stored closure fact in which `entity` appears, without
// duplicates, source-position facts first. Implemented as the union of
// the three template queries (e,*,*), (*,e,*), (*,*,e).
std::vector<Fact> TryEntity(const ClosureView& view, EntityId entity);

// Renders the try() result, one fact per line.
std::string RenderTry(const ClosureView& view, EntityId entity);

// relation(class, {r1, t1}, ..., {rn, tn}): one row per instance y of
// `klass`; column i holds every z with (y, ri, z) and (z, IN, ti).
// Columns other than the first may hold any number of entities (the
// paper: "such relations are not necessarily in first normal form").
struct RelationColumnSpec {
  EntityId relationship;
  EntityId target_class;
};

struct RelationTable {
  EntityId source_class;
  std::vector<RelationColumnSpec> columns;
  // rows[i][0] is the instance; rows[i][j] (j>=1) the value set for
  // column j-1.
  std::vector<std::vector<std::vector<EntityId>>> rows;

  std::string Render(const EntityTable& entities) const;
};

RelationTable RelationOp(const ClosureView& view, EntityId klass,
                         std::vector<RelationColumnSpec> columns);

}  // namespace lsd

#endif  // LSD_BROWSE_OPERATORS_H_
