#include "browse/proximity.h"

#include <deque>
#include <unordered_map>

#include "rules/math_provider.h"

namespace lsd {

namespace {

bool IsMetaRelationship(EntityId r) {
  return r == kEntIsa || r == kEntIn || r == kEntSyn || r == kEntInv ||
         r == kEntContra || r == kEntClassRel;
}

bool EdgeAllowed(const ClosureView& view, EntityId r,
                 const ProximityOptions& options) {
  if (MathProvider::IsComparator(r)) return false;
  if (!options.include_meta_relationships && IsMetaRelationship(r)) {
    return false;
  }
  return view.store().entities().Kind(r) != EntityKind::kComposed;
}

// Breadth-first search; calls visit(entity, distance) for every newly
// reached entity. Stops when visit returns false, the radius is
// exhausted, or max_visited trips (returning OutOfRange).
Status Bfs(const ClosureView& view, EntityId center, int radius,
           const ProximityOptions& options,
           const std::function<bool(EntityId, int)>& visit) {
  std::unordered_map<EntityId, int> dist{{center, 0}};
  std::deque<EntityId> queue{center};
  bool stopped = false;
  BudgetTicker ticker(options.budget);
  Status budget_status = Status::OK();
  while (!queue.empty() && !stopped) {
    EntityId at = queue.front();
    queue.pop_front();
    int d = dist[at];
    if (d >= radius) continue;
    auto expand = [&](EntityId next, EntityId rel) {
      if (stopped) return false;
      // Tick per scanned fact: a high-degree hub can pour millions of
      // edges through here before the frontier ever grows.
      if (!ticker.TickOk()) {
        budget_status = ticker.trip();
        stopped = true;
        return false;
      }
      if (!EdgeAllowed(view, rel, options)) return true;
      if (dist.count(next)) return true;
      dist[next] = d + 1;
      if (dist.size() > options.max_visited) {
        stopped = true;
        return false;
      }
      queue.push_back(next);
      if (!visit(next, d + 1)) {
        stopped = true;
        return false;
      }
      return true;
    };
    view.ForEach(Pattern(at, kAnyEntity, kAnyEntity), [&](const Fact& f) {
      return expand(f.target, f.relationship);
    });
    if (stopped) break;
    if (options.undirected) {
      view.ForEach(Pattern(kAnyEntity, kAnyEntity, at),
                   [&](const Fact& f) {
                     return expand(f.source, f.relationship);
                   });
    }
  }
  LSD_RETURN_IF_ERROR(budget_status);
  if (dist.size() > options.max_visited) {
    return Status::OutOfRange("proximity search exceeded max_visited");
  }
  return Status::OK();
}

}  // namespace

StatusOr<std::optional<int>> SemanticDistance(
    const ClosureView& view, EntityId a, EntityId b, int max_radius,
    const ProximityOptions& options) {
  if (a == b) return std::optional<int>(0);
  std::optional<int> found;
  LSD_RETURN_IF_ERROR(Bfs(view, a, max_radius, options,
                          [&](EntityId e, int d) {
                            if (e == b) {
                              found = d;
                              return false;
                            }
                            return true;
                          }));
  return found;
}

StatusOr<std::vector<NearbyEntity>> Nearby(const ClosureView& view,
                                           EntityId center, int radius,
                                           const ProximityOptions& options) {
  std::vector<NearbyEntity> out;
  LSD_RETURN_IF_ERROR(Bfs(view, center, radius, options,
                          [&](EntityId e, int d) {
                            out.push_back(NearbyEntity{e, d});
                            return true;
                          }));
  return out;
}

}  // namespace lsd
