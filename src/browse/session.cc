#include "browse/session.h"

namespace lsd {

StatusOr<NeighborhoodView> BrowseSession::NeighborhoodOfCurrent() {
  return db_->Navigate(db_->entities().Name(trail_[position_]));
}

StatusOr<NeighborhoodView> BrowseSession::Visit(std::string_view entity) {
  auto id = db_->entities().Lookup(entity);
  if (!id.has_value()) {
    return Status::NotFound("unknown entity: " + std::string(entity));
  }
  if (!trail_.empty()) {
    trail_.resize(position_ + 1);  // drop forward history
  }
  trail_.push_back(*id);
  position_ = trail_.size() - 1;
  return NeighborhoodOfCurrent();
}

StatusOr<NeighborhoodView> BrowseSession::Back() {
  if (!CanGoBack()) {
    return Status::FailedPrecondition("nothing to go back to");
  }
  --position_;
  return NeighborhoodOfCurrent();
}

StatusOr<NeighborhoodView> BrowseSession::Forward() {
  if (!CanGoForward()) {
    return Status::FailedPrecondition("nothing to go forward to");
  }
  ++position_;
  return NeighborhoodOfCurrent();
}

StatusOr<ProbeResult> BrowseSession::Probe(std::string_view query_text,
                                           const ProbeOptions& options) {
  return db_->Probe(query_text, options);
}

std::string BrowseSession::Breadcrumbs() const {
  std::string out;
  for (size_t i = 0; i < trail_.size(); ++i) {
    if (i > 0) out += " > ";
    if (i == position_) out += "[";
    out += db_->entities().Name(trail_[i]);
    if (i == position_) out += "]";
  }
  return out;
}

}  // namespace lsd
