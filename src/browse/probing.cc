#include "browse/probing.h"

#include <algorithm>
#include <deque>
#include <set>
#include <thread>
#include <unordered_map>
#include <unordered_set>

namespace lsd {

namespace {

bool EligibleLatticeEntity(const EntityTable& entities, EntityId e) {
  return entities.Kind(e) == EntityKind::kRegular;
}

// Below this many wave candidates per worker the probes stay on the
// calling thread: spawning would cost more than the evaluation work it
// distributes.
constexpr size_t kMinQueriesPerWorker = 4;

}  // namespace

GeneralizationLattice GeneralizationLattice::Build(const ClosureView& view) {
  GeneralizationLattice lattice;
  const EntityTable& entities = view.store().entities();
  lattice.num_entities_ = entities.size();
  lattice.nodes_.resize(entities.size());
  lattice.known_.assign(entities.size(), false);

  // up[s] = strict non-synonym generalizations of s in the closure.
  // The closure's ISA relation is already transitively closed (the
  // generalization rules derive transitivity), so the stored targets of
  // s are its full up-set.
  std::unordered_map<EntityId, std::set<EntityId>> up;
  view.ForEach(Pattern(), [&](const Fact& f) {
    lattice.known_[f.source] = true;
    lattice.known_[f.relationship] = true;
    lattice.known_[f.target] = true;
    if (f.relationship != kEntIsa) return true;
    if (f.source == f.target) return true;
    if (!EligibleLatticeEntity(entities, f.source) ||
        !EligibleLatticeEntity(entities, f.target)) {
      return true;
    }
    up[f.source].insert(f.target);
    return true;
  });

  auto strictly_above = [&](EntityId lo, EntityId hi) {
    // lo ≺ hi and not hi ≺ lo (synonyms are not above each other).
    auto it = up.find(lo);
    if (it == up.end() || !it->second.count(hi)) return false;
    auto rit = up.find(hi);
    return rit == up.end() || !rit->second.count(lo);
  };

  for (const auto& [s, targets] : up) {
    for (EntityId t : targets) {
      if (!strictly_above(s, t)) continue;  // skip synonym edges
      // t covers s unless some x sits strictly between them.
      bool covered = false;
      for (EntityId x : targets) {
        if (x == t || x == s) continue;
        if (strictly_above(s, x) && strictly_above(x, t)) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        lattice.nodes_[s].parents.push_back(t);
        lattice.nodes_[t].children.push_back(s);
      }
    }
  }
  for (Node& n : lattice.nodes_) {
    std::sort(n.parents.begin(), n.parents.end());
    std::sort(n.children.begin(), n.children.end());
  }
  return lattice;
}

std::vector<EntityId> GeneralizationLattice::MinimalGeneralizations(
    EntityId e) const {
  if (e == kEntTop) return {};
  if (e == kEntBottom) return {kEntTop};  // degenerate but total
  if (e >= nodes_.size()) return {kEntTop};
  if (e < kNumBuiltinEntities) return {};  // builtins do not generalize
  if (!nodes_[e].parents.empty()) return nodes_[e].parents;
  return {kEntTop};
}

std::vector<EntityId> GeneralizationLattice::MinimalSpecializations(
    EntityId e) const {
  if (e == kEntBottom) return {};
  if (e == kEntTop) return {kEntBottom};
  if (e >= nodes_.size()) return {kEntBottom};
  if (e < kNumBuiltinEntities) return {};
  if (!nodes_[e].children.empty()) return nodes_[e].children;
  return {kEntBottom};
}

bool GeneralizationLattice::IsKnown(EntityId e) const {
  return e < known_.size() && known_[e];
}

std::string Substitution::Describe(const EntityTable& entities) const {
  switch (kind) {
    case Kind::kGeneralize:
    case Kind::kSpecialize:
      return entities.Name(to) + " instead of " + entities.Name(from);
    case Kind::kDeleteTemplate:
      return "without " + deleted_text;
  }
  return "?";
}

namespace {

// True if a term no longer constrains anything: a variable, ANY or NONE.
bool WeakTerm(const Term& t) {
  return t.is_variable() || t.entity() == kEntTop ||
         t.entity() == kEntBottom;
}

bool FullyWeak(const Template& t) {
  return WeakTerm(t.source) && WeakTerm(t.relationship) &&
         WeakTerm(t.target);
}

// Walks all atoms of the AST, visiting (parent-and, index, atom node).
void VisitAtoms(AstNode* node, AstNode* parent_and,
                const std::function<void(AstNode*, AstNode*)>& fn) {
  switch (node->kind) {
    case NodeKind::kAtom:
      fn(node, parent_and);
      break;
    case NodeKind::kAnd:
      for (auto& c : node->children) VisitAtoms(c.get(), node, fn);
      break;
    case NodeKind::kOr:
      for (auto& c : node->children) VisitAtoms(c.get(), nullptr, fn);
      break;
    case NodeKind::kExists:
    case NodeKind::kForall:
      VisitAtoms(node->children[0].get(),
                 node->children[0]->kind == NodeKind::kAnd
                     ? node->children[0].get()
                     : nullptr,
                 fn);
      break;
  }
}

}  // namespace

std::vector<std::pair<Query, Substitution>> Prober::RetractionSet(
    const Query& query) const {
  std::vector<std::pair<Query, Substitution>> out;

  // Enumerate atom occurrences by walking a clone for each candidate
  // substitution: position `occurrence` within the walk identifies the
  // atom stably across clones.
  struct Site {
    int occurrence;
    int position;  // 0 source, 1 relationship, 2 target
    EntityId from;
    EntityId to;
    Substitution::Kind kind;
  };
  struct DeleteSite {
    int occurrence;
    std::string text;
  };
  std::vector<Site> sites;
  std::vector<DeleteSite> deletions;

  int occurrence = 0;
  VisitAtoms(
      const_cast<AstNode*>(query.root()), nullptr,
      [&](AstNode* atom, AstNode* parent_and) {
        const Template& t = atom->atom;
        if (FullyWeak(t)) {
          // Sec 5.2: templates of variables/ANY/NONE only are weak
          // restrictions — generalize by deleting them (only meaningful
          // inside a conjunction with other conjuncts).
          if (parent_and != nullptr && parent_and->children.size() > 1) {
            deletions.push_back(DeleteSite{
                occurrence, t.DebugString(*entities_, query.var_names())});
          }
        } else {
          for (int pos = 0; pos < 3; ++pos) {
            const Term& term = t.at(pos);
            if (!term.is_entity()) continue;
            EntityId e = term.entity();
            if (pos == 0) {
              for (EntityId to : lattice_->MinimalSpecializations(e)) {
                sites.push_back(Site{occurrence, pos, e, to,
                                     Substitution::Kind::kSpecialize});
              }
            } else {
              for (EntityId to : lattice_->MinimalGeneralizations(e)) {
                sites.push_back(Site{occurrence, pos, e, to,
                                     Substitution::Kind::kGeneralize});
              }
            }
          }
        }
        ++occurrence;
      });

  for (const Site& site : sites) {
    Query clone = query.Clone();
    int idx = 0;
    VisitAtoms(clone.mutable_root(), nullptr,
               [&](AstNode* atom, AstNode*) {
                 if (idx == site.occurrence) {
                   atom->atom.at(site.position) = Term::Entity(site.to);
                 }
                 ++idx;
               });
    Substitution sub;
    sub.kind = site.kind;
    sub.from = site.from;
    sub.to = site.to;
    out.emplace_back(std::move(clone), sub);
  }

  for (const DeleteSite& del : deletions) {
    Query clone = query.Clone();
    int idx = 0;
    AstNode* to_delete = nullptr;
    AstNode* parent = nullptr;
    VisitAtoms(clone.mutable_root(), nullptr,
               [&](AstNode* atom, AstNode* parent_and) {
                 if (idx == del.occurrence) {
                   to_delete = atom;
                   parent = parent_and;
                 }
                 ++idx;
               });
    if (to_delete == nullptr || parent == nullptr) continue;
    auto& kids = parent->children;
    kids.erase(std::remove_if(kids.begin(), kids.end(),
                              [&](const std::unique_ptr<AstNode>& c) {
                                return c.get() == to_delete;
                              }),
               kids.end());
    Substitution sub;
    sub.kind = Substitution::Kind::kDeleteTemplate;
    sub.deleted_text = del.text;
    out.emplace_back(std::move(clone), sub);
  }
  return out;
}

StatusOr<ProbeResult> Prober::Probe(const Query& query,
                                    const ProbeOptions& options) const {
  ProbeResult result;
  Evaluator evaluator(view_, entities_);
  EvalOptions eval_options;
  eval_options.max_rows = options.max_rows_per_result;
  eval_options.join_order = options.join_order;
  eval_options.planner = planner_;
  eval_options.budget = options.budget;

  // Diagnosis: constants of the original query unknown to the database.
  std::set<EntityId> unknown;
  VisitAtoms(const_cast<AstNode*>(query.root()), nullptr,
             [&](AstNode* atom, AstNode*) {
               for (int pos = 0; pos < 3; ++pos) {
                 const Term& t = atom->atom.at(pos);
                 if (t.is_entity() && t.entity() >= kNumBuiltinEntities &&
                     !lattice_->IsKnown(t.entity())) {
                   unknown.insert(t.entity());
                 }
               }
             });
  result.unknown_entities.assign(unknown.begin(), unknown.end());

  LSD_ASSIGN_OR_RETURN(result.original_result,
                       evaluator.Evaluate(query, eval_options));
  if (result.original_result.Success()) {
    result.original_succeeded = true;
    return result;
  }

  struct Candidate {
    Query query;
    std::vector<Substitution> path;
  };
  std::vector<Candidate> frontier;
  {
    Candidate original;
    original.query = query.Clone();
    frontier.push_back(std::move(original));
  }
  std::unordered_set<std::string> visited;
  visited.insert(query.DebugString(*entities_));

  for (int wave = 1; wave <= options.max_waves; ++wave) {
    std::vector<Candidate> next;
    for (const Candidate& c : frontier) {
      for (auto& [q, sub] : RetractionSet(c.query)) {
        std::string key = q.DebugString(*entities_);
        if (!visited.insert(key).second) continue;
        Candidate nc;
        nc.query = std::move(q);
        nc.path = c.path;
        nc.path.push_back(sub);
        next.push_back(std::move(nc));
      }
    }
    if (next.empty()) {
      result.exhausted = true;
      break;
    }
    result.waves = wave;
    const size_t allowed = std::min(
        next.size(), options.max_queries - result.queries_attempted);
    result.queries_attempted += allowed;

    // Existence probes first: a candidate only needs a yes/no here, so
    // the evaluation stops at the first satisfying row (first_row_only
    // short-circuits inside the join). Candidates are independent
    // read-only evaluations over an immutable snapshot, so a wave is
    // probed in parallel with the same discipline as the rule engine's
    // closure rounds; the flags are merged in candidate order below, so
    // the menu is identical at any thread count.
    std::vector<char> succeeded(allowed, 0);
    EvalOptions probe_options = eval_options;
    probe_options.first_row_only = true;
    probe_options.max_rows = 1;
    auto probe_range = [&](size_t begin, size_t count) {
      for (size_t i = begin; i < begin + count; ++i) {
        // A tripped budget sticks on the shared token; stop burning
        // candidates (the wave-boundary Check below surfaces the error).
        if (options.budget != nullptr && options.budget->cancelled()) break;
        auto evaluated = evaluator.Evaluate(next[i].query, probe_options);
        // Unsafe variants are skipped.
        succeeded[i] = evaluated.ok() && evaluated->Success() ? 1 : 0;
      }
    };
    size_t num_threads = options.num_threads;
    if (num_threads == 0) {
      num_threads = std::max(1u, std::thread::hardware_concurrency());
    }
    const size_t workers = std::max<size_t>(
        1, std::min(num_threads, allowed / kMinQueriesPerWorker));
    if (workers == 1) {
      probe_range(0, allowed);
    } else {
      std::vector<std::thread> threads;
      threads.reserve(workers - 1);
      const size_t chunk = (allowed + workers - 1) / workers;
      for (size_t w = 1; w < workers; ++w) {
        const size_t begin = std::min(allowed, w * chunk);
        const size_t count = std::min(allowed - begin, chunk);
        threads.emplace_back(
            [&probe_range, begin, count] { probe_range(begin, count); });
      }
      probe_range(0, std::min(allowed, chunk));
      for (std::thread& t : threads) t.join();
    }

    // Wave boundary: surface a budget trip as the probe's own error —
    // the per-candidate evaluations above swallow eval failures (unsafe
    // variants are skipped), which must not hide a cancellation.
    if (options.budget != nullptr) {
      LSD_RETURN_IF_ERROR(options.budget->Check());
    }

    // Materialize full results only for the successes (typically a
    // handful per wave), sequentially and in candidate order.
    for (size_t i = 0; i < allowed; ++i) {
      if (!succeeded[i]) continue;
      auto evaluated = evaluator.Evaluate(next[i].query, eval_options);
      if (!evaluated.ok() && (evaluated.status().IsDeadlineExceeded() ||
                              evaluated.status().IsCancelled() ||
                              evaluated.status().IsResourceExhausted())) {
        return evaluated.status();
      }
      if (!evaluated.ok() || !evaluated->Success()) continue;
      ProbeSuccess s;
      s.query = next[i].query.Clone();
      s.substitutions = next[i].path;
      s.result = std::move(*evaluated);
      result.successes.push_back(std::move(s));
    }
    if (!result.successes.empty()) break;
    if (result.queries_attempted >= options.max_queries) break;
    frontier = std::move(next);
  }
  return result;
}

std::string ProbeResult::Menu(const EntityTable& entities) const {
  if (original_succeeded) {
    return "Query succeeded.\n";
  }
  std::string out = "Query failed. Retrying...\n";
  if (!unknown_entities.empty()) {
    out += "Note: no such database entities:";
    for (EntityId e : unknown_entities) {
      out += " " + entities.Name(e);
    }
    out += "\n";
  }
  if (successes.empty()) {
    out += exhausted ? "No broader query succeeds.\n"
                     : "No success within the retraction budget.\n";
    return out;
  }
  for (size_t i = 0; i < successes.size(); ++i) {
    out += std::to_string(i + 1) + ". Success with ";
    std::vector<std::string> descs;
    for (const Substitution& s : successes[i].substitutions) {
      descs.push_back(s.Describe(entities));
    }
    for (size_t j = 0; j < descs.size(); ++j) {
      if (j > 0) out += " and ";
      out += descs[j];
    }
    out += "\n";
  }
  out += "You may select.\n";
  return out;
}

}  // namespace lsd
