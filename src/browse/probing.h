// Browsing by probing (Sec 5): every failure of a query is interpreted
// as overqualification, and a set of minimally broader "retraction"
// queries is attempted automatically.
//
// Broadness follows the inference rules (1) of Sec 3.1:
//   - an entity in a *source* position is replaced by a minimal
//     specialization (facts about a class hold of its subclasses, so the
//     narrower class makes a weaker claim: "all freshmen love z" is
//     broader than "all students love z");
//   - an entity in a *relationship* or *target* position is replaced by
//     a minimal generalization ("likes" is broader than "loves").
// Terminal substitutions reach NONE resp. ANY; a template whose every
// position is a variable, ANY or NONE is deleted outright (Sec 5.2).
//
// Retraction proceeds in waves: wave k holds the queries k substitutions
// away from the original. The first wave containing a successful query
// stops the search, and the successes are presented as the paper's menu.
#ifndef LSD_BROWSE_PROBING_H_
#define LSD_BROWSE_PROBING_H_

#include <string>
#include <vector>

#include "query/ast.h"
#include "query/evaluator.h"
#include "rules/closure_view.h"
#include "util/status.h"

namespace lsd {

// The covering relation ("minimal generalization", Sec 5.1) of the
// closure's generalization order, restricted to regular entities.
// Hierarchy roots cover to ANY; leaves specialize to NONE.
class GeneralizationLattice {
 public:
  static GeneralizationLattice Build(const ClosureView& view);

  // Minimal generalizations of e. Never empty for a regular entity
  // (falls back to {ANY}); empty for ANY itself and for builtins.
  std::vector<EntityId> MinimalGeneralizations(EntityId e) const;

  // Minimal specializations of e. Falls back to {NONE}; empty for NONE
  // itself and for builtins other than ANY.
  std::vector<EntityId> MinimalSpecializations(EntityId e) const;

  // True if the entity participates in any stored fact — probing reports
  // entities that do not as "no such database entities".
  bool IsKnown(EntityId e) const;

 private:
  struct Node {
    std::vector<EntityId> parents;   // covers above
    std::vector<EntityId> children;  // covers below
  };
  std::vector<Node> nodes_;       // indexed by EntityId
  std::vector<bool> known_;       // appears in some stored fact
  size_t num_entities_ = 0;
};

// One substitution step on the way from the original query to a
// retraction query.
struct Substitution {
  enum class Kind : uint8_t {
    kGeneralize,      // relationship/target: entity -> broader entity
    kSpecialize,      // source: entity -> narrower entity
    kDeleteTemplate,  // a fully weakened template was dropped
  };
  Kind kind = Kind::kGeneralize;
  EntityId from = 0;
  EntityId to = 0;           // unused for kDeleteTemplate
  std::string deleted_text;  // rendered template, kDeleteTemplate only

  // "FRESHMAN instead of STUDENT" / "without (?Z, ANY, FREE)".
  std::string Describe(const EntityTable& entities) const;
};

struct ProbeOptions {
  int max_waves = 4;
  size_t max_queries = 20'000;  // total retraction queries attempted
  size_t max_rows_per_result = 1'000;

  // Conjunct ordering for the probe evaluations (ablation E11).
  JoinOrder join_order = JoinOrder::kEstimatedCost;

  // Worker threads for a wave's candidate probes (0 = hardware
  // concurrency, 1 = sequential). A wave's candidates are independent
  // existence checks; they are probed in parallel and the results merged
  // in candidate order, so the menu is identical at any thread count.
  unsigned num_threads = 1;

  // Optional cooperative cancellation / deadline token. Borrowed; must
  // outlive the Probe call. Threaded into every candidate evaluation and
  // checked between candidates and at wave boundaries; a tripped budget
  // aborts the probe with its typed error.
  const QueryBudget* budget = nullptr;
};

struct ProbeSuccess {
  Query query;
  std::vector<Substitution> substitutions;
  ResultSet result;
};

struct ProbeResult {
  bool original_succeeded = false;
  ResultSet original_result;

  int waves = 0;                 // waves explored (0 if original succeeded)
  size_t queries_attempted = 0;  // retraction queries evaluated
  std::vector<ProbeSuccess> successes;  // of the first successful wave
  bool exhausted = false;  // search space emptied with no success

  // Entities of the original query that appear in no stored fact — the
  // paper's "no such database entities" diagnosis.
  std::vector<EntityId> unknown_entities;

  // Renders the paper's menu:
  //   Query failed. Retrying...
  //   1. Success with FRESHMAN instead of STUDENT
  //   ...
  std::string Menu(const EntityTable& entities) const;
};

class Prober {
 public:
  // All borrowed; the lattice must match the view's closure. `planner`
  // (optional) is a shared plan cache valid for the view's snapshot —
  // a wave's sibling queries differ only in constants, so they all hit
  // one cached plan.
  Prober(const ClosureView* view, const GeneralizationLattice* lattice,
         const EntityTable* entities, PlannerCache* planner = nullptr)
      : view_(view),
        lattice_(lattice),
        entities_(entities),
        planner_(planner) {}

  // The retraction set of `query`: all minimally broader queries, each
  // tagged with the substitution that produced it.
  std::vector<std::pair<Query, Substitution>> RetractionSet(
      const Query& query) const;

  // Full automatic retraction (Sec 5.2).
  StatusOr<ProbeResult> Probe(const Query& query,
                              const ProbeOptions& options = {}) const;

 private:
  const ClosureView* view_;
  const GeneralizationLattice* lattice_;
  const EntityTable* entities_;
  PlannerCache* planner_;
};

}  // namespace lsd

#endif  // LSD_BROWSE_PROBING_H_
