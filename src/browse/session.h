// An interactive browsing session (Sec 4.1): "examine the neighborhood
// of a fact, pick a fact from this neighborhood, examine its
// neighborhood, and so on". BrowseSession tracks the trail so a browser
// can back out of a dead end and resume — the aisles metaphor made
// stateful.
#ifndef LSD_BROWSE_SESSION_H_
#define LSD_BROWSE_SESSION_H_

#include <string>
#include <vector>

#include "core/loose_db.h"
#include "util/status.h"

namespace lsd {

class BrowseSession {
 public:
  // `db` is borrowed and must outlive the session.
  explicit BrowseSession(LooseDb* db) : db_(db) {}

  // Moves the session to `entity` and returns its neighborhood. Visiting
  // truncates any forward history (like a web browser).
  StatusOr<NeighborhoodView> Visit(std::string_view entity);

  // Re-visit the previous / next entity in the trail. FailedPrecondition
  // when there is nothing to go back/forward to.
  StatusOr<NeighborhoodView> Back();
  StatusOr<NeighborhoodView> Forward();

  bool CanGoBack() const { return position_ > 0; }
  bool CanGoForward() const {
    return !trail_.empty() && position_ + 1 < trail_.size();
  }

  // The entity currently visited; kAnyEntity before the first Visit.
  EntityId current() const {
    return trail_.empty() ? kAnyEntity : trail_[position_];
  }

  // The full trail, oldest first.
  const std::vector<EntityId>& trail() const { return trail_; }

  // "JOHN > PC#9-WAM > MOZART" with the current position bracketed.
  std::string Breadcrumbs() const;

  // Browsing by probing (Sec 5) from within the session: runs the query
  // with automatic retraction against the session's database, reusing
  // its cached lattice and query plans.
  StatusOr<ProbeResult> Probe(std::string_view query_text,
                              const ProbeOptions& options = {});

 private:
  StatusOr<NeighborhoodView> NeighborhoodOfCurrent();

  LooseDb* db_;
  std::vector<EntityId> trail_;
  size_t position_ = 0;
};

}  // namespace lsd

#endif  // LSD_BROWSE_SESSION_H_
