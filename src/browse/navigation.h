// Browsing by navigation (Sec 4.1): iteratively examine the neighborhood
// of an entity, pick an entity from it, examine its neighborhood, and so
// on. Navigation queries are template queries (a restricted form of the
// standard language), so navigation and querying interleave freely.
//
// The (source, *, target) form additionally surfaces composed
// relationships — "all the different associations between them" — via
// the composition engine (Sec 3.7).
#ifndef LSD_BROWSE_NAVIGATION_H_
#define LSD_BROWSE_NAVIGATION_H_

#include <string>
#include <vector>

#include "rules/closure_view.h"
#include "rules/composition.h"
#include "util/status.h"

namespace lsd {

// The neighborhood of one entity, grouped the way the paper's example
// tables present it: the entity's classes/generalizations first, then
// one group per relationship.
struct NeighborhoodView {
  EntityId entity = 0;

  // Closure targets of (entity, IN, x) — "JOHN**: PERSON, EMPLOYEE, ...".
  std::vector<EntityId> classes;
  // Closure targets of (entity, ISA, x), excluding the reflexive fact
  // and ANY.
  std::vector<EntityId> generalizations;

  struct RelationGroup {
    EntityId relationship;
    std::vector<EntityId> entities;  // targets (outgoing) / sources (in)
  };
  std::vector<RelationGroup> outgoing;  // (entity, r, x), r not IN/ISA
  std::vector<RelationGroup> incoming;  // (x, r, entity), r not IN/ISA

  // Renders the paper-style table: one header row, one (multi-line) data
  // row; first column "<ENTITY> **" holds classes and generalizations.
  std::string Render(const EntityTable& entities) const;
};

// One association between a source and a target entity: either a direct
// fact or a composed path.
struct Association {
  EntityId relationship;    // direct or minted composed relationship
  std::vector<Fact> chain;  // size 1 for direct facts
};

class Navigator {
 public:
  // `view` is the closure to browse; `entities` is mutated only to mint
  // composed relationship names.
  Navigator(const ClosureView* view, EntityTable* entities)
      : view_(view), entities_(entities), composer_(entities) {}

  // `budget` (optional) is ticked per scanned fact; a tripped budget
  // aborts the scan with its typed error.
  StatusOr<NeighborhoodView> Neighborhood(
      EntityId entity, const QueryBudget* budget = nullptr) const;

  // All associations between two entities: direct facts (s, r, t) plus
  // simple-path compositions within `options.limit`.
  StatusOr<std::vector<Association>> Associations(
      EntityId source, EntityId target,
      const CompositionOptions& options) const;

  // Paper-style one-row table "SOURCE * TARGET" listing associations.
  std::string RenderAssociations(EntityId source, EntityId target,
                                 const std::vector<Association>& assocs) const;

 private:
  const ClosureView* view_;
  EntityTable* entities_;
  CompositionEngine composer_;
};

}  // namespace lsd

#endif  // LSD_BROWSE_NAVIGATION_H_
