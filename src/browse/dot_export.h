// Graphviz DOT export of the fact graph — a visualization aid for
// browsing ("strolling along the aisles" with a map). Generalization
// and membership edges are styled distinctly so the taxonomy reads at a
// glance.
#ifndef LSD_BROWSE_DOT_EXPORT_H_
#define LSD_BROWSE_DOT_EXPORT_H_

#include <string>

#include "rules/closure_view.h"
#include "util/status.h"

namespace lsd {

struct DotOptions {
  // Include ISA/IN edges (dashed/dotted); SYN/INV/CONTRA and
  // comparators are never exported.
  bool include_taxonomy = true;
  // Export asserted facts only (false) or the whole stored closure
  // (true). Derived facts render gray.
  bool include_derived = false;
  // Safety valve.
  size_t max_facts = 10'000;
};

// The whole database as a directed graph.
StatusOr<std::string> ExportDot(const ClosureView& view,
                                const DotOptions& options = {});

// Only the fact subgraph within `radius` associations of `center`
// (undirected reachability, like browse/proximity.h).
StatusOr<std::string> ExportNeighborhoodDot(const ClosureView& view,
                                            EntityId center, int radius,
                                            const DotOptions& options = {});

}  // namespace lsd

#endif  // LSD_BROWSE_DOT_EXPORT_H_
