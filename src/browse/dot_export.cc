#include "browse/dot_export.h"

#include <unordered_set>

#include "browse/proximity.h"
#include "rules/math_provider.h"

namespace lsd {

namespace {

bool Exportable(const ClosureView& view, const Fact& f,
                const DotOptions& options) {
  EntityId r = f.relationship;
  if (MathProvider::IsComparator(r)) return false;
  if (r == kEntSyn || r == kEntInv || r == kEntContra ||
      r == kEntClassRel) {
    return false;
  }
  if ((r == kEntIsa || r == kEntIn) && !options.include_taxonomy) {
    return false;
  }
  if (!options.include_derived && !view.store().Contains(f)) return false;
  return true;
}

// DOT identifiers: quote names and escape quotes/backslashes.
std::string Quote(const std::string& name) {
  std::string out = "\"";
  for (char c : name) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += "\"";
  return out;
}

std::string EdgeLine(const ClosureView& view, const Fact& f) {
  const EntityTable& entities = view.store().entities();
  std::string line = "  " + Quote(entities.Name(f.source)) + " -> " +
                     Quote(entities.Name(f.target));
  std::string attrs;
  if (f.relationship == kEntIsa) {
    attrs = "style=dashed, label=\"isa\"";
  } else if (f.relationship == kEntIn) {
    attrs = "style=dotted, label=\"in\"";
  } else {
    attrs = "label=" + Quote(entities.Name(f.relationship));
  }
  if (!view.store().Contains(f)) {
    attrs += ", color=gray, fontcolor=gray";  // derived fact
  }
  return line + " [" + attrs + "];\n";
}

StatusOr<std::string> Render(const ClosureView& view,
                             const std::vector<Fact>& facts,
                             const DotOptions& options) {
  if (facts.size() > options.max_facts) {
    return Status::OutOfRange("DOT export exceeds max_facts (" +
                              std::to_string(options.max_facts) + ")");
  }
  std::string out = "digraph lsd {\n  rankdir=LR;\n  node [shape=box];\n";
  for (const Fact& f : facts) out += EdgeLine(view, f);
  out += "}\n";
  return out;
}

}  // namespace

StatusOr<std::string> ExportDot(const ClosureView& view,
                                const DotOptions& options) {
  std::vector<Fact> facts;
  view.ForEach(Pattern(), [&](const Fact& f) {
    if (Exportable(view, f, options)) facts.push_back(f);
    return true;
  });
  return Render(view, facts, options);
}

StatusOr<std::string> ExportNeighborhoodDot(const ClosureView& view,
                                            EntityId center, int radius,
                                            const DotOptions& options) {
  ProximityOptions prox;
  prox.include_meta_relationships = options.include_taxonomy;
  LSD_ASSIGN_OR_RETURN(std::vector<NearbyEntity> nearby,
                       Nearby(view, center, radius, prox));
  std::unordered_set<EntityId> in_scope{center};
  for (const NearbyEntity& n : nearby) in_scope.insert(n.entity);

  std::vector<Fact> facts;
  for (EntityId e : in_scope) {
    view.ForEach(Pattern(e, kAnyEntity, kAnyEntity), [&](const Fact& f) {
      if (in_scope.count(f.target) && Exportable(view, f, options)) {
        facts.push_back(f);
      }
      return true;
    });
  }
  return Render(view, facts, options);
}

}  // namespace lsd
