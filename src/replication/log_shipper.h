// The primary's replication endpoint: a listener that ships the WAL to
// read-only followers.
//
// One accept thread plus one thread per follower (followers are few —
// single digits — unlike browse sessions, so thread-per-connection is
// the right shape here). A follower connects, sends one kSubscribe
// frame with its resume position, and from then on only receives:
//
//   kOk         subscription accepted (echoes the subscribe request id)
//   kErr        subscription rejected, or the log was checkpointed out
//               from under a mid-catch-up follower; the connection
//               closes and the follower resubscribes
//   kSnapshot*  cold / unresumable catch-up: the pinned tip epoch,
//               serialized as a snapshot and streamed in chunks, then
//               log streaming continues from the snapshot's position
//   kLogChunk*  raw WAL record bytes, in order
//   kHeartbeat  idle liveness + staleness stamps
//
// The shipping watermark is the PUBLISHED tip epoch's WAL position —
// never the log's raw durable position. Bytes past the watermark are
// fsynced but their commit group may still fail before publication
// (Warm error, injected fault), in which case no client was ever acked;
// shipping them would let a follower apply writes the primary never
// acknowledged. Reading up to the watermark also makes chunk stamps
// exact: everything below it belongs to the published epoch whose
// (sequence, publish_ms) the chunk carries.
//
// Failure matrix (see DESIGN.md "Replication & follower reads"):
//   follower gone     -> send fails, thread exits, resources reaped
//   segment vanished  -> kErr + close (checkpoint raced the catch-up);
//                        the follower reconnects and the unresumable
//                        position falls back to a snapshot
//   primary shutdown  -> Stop() closes every socket; followers reconnect
//                        with backoff until the primary returns
#ifndef LSD_REPLICATION_LOG_SHIPPER_H_
#define LSD_REPLICATION_LOG_SHIPPER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/protocol.h"
#include "server/shared_store.h"
#include "util/status.h"

namespace lsd {

struct LogShipperOptions {
  // 0 picks an ephemeral port; read it back with port() after Start().
  uint16_t port = 0;
  int listen_backlog = 16;
  // Bytes of WAL records per kLogChunk (also the kSnapshot chunk size).
  size_t chunk_bytes = 256 * 1024;
  // Idle heartbeat cadence, and the granularity at which a serving
  // thread notices Stop().
  uint64_t heartbeat_ms = 500;
  // Admission bound on concurrent followers.
  size_t max_followers = 16;
  // How long an accepted connection may dawdle before its kSubscribe
  // arrives. A peer that connects and sends nothing would otherwise
  // pin a follower slot (and its thread) until Stop(), starving
  // admission for real followers. 0 disables the deadline.
  uint64_t handshake_timeout_ms = 5000;
};

class LogShipper {
 public:
  // `store` must outlive the shipper and must be durable (the WAL is
  // what gets shipped); Start() enforces it.
  LogShipper(SharedStore* store, const LogShipperOptions& options = {});
  ~LogShipper();

  LogShipper(const LogShipper&) = delete;
  LogShipper& operator=(const LogShipper&) = delete;

  Status Start();
  // Closes the listener and every follower connection, joins all
  // threads. Safe to call twice; the destructor calls it.
  void Stop();

  // The bound port (after Start()).
  uint16_t port() const { return port_; }

  // Observability (the primary's stats replication block).
  uint64_t followers() const { return followers_.load(); }
  uint64_t subscriptions() const { return subscriptions_.load(); }
  uint64_t snapshots_shipped() const { return snapshots_shipped_.load(); }
  uint64_t chunks_shipped() const { return chunks_shipped_.load(); }
  uint64_t bytes_shipped() const { return bytes_shipped_.load(); }
  uint64_t heartbeats_sent() const { return heartbeats_sent_.load(); }

 private:
  struct Follower {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void AcceptLoop(int listen_fd);
  void ServeFollower(Follower* follower, uint64_t id);
  // The subscribe handshake + streaming loop; any error ends the
  // connection (the follower reconnects).
  Status RunFollower(int fd, uint64_t id);
  // Serializes the pinned tip and streams it as kSnapshot frames.
  Status StreamSnapshot(int fd, const EpochPtr& tip, uint64_t id);
  Status SendFrame(int fd, FrameType type, uint64_t request_id,
                   std::string_view payload);
  // Unshipped record bytes between `pos` and the watermark, from the
  // live segment inventory (headers excluded; they are never shipped).
  uint64_t BehindBytes(const WalPosition& pos,
                       const WalPosition& watermark) const;
  void ReapFinished();

  SharedStore* store_;
  LogShipperOptions options_;
  std::string wal_base_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;

  std::mutex followers_mu_;
  std::vector<std::unique_ptr<Follower>> follower_list_;
  uint64_t next_follower_id_ = 1;

  std::atomic<uint64_t> followers_{0};
  std::atomic<uint64_t> subscriptions_{0};
  std::atomic<uint64_t> snapshots_shipped_{0};
  std::atomic<uint64_t> chunks_shipped_{0};
  std::atomic<uint64_t> bytes_shipped_{0};
  std::atomic<uint64_t> heartbeats_sent_{0};
};

}  // namespace lsd

#endif  // LSD_REPLICATION_LOG_SHIPPER_H_
