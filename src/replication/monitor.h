// The bounded-staleness contract between a follower and its readers.
//
// A follower serves the paper's read verbs from its replica of the
// primary's store. Staleness is first-class: the replication client
// records, on every frame from the primary, how far behind the replica
// is — in bytes of unshipped log (lag_bytes) and in primary wall-clock
// milliseconds between the primary's tip epoch and the epoch the
// replica has fully applied (lag_ms). Both stamps come from the
// PRIMARY's clock, so lag_ms needs no cross-host clock agreement.
//
// Silence is staleness too: a partitioned follower stops receiving
// stamps, so its computed lag would freeze while its actual staleness
// grows. Past a heartbeat grace window, the local time since the last
// frame is added to lag_ms — a follower cut off from its primary goes
// stale deterministically, bounded by grace + max_lag_ms.
//
// The monitor is written by one thread (the replication client) and
// sampled by many (every server session gating a read, the stats verb):
// all fields are relaxed atomics; a read gate is a handful of loads.
#ifndef LSD_REPLICATION_MONITOR_H_
#define LSD_REPLICATION_MONITOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "store/persistence.h"
#include "util/status.h"

namespace lsd {

// The follower's staleness bounds (lsd_serve --max-lag-ms /
// --max-lag-bytes). A zero bound is unbounded; with both zero the
// follower serves reads no matter how far behind it is.
struct ReplicationBounds {
  uint64_t max_lag_ms = 0;
  uint64_t max_lag_bytes = 0;
  // Silence allowance: local ms without any frame from the primary
  // before the silent gap starts counting toward lag_ms. Covers the
  // normal heartbeat cadence plus scheduling jitter.
  uint64_t heartbeat_grace_ms = 3000;
};

// One coherent-enough sample for the stats verb (individual fields are
// atomically read; the set is not a snapshot, which stats can tolerate).
struct ReplicationStatus {
  bool connected = false;
  bool ever_synced = false;     // at least one frame fully processed
  uint64_t primary_epoch = 0;   // newest epoch the primary reported
  uint64_t primary_epoch_ms = 0;
  uint64_t applied_epoch = 0;   // newest primary epoch fully applied here
  uint64_t applied_epoch_ms = 0;
  uint64_t lag_bytes = 0;       // unshipped log bytes at the last frame
  uint64_t lag_ms = 0;          // epoch-stamp gap + silence past grace
  uint64_t silence_ms = 0;      // local ms since the last frame
  WalPosition applied_pos;      // resume coordinate (record boundary)
  uint64_t chunks_applied = 0;
  uint64_t records_applied = 0;
  uint64_t snapshots_loaded = 0;
  uint64_t reconnects = 0;
};

class ReplicationMonitor {
 public:
  explicit ReplicationMonitor(const ReplicationBounds& bounds = {})
      : bounds_(bounds) {}

  ReplicationMonitor(const ReplicationMonitor&) = delete;
  ReplicationMonitor& operator=(const ReplicationMonitor&) = delete;

  const ReplicationBounds& bounds() const { return bounds_; }

  // ---- Writer side (the replication client thread) -----------------------

  void SetConnected(bool connected) {
    connected_.store(connected, std::memory_order_relaxed);
  }

  // Every kLogChunk/kHeartbeat carries the primary's tip stamps and the
  // shipper's behind-bytes accounting; record them and reset silence.
  void RecordFrame(uint64_t primary_epoch, uint64_t primary_epoch_ms,
                   uint64_t behind_bytes) {
    primary_epoch_.store(primary_epoch, std::memory_order_relaxed);
    primary_epoch_ms_.store(primary_epoch_ms, std::memory_order_relaxed);
    lag_bytes_.store(behind_bytes, std::memory_order_relaxed);
    last_frame_ms_.store(NowMs(), std::memory_order_relaxed);
    ever_synced_.store(true, std::memory_order_relaxed);
  }

  // The replica's state now equals this primary epoch exactly (a chunk
  // applied with nothing behind and nothing buffered, an idle
  // heartbeat, or a completed snapshot load).
  void RecordApplied(uint64_t epoch, uint64_t epoch_ms) {
    applied_epoch_.store(epoch, std::memory_order_relaxed);
    applied_epoch_ms_.store(epoch_ms, std::memory_order_relaxed);
  }

  void RecordPosition(const WalPosition& pos) {
    pos_generation_.store(pos.generation, std::memory_order_relaxed);
    pos_segment_.store(pos.segment_seq, std::memory_order_relaxed);
    pos_offset_.store(pos.offset, std::memory_order_relaxed);
  }

  void AddChunk(uint64_t records) {
    chunks_.fetch_add(1, std::memory_order_relaxed);
    records_.fetch_add(records, std::memory_order_relaxed);
  }
  void AddSnapshot() { snapshots_.fetch_add(1, std::memory_order_relaxed); }
  void AddReconnect() {
    reconnects_.fetch_add(1, std::memory_order_relaxed);
  }

  // ---- Reader side (sessions and stats) ----------------------------------

  ReplicationStatus Sample() const {
    ReplicationStatus s;
    s.connected = connected_.load(std::memory_order_relaxed);
    s.ever_synced = ever_synced_.load(std::memory_order_relaxed);
    s.primary_epoch = primary_epoch_.load(std::memory_order_relaxed);
    s.primary_epoch_ms =
        primary_epoch_ms_.load(std::memory_order_relaxed);
    s.applied_epoch = applied_epoch_.load(std::memory_order_relaxed);
    s.applied_epoch_ms =
        applied_epoch_ms_.load(std::memory_order_relaxed);
    s.lag_bytes = lag_bytes_.load(std::memory_order_relaxed);
    s.applied_pos =
        WalPosition{pos_generation_.load(std::memory_order_relaxed),
                    pos_segment_.load(std::memory_order_relaxed),
                    pos_offset_.load(std::memory_order_relaxed)};
    const uint64_t last = last_frame_ms_.load(std::memory_order_relaxed);
    if (last != 0) {
      const uint64_t now = NowMs();
      s.silence_ms = now > last ? now - last : 0;
    }
    s.lag_ms = s.primary_epoch_ms > s.applied_epoch_ms
                   ? s.primary_epoch_ms - s.applied_epoch_ms
                   : 0;
    if (s.silence_ms > bounds_.heartbeat_grace_ms) {
      s.lag_ms += s.silence_ms - bounds_.heartbeat_grace_ms;
    }
    s.chunks_applied = chunks_.load(std::memory_order_relaxed);
    s.records_applied = records_.load(std::memory_order_relaxed);
    s.snapshots_loaded = snapshots_.load(std::memory_order_relaxed);
    s.reconnects = reconnects_.load(std::memory_order_relaxed);
    return s;
  }

  // The read gate: OK when this replica is fresh enough to serve a
  // read under its configured bounds. The error message leads with
  // "stale:" — the marker clients (lsd_client's follower routing) and
  // tests key on.
  Status CheckReadable() const {
    if (bounds_.max_lag_ms == 0 && bounds_.max_lag_bytes == 0) {
      return Status::OK();
    }
    const ReplicationStatus s = Sample();
    if (!s.ever_synced) {
      return Status::FailedPrecondition(
          "stale: follower has not yet heard from its primary");
    }
    if (bounds_.max_lag_bytes != 0 && s.lag_bytes > bounds_.max_lag_bytes) {
      return Status::FailedPrecondition(
          "stale: follower is " + std::to_string(s.lag_bytes) +
          " log bytes behind (bound " +
          std::to_string(bounds_.max_lag_bytes) + ")");
    }
    if (bounds_.max_lag_ms != 0 && s.lag_ms > bounds_.max_lag_ms) {
      return Status::FailedPrecondition(
          "stale: follower is " + std::to_string(s.lag_ms) +
          " ms behind (bound " + std::to_string(bounds_.max_lag_ms) +
          "; applied epoch " + std::to_string(s.applied_epoch) +
          ", primary epoch " + std::to_string(s.primary_epoch) + ")");
    }
    return Status::OK();
  }

 private:
  // Local monotonic ms — only differences are used (silence), so the
  // epoch of this clock never matters.
  static uint64_t NowMs() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  const ReplicationBounds bounds_;
  std::atomic<bool> connected_{false};
  std::atomic<bool> ever_synced_{false};
  std::atomic<uint64_t> primary_epoch_{0};
  std::atomic<uint64_t> primary_epoch_ms_{0};
  std::atomic<uint64_t> applied_epoch_{0};
  std::atomic<uint64_t> applied_epoch_ms_{0};
  std::atomic<uint64_t> lag_bytes_{0};
  std::atomic<uint64_t> last_frame_ms_{0};
  std::atomic<uint64_t> pos_generation_{0};
  std::atomic<uint64_t> pos_segment_{0};
  std::atomic<uint64_t> pos_offset_{0};
  std::atomic<uint64_t> chunks_{0};
  std::atomic<uint64_t> records_{0};
  std::atomic<uint64_t> snapshots_{0};
  std::atomic<uint64_t> reconnects_{0};
};

}  // namespace lsd

#endif  // LSD_REPLICATION_MONITOR_H_
