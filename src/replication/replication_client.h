// The follower's replication driver: one background thread that keeps
// a read-only SharedStore converged with a primary's log.
//
// Lifecycle per connection: connect -> kSubscribe{applied position} ->
// apply what arrives. kSnapshot chunks are reassembled into a scratch
// file, Recover()ed into a fresh LooseDb, and swapped in wholesale via
// SharedStore::ReplaceTip. kLogChunk bytes feed a WalRecordParser;
// every complete record is applied through the store's ordinary
// group-commit path (one Commit per chunk), so followers publish
// epochs exactly the way primaries do and browse sessions pin them
// unchanged. Any error — connection loss, a primary restart, an
// injected fault — tears the connection down and reconnects with
// exponential backoff, resubscribing from the last record-boundary
// position (chunk start + bytes fed - bytes still buffered in the
// record parser, which is exact because chunks never span segments and
// records never span rotations).
//
// Committed-prefix discipline: the shipper only sends bytes at or
// below the primary's published (acked) watermark, and the client only
// advances its resume position past bytes it has fully applied. The
// replica therefore only ever holds a prefix of the primary's acked
// history — never an unacked suffix, never a gap.
//
// Staleness bookkeeping goes to a ReplicationMonitor: primary stamps
// from every frame, applied stamps whenever the replica provably
// equals the primary tip (chunk with behind_bytes == 0 fully applied,
// idle heartbeat, completed snapshot load). Sessions gate reads on it.
//
// Failpoints: repl.client.send (subscribe), repl.client.recv (frame
// read), repl.client.apply (before applying a chunk).
#ifndef LSD_REPLICATION_REPLICATION_CLIENT_H_
#define LSD_REPLICATION_REPLICATION_CLIENT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>

#include "replication/monitor.h"
#include "server/shared_store.h"
#include "util/status.h"

namespace lsd {

struct ReplicationClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  // Landing area for streamed snapshots (<scratch_prefix>.snap); must
  // be writable. Required.
  std::string scratch_prefix;
  uint64_t backoff_base_ms = 100;
  uint64_t backoff_max_ms = 2000;
};

class ReplicationClient {
 public:
  // `store` is the follower's (non-durable) SharedStore; `monitor`
  // receives staleness updates. Both must outlive the client.
  ReplicationClient(SharedStore* store, ReplicationMonitor* monitor,
                    const ReplicationClientOptions& options);
  ~ReplicationClient();

  ReplicationClient(const ReplicationClient&) = delete;
  ReplicationClient& operator=(const ReplicationClient&) = delete;

  Status Start();
  // Disconnects and joins the driver thread. Safe to call twice.
  void Stop();

  // The last error that ended a connection (observability; the client
  // keeps reconnecting regardless).
  Status last_error() const;

 private:
  void Run();
  // One connection lifetime: subscribe, then apply frames until error.
  Status Serve(int fd);
  Status HandleLogChunk(const std::string& payload);
  Status HandleSnapshotChunk(const std::string& payload);
  Status HandleHeartbeat(const std::string& payload);
  // Applies parsed records through the store's commit path.
  Status ApplyRecords(const std::vector<WalRecord>& records);
  void FinishSnapshotFile();
  // Interruptible sleep; false when Stop() was requested.
  bool SleepMs(uint64_t ms);

  SharedStore* store_;
  ReplicationMonitor* monitor_;
  ReplicationClientOptions options_;

  std::thread thread_;
  std::atomic<bool> running_{false};
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;

  std::mutex fd_mu_;
  int fd_ = -1;  // live socket, for Stop() to shut down

  mutable std::mutex error_mu_;
  Status last_error_;

  // Driver-thread-only stream state.
  WalRecordParser record_parser_;
  WalPosition fed_pos_;      // coordinate of the next byte the parser
                             // expects (chunk continuity check)
  WalPosition resume_pos_;   // last record-boundary position applied
  bool have_stream_ = false;  // fed_pos_ is meaningful
  std::FILE* snap_file_ = nullptr;  // in-flight snapshot reassembly
  uint64_t snap_received_ = 0;
  uint64_t snap_total_ = 0;
};

}  // namespace lsd

#endif  // LSD_REPLICATION_REPLICATION_CLIENT_H_
