#include "replication/wire.h"

#include <cstring>

namespace lsd {

namespace {

inline void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

inline uint64_t GetU64(const unsigned char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

// Reads `count` u64s from the payload head; false when too short.
bool TakeU64s(std::string_view payload, size_t count, uint64_t* out) {
  if (payload.size() < count * 8) return false;
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(payload.data());
  for (size_t i = 0; i < count; ++i) out[i] = GetU64(p + 8 * i);
  return true;
}

}  // namespace

std::string EncodeSubscribe(const SubscribeRequest& req) {
  std::string out;
  PutU64(&out, req.pos.generation);
  PutU64(&out, req.pos.segment_seq);
  PutU64(&out, req.pos.offset);
  return out;
}

Status DecodeSubscribe(std::string_view payload, SubscribeRequest* out) {
  uint64_t v[3];
  if (!TakeU64s(payload, 3, v) || payload.size() != 24) {
    return Status::InvalidArgument("subscribe payload must be 24 bytes");
  }
  out->pos = WalPosition{v[0], v[1], v[2]};
  return Status::OK();
}

std::string EncodeLogChunk(const LogChunk& chunk) {
  std::string out;
  out.reserve(48 + chunk.records.size());
  PutU64(&out, chunk.pos.generation);
  PutU64(&out, chunk.pos.segment_seq);
  PutU64(&out, chunk.pos.offset);
  PutU64(&out, chunk.primary_epoch);
  PutU64(&out, chunk.primary_epoch_ms);
  PutU64(&out, chunk.behind_bytes);
  out.append(chunk.records);
  return out;
}

Status DecodeLogChunk(std::string_view payload, LogChunk* out) {
  uint64_t v[6];
  if (!TakeU64s(payload, 6, v)) {
    return Status::InvalidArgument("log-chunk payload shorter than header");
  }
  out->pos = WalPosition{v[0], v[1], v[2]};
  out->primary_epoch = v[3];
  out->primary_epoch_ms = v[4];
  out->behind_bytes = v[5];
  out->records.assign(payload.substr(48));
  return Status::OK();
}

std::string EncodeHeartbeat(const Heartbeat& hb) {
  std::string out;
  PutU64(&out, hb.primary_epoch);
  PutU64(&out, hb.primary_epoch_ms);
  PutU64(&out, hb.behind_bytes);
  return out;
}

Status DecodeHeartbeat(std::string_view payload, Heartbeat* out) {
  uint64_t v[3];
  if (!TakeU64s(payload, 3, v) || payload.size() != 24) {
    return Status::InvalidArgument("heartbeat payload must be 24 bytes");
  }
  out->primary_epoch = v[0];
  out->primary_epoch_ms = v[1];
  out->behind_bytes = v[2];
  return Status::OK();
}

std::string EncodeSnapshotChunk(const SnapshotChunk& chunk) {
  std::string out;
  out.reserve(56 + chunk.data.size());
  PutU64(&out, chunk.total_bytes);
  PutU64(&out, chunk.chunk_offset);
  PutU64(&out, chunk.primary_epoch);
  PutU64(&out, chunk.primary_epoch_ms);
  PutU64(&out, chunk.pos.generation);
  PutU64(&out, chunk.pos.segment_seq);
  PutU64(&out, chunk.pos.offset);
  out.append(chunk.data);
  return out;
}

Status DecodeSnapshotChunk(std::string_view payload, SnapshotChunk* out) {
  uint64_t v[7];
  if (!TakeU64s(payload, 7, v)) {
    return Status::InvalidArgument(
        "snapshot-chunk payload shorter than header");
  }
  out->total_bytes = v[0];
  out->chunk_offset = v[1];
  out->primary_epoch = v[2];
  out->primary_epoch_ms = v[3];
  out->pos = WalPosition{v[4], v[5], v[6]};
  out->data.assign(payload.substr(56));
  return Status::OK();
}

}  // namespace lsd
