#include "replication/replication_client.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <memory>
#include <vector>

#include "replication/wire.h"
#include "server/protocol.h"
#include "util/failpoint.h"

namespace lsd {

ReplicationClient::ReplicationClient(SharedStore* store,
                                     ReplicationMonitor* monitor,
                                     const ReplicationClientOptions& options)
    : store_(store), monitor_(monitor), options_(options) {
  if (options_.backoff_base_ms == 0) options_.backoff_base_ms = 100;
  if (options_.backoff_max_ms < options_.backoff_base_ms) {
    options_.backoff_max_ms = options_.backoff_base_ms;
  }
}

ReplicationClient::~ReplicationClient() { Stop(); }

Status ReplicationClient::Start() {
  if (running_.load()) {
    return Status::FailedPrecondition("replication client already running");
  }
  if (options_.port == 0) {
    return Status::InvalidArgument("replication client needs a primary port");
  }
  if (options_.scratch_prefix.empty()) {
    return Status::InvalidArgument(
        "replication client needs a scratch prefix for snapshots");
  }
  running_.store(true);
  thread_ = std::thread([this] { Run(); });
  return Status::OK();
}

void ReplicationClient::Stop() {
  if (!running_.exchange(false)) return;
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
  }
  stop_cv_.notify_all();
  {
    std::lock_guard<std::mutex> lock(fd_mu_);
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
  }
  if (thread_.joinable()) thread_.join();
}

Status ReplicationClient::last_error() const {
  std::lock_guard<std::mutex> lock(error_mu_);
  return last_error_;
}

bool ReplicationClient::SleepMs(uint64_t ms) {
  std::unique_lock<std::mutex> lock(stop_mu_);
  stop_cv_.wait_for(lock, std::chrono::milliseconds(ms),
                    [this] { return !running_.load(); });
  return running_.load();
}

namespace {

int ConnectTo(const std::string& host, uint16_t port) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  if (::getaddrinfo(host.c_str(), service.c_str(), &hints, &res) != 0) {
    return -1;
  }
  int fd = -1;
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                  ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd >= 0) {
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return fd;
}

}  // namespace

void ReplicationClient::Run() {
  uint64_t backoff = options_.backoff_base_ms;
  while (running_.load()) {
    int fd = ConnectTo(options_.host, options_.port);
    if (fd >= 0) {
      {
        std::lock_guard<std::mutex> lock(fd_mu_);
        fd_ = fd;
      }
      Status served = Serve(fd);
      {
        std::lock_guard<std::mutex> lock(fd_mu_);
        fd_ = -1;
      }
      ::close(fd);
      monitor_->SetConnected(false);
      if (!served.ok()) {
        std::lock_guard<std::mutex> lock(error_mu_);
        last_error_ = served;
      }
      if (running_.load()) monitor_->AddReconnect();
      backoff = options_.backoff_base_ms;
    }
    if (!running_.load()) break;
    if (!SleepMs(backoff)) break;
    backoff = std::min(backoff * 2, options_.backoff_max_ms);
  }
  FinishSnapshotFile();
}

void ReplicationClient::FinishSnapshotFile() {
  if (snap_file_ != nullptr) {
    std::fclose(snap_file_);
    snap_file_ = nullptr;
  }
  snap_received_ = snap_total_ = 0;
}

Status ReplicationClient::Serve(int fd) {
  // A new connection restarts the stream at resume_pos_: the primary
  // re-sends everything past that record boundary, so partial-record
  // bytes buffered from the previous connection must be dropped and
  // the continuity check re-anchored at the position actually being
  // resubscribed from (stale fed_pos_ would reject the re-sent
  // boundary bytes as a gap, forever). A half-assembled snapshot is
  // equally dead — the primary either resumes the log or restarts the
  // snapshot from chunk offset zero.
  record_parser_ = WalRecordParser();
  fed_pos_ = resume_pos_;
  have_stream_ = !resume_pos_.IsZero();
  FinishSnapshotFile();

  BinaryFrameParser parser;
  SubscribeRequest req;
  req.pos = resume_pos_;
  LSD_FAILPOINT_RETURN_IF_SET(repl.client.send);
  LSD_RETURN_IF_ERROR(WriteAll(
      fd, EncodeFrame(FrameType::kSubscribe, 1, EncodeSubscribe(req))));
  LSD_ASSIGN_OR_RETURN(BinaryFrame reply, ReadFrame(fd, &parser));
  if (reply.type == FrameType::kErr) {
    return Status::FailedPrecondition("subscribe rejected: " +
                                      reply.payload);
  }
  if (reply.type != FrameType::kOk) {
    return Status::DataLoss("unexpected reply to subscribe (frame type " +
                            std::to_string(static_cast<int>(reply.type)) +
                            ")");
  }
  monitor_->SetConnected(true);

  while (running_.load()) {
    LSD_FAILPOINT_RETURN_IF_SET(repl.client.recv);
    LSD_ASSIGN_OR_RETURN(BinaryFrame frame, ReadFrame(fd, &parser));
    switch (frame.type) {
      case FrameType::kLogChunk:
        LSD_RETURN_IF_ERROR(HandleLogChunk(frame.payload));
        break;
      case FrameType::kSnapshot:
        LSD_RETURN_IF_ERROR(HandleSnapshotChunk(frame.payload));
        break;
      case FrameType::kHeartbeat:
        LSD_RETURN_IF_ERROR(HandleHeartbeat(frame.payload));
        break;
      case FrameType::kErr:
        return Status::FailedPrecondition("primary said: " + frame.payload);
      default:
        return Status::DataLoss(
            "unexpected frame type " +
            std::to_string(static_cast<int>(frame.type)) +
            " on a replication stream");
    }
  }
  return Status::OK();
}

Status ReplicationClient::HandleHeartbeat(const std::string& payload) {
  Heartbeat hb;
  LSD_RETURN_IF_ERROR(DecodeHeartbeat(payload, &hb));
  monitor_->RecordFrame(hb.primary_epoch, hb.primary_epoch_ms,
                        hb.behind_bytes);
  if (hb.behind_bytes == 0 && record_parser_.buffered() == 0 &&
      snap_file_ == nullptr) {
    // Nothing shipped, nothing buffered: the replica IS the tip.
    monitor_->RecordApplied(hb.primary_epoch, hb.primary_epoch_ms);
  }
  return Status::OK();
}

Status ReplicationClient::HandleLogChunk(const std::string& payload) {
  LogChunk chunk;
  LSD_RETURN_IF_ERROR(DecodeLogChunk(payload, &chunk));
  monitor_->RecordFrame(chunk.primary_epoch, chunk.primary_epoch_ms,
                        chunk.behind_bytes);
  LSD_FAILPOINT_RETURN_IF_SET(repl.client.apply);
  if (snap_file_ != nullptr) {
    return Status::DataLoss("log chunk interleaved with a snapshot");
  }

  // Continuity: each chunk must start exactly where the last one ended
  // (or at the first record byte of the next segment, with no record
  // spanning the boundary — the log never splits records across
  // segments). A gap means frames were lost; resubscribe.
  if (have_stream_) {
    if (chunk.pos.segment_seq == fed_pos_.segment_seq) {
      if (chunk.pos.generation != fed_pos_.generation ||
          chunk.pos.offset != fed_pos_.offset) {
        return Status::DataLoss("log stream gap: expected " +
                                fed_pos_.ToString() + ", got " +
                                chunk.pos.ToString());
      }
    } else {
      if (record_parser_.buffered() != 0) {
        return Status::DataLoss(
            "segment boundary arrived mid-record at " +
            fed_pos_.ToString());
      }
      // Seqs are consecutive across rotations (and a rotated middle
      // segment is never empty), so the only contiguous successor is
      // seq + 1; generations only ever grow.
      if (chunk.pos.segment_seq != fed_pos_.segment_seq + 1 ||
          chunk.pos.generation < fed_pos_.generation) {
        return Status::DataLoss("log stream skipped segments: expected seq " +
                                std::to_string(fed_pos_.segment_seq + 1) +
                                " after " + fed_pos_.ToString() + ", got " +
                                chunk.pos.ToString());
      }
      if (chunk.pos.offset != Wal::kSegmentHeaderSize) {
        return Status::DataLoss(
            "new segment does not start at its first record byte: " +
            chunk.pos.ToString());
      }
    }
  }
  have_stream_ = true;

  record_parser_.Feed(chunk.records);
  std::vector<WalRecord> records;
  for (;;) {
    WalRecord record;
    const WalRecordParser::Result r = record_parser_.Next(&record);
    if (r == WalRecordParser::Result::kRecord) {
      records.push_back(std::move(record));
      continue;
    }
    if (r == WalRecordParser::Result::kError) {
      return Status::DataLoss("corrupt shipped record: " +
                              record_parser_.error());
    }
    break;  // kNeedMore: the rest arrives in the next chunk
  }
  if (!records.empty()) {
    LSD_RETURN_IF_ERROR(ApplyRecords(records));
  }

  fed_pos_ = WalPosition{chunk.pos.generation, chunk.pos.segment_seq,
                         chunk.pos.offset + chunk.records.size()};
  resume_pos_ =
      WalPosition{fed_pos_.generation, fed_pos_.segment_seq,
                  fed_pos_.offset - record_parser_.buffered()};
  monitor_->RecordPosition(resume_pos_);
  monitor_->AddChunk(records.size());
  if (chunk.behind_bytes == 0 && record_parser_.buffered() == 0) {
    // This chunk ended flush with the primary's published tip: the
    // replica now equals that epoch exactly.
    monitor_->RecordApplied(chunk.primary_epoch, chunk.primary_epoch_ms);
  }
  return Status::OK();
}

Status ReplicationClient::HandleSnapshotChunk(const std::string& payload) {
  SnapshotChunk chunk;
  LSD_RETURN_IF_ERROR(DecodeSnapshotChunk(payload, &chunk));
  monitor_->RecordFrame(chunk.primary_epoch, chunk.primary_epoch_ms,
                        chunk.total_bytes -
                            std::min(chunk.total_bytes,
                                     chunk.chunk_offset +
                                         chunk.data.size()));
  LSD_FAILPOINT_RETURN_IF_SET(repl.client.apply);

  const std::string snap_path = options_.scratch_prefix + ".snap";
  if (chunk.chunk_offset == 0) {
    // A (re)starting snapshot supersedes any stream or half-assembled
    // snapshot state.
    FinishSnapshotFile();
    record_parser_ = WalRecordParser();
    have_stream_ = false;
    snap_file_ = std::fopen(snap_path.c_str(), "wb");
    if (snap_file_ == nullptr) {
      return Status::IoError("cannot write snapshot scratch " + snap_path);
    }
    snap_total_ = chunk.total_bytes;
  } else if (snap_file_ == nullptr || chunk.chunk_offset != snap_received_ ||
             chunk.total_bytes != snap_total_) {
    return Status::DataLoss("snapshot stream gap at offset " +
                            std::to_string(chunk.chunk_offset));
  }
  if (!chunk.data.empty() &&
      std::fwrite(chunk.data.data(), 1, chunk.data.size(), snap_file_) !=
          chunk.data.size()) {
    return Status::IoError("short write to snapshot scratch " + snap_path);
  }
  snap_received_ += chunk.data.size();
  if (snap_received_ < snap_total_) return Status::OK();

  // Complete: recover the snapshot into a fresh database and swap it
  // in as the new tip, stamped with the snapshot's WAL position.
  if (std::fclose(snap_file_) != 0) {
    snap_file_ = nullptr;
    return Status::IoError("cannot finish snapshot scratch " + snap_path);
  }
  snap_file_ = nullptr;
  // Recover() replays <scratch>.wal segments over the snapshot; a
  // stale scratch log from an earlier life of this follower would
  // corrupt the resync, so drop any such segments first.
  for (const WalSegmentInfo& seg :
       Wal::Inventory(options_.scratch_prefix + ".wal")) {
    std::remove(seg.path.c_str());
  }
  auto db = std::make_unique<LooseDb>(store_->options());
  LSD_RETURN_IF_ERROR(db->Recover(options_.scratch_prefix));
  LSD_ASSIGN_OR_RETURN(EpochPtr replaced,
                       store_->ReplaceTip(std::move(db), chunk.pos));
  (void)replaced;
  std::remove(snap_path.c_str());

  record_parser_ = WalRecordParser();
  fed_pos_ = chunk.pos;
  resume_pos_ = chunk.pos;
  have_stream_ = true;
  monitor_->RecordPosition(chunk.pos);
  monitor_->RecordApplied(chunk.primary_epoch, chunk.primary_epoch_ms);
  monitor_->AddSnapshot();
  return Status::OK();
}

Status ReplicationClient::ApplyRecords(
    const std::vector<WalRecord>& records) {
  // One commit per chunk: the whole parsed batch lands as one epoch,
  // through the same group-commit path a primary's writers use. The
  // closure is replay-safe (it only touches the fresh clone it is
  // handed), and tolerant of records already reflected in the base
  // state (a retract of a missing fact, a rule that already exists) so
  // an overlap after a resubscribe cannot wedge the stream.
  StatusOr<EpochPtr> committed = store_->Commit([&records](LooseDb& db) {
    for (const WalRecord& record : records) {
      switch (static_cast<WalOpCode>(record.op)) {
        case WalOpCode::kAssert:
          if (record.fields.size() != 3) {
            return Status::DataLoss("malformed assert record");
          }
          db.Assert(record.fields[0], record.fields[1], record.fields[2]);
          break;
        case WalOpCode::kRetract: {
          if (record.fields.size() != 3) {
            return Status::DataLoss("malformed retract record");
          }
          Status s = db.Retract(record.fields[0], record.fields[1],
                                record.fields[2]);
          if (!s.ok() && !s.IsNotFound()) return s;
          break;
        }
        case WalOpCode::kRule: {
          if (record.fields.size() != 1) {
            return Status::DataLoss("malformed rule record");
          }
          // Same prefix convention the recovery replay parses.
          RuleKind kind = RuleKind::kInference;
          std::string_view body = record.fields[0];
          if (body.rfind("integrity ", 0) == 0) {
            kind = RuleKind::kIntegrity;
            body = body.substr(10);
          } else if (body.rfind("rule ", 0) == 0) {
            body = body.substr(5);
          }
          Status s = db.DefineRule(body, kind);
          if (!s.ok() && s.code() != StatusCode::kAlreadyExists) return s;
          break;
        }
        case WalOpCode::kEnableRule:
        case WalOpCode::kDisableRule: {
          if (record.fields.size() != 1) {
            return Status::DataLoss("malformed rule-toggle record");
          }
          Status s = db.SetRuleEnabled(
              record.fields[0],
              static_cast<WalOpCode>(record.op) == WalOpCode::kEnableRule);
          if (!s.ok() && !s.IsNotFound()) return s;
          break;
        }
        default:
          return Status::DataLoss("unknown WAL opcode " +
                                  std::to_string(record.op));
      }
    }
    return Status::OK();
  });
  return committed.ok() ? Status::OK() : committed.status();
}

}  // namespace lsd
