// Payload layouts for the replication frame types (FrameType 4-7 in
// src/server/protocol.h). The framing — magic, version, type, request
// id, length — is exactly the binary browse framing; only the payloads
// are replication-specific. All integers are little-endian u64.
//
//   kSubscribe (follower -> primary), 24 bytes:
//     u64 generation, u64 segment_seq, u64 offset
//   The follower's resume coordinate: "my state reflects every WAL byte
//   below this position; continue from here." The zero position asks
//   for everything (a cold follower). The primary answers with a kOk
//   frame (echoing the request id), then streams; or a kErr frame with
//   the reason and closes.
//
//   kLogChunk (primary -> follower), 48-byte header + record bytes:
//     u64 generation, u64 segment_seq, u64 offset   chunk START coordinate
//     u64 primary_epoch, u64 primary_epoch_ms       tip epoch being shipped
//     u64 behind_bytes                              log bytes still unshipped
//                                                   AFTER this chunk
//     bytes: raw WAL record bytes ([len][crc][payload] framed), cut at
//     arbitrary byte boundaries — records may span chunks, never
//     segments. A chunk always stays within one segment.
//
//   kHeartbeat (primary -> follower), 24 bytes:
//     u64 primary_epoch, u64 primary_epoch_ms, u64 behind_bytes
//   Sent when the follower is idle-caught-up (and periodically), so the
//   follower can bound its staleness even when no writes flow.
//
//   kSnapshot (primary -> follower), 56-byte header + data bytes:
//     u64 total_bytes, u64 chunk_offset             reassembly coordinates
//     u64 primary_epoch, u64 primary_epoch_ms       the snapshotted epoch
//     u64 generation, u64 segment_seq, u64 offset   WAL position of the
//                                                   snapshot (streaming
//                                                   resumes here)
//     bytes: the next chunk of an lsd snapshot file (LSDSNAP2 format)
//   Sent when the follower's requested position is unavailable (cold
//   follower, or its segments were checkpointed away): the follower
//   reassembles the snapshot, loads it as its new base state, and the
//   primary continues with kLogChunk frames from the embedded position.
#ifndef LSD_REPLICATION_WIRE_H_
#define LSD_REPLICATION_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "store/persistence.h"
#include "util/status.h"

namespace lsd {

struct SubscribeRequest {
  WalPosition pos;
};

struct LogChunk {
  WalPosition pos;  // coordinate of the FIRST byte of `records`
  uint64_t primary_epoch = 0;
  uint64_t primary_epoch_ms = 0;  // primary-clock publish stamp
  uint64_t behind_bytes = 0;      // unshipped log bytes after this chunk
  std::string records;            // raw WAL record bytes
};

struct Heartbeat {
  uint64_t primary_epoch = 0;
  uint64_t primary_epoch_ms = 0;
  uint64_t behind_bytes = 0;
};

struct SnapshotChunk {
  uint64_t total_bytes = 0;   // whole snapshot size
  uint64_t chunk_offset = 0;  // where this chunk's data lands
  uint64_t primary_epoch = 0;
  uint64_t primary_epoch_ms = 0;
  WalPosition pos;  // WAL position the snapshot corresponds to
  std::string data;
};

std::string EncodeSubscribe(const SubscribeRequest& req);
std::string EncodeLogChunk(const LogChunk& chunk);
std::string EncodeHeartbeat(const Heartbeat& hb);
std::string EncodeSnapshotChunk(const SnapshotChunk& chunk);

// Decoders: InvalidArgument on a truncated payload; `out` unspecified
// on error. LogChunk/SnapshotChunk adopt the trailing bytes as
// records/data.
Status DecodeSubscribe(std::string_view payload, SubscribeRequest* out);
Status DecodeLogChunk(std::string_view payload, LogChunk* out);
Status DecodeHeartbeat(std::string_view payload, Heartbeat* out);
Status DecodeSnapshotChunk(std::string_view payload, SnapshotChunk* out);

}  // namespace lsd

#endif  // LSD_REPLICATION_WIRE_H_
