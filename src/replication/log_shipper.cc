#include "replication/log_shipper.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string_view>

#include "replication/wire.h"
#include "server/protocol.h"
#include "util/failpoint.h"

namespace lsd {

namespace {

// Strict byte order over positions (segment seqs are monotonic across
// generations, so (seq, offset) totally orders the log).
bool PosAfter(const WalPosition& a, const WalPosition& b) {
  return a.segment_seq > b.segment_seq ||
         (a.segment_seq == b.segment_seq && a.offset > b.offset);
}

}  // namespace

LogShipper::LogShipper(SharedStore* store, const LogShipperOptions& options)
    : store_(store), options_(options) {
  if (options_.chunk_bytes == 0) options_.chunk_bytes = 64 * 1024;
  // A chunk must fit in one binary frame with its 48-byte header.
  options_.chunk_bytes =
      std::min<size_t>(options_.chunk_bytes, kMaxBinaryPayload - 64);
  if (options_.heartbeat_ms == 0) options_.heartbeat_ms = 500;
}

LogShipper::~LogShipper() { Stop(); }

Status LogShipper::Start() {
  if (running_.load()) {
    return Status::FailedPrecondition("log shipper already running");
  }
  if (!store_->durable()) {
    return Status::FailedPrecondition(
        "replication needs a durable store (there is no WAL to ship)");
  }
  wal_base_ = store_->save_prefix() + ".wal";

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  auto fail = [this](const char* what) {
    Status s =
        Status::IoError(std::string(what) + ": " + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  };
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, options_.listen_backlog) != 0) {
    return fail("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                    &len) != 0) {
    return fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  running_.store(true);
  // The thread gets its own copy of the fd: Stop() scribbles the
  // member (close + -1) while the acceptor is still blocked on it.
  accept_thread_ =
      std::thread([this, fd = listen_fd_] { AcceptLoop(fd); });
  return Status::OK();
}

void LogShipper::Stop() {
  if (!running_.exchange(false)) return;
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Join the acceptor FIRST: once it is gone no new follower can
  // appear, so the shutdown sweep below cannot miss one.
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(followers_mu_);
    for (auto& follower : follower_list_) {
      if (follower->fd >= 0) ::shutdown(follower->fd, SHUT_RDWR);
    }
  }
  std::lock_guard<std::mutex> lock(followers_mu_);
  for (auto& follower : follower_list_) {
    if (follower->thread.joinable()) follower->thread.join();
    if (follower->fd >= 0) ::close(follower->fd);
    follower->fd = -1;
  }
  follower_list_.clear();
}

void LogShipper::AcceptLoop(int listen_fd) {
  while (running_.load()) {
    int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // Stop() closed the listener
    }
    if (!running_.load()) {
      ::close(fd);
      return;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ReapFinished();
    if (followers_.load() >= options_.max_followers) {
      (void)WriteAll(fd, EncodeFrame(FrameType::kErr, 0,
                                     "too many followers"));
      ::close(fd);
      continue;
    }
    std::lock_guard<std::mutex> lock(followers_mu_);
    auto follower = std::make_unique<Follower>();
    Follower* raw = follower.get();
    raw->fd = fd;
    const uint64_t id = next_follower_id_++;
    followers_.fetch_add(1);
    raw->thread = std::thread([this, raw, id] { ServeFollower(raw, id); });
    follower_list_.push_back(std::move(follower));
  }
}

void LogShipper::ReapFinished() {
  std::lock_guard<std::mutex> lock(followers_mu_);
  for (auto it = follower_list_.begin(); it != follower_list_.end();) {
    if ((*it)->done.load()) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      if ((*it)->fd >= 0) ::close((*it)->fd);
      it = follower_list_.erase(it);
    } else {
      ++it;
    }
  }
}

void LogShipper::ServeFollower(Follower* follower, uint64_t id) {
  (void)RunFollower(follower->fd, id);
  // Hang up right away so the follower's blocked read returns and its
  // reconnect loop starts; the fd itself is closed at the next reap
  // (Stop() also shuts down, which is idempotent).
  ::shutdown(follower->fd, SHUT_RDWR);
  followers_.fetch_sub(1);
  follower->done.store(true);
}

Status LogShipper::SendFrame(int fd, FrameType type, uint64_t request_id,
                             std::string_view payload) {
  LSD_FAILPOINT_RETURN_IF_SET(repl.ship.send);
  return WriteAll(fd, EncodeFrame(type, request_id, payload));
}

uint64_t LogShipper::BehindBytes(const WalPosition& pos,
                                 const WalPosition& watermark) const {
  if (!PosAfter(watermark, pos)) return 0;
  if (pos.segment_seq == watermark.segment_seq) {
    return watermark.offset - pos.offset;
  }
  // Headers are never shipped, so they never count as lag.
  uint64_t behind = 0;
  for (const WalSegmentInfo& seg : store_->wal().SegmentInventory()) {
    if (seg.seq == pos.segment_seq && seg.bytes > pos.offset) {
      behind += seg.bytes - pos.offset;
    } else if (seg.seq > pos.segment_seq &&
               seg.seq < watermark.segment_seq &&
               seg.bytes > Wal::kSegmentHeaderSize) {
      behind += seg.bytes - Wal::kSegmentHeaderSize;
    }
  }
  if (watermark.offset > Wal::kSegmentHeaderSize) {
    behind += watermark.offset - Wal::kSegmentHeaderSize;
  }
  return behind;
}

Status LogShipper::StreamSnapshot(int fd, const EpochPtr& tip,
                                  uint64_t id) {
  // Serialize the pinned tip to a scratch file (the snapshot writer
  // streams; holding a whole serialized store in memory would not).
  const std::string path =
      store_->save_prefix() + ".ship" + std::to_string(id) + ".snap";
  LSD_RETURN_IF_ERROR(SaveSnapshot(path, tip->db().store(),
                                   tip->db().rules(),
                                   tip->wal_pos().generation));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::remove(path.c_str());
    return Status::IoError("cannot reopen snapshot scratch " + path);
  }
  std::fseek(f, 0, SEEK_END);
  const uint64_t total = static_cast<uint64_t>(std::ftell(f));
  std::fseek(f, 0, SEEK_SET);

  Status result = Status::OK();
  SnapshotChunk chunk;
  chunk.total_bytes = total;
  chunk.primary_epoch = tip->sequence();
  chunk.primary_epoch_ms = tip->publish_ms();
  chunk.pos = tip->wal_pos();
  uint64_t off = 0;
  do {
    const size_t want = static_cast<size_t>(
        std::min<uint64_t>(options_.chunk_bytes, total - off));
    chunk.data.resize(want);
    if (want > 0 && std::fread(chunk.data.data(), 1, want, f) != want) {
      result = Status::IoError("short read from snapshot scratch " + path);
      break;
    }
    chunk.chunk_offset = off;
    result = SendFrame(fd, FrameType::kSnapshot, 0,
                       EncodeSnapshotChunk(chunk));
    off += want;
  } while (result.ok() && off < total);
  std::fclose(f);
  std::remove(path.c_str());
  if (result.ok()) snapshots_shipped_.fetch_add(1);
  return result;
}

Status LogShipper::RunFollower(int fd, uint64_t id) {
  // Handshake: exactly one kSubscribe, answered with kOk (then a
  // stream) or kErr (then close). The subscribe must arrive within the
  // handshake deadline — this slot already counts toward
  // max_followers, and a silent peer must not hold it until Stop().
  // A timed-out read surfaces as EAGAIN, which ReadFrame reports as an
  // IoError and ends the connection.
  if (options_.handshake_timeout_ms > 0) {
    struct timeval tv;
    tv.tv_sec = static_cast<time_t>(options_.handshake_timeout_ms / 1000);
    tv.tv_usec = static_cast<suseconds_t>(
        (options_.handshake_timeout_ms % 1000) * 1000);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  BinaryFrameParser parser;
  LSD_ASSIGN_OR_RETURN(BinaryFrame frame, ReadFrame(fd, &parser));
  if (options_.handshake_timeout_ms > 0) {
    struct timeval tv;
    std::memset(&tv, 0, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  if (frame.type != FrameType::kSubscribe) {
    (void)SendFrame(fd, FrameType::kErr, frame.request_id,
                    "expected a subscribe frame");
    return Status::InvalidArgument("first frame was not a subscribe");
  }
  SubscribeRequest req;
  Status decoded = DecodeSubscribe(frame.payload, &req);
  if (!decoded.ok()) {
    (void)SendFrame(fd, FrameType::kErr, frame.request_id,
                    decoded.message());
    return decoded;
  }
  LSD_FAILPOINT_HIT(repl.ship.accept, fp_accept);
  if (fp_accept.action == failpoint::Action::kError) {
    (void)SendFrame(fd, FrameType::kErr, frame.request_id,
                    "injected subscribe rejection");
    return Status::IoError("injected failure at failpoint repl.ship.accept");
  }
  subscriptions_.fetch_add(1);

  EpochPtr tip = store_->snapshot();
  WalPosition watermark = tip->wal_pos();
  WalPosition pos = req.pos;

  // Resumable = the requested position is a live byte of the log and
  // not past what this primary has published. Anything else — a cold
  // follower (unless the full history is still on disk), a position
  // whose segment a checkpoint dropped, a generation mismatch, or a
  // position from a divergent history — is served a snapshot of the
  // tip instead, and streaming continues from the snapshot's position.
  bool resumable = false;
  const std::vector<WalSegmentInfo> inventory = Wal::Inventory(wal_base_);
  if (!pos.IsZero()) {
    for (const WalSegmentInfo& seg : inventory) {
      if (seg.seq == pos.segment_seq) {
        resumable = seg.generation == pos.generation &&
                    pos.offset >= Wal::kSegmentHeaderSize &&
                    pos.offset <= seg.bytes;
        break;
      }
    }
    if (PosAfter(pos, watermark)) resumable = false;
  } else if (!inventory.empty() && inventory.front().seq == 1 &&
             inventory.front().generation == 0) {
    // Cold follower, full history still live: genesis replay.
    resumable = true;
    pos = WalPosition{0, 1, Wal::kSegmentHeaderSize};
  }

  if (resumable) {
    LSD_RETURN_IF_ERROR(
        SendFrame(fd, FrameType::kOk, frame.request_id, "resume"));
  } else {
    LSD_RETURN_IF_ERROR(
        SendFrame(fd, FrameType::kOk, frame.request_id, "snapshot"));
    LSD_RETURN_IF_ERROR(StreamSnapshot(fd, tip, id));
    pos = watermark;
  }

  WalTailReader reader(wal_base_);
  LSD_RETURN_IF_ERROR(reader.Open(pos.segment_seq, pos.offset));

  std::string buf;
  while (running_.load()) {
    tip = store_->snapshot();
    watermark = tip->wal_pos();
    const bool behind =
        reader.seq() < watermark.segment_seq ||
        (reader.seq() == watermark.segment_seq &&
         reader.offset() < watermark.offset);
    if (behind) {
      // Only the watermark segment is length-limited; earlier segments
      // are rotated (the writer is done with them) and read to EOF.
      const uint64_t limit = reader.seq() == watermark.segment_seq
                                 ? watermark.offset
                                 : UINT64_MAX;
      LogChunk chunk;
      chunk.pos =
          WalPosition{reader.generation(), reader.seq(), reader.offset()};
      buf.clear();
      LSD_ASSIGN_OR_RETURN(
          size_t n, reader.Read(limit, options_.chunk_bytes, &buf));
      if (n == 0) {
        // This rotated segment is exhausted; the next byte lives in the
        // next segment. NotFound there means a checkpoint unlinked it —
        // the follower must resubscribe (and will get a snapshot).
        Status next = reader.Open(reader.seq() + 1, 0);
        if (!next.ok()) {
          (void)SendFrame(fd, FrameType::kErr, 0,
                          "log checkpointed away mid-stream; resubscribe");
          return next;
        }
        continue;
      }
      chunk.primary_epoch = tip->sequence();
      chunk.primary_epoch_ms = tip->publish_ms();
      chunk.behind_bytes = BehindBytes(
          WalPosition{reader.generation(), reader.seq(), reader.offset()},
          watermark);
      chunk.records = std::move(buf);
      LSD_RETURN_IF_ERROR(
          SendFrame(fd, FrameType::kLogChunk, 0, EncodeLogChunk(chunk)));
      buf = std::move(chunk.records);  // reuse the allocation
      chunks_shipped_.fetch_add(1);
      bytes_shipped_.fetch_add(n);
      continue;
    }

    // Caught up. Sleep on the log's append signal; re-check the tip
    // first so a publish between the snapshot above and this wait is
    // never missed.
    const uint64_t version = store_->wal().position_version();
    if (store_->snapshot()->wal_pos() != watermark) continue;
    if (store_->wal().WaitAppend(
            version, std::chrono::milliseconds(options_.heartbeat_ms))) {
      // Bytes were appended; the epoch publish trails the append by the
      // leader's publish step. Poll briefly instead of sleeping a full
      // heartbeat on a stale watermark.
      for (int i = 0; i < 100 && running_.load(); ++i) {
        if (store_->snapshot()->wal_pos() != watermark) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      continue;
    }
    Heartbeat hb;
    hb.primary_epoch = tip->sequence();
    hb.primary_epoch_ms = tip->publish_ms();
    hb.behind_bytes = 0;
    LSD_RETURN_IF_ERROR(
        SendFrame(fd, FrameType::kHeartbeat, 0, EncodeHeartbeat(hb)));
    heartbeats_sent_.fetch_add(1);
  }
  return Status::OK();
}

}  // namespace lsd
