#include "store/fact_store.h"

namespace lsd {

size_t FactSource::EstimateMatches(const Pattern& p) const {
  size_t n = 0;
  ForEach(p, [&n](const Fact&) {
    ++n;
    return true;
  });
  return n;
}

std::vector<Fact> FactSource::Match(const Pattern& p) const {
  std::vector<Fact> out;
  ForEach(p, [&out](const Fact& f) {
    out.push_back(f);
    return true;
  });
  return out;
}

bool UnionSource::ForEach(const Pattern& p, const FactVisitor& visit) const {
  for (size_t i = 0; i < sources_.size(); ++i) {
    bool keep_going = sources_[i]->ForEach(p, [&](const Fact& f) {
      // Skip facts already produced by an earlier layer.
      for (size_t j = 0; j < i; ++j) {
        if (sources_[j]->Contains(f)) return true;
      }
      return visit(f);
    });
    if (!keep_going) return false;
  }
  return true;
}

bool UnionSource::Contains(const Fact& f) const {
  for (const FactSource* s : sources_) {
    if (s->Contains(f)) return true;
  }
  return false;
}

bool UnionSource::Enumerable(const Pattern& p) const {
  for (const FactSource* s : sources_) {
    if (!s->Enumerable(p)) return false;
  }
  return true;
}

size_t UnionSource::EstimateMatches(const Pattern& p) const {
  size_t n = 0;
  for (const FactSource* s : sources_) n += s->EstimateMatches(p);
  return n;
}

void MergeSortedIds(SortedIdSpan a, SortedIdSpan b,
                    std::vector<EntityId>* out) {
  out->clear();
  out->reserve(a.size + b.size);
  size_t i = 0;
  size_t j = 0;
  while (i < a.size && j < b.size) {
    const EntityId x = a.data[i];
    const EntityId y = b.data[j];
    if (x < y) {
      out->push_back(x);
      ++i;
    } else if (y < x) {
      out->push_back(y);
      ++j;
    } else {
      out->push_back(x);
      ++i;
      ++j;
    }
  }
  out->insert(out->end(), a.data + i, a.data + a.size);
  out->insert(out->end(), b.data + j, b.data + b.size);
}

bool UnionSource::SortedFreeValues(const Pattern& p,
                                   std::vector<EntityId>* scratch,
                                   SortedIdSpan* out) const {
  // Every layer must produce its run; overlapping values collapse in the
  // merge, matching ForEach's cross-layer dedup.
  std::vector<EntityId> acc;
  std::vector<EntityId> layer_scratch;
  std::vector<EntityId> merged;
  bool first = true;
  for (const FactSource* s : sources_) {
    SortedIdSpan layer;
    if (!s->SortedFreeValues(p, &layer_scratch, &layer)) return false;
    if (layer.size == 0) continue;
    if (first) {
      acc.assign(layer.data, layer.data + layer.size);
      first = false;
      continue;
    }
    MergeSortedIds(SortedIdSpan{acc.data(), acc.size()}, layer, &merged);
    acc.swap(merged);
  }
  scratch->swap(acc);
  out->data = scratch->data();
  out->size = scratch->size();
  return true;
}

bool UnionSource::CanSortFreeValues(const Pattern& p) const {
  for (const FactSource* s : sources_) {
    if (!s->CanSortFreeValues(p)) return false;
  }
  return true;
}

double IndexSource::EstimateMatchesBound(const Pattern& p,
                                         uint8_t bound_mask) const {
  return ScaleByDistinct(static_cast<double>(index_->CountMatches(p)),
                         bound_mask, index_->DistinctSources(),
                         index_->DistinctRelationships(),
                         index_->DistinctTargets());
}

double UnionSource::EstimateMatchesBound(const Pattern& p,
                                         uint8_t bound_mask) const {
  double n = 0;
  for (const FactSource* s : sources_) {
    n += s->EstimateMatchesBound(p, bound_mask);
  }
  return n;
}

bool FactStore::Assert(const Fact& f) {
  bool inserted = base_.Insert(f);
  if (inserted) ++version_;
  return inserted;
}

Fact FactStore::Assert(std::string_view source,
                       std::string_view relationship,
                       std::string_view target) {
  Fact f(entities_.Intern(source), entities_.Intern(relationship),
         entities_.Intern(target));
  Assert(f);
  return f;
}

bool FactStore::Retract(const Fact& f) {
  bool erased = base_.Erase(f);
  if (erased) ++version_;
  return erased;
}

bool FactStore::IsClassRelationship(EntityId r) const {
  // Sec 2.2-2.3: membership is a class relationship, generalization is
  // individual. The meta-relationships SYN/INV/CONTRA characterize the
  // related entities as wholes — they are not inherited by instances or
  // specializations — so they are class relationships too (otherwise
  // rule (1a) would derive nonsense like (BONUS, SYN, WAGE) from
  // (SALARY, SYN, WAGE) and (BONUS, ISA, SALARY)).
  switch (r) {
    case kEntIn:
    case kEntSyn:
    case kEntInv:
    case kEntContra:
      return true;
    case kEntIsa:
      return false;
    default:
      return base_.Contains(Fact(r, kEntIn, kEntClassRel));
  }
}

void FactStore::MarkClassRelationship(EntityId r) {
  Assert(Fact(r, kEntIn, kEntClassRel));
}

}  // namespace lsd
