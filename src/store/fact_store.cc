#include "store/fact_store.h"

namespace lsd {

size_t FactSource::EstimateMatches(const Pattern& p) const {
  size_t n = 0;
  ForEach(p, [&n](const Fact&) {
    ++n;
    return true;
  });
  return n;
}

std::vector<Fact> FactSource::Match(const Pattern& p) const {
  std::vector<Fact> out;
  ForEach(p, [&out](const Fact& f) {
    out.push_back(f);
    return true;
  });
  return out;
}

bool UnionSource::ForEach(const Pattern& p, const FactVisitor& visit) const {
  for (size_t i = 0; i < sources_.size(); ++i) {
    bool keep_going = sources_[i]->ForEach(p, [&](const Fact& f) {
      // Skip facts already produced by an earlier layer.
      for (size_t j = 0; j < i; ++j) {
        if (sources_[j]->Contains(f)) return true;
      }
      return visit(f);
    });
    if (!keep_going) return false;
  }
  return true;
}

bool UnionSource::Contains(const Fact& f) const {
  for (const FactSource* s : sources_) {
    if (s->Contains(f)) return true;
  }
  return false;
}

bool UnionSource::Enumerable(const Pattern& p) const {
  for (const FactSource* s : sources_) {
    if (!s->Enumerable(p)) return false;
  }
  return true;
}

size_t UnionSource::EstimateMatches(const Pattern& p) const {
  size_t n = 0;
  for (const FactSource* s : sources_) n += s->EstimateMatches(p);
  return n;
}

double IndexSource::EstimateMatchesBound(const Pattern& p,
                                         uint8_t bound_mask) const {
  return ScaleByDistinct(static_cast<double>(index_->CountMatches(p)),
                         bound_mask, index_->DistinctSources(),
                         index_->DistinctRelationships(),
                         index_->DistinctTargets());
}

double UnionSource::EstimateMatchesBound(const Pattern& p,
                                         uint8_t bound_mask) const {
  double n = 0;
  for (const FactSource* s : sources_) {
    n += s->EstimateMatchesBound(p, bound_mask);
  }
  return n;
}

bool FactStore::Assert(const Fact& f) {
  bool inserted = base_.Insert(f);
  if (inserted) ++version_;
  return inserted;
}

Fact FactStore::Assert(std::string_view source,
                       std::string_view relationship,
                       std::string_view target) {
  Fact f(entities_.Intern(source), entities_.Intern(relationship),
         entities_.Intern(target));
  Assert(f);
  return f;
}

bool FactStore::Retract(const Fact& f) {
  bool erased = base_.Erase(f);
  if (erased) ++version_;
  return erased;
}

bool FactStore::IsClassRelationship(EntityId r) const {
  // Sec 2.2-2.3: membership is a class relationship, generalization is
  // individual. The meta-relationships SYN/INV/CONTRA characterize the
  // related entities as wholes — they are not inherited by instances or
  // specializations — so they are class relationships too (otherwise
  // rule (1a) would derive nonsense like (BONUS, SYN, WAGE) from
  // (SALARY, SYN, WAGE) and (BONUS, ISA, SALARY)).
  switch (r) {
    case kEntIn:
    case kEntSyn:
    case kEntInv:
    case kEntContra:
      return true;
    case kEntIsa:
      return false;
    default:
      return base_.Contains(Fact(r, kEntIn, kEntClassRel));
  }
}

void FactStore::MarkClassRelationship(EntityId r) {
  Assert(Fact(r, kEntIn, kEntClassRel));
}

}  // namespace lsd
