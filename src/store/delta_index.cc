#include "store/delta_index.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace lsd {

bool DeltaIndex::Insert(const Fact& f) {
  if (frozen_.Contains(f)) return false;
  if (!overlay_.Insert(f)) return false;
  overlay_hash_.insert(f);
  return true;
}

size_t DeltaIndex::InsertRun(const std::vector<Fact>& run) {
  // Batched dedup: one lockstep walk of the run against the frozen
  // tier's sorted rows (see FrozenIndex::AppendMissing) instead of a
  // binary search per fact, then the overlay's hash probe for whatever
  // survived — usually everything, the overlay being empty right after a
  // compaction.
  std::vector<Fact> fresh;
  fresh.reserve(run.size());
  if (overlay_hash_.empty()) {
    frozen_.AppendMissing(run, &fresh);
  } else {
    std::vector<Fact> not_frozen;
    not_frozen.reserve(run.size());
    frozen_.AppendMissing(run, &not_frozen);
    for (const Fact& f : not_frozen) {
      if (overlay_hash_.count(f) == 0) fresh.push_back(f);
    }
  }
  if (fresh.empty()) return 0;
  const size_t added = fresh.size();
  if (added < kCompactMinOverlay) {
    for (const Fact& f : fresh) {
      overlay_.Insert(f);
      overlay_hash_.insert(f);
    }
  } else {
    // Fold any overlay first so the frozen tier stays the single sorted
    // run; then merge the round in linearly.
    if (!overlay_.empty()) Compact();
    frozen_ = FrozenIndex::Merged(frozen_, std::move(fresh));
  }
  return added;
}

bool DeltaIndex::ForEach(const Pattern& p, const FactVisitor& visit) const {
  if (!frozen_.ForEach(p, visit)) return false;
  return overlay_.ForEach(p, visit);
}

size_t DeltaIndex::CountMatches(const Pattern& p) const {
  return frozen_.CountMatches(p) + overlay_.CountMatches(p);
}

void DeltaIndex::Compact() {
  if (overlay_.empty()) return;
  // Both tiers stream in SRT order, so the concatenation is two sorted
  // runs; the rebuild's sort is nearly free on such input.
  std::vector<Fact> all;
  all.reserve(size());
  frozen_.ForEach(Pattern(), [&all](const Fact& f) {
    all.push_back(f);
    return true;
  });
  const auto mid = all.size();
  overlay_.ForEach(Pattern(), [&all](const Fact& f) {
    all.push_back(f);
    return true;
  });
  std::inplace_merge(all.begin(), all.begin() + mid, all.end(), OrderSrt());
  frozen_ = FrozenIndex(std::move(all));
  overlay_.Clear();
  overlay_hash_.clear();
}

bool DeltaIndex::SortedFreeValues(const Pattern& p,
                                  std::vector<EntityId>* scratch,
                                  SortedIdSpan* out) const {
  if (overlay_.empty()) return frozen_.SortedFreeValues(p, scratch, out);
  // The frozen run goes into the caller's scratch so that when the
  // overlay contributes nothing to this pattern — the common case for a
  // compacted index — the frozen span (possibly a zero-copy column
  // slice) passes through without another copy.
  SortedIdSpan frozen_vals;
  if (!frozen_.SortedFreeValues(p, scratch, &frozen_vals)) {
    return false;
  }
  std::vector<EntityId> overlay_scratch;
  SortedIdSpan overlay_vals;
  if (!overlay_.SortedFreeValues(p, &overlay_scratch, &overlay_vals)) {
    return false;
  }
  if (overlay_vals.size == 0) {
    *out = frozen_vals;
    return true;
  }
  if (frozen_vals.size == 0) {
    scratch->assign(overlay_vals.data, overlay_vals.data + overlay_vals.size);
    out->data = scratch->data();
    out->size = scratch->size();
    return true;
  }
  std::vector<EntityId> merged;
  MergeSortedIds(frozen_vals, overlay_vals, &merged);
  scratch->swap(merged);
  out->data = scratch->data();
  out->size = scratch->size();
  return true;
}

DeltaIndex::Memory DeltaIndex::MemoryUsage() const {
  Memory m;
  m.frozen = frozen_.MemoryUsage();
  m.overlay_bytes =
      overlay_.MemoryUsage() +
      overlay_hash_.bucket_count() * sizeof(void*) +
      overlay_hash_.size() * (sizeof(Fact) + 2 * sizeof(void*));
  return m;
}

bool DeltaIndex::MaybeCompact() {
  if (overlay_.size() < kCompactMinOverlay) return false;
  if (overlay_.size() * 4 < frozen_.size()) return false;
  Compact();
  return true;
}

}  // namespace lsd
