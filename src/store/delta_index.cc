#include "store/delta_index.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace lsd {

DeltaIndex DeltaIndex::Clone() const {
  DeltaIndex copy;
  copy.segments_ = segments_;  // immutable, shared by pointer
  copy.frozen_count_ = frozen_count_;
  copy.overlay_.CopyFrom(overlay_);
  copy.overlay_hash_ = overlay_hash_;
  return copy;
}

bool DeltaIndex::Insert(const Fact& f) {
  for (const auto& seg : segments_) {
    if (seg->Contains(f)) return false;
  }
  if (!overlay_.Insert(f)) return false;
  overlay_hash_.insert(f);
  return true;
}

void DeltaIndex::AppendMissingAll(const std::vector<Fact>& run,
                                  std::vector<Fact>* out) const {
  // Batched dedup: one lockstep walk of the run against each segment's
  // sorted rows (see FrozenIndex::AppendMissing) instead of a binary
  // search per fact, then the overlay's hash probe for whatever survived.
  if (segments_.empty()) {
    out->insert(out->end(), run.begin(), run.end());
  } else {
    std::vector<Fact> cur = run;
    std::vector<Fact> next;
    for (size_t i = 0; i + 1 < segments_.size(); ++i) {
      next.clear();
      next.reserve(cur.size());
      segments_[i]->AppendMissing(cur, &next);
      cur.swap(next);
      if (cur.empty()) break;
    }
    segments_.back()->AppendMissing(cur, out);
  }
  if (!overlay_hash_.empty() && !out->empty()) {
    out->erase(std::remove_if(out->begin(), out->end(),
                              [this](const Fact& f) {
                                return overlay_hash_.count(f) != 0;
                              }),
               out->end());
  }
}

size_t DeltaIndex::InsertRun(const std::vector<Fact>& run) {
  std::vector<Fact> fresh;
  fresh.reserve(run.size());
  AppendMissingAll(run, &fresh);
  if (fresh.empty()) return 0;
  const size_t added = fresh.size();
  if (added < kL0MinRun) {
    for (const Fact& f : fresh) {
      overlay_.Insert(f);
      overlay_hash_.insert(f);
    }
    return added;
  }
  // A new L0 segment. The overlay is left alone: folding it belongs to
  // the background compactor, not the insert path.
  frozen_count_ += added;
  segments_.push_back(
      std::make_shared<const FrozenIndex>(FrozenIndex(std::move(fresh))));
  // Geometric tail-merge (the logarithmic method): keep segment sizes
  // decreasing by at least 2x oldest-to-newest, so the list stays
  // O(log n) deep while each merge touches only runs comparable to the
  // one just inserted — never the whole index.
  while (segments_.size() >= 2 &&
         segments_.back()->size() * 2 >=
             segments_[segments_.size() - 2]->size()) {
    const FrozenIndex& a = *segments_[segments_.size() - 2];
    const FrozenIndex& b = *segments_.back();
    std::vector<Fact> both = a.Materialize();
    const size_t mid = both.size();
    std::vector<Fact> newer = b.Materialize();
    both.insert(both.end(), newer.begin(), newer.end());
    std::inplace_merge(both.begin(), both.begin() + mid, both.end(),
                       OrderSrt());
    segments_.pop_back();
    segments_.back() =
        std::make_shared<const FrozenIndex>(FrozenIndex(std::move(both)));
  }
  return added;
}

bool DeltaIndex::ForEach(const Pattern& p, const FactVisitor& visit) const {
  for (const auto& seg : segments_) {
    if (!seg->ForEach(p, visit)) return false;
  }
  return overlay_.ForEach(p, visit);
}

size_t DeltaIndex::CountMatches(const Pattern& p) const {
  size_t n = overlay_.CountMatches(p);
  for (const auto& seg : segments_) n += seg->CountMatches(p);
  return n;
}

double DeltaIndex::EstimateMatchesBound(const Pattern& p,
                                        uint8_t bound_mask) const {
  double n = ScaleByDistinct(static_cast<double>(overlay_.CountMatches(p)),
                             bound_mask, overlay_.DistinctSources(),
                             overlay_.DistinctRelationships(),
                             overlay_.DistinctTargets());
  for (const auto& seg : segments_) {
    n += seg->EstimateMatchesBound(p, bound_mask);
  }
  return n;
}

std::vector<Fact> DeltaIndex::Materialize() const {
  // Every tier streams in SRT order; successive inplace_merge of sorted
  // blocks keeps this near-linear for the common few-segment shapes.
  std::vector<Fact> all;
  all.reserve(size());
  for (const auto& seg : segments_) {
    const size_t mid = all.size();
    std::vector<Fact> run = seg->Materialize();
    all.insert(all.end(), run.begin(), run.end());
    if (mid != 0) {
      std::inplace_merge(all.begin(), all.begin() + mid, all.end(),
                         OrderSrt());
    }
  }
  const size_t mid = all.size();
  overlay_.ForEach(Pattern(), [&all](const Fact& f) {
    all.push_back(f);
    return true;
  });
  if (mid != 0 && mid != all.size()) {
    std::inplace_merge(all.begin(), all.begin() + mid, all.end(),
                       OrderSrt());
  }
  return all;
}

FrozenIndex DeltaIndex::BuildMerged() const {
  return FrozenIndex(Materialize());
}

void DeltaIndex::Compact() {
  if (segments_.size() <= 1 && overlay_.empty()) return;
  FrozenIndex merged = BuildMerged();
  frozen_count_ = merged.size();
  segments_.clear();
  if (merged.size() != 0) {
    segments_.push_back(
        std::make_shared<const FrozenIndex>(std::move(merged)));
  }
  overlay_.Clear();
  overlay_hash_.clear();
}

bool DeltaIndex::SwapMergedPrefix(
    const std::vector<std::shared_ptr<const FrozenIndex>>& old_segments,
    std::shared_ptr<const FrozenIndex> merged) {
  if (old_segments.size() > segments_.size()) return false;
  for (size_t i = 0; i < old_segments.size(); ++i) {
    if (segments_[i].get() != old_segments[i].get()) return false;
  }
  std::vector<std::shared_ptr<const FrozenIndex>> next;
  next.reserve(segments_.size() - old_segments.size() + 1);
  if (merged != nullptr && merged->size() != 0) next.push_back(merged);
  next.insert(next.end(), segments_.begin() + old_segments.size(),
              segments_.end());
  segments_.swap(next);
  // Rebuild the overlay without the facts the merge folded in. Facts
  // inserted after the pin are not in `merged` and survive; suffix
  // segments are disjoint from the overlay by the insert-time invariant,
  // so `merged` is the only subtraction needed.
  if (!overlay_.empty() && merged != nullptr) {
    std::vector<Fact> keep;
    keep.reserve(overlay_.size());
    overlay_.ForEach(Pattern(), [&](const Fact& f) {
      if (!merged->Contains(f)) keep.push_back(f);
      return true;
    });
    if (keep.size() != overlay_.size()) {
      overlay_.Clear();
      overlay_hash_.clear();
      for (const Fact& f : keep) {
        overlay_.Insert(f);
        overlay_hash_.insert(f);
      }
    }
  }
  frozen_count_ = 0;
  for (const auto& seg : segments_) frozen_count_ += seg->size();
  return true;
}

bool DeltaIndex::SortedFreeValues(const Pattern& p,
                                  std::vector<EntityId>* scratch,
                                  SortedIdSpan* out) const {
  // Fast paths: a single tier answers alone (zero copy when it is a
  // frozen column slice), which is the common post-compaction state.
  if (segments_.empty()) return overlay_.SortedFreeValues(p, scratch, out);
  if (segments_.size() == 1 && overlay_.empty()) {
    return segments_[0]->SortedFreeValues(p, scratch, out);
  }
  bool have = false;
  std::vector<EntityId> acc;
  std::vector<EntityId> tier_scratch;
  auto fold = [&](const SortedIdSpan& vals) {
    if (vals.size == 0) return;
    if (!have) {
      acc.assign(vals.data, vals.data + vals.size);
      have = true;
      return;
    }
    std::vector<EntityId> merged;
    MergeSortedIds(SortedIdSpan{acc.data(), acc.size()}, vals, &merged);
    acc.swap(merged);
  };
  for (const auto& seg : segments_) {
    SortedIdSpan vals;
    if (!seg->SortedFreeValues(p, &tier_scratch, &vals)) return false;
    fold(vals);
  }
  if (!overlay_.empty()) {
    SortedIdSpan vals;
    if (!overlay_.SortedFreeValues(p, &tier_scratch, &vals)) return false;
    fold(vals);
  }
  scratch->swap(acc);
  out->data = scratch->data();
  out->size = scratch->size();
  return true;
}

DeltaIndex::Memory DeltaIndex::MemoryUsage() const {
  Memory m;
  for (const auto& seg : segments_) {
    const FrozenIndex::Memory sm = seg->MemoryUsage();
    m.frozen.run_bytes += sm.run_bytes;
    m.frozen.perm_bytes += sm.perm_bytes;
    m.frozen.offset_bytes += sm.offset_bytes;
  }
  m.overlay_bytes =
      overlay_.MemoryUsage() +
      overlay_hash_.bucket_count() * sizeof(void*) +
      overlay_hash_.size() * (sizeof(Fact) + 2 * sizeof(void*));
  m.runs = segments_.size();
  return m;
}

}  // namespace lsd
