#include "store/delta_index.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace lsd {

bool DeltaIndex::Insert(const Fact& f) {
  if (frozen_.Contains(f)) return false;
  if (!overlay_.Insert(f)) return false;
  overlay_hash_.insert(f);
  return true;
}

size_t DeltaIndex::InsertRun(const std::vector<Fact>& run) {
  std::vector<Fact> fresh;
  fresh.reserve(run.size());
  for (const Fact& f : run) {
    if (!Contains(f)) fresh.push_back(f);
  }
  if (fresh.empty()) return 0;
  const size_t added = fresh.size();
  if (added < kCompactMinOverlay) {
    for (const Fact& f : fresh) {
      overlay_.Insert(f);
      overlay_hash_.insert(f);
    }
  } else {
    // Fold any overlay first so the frozen tier stays the single sorted
    // run; then merge the round in linearly.
    if (!overlay_.empty()) Compact();
    frozen_ = FrozenIndex::Merged(frozen_, std::move(fresh));
  }
  return added;
}

bool DeltaIndex::ForEach(const Pattern& p, const FactVisitor& visit) const {
  if (!frozen_.ForEach(p, visit)) return false;
  return overlay_.ForEach(p, visit);
}

size_t DeltaIndex::CountMatches(const Pattern& p) const {
  return frozen_.CountMatches(p) + overlay_.CountMatches(p);
}

void DeltaIndex::Compact() {
  if (overlay_.empty()) return;
  // Both tiers stream in SRT order, so the concatenation is two sorted
  // runs; the rebuild's sort is nearly free on such input.
  std::vector<Fact> all;
  all.reserve(size());
  frozen_.ForEach(Pattern(), [&all](const Fact& f) {
    all.push_back(f);
    return true;
  });
  const auto mid = all.size();
  overlay_.ForEach(Pattern(), [&all](const Fact& f) {
    all.push_back(f);
    return true;
  });
  std::inplace_merge(all.begin(), all.begin() + mid, all.end(), OrderSrt());
  frozen_ = FrozenIndex(std::move(all));
  overlay_.Clear();
  overlay_hash_.clear();
}

bool DeltaIndex::MaybeCompact() {
  if (overlay_.size() < kCompactMinOverlay) return false;
  if (overlay_.size() * 4 < frozen_.size()) return false;
  Compact();
  return true;
}

}  // namespace lsd
