#include "store/entity_table.h"

#include <array>
#include <cassert>
#include <mutex>
#include <shared_mutex>

#include "util/string_util.h"

namespace lsd {

namespace {

struct BuiltinSpec {
  EntityId id;
  const char* name;
};

constexpr std::array<BuiltinSpec, kNumBuiltinEntities> kBuiltins = {{
    {kEntTop, "ANY"},
    {kEntBottom, "NONE"},
    {kEntIsa, "ISA"},
    {kEntIn, "IN"},
    {kEntSyn, "SYN"},
    {kEntInv, "INV"},
    {kEntContra, "CONTRA"},
    {kEntLess, "<"},
    {kEntGreater, ">"},
    {kEntEq, "="},
    {kEntNeq, "/="},
    {kEntLessEq, "<="},
    {kEntGreaterEq, ">="},
    {kEntClassRel, "CLASS-REL"},
}};

// Unicode spellings from the paper, mapped to canonical names.
struct AliasSpec {
  const char* alias;
  const char* canonical;
};

constexpr AliasSpec kAliases[] = {
    {"≺", "ISA"},     // ≺
    {"∈", "IN"},      // ∈
    {"≈", "SYN"},     // ≈
    {"↔", "INV"},     // ↔
    {"⊥", "CONTRA"},  // ⊥
    {"≠", "/="},      // ≠
    {"≤", "<="},      // ≤
    {"≥", ">="},      // ≥
    {"Δ", "ANY"},     // Δ
    {"∇", "NONE"},    // ∇
};

}  // namespace

EntityTable::EntityTable() {
  for (const auto& b : kBuiltins) {
    EntityId id = InternWithKind(b.name, EntityKind::kBuiltin);
    (void)id;
    assert(id == b.id);
  }
}

std::string EntityTable::Normalize(std::string_view name) const {
  std::string upper = AsciiToUpper(StripWhitespace(name));
  for (const auto& a : kAliases) {
    if (upper == a.alias) return a.canonical;
  }
  return upper;
}

EntityId EntityTable::InternWithKind(std::string_view normalized,
                                     EntityKind kind) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = by_name_.find(std::string(normalized));
  if (it != by_name_.end()) return it->second;
  Row row;
  row.name = std::string(normalized);
  row.kind = kind;
  if (auto num = ParseNumericEntity(normalized)) {
    row.is_numeric = true;
    row.numeric_value = *num;
  }
  EntityId id = static_cast<EntityId>(rows_.size());
  by_name_.emplace(row.name, id);
  rows_.push_back(std::move(row));
  return id;
}

EntityId EntityTable::Intern(std::string_view name) {
  return InternWithKind(Normalize(name), EntityKind::kRegular);
}

EntityId EntityTable::InternComposed(std::string_view name) {
  return InternWithKind(Normalize(name), EntityKind::kComposed);
}

void EntityTable::Reserve(size_t expected) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  by_name_.reserve(expected);
}

std::optional<EntityId> EntityTable::Lookup(std::string_view name) const {
  std::string normalized = Normalize(name);
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = by_name_.find(normalized);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

std::optional<double> EntityTable::NumericValue(EntityId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const Row& row = rows_[id];
  if (!row.is_numeric) return std::nullopt;
  return row.numeric_value;
}

}  // namespace lsd
