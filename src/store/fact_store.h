// FactStore: the explicitly asserted fact set (the paper's P, Sec 2.6)
// plus the entity table. Derived facts (closure) and virtual facts (math,
// ISA axioms) are layered on top via the FactSource interface, so query
// evaluation is uniform over "P ∪ derived ∪ virtual".
#ifndef LSD_STORE_FACT_STORE_H_
#define LSD_STORE_FACT_STORE_H_

#include <string_view>
#include <vector>

#include "store/entity_table.h"
#include "store/fact.h"
#include "store/triple_index.h"
#include "util/status.h"

namespace lsd {

// Bit set naming which wildcard positions of a Pattern will hold a
// single, as-yet-unknown value by the time the pattern is matched. The
// query planner estimates an atom's cardinality before the join
// variables feeding it are bound: the pattern carries the constants it
// knows, the mask marks the positions earlier join steps will have
// pinned by then.
enum BoundMask : uint8_t {
  kBindNone = 0,
  kBindSource = 1,
  kBindRelationship = 2,
  kBindTarget = 4,
};

// Uniformity assumption: a position pinned to one (unknown) value keeps
// 1/distinct of the matches seen with that position wildcarded.
inline double ScaleByDistinct(double count, uint8_t bound_mask,
                              size_t distinct_source, size_t distinct_rel,
                              size_t distinct_target) {
  if (bound_mask & kBindSource) {
    count /= static_cast<double>(distinct_source ? distinct_source : 1);
  }
  if (bound_mask & kBindRelationship) {
    count /= static_cast<double>(distinct_rel ? distinct_rel : 1);
  }
  if (bound_mask & kBindTarget) {
    count /= static_cast<double>(distinct_target ? distinct_target : 1);
  }
  return count;
}

// Merges two strictly-ascending runs into one strictly-ascending run in
// `out` (values present in both appear once).
void MergeSortedIds(SortedIdSpan a, SortedIdSpan b,
                    std::vector<EntityId>* out);

// Read-only stream of facts matching a pattern. Implementations:
// IndexSource (a TripleIndex), UnionSource (layering), the rule engine's
// ClosureView, MathProvider, IsaAxiomSource.
class FactSource {
 public:
  virtual ~FactSource() = default;

  // Streams matches; stops early (returning false) if `visit` returns
  // false. Matches may be produced in any order but without duplicates.
  virtual bool ForEach(const Pattern& p, const FactVisitor& visit) const = 0;

  virtual bool Contains(const Fact& f) const = 0;

  // Whether ForEach can produce a finite, meaningful stream for this
  // pattern. Virtual relations (Sec 3.6 mathematical facts) are not
  // enumerable with unbound operands; everything stored is always
  // enumerable.
  virtual bool Enumerable(const Pattern& p) const {
    (void)p;
    return true;
  }

  // Upper-bound estimate of matches, used for join ordering. Defaults to
  // full enumeration.
  virtual size_t EstimateMatches(const Pattern& p) const;

  // Binding-pattern-aware estimate for the planner: positions in
  // `bound_mask` are wildcards in `p` that will hold one unknown value at
  // match time. The default ignores the mask (a safe upper bound);
  // sources with statistics scale the wildcard count down by the number
  // of distinct values in the masked positions.
  virtual double EstimateMatchesBound(const Pattern& p,
                                      uint8_t bound_mask) const {
    (void)bound_mask;
    return static_cast<double>(EstimateMatches(p));
  }

  // Order hook for the merge-join kernel: if `p` has exactly one free
  // position and this source can produce the distinct values of that
  // position in strictly ascending order, fills `out` — borrowing
  // `scratch` for storage unless the values are already contiguous in the
  // source — and returns true. The span stays valid only until `scratch`
  // is next touched (or, for borrowed spans, as long as the source).
  // Because the other two positions are bound, each value corresponds to
  // exactly one fact of the source, so intersecting two such runs visits
  // exactly the bindings nested-loop enumeration would. The default
  // declines, which simply keeps callers on the nested-loop path.
  virtual bool SortedFreeValues(const Pattern& p,
                                std::vector<EntityId>* scratch,
                                SortedIdSpan* out) const {
    (void)p;
    (void)scratch;
    (void)out;
    return false;
  }

  // Capability probe for SortedFreeValues: true iff a SortedFreeValues
  // call with `p` would succeed, decided without materializing anything.
  // The matcher asks this at every recursion node before committing to
  // the merge-join rewrite, so it must stay allocation-free and cheap —
  // a pathological plan revisits the question once per cross-product
  // row. Must never return true when SortedFreeValues would decline.
  virtual bool CanSortFreeValues(const Pattern& p) const {
    (void)p;
    return false;
  }

  std::vector<Fact> Match(const Pattern& p) const;
};

// FactSource over a TripleIndex it does not own.
class IndexSource final : public FactSource {
 public:
  explicit IndexSource(const TripleIndex* index) : index_(index) {}

  bool ForEach(const Pattern& p, const FactVisitor& visit) const override {
    return index_->ForEach(p, visit);
  }
  bool Contains(const Fact& f) const override {
    return index_->Contains(f);
  }
  size_t EstimateMatches(const Pattern& p) const override {
    return index_->CountMatches(p);
  }
  double EstimateMatchesBound(const Pattern& p,
                              uint8_t bound_mask) const override;
  bool SortedFreeValues(const Pattern& p, std::vector<EntityId>* scratch,
                        SortedIdSpan* out) const override {
    return index_->SortedFreeValues(p, scratch, out);
  }
  bool CanSortFreeValues(const Pattern& p) const override {
    return p.BoundCount() == 2;
  }

 private:
  const TripleIndex* index_;
};

// Union of sources. Later sources are deduplicated against earlier ones
// via Contains, so the stream stays duplicate-free even when layers
// overlap.
class UnionSource final : public FactSource {
 public:
  explicit UnionSource(std::vector<const FactSource*> sources)
      : sources_(std::move(sources)) {}

  bool ForEach(const Pattern& p, const FactVisitor& visit) const override;
  bool Contains(const Fact& f) const override;
  bool Enumerable(const Pattern& p) const override;
  size_t EstimateMatches(const Pattern& p) const override;
  double EstimateMatchesBound(const Pattern& p,
                              uint8_t bound_mask) const override;
  bool SortedFreeValues(const Pattern& p, std::vector<EntityId>* scratch,
                        SortedIdSpan* out) const override;
  bool CanSortFreeValues(const Pattern& p) const override;

 private:
  std::vector<const FactSource*> sources_;
};

class FactStore {
 public:
  FactStore() = default;

  FactStore(const FactStore&) = delete;
  FactStore& operator=(const FactStore&) = delete;

  EntityTable& entities() { return entities_; }
  const EntityTable& entities() const { return entities_; }

  // Asserts a fact by ids. Returns true if new.
  bool Assert(const Fact& f);
  // Asserts by names, interning as needed.
  Fact Assert(std::string_view source, std::string_view relationship,
              std::string_view target);

  // Retracts an asserted fact. Returns true if it was present.
  bool Retract(const Fact& f);

  bool Contains(const Fact& f) const { return base_.Contains(f); }

  const TripleIndex& base() const { return base_; }
  size_t size() const { return base_.size(); }

  // A FactSource over the asserted facts only.
  const FactSource& base_source() const { return base_source_; }

  // Relationship classes (Sec 2.2). A relationship is a class
  // relationship iff (r, IN, CLASS-REL) is asserted; membership IN itself
  // is a class relationship by definition (Sec 2.3) and generalization
  // ISA is individual.
  bool IsClassRelationship(EntityId r) const;
  void MarkClassRelationship(EntityId r);

  // Monotonically increasing counter bumped on every Assert/Retract;
  // closures cache against it.
  uint64_t version() const { return version_; }
  // Adopts another store's mutation clock. Only for cloning: a clone
  // built by replaying facts has counted the inserts but not the
  // retracts, so two logically different states can share a count
  // (assert-after-retract lands back on the source's number). Adopting
  // the source clock keeps version comparisons meaningful across
  // clones.
  void set_version(uint64_t version) { version_ = version; }

 private:
  EntityTable entities_;
  TripleIndex base_;
  IndexSource base_source_{&base_};
  uint64_t version_ = 0;
};

}  // namespace lsd

#endif  // LSD_STORE_FACT_STORE_H_
