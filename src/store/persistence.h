// Durability for loosely structured databases: binary snapshots plus an
// append-only write-ahead log. The paper leaves storage strategies as an
// open problem (Sec 6.2); this is the simplest strategy that makes the
// library adoptable: snapshot the whole store, log subsequent mutations,
// recover by replaying the log over the snapshot.
//
// WAL records are self-contained (they carry entity names, not ids), so
// a log remains valid regardless of interning order.
#ifndef LSD_STORE_PERSISTENCE_H_
#define LSD_STORE_PERSISTENCE_H_

#include <cstdio>
#include <string>
#include <vector>

#include "rules/rule.h"
#include "store/fact_store.h"
#include "util/status.h"

namespace lsd {

// Writes a full snapshot (entities, facts, rules) to `path`.
Status SaveSnapshot(const std::string& path, const FactStore& store,
                    const std::vector<Rule>& rules);

// Loads a snapshot into an empty FactStore. `store` must be freshly
// constructed (only builtins interned); rules are appended.
Status LoadSnapshot(const std::string& path, FactStore* store,
                    std::vector<Rule>* rules);

// How hard the WAL pushes each record toward the platter.
enum class WalSync : uint8_t {
  kFlush,  // fflush only: survives process crashes, not power loss
  kFsync,  // fflush + fsync every record: survives power loss, slower
};

// Append-only mutation log.
class Wal {
 public:
  Wal() = default;
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  // Opens (creating if needed) a log file for appending.
  Status Open(const std::string& path, WalSync sync = WalSync::kFlush);
  void Close();

  WalSync sync_mode() const { return sync_; }

  bool is_open() const { return file_ != nullptr; }

  // Mutation records. Each call appends and flushes one record.
  Status AppendAssert(const FactStore& store, const Fact& f);
  Status AppendRetract(const FactStore& store, const Fact& f);
  Status AppendRule(const Rule& rule, const EntityTable& entities);
  Status AppendSetRuleEnabled(const std::string& rule_name, bool enabled);

  // Replays a log over a store: asserts/retracts facts, appends rules,
  // and toggles matching rule names in `rules`. Missing file is OK (an
  // empty log). A torn final record — the tail a crash left half-written
  // — is tolerated: the log is truncated back to the last complete
  // record and replay succeeds without it. Corruption that is not a
  // clean tail truncation (bad magic, unknown opcode, malformed record
  // followed by more data) still fails with DataLoss.
  static Status Replay(const std::string& path, FactStore* store,
                       std::vector<Rule>* rules);

 private:
  Status AppendRecord(uint8_t op, const std::vector<std::string>& fields);

  std::FILE* file_ = nullptr;
  std::string path_;
  WalSync sync_ = WalSync::kFlush;
};

}  // namespace lsd

#endif  // LSD_STORE_PERSISTENCE_H_
