// Durability for loosely structured databases: binary snapshots plus a
// crash-consistent, checksummed, segmented write-ahead log. The paper
// leaves storage strategies as an open problem (Sec 6.2); this is the
// hardened version of the obvious strategy: snapshot the whole store,
// log subsequent mutations, recover by replaying the log over the
// snapshot — now with the properties a real log needs:
//
//  * CRC32C per record (over the length prefix and the payload), so a
//    flipped byte anywhere in a record is detected deterministically,
//    not just a torn final record.
//  * Salvage-to-last-valid-prefix recovery: replay stops at the first
//    invalid record, the bad suffix (and any later segments) is
//    truncated away, and RecoveryStats reports exactly what was kept
//    and what was dropped. Acknowledged writes before the damage are
//    never lost; bytes after it are never trusted.
//  * Size-based segment rotation (<base>.000001, <base>.000002, ...),
//    so one corrupt region cannot poison an unbounded file and old
//    segments can be dropped wholesale at checkpoints.
//  * Checkpoint generations: a checkpoint writes a snapshot stamped
//    with generation G+1 (atomically, via rename), starts a fresh
//    segment stamped G+1, then unlinks older segments. Recovery skips
//    any segment whose generation predates the snapshot's, so a crash
//    anywhere inside the checkpoint sequence recovers correctly and
//    replay work stays bounded by the data written since the last
//    checkpoint.
//
// WAL records are self-contained (they carry entity names, not ids), so
// a log remains valid regardless of interning order.
//
// Fault injection: the write, flush, fsync, rotate and checkpoint paths
// carry failpoints (util/failpoint.h) named wal.append.write,
// wal.append.flush, wal.fsync, wal.rotate, snapshot.write, plus the
// group-commit sites wal.batch.record (before each record of a group)
// and wal.batch.sync (after the group's flush, before its fsync); the
// crash-torture harness kills the process at each of them.
#ifndef LSD_STORE_PERSISTENCE_H_
#define LSD_STORE_PERSISTENCE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "rules/rule.h"
#include "store/fact_store.h"
#include "util/status.h"

namespace lsd {

// Writes a full snapshot (entities, facts, rules) to `path`, stamped
// with a checkpoint generation. Flushes and fsyncs before returning.
Status SaveSnapshot(const std::string& path, const FactStore& store,
                    const std::vector<Rule>& rules, uint64_t generation = 0);

// SaveSnapshot to `path + ".tmp"`, then atomically rename over `path`:
// a crash mid-write leaves the previous snapshot intact.
Status SaveSnapshotAtomic(const std::string& path, const FactStore& store,
                          const std::vector<Rule>& rules,
                          uint64_t generation = 0);

// Loads a snapshot into an empty FactStore. `store` must be freshly
// constructed (only builtins interned); rules are appended. The
// snapshot's checkpoint generation is returned through `generation`
// when non-null.
Status LoadSnapshot(const std::string& path, FactStore* store,
                    std::vector<Rule>* rules,
                    uint64_t* generation = nullptr);

// How hard the WAL pushes each record toward the platter.
enum class WalSync : uint8_t {
  kFlush,  // fflush only: survives process crashes, not power loss
  kFsync,  // fflush + fsync every record: survives power loss, slower
};

struct WalOptions {
  WalSync sync = WalSync::kFlush;
  // Rotate to a fresh segment once the active one exceeds this many
  // bytes (0 disables rotation).
  uint64_t segment_bytes = 4ull << 20;
};

// What recovery found and what it had to do. Returned by Wal::Replay
// (and surfaced by LooseDb::Open / last_recovery()).
struct RecoveryStats {
  bool snapshot_loaded = false;
  uint64_t generation = 0;         // checkpoint generation recovered at
  uint64_t records_replayed = 0;   // checksum-valid records applied
  uint64_t segments_replayed = 0;  // segments read end to end (or salvaged)
  uint64_t segments_skipped = 0;   // stale generation: data already in snap
  uint64_t segments_dropped = 0;   // unreadable, or after a corrupt record
  uint64_t bytes_replayed = 0;     // record bytes applied
  uint64_t bytes_dropped = 0;      // corrupt or torn bytes truncated away
  bool tail_truncated = false;     // a torn/corrupt suffix was removed
  std::string detail;              // human-readable note on damage, if any

  std::string ToString() const;
};

// WAL record opcodes. Public so readers other than Replay (the
// replication follower's replay loop) can interpret records.
enum class WalOpCode : uint8_t {
  kAssert = 1,
  kRetract = 2,
  kRule = 3,
  kEnableRule = 4,
  kDisableRule = 5,
};

// One staged WAL record: an opcode plus its name fields, not yet
// framed. The group-commit leader collects the records of every
// mutation in a commit group (LooseDb::set_mutation_capture) and hands
// them to Wal::AppendBatch so the whole group shares one fflush+fsync.
struct WalRecord {
  uint8_t op = 0;
  std::vector<std::string> fields;
};

// A byte coordinate in the segmented log: (checkpoint generation,
// segment sequence number, byte offset within that segment, header
// included). Replication followers resume from one of these; the
// zero position means "from the very beginning / send me everything".
struct WalPosition {
  uint64_t generation = 0;
  uint64_t segment_seq = 0;
  uint64_t offset = 0;

  bool IsZero() const { return segment_seq == 0 && offset == 0; }
  friend bool operator==(const WalPosition& a, const WalPosition& b) {
    return a.generation == b.generation &&
           a.segment_seq == b.segment_seq && a.offset == b.offset;
  }
  friend bool operator!=(const WalPosition& a, const WalPosition& b) {
    return !(a == b);
  }
  std::string ToString() const;
};

// One on-disk segment as the inventory API reports it (the
// `Wal::TailReader` satellite: replication and the shell read the log
// through this instead of poking at files).
struct WalSegmentInfo {
  uint64_t seq = 0;
  uint64_t generation = 0;
  uint64_t bytes = 0;  // file size, segment header included
  std::string path;
};

// Builders producing the exact records the single-append methods log.
WalRecord WalAssertRecord(const FactStore& store, const Fact& f);
WalRecord WalRetractRecord(const FactStore& store, const Fact& f);
WalRecord WalRuleRecord(const Rule& rule, const EntityTable& entities);
WalRecord WalRuleEnabledRecord(const std::string& rule_name, bool enabled);

// Append-only mutation log over a family of segment files
// `<base>.NNNNNN`. Single-writer; Replay and TailReaders are readers
// (TailReaders only ever read at or below durable_position(), which the
// writer publishes after each batch lands).
class Wal {
 public:
  // Bytes of segment header (magic, generation, seq) before the first
  // record; a WalPosition at the start of a segment's records has
  // offset == kSegmentHeaderSize.
  static constexpr uint64_t kSegmentHeaderSize = 8 + 8 + 8;

  Wal() = default;
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  // Opens the newest segment of `<base>.NNNNNN` for appending, creating
  // segment 000001 stamped with `generation` if none exist. Run
  // Replay() on the same base first: it leaves the log salvaged back to
  // its last valid prefix, which is the only safe append point.
  Status Open(const std::string& base, const WalOptions& options = {},
              uint64_t generation = 0);
  void Close();

  WalSync sync_mode() const { return options_.sync; }
  bool is_open() const { return file_ != nullptr; }

  // The checkpoint generation stamped into newly created segments.
  uint64_t generation() const { return generation_; }
  // Bytes of record data appended to current-generation segments (the
  // auto-checkpoint trigger; resets on BeginGeneration).
  uint64_t generation_bytes() const { return generation_bytes_; }

  // Mutation records. Each call appends and flushes one record. Any
  // append failure (real or injected) poisons the log: the active
  // segment may hold a partial record, so further appends are refused
  // until the log is reopened (and thereby salvaged) — interleaving
  // good records after a torn one would turn a clean tail truncation
  // into mid-file corruption.
  Status AppendAssert(const FactStore& store, const Fact& f);
  Status AppendRetract(const FactStore& store, const Fact& f);
  Status AppendRule(const Rule& rule, const EntityTable& entities);
  Status AppendSetRuleEnabled(const std::string& rule_name, bool enabled);

  // Group commit: frames every record of `records`, then flushes (and
  // at WalSync::kFsync, fsyncs) ONCE for the whole group — the
  // amortization that makes N concurrent writers pay one platter round
  // trip instead of N. The group never spans a rotation: the segment is
  // rotated (if due) before the first record, then the whole group
  // lands in one segment even if it overshoots segment_bytes (the next
  // append rotates). Failure semantics match the single-record path:
  // any write/flush/fsync failure poisons the log and the whole group
  // must be treated as not durable — callers ack their writers only
  // after AppendBatch returns OK. An empty group is a no-op.
  //
  // The single-record Append* methods above are AppendBatch of one.
  Status AppendBatch(const std::vector<WalRecord>& records);

  // Lifetime counters for the fsync-amortization story ("fsyncs issued
  // vs writes acked"). Atomic so a stats reader can sample them while
  // the (single) writer appends.
  uint64_t appended_records() const { return appended_records_.load(); }
  uint64_t append_batches() const { return append_batches_.load(); }
  uint64_t max_batch_records() const { return max_batch_records_.load(); }
  uint64_t fsyncs() const { return fsyncs_.load(); }

  // The checkpoint swap: starts a fresh segment stamped `generation`,
  // then unlinks every older-generation segment. Call after the
  // matching snapshot has been atomically published.
  Status BeginGeneration(uint64_t generation);

  // ---- Segment inventory & tailing (the replication read side) -----------

  // The on-disk segments of `base`, sorted by sequence number, each with
  // its generation and size. Segments whose header cannot be read are
  // omitted. A missing directory is an empty inventory.
  static std::vector<WalSegmentInfo> Inventory(const std::string& base);
  // Inventory of this (open) log's base.
  std::vector<WalSegmentInfo> SegmentInventory() const;

  // The coordinate of the last byte this log has durably landed (at
  // WalSync::kFlush, "durable" means flushed — the same point at which
  // writers are acked). Shippers must never read past it: bytes beyond
  // may belong to a group that will fail its fsync and be truncated by
  // salvage. Thread-safe.
  WalPosition durable_position() const;
  // Monotonic counter bumped on every durable-position change; pair
  // with WaitAppend to sleep until the log grows.
  uint64_t position_version() const;
  // Blocks until position_version() != seen_version or `timeout`
  // elapses. Returns true when the position moved.
  bool WaitAppend(uint64_t seen_version,
                  std::chrono::milliseconds timeout) const;

  // Replays every segment of `base` (generation >= min_generation; the
  // snapshot already contains older ones) over the store. Missing
  // segments are an empty log. Replay stops at the first invalid record
  // (torn tail or checksum mismatch), truncates the damage away, drops
  // any later segments, and reports everything in `stats` (optional).
  // Only environmental failures (unlinkable files, ...) return non-OK;
  // data damage is salvaged, not fatal.
  static Status Replay(const std::string& base, FactStore* store,
                       std::vector<Rule>* rules,
                       RecoveryStats* stats = nullptr,
                       uint64_t min_generation = 0);

 private:
  // Publishes the current (generation_, segment_seq_,
  // segment_bytes_written_) triple as the durable position and wakes
  // WaitAppend callers.
  void PublishPosition();

  Status AppendRecord(uint8_t op, const std::vector<std::string>& fields);
  // Frames and fwrites one record (no flush/sync); evaluates the
  // wal.append.write failpoint and poisons the log on any failure.
  Status WriteRecord(const WalRecord& record, uint64_t* bytes_written);
  Status OpenSegment(uint64_t seq, uint64_t generation);
  Status RotateIfNeeded();

  std::FILE* file_ = nullptr;
  std::string base_;
  WalOptions options_;
  uint64_t generation_ = 0;
  uint64_t segment_seq_ = 0;
  uint64_t segment_bytes_written_ = 0;  // active segment size
  uint64_t generation_bytes_ = 0;
  bool poisoned_ = false;
  std::atomic<uint64_t> appended_records_{0};
  std::atomic<uint64_t> append_batches_{0};
  std::atomic<uint64_t> max_batch_records_{0};
  std::atomic<uint64_t> fsyncs_{0};

  // The published durable position (single writer, many readers).
  mutable std::mutex position_mu_;
  mutable std::condition_variable position_cv_;
  WalPosition position_;
  uint64_t position_version_ = 0;
};

// Sequential reader over one WAL segment, used by the replication
// shipper to stream raw record bytes. Open positions it; Read never
// goes past the caller-supplied limit (the durable position), so a
// torn or in-flight suffix is never shipped.
class WalTailReader {
 public:
  explicit WalTailReader(std::string base) : base_(std::move(base)) {}
  ~WalTailReader() { Close(); }

  WalTailReader(const WalTailReader&) = delete;
  WalTailReader& operator=(const WalTailReader&) = delete;

  // Opens segment `seq` and seeks to `offset` (0 means the first record
  // byte, i.e. Wal::kSegmentHeaderSize). Validates the segment header.
  Status Open(uint64_t seq, uint64_t offset);
  void Close();
  bool is_open() const { return file_ != nullptr; }

  uint64_t seq() const { return seq_; }
  uint64_t generation() const { return generation_; }
  uint64_t offset() const { return offset_; }

  // Appends up to max_bytes from the current position — never past
  // byte `limit_offset` of this segment — to *out, advancing offset().
  // Returns the number of bytes read (0: nothing available below the
  // limit). IoError if the file shrank or a read fails.
  StatusOr<size_t> Read(uint64_t limit_offset, size_t max_bytes,
                        std::string* out);

 private:
  std::string base_;
  std::FILE* file_ = nullptr;
  uint64_t seq_ = 0;
  uint64_t generation_ = 0;
  uint64_t offset_ = 0;
};

// Incremental decoder for the WAL record framing
// ([u32 len][u32 crc][payload]); the follower-side replay loop feeds it
// shipped chunk bytes and pulls whole records out. CRC-validated: a
// mismatch poisons the parser (the stream cannot be trusted past it).
class WalRecordParser {
 public:
  enum class Result {
    kRecord,    // *out filled with the next complete record
    kNeedMore,  // no complete record buffered yet
    kError,     // corrupt framing; see error()
  };

  void Feed(std::string_view data);
  Result Next(WalRecord* out);

  const std::string& error() const { return error_; }
  // Bytes fed but not yet consumed by complete records. When this is 0
  // the stream is at a record boundary — the only safe resume point.
  size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::string buf_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace lsd

#endif  // LSD_STORE_PERSISTENCE_H_
