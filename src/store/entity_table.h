// String-interning table mapping entity names <-> dense EntityIds.
//
// Names are case-normalized to upper ASCII (the paper writes all entities
// uppercase). Numeric names ("25000", "$25000", "2.6") are recognized at
// intern time and carry a double value so the math provider (Sec 3.6) can
// answer comparison facts without storing them.
//
// Thread safety: the table is append-only and internally synchronized —
// concurrent Intern and read calls are safe. This is what lets a server
// epoch (src/server) be shared by many reader threads even though
// parsing a query and minting composed relationships both intern on the
// fly. Rows are stored in a deque, so the reference returned by Name()
// stays valid for the table's lifetime regardless of later interning.
#ifndef LSD_STORE_ENTITY_TABLE_H_
#define LSD_STORE_ENTITY_TABLE_H_

#include <deque>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "store/entity.h"
#include "util/status.h"

namespace lsd {

class EntityTable {
 public:
  EntityTable();

  EntityTable(const EntityTable&) = delete;
  EntityTable& operator=(const EntityTable&) = delete;

  // Returns the id for `name`, interning it if new. Normalizes case and
  // resolves the unicode aliases the paper uses (≺, ∈, ≈, ↔, ⊥, ≠, ≤, ≥).
  EntityId Intern(std::string_view name);

  // Interns a composition-minted entity (Sec 3.7), e.g.
  // "ENROLLED-IN.CS100.TAUGHT-BY". Kind is kComposed.
  EntityId InternComposed(std::string_view name);

  // Returns the id for `name` without interning, or nullopt if unknown.
  std::optional<EntityId> Lookup(std::string_view name) const;

  // Pre-sizes the name hash for about `expected` entities, so a bulk
  // load (snapshot recovery, .lsd import) interns without rehashing.
  // Rows live in a deque and need no reservation.
  void Reserve(size_t expected);

  // Name of an entity. id must be valid. The reference is stable: rows
  // are never erased and deque growth does not move existing elements.
  const std::string& Name(EntityId id) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return rows_[id].name;
  }

  EntityKind Kind(EntityId id) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return rows_[id].kind;
  }

  // Numeric value if the entity is a number (Sec 3.6), else nullopt.
  std::optional<double> NumericValue(EntityId id) const;

  bool IsNumeric(EntityId id) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return rows_[id].is_numeric;
  }

  bool IsValid(EntityId id) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return id < rows_.size();
  }

  // Number of interned entities (including builtins).
  size_t size() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return rows_.size();
  }

 private:
  struct Row {
    std::string name;
    EntityKind kind = EntityKind::kRegular;
    bool is_numeric = false;
    double numeric_value = 0;
  };

  EntityId InternWithKind(std::string_view normalized, EntityKind kind);

  // Canonicalizes case and unicode aliases.
  std::string Normalize(std::string_view name) const;

  mutable std::shared_mutex mu_;
  std::deque<Row> rows_;
  std::unordered_map<std::string, EntityId> by_name_;
};

}  // namespace lsd

#endif  // LSD_STORE_ENTITY_TABLE_H_
