// Dynamic triple index over facts.
//
// Keeps three ordered permutations (SRT, RTS, TSR) so that every one of
// the 8 binding patterns of a (source, relationship, target) pattern is
// answered by a contiguous range scan of one permutation:
//
//   bound positions        index   prefix
//   s r t (containment)    SRT     exact
//   s r                    SRT     (s, r)
//   s                      SRT     (s)
//   r t                    RTS     (r, t)
//   r                      RTS     (r)
//   t                      TSR     (t)
//   s t                    TSR     (t, s)
//   (none)                 SRT     full scan
#ifndef LSD_STORE_TRIPLE_INDEX_H_
#define LSD_STORE_TRIPLE_INDEX_H_

#include <cstddef>
#include <set>
#include <vector>

#include "store/fact.h"

namespace lsd {

class TripleIndex {
 public:
  TripleIndex() = default;

  TripleIndex(const TripleIndex&) = delete;
  TripleIndex& operator=(const TripleIndex&) = delete;
  TripleIndex(TripleIndex&&) = default;
  TripleIndex& operator=(TripleIndex&&) = default;

  // Explicit deep copy (copy construction stays deleted so accidental
  // copies cannot sneak into hot paths). DeltaIndex::Clone uses this to
  // duplicate its overlay when transplanting closure tiers.
  void CopyFrom(const TripleIndex& other) {
    srt_ = other.srt_;
    rts_ = other.rts_;
    tsr_ = other.tsr_;
    distinct_sources_ = other.distinct_sources_;
    distinct_rels_ = other.distinct_rels_;
    distinct_targets_ = other.distinct_targets_;
  }

  // Inserts a fact. Returns true if it was new.
  bool Insert(const Fact& f);

  // Removes a fact. Returns true if it was present.
  bool Erase(const Fact& f);

  bool Contains(const Fact& f) const;

  // Streams all facts matching `p` in the order of the chosen permutation.
  // Stops early (and returns false) if the visitor returns false.
  bool ForEach(const Pattern& p, const FactVisitor& visit) const;

  // Convenience: collects matches into a vector.
  std::vector<Fact> Match(const Pattern& p) const;

  // Number of facts matching `p`. Fully-bound and prefix-bound patterns
  // are answered from range bounds (a walk over the matching range only,
  // with no per-fact pattern test). Used by the evaluator's selectivity
  // heuristic.
  size_t CountMatches(const Pattern& p) const;

  // Number of distinct values in each position, maintained incrementally
  // (an O(log n) neighbor probe per Insert/Erase). These feed the query
  // planner's uniformity-scaled cardinality estimates.
  size_t DistinctSources() const { return distinct_sources_; }
  size_t DistinctRelationships() const { return distinct_rels_; }
  size_t DistinctTargets() const { return distinct_targets_; }

  // Sorted distinct values of the single free position of a two-bound
  // pattern, collected into `scratch` from the permutation whose range
  // walk yields that position in ascending order. Same contract as
  // FactSource::SortedFreeValues (IndexSource delegates here).
  bool SortedFreeValues(const Pattern& p, std::vector<EntityId>* scratch,
                        SortedIdSpan* out) const;

  // Estimated resident bytes: each std::set node holds a Fact plus the
  // red-black tree overhead (three pointers and a color word on the
  // usual implementations).
  size_t MemoryUsage() const {
    constexpr size_t kNodeBytes = sizeof(Fact) + 4 * sizeof(void*);
    return 3 * srt_.size() * kNodeBytes;
  }

  size_t size() const { return srt_.size(); }
  bool empty() const { return srt_.empty(); }
  void Clear();

 private:
  std::set<Fact, OrderSrt> srt_;
  std::set<Fact, OrderRts> rts_;
  std::set<Fact, OrderTsr> tsr_;
  size_t distinct_sources_ = 0;
  size_t distinct_rels_ = 0;
  size_t distinct_targets_ = 0;
};

}  // namespace lsd

#endif  // LSD_STORE_TRIPLE_INDEX_H_
