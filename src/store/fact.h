// The atomic unit of information (Sec 2.1): a named pair of entities
// (source, relationship, target), plus the pattern type used to match
// facts with some positions unconstrained.
#ifndef LSD_STORE_FACT_H_
#define LSD_STORE_FACT_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <type_traits>

#include "store/entity.h"

namespace lsd {

class EntityTable;

struct Fact {
  EntityId source = 0;
  EntityId relationship = 0;
  EntityId target = 0;

  Fact() = default;
  Fact(EntityId s, EntityId r, EntityId t)
      : source(s), relationship(r), target(t) {}

  friend bool operator==(const Fact& a, const Fact& b) = default;

  // Renders "(JOHN, WORKS-FOR, SHIPPING)".
  std::string DebugString(const EntityTable& entities) const;
};

// Lexicographic orders used by the index permutations.
struct OrderSrt {
  bool operator()(const Fact& a, const Fact& b) const {
    if (a.source != b.source) return a.source < b.source;
    if (a.relationship != b.relationship)
      return a.relationship < b.relationship;
    return a.target < b.target;
  }
};

struct OrderRts {
  bool operator()(const Fact& a, const Fact& b) const {
    if (a.relationship != b.relationship)
      return a.relationship < b.relationship;
    if (a.target != b.target) return a.target < b.target;
    return a.source < b.source;
  }
};

struct OrderTsr {
  bool operator()(const Fact& a, const Fact& b) const {
    if (a.target != b.target) return a.target < b.target;
    if (a.source != b.source) return a.source < b.source;
    return a.relationship < b.relationship;
  }
};

struct FactHash {
  size_t operator()(const Fact& f) const {
    // 64-bit mix of the three 32-bit components.
    uint64_t h = f.source;
    h = h * 0x9e3779b97f4a7c15ULL + f.relationship;
    h = h * 0x9e3779b97f4a7c15ULL + f.target;
    h ^= h >> 29;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 32;
    return static_cast<size_t>(h);
  }
};

// A match pattern: each position is either a bound EntityId or kAnyEntity
// (the paper's "*", Sec 4.1).
struct Pattern {
  EntityId source = kAnyEntity;
  EntityId relationship = kAnyEntity;
  EntityId target = kAnyEntity;

  Pattern() = default;
  Pattern(EntityId s, EntityId r, EntityId t)
      : source(s), relationship(r), target(t) {}

  bool SourceBound() const { return source != kAnyEntity; }
  bool RelationshipBound() const { return relationship != kAnyEntity; }
  bool TargetBound() const { return target != kAnyEntity; }

  bool Matches(const Fact& f) const {
    return (!SourceBound() || source == f.source) &&
           (!RelationshipBound() || relationship == f.relationship) &&
           (!TargetBound() || target == f.target);
  }

  // Number of bound positions (0..3).
  int BoundCount() const {
    return (SourceBound() ? 1 : 0) + (RelationshipBound() ? 1 : 0) +
           (TargetBound() ? 1 : 0);
  }

  friend bool operator==(const Pattern& a, const Pattern& b) = default;

  std::string DebugString(const EntityTable& entities) const;
};

// A read-only run of strictly ascending entity ids, either borrowed from
// an index's column storage (zero copy) or materialized into a
// caller-provided scratch buffer. Produced by the indexes'
// SortedFreeValues; consumed by the matcher's merge-join kernel.
struct SortedIdSpan {
  const EntityId* data = nullptr;
  size_t size = 0;
};

// Callback for streaming matches. Return false to stop iteration.
//
// This is a non-owning function reference (one pointer to the callable
// plus one call thunk), not a std::function: ForEach sits on the match
// hot path and is invoked millions of times per closure, and
// constructing a std::function from a capturing lambda heap-allocates
// once the captures exceed the small-buffer size. Sources must never
// store a FactVisitor beyond the ForEach call — the referenced callable
// lives on the caller's stack.
class FactVisitor {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FactVisitor>>>
  FactVisitor(F&& f)  // NOLINT: implicit from any bool(const Fact&)
      : obj_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, const Fact& fact) -> bool {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(fact);
        }) {}

  bool operator()(const Fact& f) const { return call_(obj_, f); }

 private:
  void* obj_;
  bool (*call_)(void*, const Fact&);
};

}  // namespace lsd

#endif  // LSD_STORE_FACT_H_
