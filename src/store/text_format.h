// Human-readable .lsd format for loosely structured databases.
//
//   # comment (whole line)
//   (JOHN, WORKS-FOR, SHIPPING)            fact
//   @class TOTAL-NUMBER                    mark a class relationship
//   rule pay: (?X, IN, EMPLOYEE) => (?X, EARNS, SALARY)
//   integrity pos-age: (?X, IN, AGE-VALUE) => (?X, >, 0)
//   rule r2: (?S, ?R, ?T), (?S2, ISA, ?S) => (?S2, ?R, ?T)
//       where ?R individual
//
// Entity names are case-normalized; '?' introduces a variable (valid in
// rules only). The paper's unicode relation symbols (≺ ∈ ≈ ↔ ⊥ ≠ ≤ ≥)
// are accepted as aliases for ISA/IN/SYN/INV/CONTRA//=/<=/>=.
#ifndef LSD_STORE_TEXT_FORMAT_H_
#define LSD_STORE_TEXT_FORMAT_H_

#include <string>
#include <string_view>
#include <vector>

#include "query/definitions.h"
#include "rules/rule.h"
#include "store/fact_store.h"
#include "util/status.h"

namespace lsd {

// Parses one rule line (without the leading "rule"/"integrity" keyword
// handled by ParseText; this accepts "name: body => head [where ...]").
StatusOr<Rule> ParseRuleLine(std::string_view line, RuleKind kind,
                             EntityTable* entities);

// Parses a whole .lsd document, asserting facts into `store` and
// appending rules to `rules`. Lines of the form
// "define name(?P) := formula" are installed into `definitions` when it
// is non-null (else rejected). Errors carry 1-based line numbers.
Status ParseText(std::string_view text, FactStore* store,
                 std::vector<Rule>* rules,
                 DefinitionRegistry* definitions = nullptr);

// Reads and parses a .lsd file.
Status LoadTextFile(const std::string& path, FactStore* store,
                    std::vector<Rule>* rules,
                    DefinitionRegistry* definitions = nullptr);

// Renders all asserted facts, one per line, in SRT order.
std::string SerializeFacts(const FactStore& store);

// Renders a rule in the syntax ParseRuleLine accepts (including the
// leading "rule name:" / "integrity name:" keyword).
std::string SerializeRule(const Rule& rule, const EntityTable& entities);

// Writes facts + rules to a .lsd file.
Status SaveTextFile(const std::string& path, const FactStore& store,
                    const std::vector<Rule>& rules);

}  // namespace lsd

#endif  // LSD_STORE_TEXT_FORMAT_H_
