#include "store/frozen_index.h"

#include <algorithm>

#include "store/triple_index.h"

namespace lsd {

namespace {

// Which permutation serves a pattern with an exact contiguous range.
// Mirrors TripleIndex::ForEach: SRT for (s), (s,r), full scans; TSR for
// (t), (s,t); RTS for (r), (r,t).
enum class Perm { kSrt, kRts, kTsr };

Perm PickPerm(const Pattern& p) {
  if (p.SourceBound()) {
    return (!p.TargetBound() || p.RelationshipBound()) ? Perm::kSrt
                                                       : Perm::kTsr;
  }
  if (p.RelationshipBound()) return Perm::kRts;
  if (p.TargetBound()) return Perm::kTsr;
  return Perm::kSrt;
}

// Range endpoints: bound positions pinned, unbound positions saturated to
// 0 / kAnyEntity (a safe upper sentinel; real ids never reach it).
struct Bounds {
  Fact lo;
  Fact hi;
};

Bounds PatternBounds(const Pattern& p) {
  Bounds b;
  b.lo = Fact(p.SourceBound() ? p.source : 0,
              p.RelationshipBound() ? p.relationship : 0,
              p.TargetBound() ? p.target : 0);
  b.hi = Fact(p.SourceBound() ? p.source : kAnyEntity,
              p.RelationshipBound() ? p.relationship : kAnyEntity,
              p.TargetBound() ? p.target : kAnyEntity);
  return b;
}

template <typename Order>
bool ScanSorted(const std::vector<Fact>& v, const Fact& lo, const Fact& hi,
                const FactVisitor& visit) {
  Order less;
  auto it = std::lower_bound(v.begin(), v.end(), lo, less);
  for (; it != v.end() && !less(hi, *it); ++it) {
    if (!visit(*it)) return false;
  }
  return true;
}

template <typename Order>
size_t CountSorted(const std::vector<Fact>& v, const Fact& lo,
                   const Fact& hi) {
  Order less;
  auto first = std::lower_bound(v.begin(), v.end(), lo, less);
  auto last = std::upper_bound(first, v.end(), hi, less);
  return static_cast<size_t>(last - first);
}

}  // namespace

FrozenIndex::FrozenIndex(std::vector<Fact> facts) {
  std::sort(facts.begin(), facts.end(), OrderSrt());
  facts.erase(std::unique(facts.begin(), facts.end()), facts.end());
  srt_ = facts;
  rts_ = facts;
  std::sort(rts_.begin(), rts_.end(), OrderRts());
  tsr_ = std::move(facts);
  std::sort(tsr_.begin(), tsr_.end(), OrderTsr());
  RecomputeDistinct();
}

void FrozenIndex::RecomputeDistinct() {
  // Each permutation is sorted on its leading component, so distinct
  // values per position are transition counts: one O(n) pass each.
  auto transitions = [](const std::vector<Fact>& v, auto key) {
    size_t n = 0;
    for (size_t i = 0; i < v.size(); ++i) {
      if (i == 0 || key(v[i - 1]) != key(v[i])) ++n;
    }
    return n;
  };
  distinct_sources_ =
      transitions(srt_, [](const Fact& f) { return f.source; });
  distinct_rels_ =
      transitions(rts_, [](const Fact& f) { return f.relationship; });
  distinct_targets_ =
      transitions(tsr_, [](const Fact& f) { return f.target; });
}

FrozenIndex FrozenIndex::FromTripleIndex(const TripleIndex& index) {
  return FrozenIndex(index.Match(Pattern()));
}

namespace {

template <typename Order>
std::vector<Fact> MergeSorted(const std::vector<Fact>& a,
                              const std::vector<Fact>& b) {
  std::vector<Fact> out(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), out.begin(), Order());
  return out;
}

}  // namespace

FrozenIndex FrozenIndex::Merged(const FrozenIndex& base,
                                std::vector<Fact> run) {
  FrozenIndex out;
  out.srt_ = MergeSorted<OrderSrt>(base.srt_, run);
  std::sort(run.begin(), run.end(), OrderRts());
  out.rts_ = MergeSorted<OrderRts>(base.rts_, run);
  std::sort(run.begin(), run.end(), OrderTsr());
  out.tsr_ = MergeSorted<OrderTsr>(base.tsr_, run);
  out.RecomputeDistinct();
  return out;
}

bool FrozenIndex::ForEach(const Pattern& p, const FactVisitor& visit) const {
  if (p.BoundCount() == 3) {
    Fact f(p.source, p.relationship, p.target);
    if (Contains(f)) return visit(f);
    return true;
  }
  if (p.BoundCount() == 0) {
    for (const Fact& f : srt_) {
      if (!visit(f)) return false;
    }
    return true;
  }
  Bounds b = PatternBounds(p);
  switch (PickPerm(p)) {
    case Perm::kSrt:
      return ScanSorted<OrderSrt>(srt_, b.lo, b.hi, visit);
    case Perm::kRts:
      return ScanSorted<OrderRts>(rts_, b.lo, b.hi, visit);
    case Perm::kTsr:
      return ScanSorted<OrderTsr>(tsr_, b.lo, b.hi, visit);
  }
  return true;
}

double FrozenIndex::EstimateMatchesBound(const Pattern& p,
                                         uint8_t bound_mask) const {
  return ScaleByDistinct(static_cast<double>(CountMatches(p)), bound_mask,
                         distinct_sources_, distinct_rels_,
                         distinct_targets_);
}

size_t FrozenIndex::CountMatches(const Pattern& p) const {
  if (p.BoundCount() == 0) return srt_.size();
  if (p.BoundCount() == 3) {
    return Contains(Fact(p.source, p.relationship, p.target)) ? 1 : 0;
  }
  Bounds b = PatternBounds(p);
  switch (PickPerm(p)) {
    case Perm::kSrt:
      return CountSorted<OrderSrt>(srt_, b.lo, b.hi);
    case Perm::kRts:
      return CountSorted<OrderRts>(rts_, b.lo, b.hi);
    case Perm::kTsr:
      return CountSorted<OrderTsr>(tsr_, b.lo, b.hi);
  }
  return 0;
}

}  // namespace lsd
