#include "store/frozen_index.h"

#include <algorithm>
#include <utility>

#include "store/triple_index.h"

namespace lsd {

namespace {

// Decodes row id -> source id against the CSR offset table with a
// monotone cursor: scans whose rows have ascending sources (canonical
// scans, (r,t) and (t) permutation slices) advance in amortized O(1);
// backward jumps (the per-target group resets of an (r) scan) re-seek by
// binary search.
class SourceCursor {
 public:
  explicit SourceCursor(const std::vector<uint32_t>& offsets)
      : off_(offsets) {}

  // `row` must be < the total row count.
  EntityId Get(uint32_t row) {
    if (off_[cur_] <= row) {
      if (row < off_[cur_ + 1]) return cur_;
      // Exponential probe forward, then binary search the bracket.
      const size_t n = off_.size();
      size_t lo = cur_ + 1;
      size_t step = 1;
      while (lo + step < n && off_[lo + step] <= row) {
        lo += step;
        step <<= 1;
      }
      const size_t hi = std::min(n, lo + step + 1);
      cur_ = static_cast<EntityId>(
          std::upper_bound(off_.begin() + lo, off_.begin() + hi, row) -
          off_.begin() - 1);
    } else {
      cur_ = static_cast<EntityId>(
          std::upper_bound(off_.begin(), off_.begin() + cur_ + 1, row) -
          off_.begin() - 1);
    }
    return cur_;
  }

 private:
  const std::vector<uint32_t>& off_;
  EntityId cur_ = 0;
};

// [first, last) row range of id `id` in a CSR offset table.
inline std::pair<uint32_t, uint32_t> OffsetRange(
    const std::vector<uint32_t>& offsets, EntityId id) {
  const size_t i = id;
  if (i + 1 >= offsets.size()) return {0, 0};
  return {offsets[i], offsets[i + 1]};
}

// Builds a CSR offset table for a stream of non-decreasing ids given by
// `id_of(k)` for k in [0, n). The table covers ids [0, max_id + 1].
template <typename IdOf>
std::vector<uint32_t> BuildOffsets(size_t n, const IdOf& id_of) {
  std::vector<uint32_t> offsets;
  if (n == 0) {
    offsets.assign(1, 0);
    return offsets;
  }
  const size_t slots = static_cast<size_t>(id_of(n - 1)) + 1;
  offsets.reserve(slots + 1);
  offsets.push_back(0);
  for (size_t k = 0; k < n; ++k) {
    const size_t id = id_of(k);
    while (offsets.size() <= id) {
      offsets.push_back(static_cast<uint32_t>(k));
    }
  }
  while (offsets.size() <= slots) {
    offsets.push_back(static_cast<uint32_t>(n));
  }
  return offsets;
}

// A whole-relationship scan goes direct (stream the canonical columns,
// filter on rel_) once the slice holds at least 1/kDirectRelScanDensity
// of all rows; below that the permutation gather touches fewer rows
// than the filter would read. Tuned on the 1M-fact Zipf graph, where
// the ~3.5%-dense slices scan ~2x faster direct (see BM_FrozenIndexScan
// vs BM_FrozenIndexScanGather in bench_storage).
constexpr uint64_t kDirectRelScanDensity = 64;

}  // namespace

void FrozenIndex::BuildFromSorted(std::vector<Fact> facts) {
  const size_t n = facts.size();
  rel_.reserve(n);
  tgt_.reserve(n);
  for (const Fact& f : facts) {
    rel_.push_back(f.relationship);
    tgt_.push_back(f.target);
  }
  src_offsets_ =
      BuildOffsets(n, [&](size_t k) { return facts[k].source; });

  rts_perm_.resize(n);
  for (size_t i = 0; i < n; ++i) rts_perm_[i] = static_cast<uint32_t>(i);
  std::sort(rts_perm_.begin(), rts_perm_.end(),
            [&](uint32_t a, uint32_t b) {
              return OrderRts()(facts[a], facts[b]);
            });
  rel_offsets_ = BuildOffsets(
      n, [&](size_t k) { return facts[rts_perm_[k]].relationship; });

  tsr_perm_.resize(n);
  for (size_t i = 0; i < n; ++i) tsr_perm_[i] = static_cast<uint32_t>(i);
  std::sort(tsr_perm_.begin(), tsr_perm_.end(),
            [&](uint32_t a, uint32_t b) {
              return OrderTsr()(facts[a], facts[b]);
            });
  tgt_offsets_ =
      BuildOffsets(n, [&](size_t k) { return facts[tsr_perm_[k]].target; });

  RecomputeDistinct();
}

FrozenIndex::FrozenIndex(std::vector<Fact> facts) {
  std::sort(facts.begin(), facts.end(), OrderSrt());
  facts.erase(std::unique(facts.begin(), facts.end()), facts.end());
  BuildFromSorted(std::move(facts));
}

FrozenIndex FrozenIndex::FromTripleIndex(const TripleIndex& index) {
  return FrozenIndex(index.Match(Pattern()));
}

void FrozenIndex::RecomputeDistinct() {
  // A position's distinct count is the number of non-empty ranges of its
  // offset table; the tables are one short pass each.
  auto nonempty = [](const std::vector<uint32_t>& offsets) {
    size_t n = 0;
    for (size_t i = 0; i + 1 < offsets.size(); ++i) {
      if (offsets[i] != offsets[i + 1]) ++n;
    }
    return n;
  };
  distinct_sources_ = nonempty(src_offsets_);
  distinct_rels_ = nonempty(rel_offsets_);
  distinct_targets_ = nonempty(tgt_offsets_);
}

std::vector<Fact> FrozenIndex::Materialize() const {
  std::vector<Fact> out;
  out.reserve(size());
  for (EntityId s = 0; s + 1 < src_offsets_.size(); ++s) {
    for (uint32_t row = src_offsets_[s]; row < src_offsets_[s + 1]; ++row) {
      out.emplace_back(s, rel_[row], tgt_[row]);
    }
  }
  return out;
}

FrozenIndex FrozenIndex::Merged(const FrozenIndex& base,
                                std::vector<Fact> run) {
  const size_t nb = base.size();
  const size_t nr = run.size();
  if (nb == 0) {
    FrozenIndex out;
    out.BuildFromSorted(std::move(run));
    return out;
  }

  // Decode the base's source column once; the canonical walk below and
  // the permutation merges all need it, and one flat array beats three
  // cursor passes.
  std::vector<EntityId> base_src(nb);
  for (EntityId s = 0; s + 1 < base.src_offsets_.size(); ++s) {
    for (uint32_t row = base.src_offsets_[s];
         row < base.src_offsets_[s + 1]; ++row) {
      base_src[row] = s;
    }
  }

  // Canonical merge: both inputs stream in SRT order, so the output
  // columns build in one pass while recording where each input row
  // landed (old row -> new row), which lets the permutations merge
  // without re-sorting the base.
  const size_t n = nb + nr;
  FrozenIndex out;
  out.rel_.reserve(n);
  out.tgt_.reserve(n);
  std::vector<uint32_t> base_to_new(nb);
  std::vector<uint32_t> run_to_new(nr);
  std::vector<EntityId> new_src;
  new_src.reserve(n);
  {
    size_t i = 0;
    size_t j = 0;
    OrderSrt less;
    while (i < nb || j < nr) {
      bool take_base;
      if (i == nb) {
        take_base = false;
      } else if (j == nr) {
        take_base = true;
      } else {
        take_base = less(Fact(base_src[i], base.rel_[i], base.tgt_[i]),
                         run[j]);
      }
      const uint32_t row = static_cast<uint32_t>(out.rel_.size());
      if (take_base) {
        base_to_new[i] = row;
        new_src.push_back(base_src[i]);
        out.rel_.push_back(base.rel_[i]);
        out.tgt_.push_back(base.tgt_[i]);
        ++i;
      } else {
        run_to_new[j] = row;
        new_src.push_back(run[j].source);
        out.rel_.push_back(run[j].relationship);
        out.tgt_.push_back(run[j].target);
        ++j;
      }
    }
  }
  out.src_offsets_ = BuildOffsets(n, [&](size_t k) { return new_src[k]; });

  // Permutation merges: the base's perm already streams its rows in the
  // right order, and sorting just the run (small) gives the other
  // stream; two-way merge on the decoded keys.
  auto merge_perm = [&](const std::vector<uint32_t>& base_perm,
                        const std::vector<uint32_t>& run_order,
                        const auto& less) {
    std::vector<uint32_t> perm;
    perm.reserve(n);
    size_t i = 0;
    size_t j = 0;
    while (i < nb || j < nr) {
      bool take_base;
      if (i == nb) {
        take_base = false;
      } else if (j == nr) {
        take_base = true;
      } else {
        const uint32_t row = base_perm[i];
        take_base = less(Fact(base_src[row], base.rel_[row], base.tgt_[row]),
                         run[run_order[j]]);
      }
      if (take_base) {
        perm.push_back(base_to_new[base_perm[i++]]);
      } else {
        perm.push_back(run_to_new[run_order[j++]]);
      }
    }
    return perm;
  };

  std::vector<uint32_t> run_order(nr);
  for (size_t j = 0; j < nr; ++j) run_order[j] = static_cast<uint32_t>(j);

  std::sort(run_order.begin(), run_order.end(), [&](uint32_t a, uint32_t b) {
    return OrderRts()(run[a], run[b]);
  });
  out.rts_perm_ = merge_perm(base.rts_perm_, run_order, OrderRts());
  out.rel_offsets_ =
      BuildOffsets(n, [&](size_t k) { return out.rel_[out.rts_perm_[k]]; });

  std::sort(run_order.begin(), run_order.end(), [&](uint32_t a, uint32_t b) {
    return OrderTsr()(run[a], run[b]);
  });
  out.tsr_perm_ = merge_perm(base.tsr_perm_, run_order, OrderTsr());
  out.tgt_offsets_ =
      BuildOffsets(n, [&](size_t k) { return out.tgt_[out.tsr_perm_[k]]; });

  out.RecomputeDistinct();
  return out;
}

bool FrozenIndex::ForEach(const Pattern& p, const FactVisitor& visit) const {
  const int bound = p.BoundCount();
  if (bound == 3) {
    Fact f(p.source, p.relationship, p.target);
    if (Contains(f)) return visit(f);
    return true;
  }
  if (bound == 0) {
    for (EntityId s = 0; s + 1 < src_offsets_.size(); ++s) {
      for (uint32_t row = src_offsets_[s]; row < src_offsets_[s + 1];
           ++row) {
        if (!visit(Fact(s, rel_[row], tgt_[row]))) return false;
      }
    }
    return true;
  }

  if (p.SourceBound()) {
    auto [lo, hi] = OffsetRange(src_offsets_, p.source);
    if (p.RelationshipBound()) {
      // (s, r, ?): narrow the source slice to the relationship subrange
      // (rel_ is sorted within a source).
      const EntityId* first = rel_.data() + lo;
      const EntityId* last = rel_.data() + hi;
      const uint32_t sub_lo = static_cast<uint32_t>(
          std::lower_bound(first, last, p.relationship) - rel_.data());
      const uint32_t sub_hi = static_cast<uint32_t>(
          std::upper_bound(first, last, p.relationship) - rel_.data());
      for (uint32_t row = sub_lo; row < sub_hi; ++row) {
        if (!visit(Fact(p.source, p.relationship, tgt_[row]))) return false;
      }
      return true;
    }
    if (p.TargetBound()) {
      // (s, ?, t): the (t) slice of the TSR permutation is ordered by
      // source, so the rows of `s` are a contiguous subrange found by
      // decoded binary search; within it rel ascends.
      auto [klo, khi] = OffsetRange(tgt_offsets_, p.target);
      SourceCursor probe(src_offsets_);
      // Manual binary searches: the comparator needs the row -> source
      // decode, so keep it explicit (two O(log) passes over the slice).
      uint32_t a = klo;
      uint32_t b = khi;
      while (a < b) {
        const uint32_t mid = a + (b - a) / 2;
        if (probe.Get(tsr_perm_[mid]) < p.source) {
          a = mid + 1;
        } else {
          b = mid;
        }
      }
      const uint32_t sub_lo = a;
      b = khi;
      while (a < b) {
        const uint32_t mid = a + (b - a) / 2;
        if (probe.Get(tsr_perm_[mid]) <= p.source) {
          a = mid + 1;
        } else {
          b = mid;
        }
      }
      for (uint32_t k = sub_lo; k < a; ++k) {
        const uint32_t row = tsr_perm_[k];
        if (!visit(Fact(p.source, rel_[row], p.target))) return false;
      }
      return true;
    }
    // (s, ?, ?): the canonical slice.
    for (uint32_t row = lo; row < hi; ++row) {
      if (!visit(Fact(p.source, rel_[row], tgt_[row]))) return false;
    }
    return true;
  }

  if (p.RelationshipBound()) {
    auto [klo, khi] = OffsetRange(rel_offsets_, p.relationship);
    if (p.TargetBound()) {
      // (?, r, t): target subrange of the relationship slice (tgt_ over
      // the RTS permutation is sorted within a relationship); sources
      // ascend within it.
      uint32_t a = klo;
      uint32_t b = khi;
      while (a < b) {
        const uint32_t mid = a + (b - a) / 2;
        if (tgt_[rts_perm_[mid]] < p.target) {
          a = mid + 1;
        } else {
          b = mid;
        }
      }
      const uint32_t sub_lo = a;
      b = khi;
      while (a < b) {
        const uint32_t mid = a + (b - a) / 2;
        if (tgt_[rts_perm_[mid]] <= p.target) {
          a = mid + 1;
        } else {
          b = mid;
        }
      }
      SourceCursor cursor(src_offsets_);
      for (uint32_t k = sub_lo; k < a; ++k) {
        if (!visit(Fact(cursor.Get(rts_perm_[k]), p.relationship,
                        p.target))) {
          return false;
        }
      }
      return true;
    }
    // (?, r, ?): two strategies. Gathering through the RTS permutation
    // slice touches (khi - klo) rows in random order and re-seeks the
    // source cursor at every target-group reset — for a dense
    // relationship that loses to streaming the canonical columns and
    // filtering, which reads sequentially and decodes sources for free
    // from the CSR walk. The gather stays for sparse relationships,
    // where the direct scan's O(n) pass would dwarf the slice.
    const uint32_t slice = khi - klo;
    const bool direct =
        rel_scan_mode_ == RelScanMode::kDirect ||
        (rel_scan_mode_ == RelScanMode::kAuto &&
         static_cast<uint64_t>(slice) * kDirectRelScanDensity >= size());
    if (direct) {
      for (EntityId s = 0; s + 1 < src_offsets_.size(); ++s) {
        for (uint32_t row = src_offsets_[s]; row < src_offsets_[s + 1];
             ++row) {
          if (rel_[row] != p.relationship) continue;
          if (!visit(Fact(s, p.relationship, tgt_[row]))) return false;
        }
      }
      return true;
    }
    SourceCursor cursor(src_offsets_);
    for (uint32_t k = klo; k < khi; ++k) {
      const uint32_t row = rts_perm_[k];
      if (!visit(Fact(cursor.Get(row), p.relationship, tgt_[row]))) {
        return false;
      }
    }
    return true;
  }

  // (?, ?, t): sources ascend across the whole target slice.
  auto [klo, khi] = OffsetRange(tgt_offsets_, p.target);
  SourceCursor cursor(src_offsets_);
  for (uint32_t k = klo; k < khi; ++k) {
    const uint32_t row = tsr_perm_[k];
    if (!visit(Fact(cursor.Get(row), rel_[row], p.target))) return false;
  }
  return true;
}

size_t FrozenIndex::CountMatches(const Pattern& p) const {
  const int bound = p.BoundCount();
  if (bound == 0) return size();
  if (bound == 3) {
    return Contains(Fact(p.source, p.relationship, p.target)) ? 1 : 0;
  }

  if (p.SourceBound()) {
    auto [lo, hi] = OffsetRange(src_offsets_, p.source);
    if (bound == 1) return hi - lo;
    if (p.RelationshipBound()) {
      const EntityId* first = rel_.data() + lo;
      const EntityId* last = rel_.data() + hi;
      return static_cast<size_t>(
          std::upper_bound(first, last, p.relationship) -
          std::lower_bound(first, last, p.relationship));
    }
    // (s, ?, t): decoded binary search over the target slice.
    auto [klo, khi] = OffsetRange(tgt_offsets_, p.target);
    SourceCursor probe(src_offsets_);
    uint32_t a = klo;
    uint32_t b = khi;
    while (a < b) {
      const uint32_t mid = a + (b - a) / 2;
      if (probe.Get(tsr_perm_[mid]) < p.source) {
        a = mid + 1;
      } else {
        b = mid;
      }
    }
    const uint32_t sub_lo = a;
    b = khi;
    while (a < b) {
      const uint32_t mid = a + (b - a) / 2;
      if (probe.Get(tsr_perm_[mid]) <= p.source) {
        a = mid + 1;
      } else {
        b = mid;
      }
    }
    return a - sub_lo;
  }

  if (p.RelationshipBound()) {
    auto [klo, khi] = OffsetRange(rel_offsets_, p.relationship);
    if (bound == 1) return khi - klo;
    // (?, r, t).
    uint32_t a = klo;
    uint32_t b = khi;
    while (a < b) {
      const uint32_t mid = a + (b - a) / 2;
      if (tgt_[rts_perm_[mid]] < p.target) {
        a = mid + 1;
      } else {
        b = mid;
      }
    }
    const uint32_t sub_lo = a;
    b = khi;
    while (a < b) {
      const uint32_t mid = a + (b - a) / 2;
      if (tgt_[rts_perm_[mid]] <= p.target) {
        a = mid + 1;
      } else {
        b = mid;
      }
    }
    return a - sub_lo;
  }

  // (?, ?, t).
  auto [klo, khi] = OffsetRange(tgt_offsets_, p.target);
  return khi - klo;
}

double FrozenIndex::EstimateMatchesBound(const Pattern& p,
                                         uint8_t bound_mask) const {
  return ScaleByDistinct(static_cast<double>(CountMatches(p)), bound_mask,
                         distinct_sources_, distinct_rels_,
                         distinct_targets_);
}

bool FrozenIndex::SortedFreeValues(const Pattern& p,
                                   std::vector<EntityId>* scratch,
                                   SortedIdSpan* out) const {
  if (p.BoundCount() != 2) return false;
  if (!p.TargetBound()) {
    // (s, r, ?): the target subrange of the source's canonical slice is
    // already a contiguous ascending run — zero copy.
    auto [lo, hi] = OffsetRange(src_offsets_, p.source);
    const EntityId* first = rel_.data() + lo;
    const EntityId* last = rel_.data() + hi;
    const size_t sub_lo = static_cast<size_t>(
        std::lower_bound(first, last, p.relationship) - rel_.data());
    const size_t sub_hi = static_cast<size_t>(
        std::upper_bound(first, last, p.relationship) - rel_.data());
    out->data = tgt_.data() + sub_lo;
    out->size = sub_hi - sub_lo;
    return true;
  }
  // The remaining shapes decode a permutation slice into the scratch
  // buffer; ForEach already emits them in ascending free-position order.
  scratch->clear();
  const int free_pos = p.SourceBound() ? 1 : 0;
  ForEach(p, [&](const Fact& f) {
    scratch->push_back(free_pos == 0 ? f.source : f.relationship);
    return true;
  });
  out->data = scratch->data();
  out->size = scratch->size();
  return true;
}

void FrozenIndex::AppendMissing(const std::vector<Fact>& run,
                                std::vector<Fact>* out) const {
  // Both the run and each source's row slice are (r, t)-sorted, so walk
  // them in lockstep per source group: one pass over the slice replaces
  // a binary search per run fact. Sources with huge slices and few run
  // facts fall back to the scoped binary search (Contains) to avoid
  // scanning deg(source) rows for one probe.
  size_t j = 0;
  const size_t nr = run.size();
  while (j < nr) {
    const EntityId s = run[j].source;
    size_t group_end = j;
    while (group_end < nr && run[group_end].source == s) ++group_end;
    auto [lo, hi] = OffsetRange(src_offsets_, s);
    const size_t group_n = group_end - j;
    if (hi - lo > 16 * group_n) {
      for (; j < group_end; ++j) {
        if (!Contains(run[j])) out->push_back(run[j]);
      }
      continue;
    }
    uint32_t row = lo;
    for (; j < group_end; ++j) {
      const uint64_t key = PackRt(run[j].relationship, run[j].target);
      while (row < hi && PackRt(rel_[row], tgt_[row]) < key) ++row;
      if (row >= hi || PackRt(rel_[row], tgt_[row]) != key) {
        out->push_back(run[j]);
      }
    }
  }
}

FrozenIndex::Memory FrozenIndex::MemoryUsage() const {
  Memory m;
  m.run_bytes = rel_.capacity() * sizeof(EntityId) +
                tgt_.capacity() * sizeof(EntityId);
  m.perm_bytes = rts_perm_.capacity() * sizeof(uint32_t) +
                 tsr_perm_.capacity() * sizeof(uint32_t);
  m.offset_bytes = src_offsets_.capacity() * sizeof(uint32_t) +
                   rel_offsets_.capacity() * sizeof(uint32_t) +
                   tgt_offsets_.capacity() * sizeof(uint32_t);
  return m;
}

}  // namespace lsd
