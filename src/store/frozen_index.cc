#include "store/frozen_index.h"

#include <algorithm>

#include "store/triple_index.h"

namespace lsd {

namespace {

template <typename Order>
bool ScanSorted(const std::vector<Fact>& v, const Fact& lo, const Fact& hi,
                const Pattern& p, const FactVisitor& visit) {
  Order less;
  auto it = std::lower_bound(v.begin(), v.end(), lo, less);
  for (; it != v.end() && !less(hi, *it); ++it) {
    if (!p.Matches(*it)) continue;
    if (!visit(*it)) return false;
  }
  return true;
}

}  // namespace

FrozenIndex::FrozenIndex(std::vector<Fact> facts) {
  std::sort(facts.begin(), facts.end(), OrderSrt());
  facts.erase(std::unique(facts.begin(), facts.end()), facts.end());
  srt_ = facts;
  rts_ = facts;
  std::sort(rts_.begin(), rts_.end(), OrderRts());
  tsr_ = std::move(facts);
  std::sort(tsr_.begin(), tsr_.end(), OrderTsr());
}

FrozenIndex FrozenIndex::FromTripleIndex(const TripleIndex& index) {
  return FrozenIndex(index.Match(Pattern()));
}

bool FrozenIndex::Contains(const Fact& f) const {
  return std::binary_search(srt_.begin(), srt_.end(), f, OrderSrt());
}

bool FrozenIndex::ForEach(const Pattern& p, const FactVisitor& visit) const {
  if (p.BoundCount() == 3) {
    Fact f(p.source, p.relationship, p.target);
    if (Contains(f)) return visit(f);
    return true;
  }
  const EntityId s_lo = p.SourceBound() ? p.source : 0;
  const EntityId s_hi = p.SourceBound() ? p.source : kAnyEntity;
  const EntityId r_lo = p.RelationshipBound() ? p.relationship : 0;
  const EntityId r_hi = p.RelationshipBound() ? p.relationship : kAnyEntity;
  const EntityId t_lo = p.TargetBound() ? p.target : 0;
  const EntityId t_hi = p.TargetBound() ? p.target : kAnyEntity;

  if (p.SourceBound() && (!p.TargetBound() || p.RelationshipBound())) {
    return ScanSorted<OrderSrt>(srt_, Fact(s_lo, r_lo, t_lo),
                                Fact(s_hi, r_hi, t_hi), p, visit);
  }
  if (p.SourceBound() && p.TargetBound()) {
    return ScanSorted<OrderTsr>(tsr_, Fact(s_lo, r_lo, t_lo),
                                Fact(s_hi, r_hi, t_hi), p, visit);
  }
  if (p.RelationshipBound()) {
    return ScanSorted<OrderRts>(rts_, Fact(s_lo, r_lo, t_lo),
                                Fact(s_hi, r_hi, t_hi), p, visit);
  }
  if (p.TargetBound()) {
    return ScanSorted<OrderTsr>(tsr_, Fact(s_lo, r_lo, t_lo),
                                Fact(s_hi, r_hi, t_hi), p, visit);
  }
  for (const Fact& f : srt_) {
    if (!visit(f)) return false;
  }
  return true;
}

std::vector<Fact> FrozenIndex::Match(const Pattern& p) const {
  std::vector<Fact> out;
  ForEach(p, [&out](const Fact& f) {
    out.push_back(f);
    return true;
  });
  return out;
}

}  // namespace lsd
