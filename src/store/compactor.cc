#include "store/compactor.h"

#include <chrono>
#include <utility>

namespace lsd {

Compactor::Compactor(const CompactionOptions& options, SampleFn sample,
                     CompactFn compact)
    : options_(options),
      sample_(std::move(sample)),
      compact_(std::move(compact)) {}

Compactor::~Compactor() { Stop(); }

void Compactor::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (thread_.joinable()) return;
  stop_ = false;
  notified_ = false;
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this] { Run(); });
}

void Compactor::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!thread_.joinable()) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    // joinable() is the "started" flag; reset so Start() can rearm.
    thread_ = std::thread();
  }
  running_.store(false, std::memory_order_relaxed);
}

void Compactor::Notify() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    notified_ = true;
  }
  cv_.notify_all();
}

bool Compactor::ShouldCompact(const CompactionOptions& options,
                              const CompactionShape& shape) {
  if (shape.runs == 0 && shape.overlay_bytes == 0) return false;
  if (options.min_runs != 0 && shape.runs >= options.min_runs) return true;
  if (shape.overlay_bytes >= options.min_overlay_bytes &&
      static_cast<double>(shape.overlay_bytes) >=
          options.overlay_ratio * static_cast<double>(shape.frozen_bytes)) {
    return true;
  }
  return false;
}

bool Compactor::MaybeBackpressure(const CompactionShape& shape) {
  if (options_.backpressure_runs == 0 ||
      shape.runs < options_.backpressure_runs) {
    return false;
  }
  backpressure_hits_.fetch_add(1, std::memory_order_relaxed);
  std::this_thread::sleep_for(
      std::chrono::milliseconds(options_.backpressure_sleep_ms));
  return true;
}

void Compactor::Run() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock, std::chrono::milliseconds(options_.poll_ms),
                 [this] { return stop_ || notified_; });
    notified_ = false;
    if (stop_) break;
    lock.unlock();

    const CompactionShape shape = sample_();
    shape_runs_.store(shape.runs, std::memory_order_relaxed);
    shape_frozen_.store(shape.frozen_bytes, std::memory_order_relaxed);
    shape_overlay_.store(shape.overlay_bytes, std::memory_order_relaxed);
    if (ShouldCompact(options_, shape)) {
      merging_.store(true, std::memory_order_relaxed);
      const auto start = std::chrono::steady_clock::now();
      uint64_t bytes = 0;
      uint64_t facts = 0;
      Status s = compact_(&bytes, &facts);
      merging_.store(false, std::memory_order_relaxed);
      if (s.ok()) {
        if (bytes != 0 || facts != 0) {
          merges_.fetch_add(1, std::memory_order_relaxed);
          bytes_merged_.fetch_add(bytes, std::memory_order_relaxed);
          facts_merged_.fetch_add(facts, std::memory_order_relaxed);
          last_merge_ms_.store(
              static_cast<uint64_t>(
                  std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count()),
              std::memory_order_relaxed);
        }
      } else if (s.IsAborted()) {
        // Lost the publish race after the bounded in-cycle retries; the
        // next tick starts over from the fresh tip.
        aborted_.fetch_add(1, std::memory_order_relaxed);
      } else {
        // A real failure (e.g. a budget-tripped closure). The thread
        // stays up: compaction is an optimization, never load-bearing.
        failures_.fetch_add(1, std::memory_order_relaxed);
      }
    }

    lock.lock();
  }
}

CompactionStats Compactor::Sample() const {
  CompactionStats s;
  s.running = running_.load(std::memory_order_relaxed);
  s.merging = merging_.load(std::memory_order_relaxed);
  s.merges = merges_.load(std::memory_order_relaxed);
  s.aborted = aborted_.load(std::memory_order_relaxed);
  s.failures = failures_.load(std::memory_order_relaxed);
  s.bytes_merged = bytes_merged_.load(std::memory_order_relaxed);
  s.facts_merged = facts_merged_.load(std::memory_order_relaxed);
  s.last_merge_ms = last_merge_ms_.load(std::memory_order_relaxed);
  s.backpressure_hits = backpressure_hits_.load(std::memory_order_relaxed);
  s.shape.runs = shape_runs_.load(std::memory_order_relaxed);
  s.shape.frozen_bytes = shape_frozen_.load(std::memory_order_relaxed);
  s.shape.overlay_bytes = shape_overlay_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace lsd
