// Entity identity for lsd.
//
// The paper (Sec 2.1) assumes a universe E of distinctly named entities;
// relationships are themselves entities (the subset R). We intern every
// entity name to a dense 32-bit id. A handful of built-in entities defined
// by the paper occupy fixed low ids:
//
//   paper symbol | lsd name  | meaning
//   -------------+-----------+---------------------------------------
//   Delta        | ANY       | most abstract entity (top of ≺)
//   Nabla        | NONE      | most specific entity (bottom of ≺)
//   ≺            | ISA       | generalization (Sec 2.3)
//   ∈            | IN        | membership (Sec 2.3)
//   ≈            | SYN       | synonym (Sec 3.3)
//   ↔            | INV       | inversion (Sec 3.4)
//   ⊥            | CONTRA    | contradiction (Sec 3.5)
//   <,>,=,≠,≤,≥  | same      | mathematical relations (Sec 3.6, virtual)
//
// Relationship classes (Sec 2.2): R is partitioned into individual
// relationships R_i and class relationships R_c. The partition is itself
// stored as facts: (r, IN, CLASS-REL) marks r as a class relationship;
// relationships default to individual.
#ifndef LSD_STORE_ENTITY_H_
#define LSD_STORE_ENTITY_H_

#include <cstdint>
#include <limits>

namespace lsd {

using EntityId = uint32_t;

// Sentinel: never a valid entity. Used for "wildcard" slots in patterns.
inline constexpr EntityId kAnyEntity = std::numeric_limits<EntityId>::max();

// Fixed ids of built-in entities. EntityTable interns these first, in this
// order, so the constants below are valid for every table.
enum BuiltinEntity : EntityId {
  kEntTop = 0,       // ANY   (Delta)
  kEntBottom,        // NONE  (Nabla)
  kEntIsa,           // ISA   (generalization, ≺)
  kEntIn,            // IN    (membership, ∈)
  kEntSyn,           // SYN   (synonym, ≈)
  kEntInv,           // INV   (inversion, ↔)
  kEntContra,        // CONTRA(contradiction, ⊥)
  kEntLess,          // <
  kEntGreater,       // >
  kEntEq,            // =
  kEntNeq,           // /=
  kEntLessEq,        // <=
  kEntGreaterEq,     // >=
  kEntClassRel,      // CLASS-REL: (r, IN, CLASS-REL) => r in R_c
  kNumBuiltinEntities,
};

// How an entity came to exist. Composed entities are minted by the
// composition engine (Sec 3.7) and are excluded from e.g. the probing
// generalization lattice.
enum class EntityKind : uint8_t {
  kRegular = 0,
  kBuiltin = 1,
  kComposed = 2,
};

}  // namespace lsd

#endif  // LSD_STORE_ENTITY_H_
