// Two-tier triple index: an immutable FrozenIndex run (sorted arrays,
// binary-search ranges) plus a small mutable TripleIndex overlay, in the
// spirit of an LSM tree's frozen-memtable/active-memtable split. Inserts
// go to the overlay; reads fan out to both tiers. The tiers are kept
// disjoint at Insert time, so concatenating their streams is
// duplicate-free. Compact() folds the overlay into a new frozen run.
//
// This is the rule engine's "all derived facts" container: a closure
// fixpoint is read-mostly (every round probes the accumulated closure
// while writing only the per-round delta), so with periodic compaction
// almost all probes hit the cache-friendly sorted arrays instead of a
// large node-based std::set.
//
// Erase is intentionally absent: the closure is monotone, and removing
// from the frozen tier would need tombstones this use case never pays
// for.
#ifndef LSD_STORE_DELTA_INDEX_H_
#define LSD_STORE_DELTA_INDEX_H_

#include <cstddef>
#include <unordered_set>

#include "store/fact.h"
#include "store/fact_store.h"
#include "store/frozen_index.h"
#include "store/triple_index.h"

namespace lsd {

class DeltaIndex final : public FactSource {
 public:
  // Resident bytes per tier, for the `stats` surfaces and E9.
  struct Memory {
    FrozenIndex::Memory frozen;
    size_t overlay_bytes = 0;  // overlay trees + the shadow hash set
    size_t total() const { return frozen.total() + overlay_bytes; }
  };

  // Starts with both tiers empty.
  DeltaIndex() = default;

  // Starts from an existing frozen run.
  explicit DeltaIndex(FrozenIndex base) : frozen_(std::move(base)) {}

  DeltaIndex(DeltaIndex&&) = default;
  DeltaIndex& operator=(DeltaIndex&&) = default;

  // Inserts into the overlay. Returns true if the fact was in neither
  // tier.
  bool Insert(const Fact& f);

  // Bulk-inserts an SRT-sorted, duplicate-free run (facts already present
  // are skipped). Small runs go to the overlay like Insert; runs of at
  // least kCompactMinOverlay new facts fold straight into the frozen tier
  // with a linear merge, bypassing the overlay's tree inserts — this is
  // how the rule engine installs a whole closure round. Returns the
  // number of facts actually added.
  size_t InsertRun(const std::vector<Fact>& run);

  // O(log frozen) + O(1): overlay membership is answered by a hash set
  // shadowing the overlay, not by walking its tree nodes. Contains is the
  // engine's per-candidate dedup probe, so this path stays flat.
  bool Contains(const Fact& f) const override {
    return frozen_.Contains(f) || overlay_hash_.count(f) != 0;
  }

  // Streams the frozen tier, then the overlay. Within each tier the
  // permutation order applies, but there is no global order across tiers
  // (the FactSource contract promises no order anyway).
  bool ForEach(const Pattern& p, const FactVisitor& visit) const override;

  // Exact: the tiers are disjoint, so counts add. O(log frozen) plus the
  // overlay's range walk, which compaction keeps small.
  size_t CountMatches(const Pattern& p) const;
  size_t EstimateMatches(const Pattern& p) const override {
    return CountMatches(p);
  }

  // Planner estimate: disjoint tiers, so each tier's uniformity-scaled
  // estimate (against its own distinct-value statistics) adds.
  double EstimateMatchesBound(const Pattern& p,
                              uint8_t bound_mask) const override {
    return frozen_.EstimateMatchesBound(p, bound_mask) +
           ScaleByDistinct(static_cast<double>(overlay_.CountMatches(p)),
                           bound_mask, overlay_.DistinctSources(),
                           overlay_.DistinctRelationships(),
                           overlay_.DistinctTargets());
  }

  // Sorted free-position values of a two-bound pattern: the frozen tier's
  // run (zero copy when the overlay is empty, the common post-compaction
  // state) merged with the overlay's.
  bool SortedFreeValues(const Pattern& p, std::vector<EntityId>* scratch,
                        SortedIdSpan* out) const override;
  bool CanSortFreeValues(const Pattern& p) const override {
    return p.BoundCount() == 2;
  }

  Memory MemoryUsage() const;

  // Merges the overlay into a new frozen run; the overlay becomes empty.
  void Compact();

  // Compacts when the overlay has outgrown the frozen tier enough that
  // rebuilding the run amortizes (geometric policy: overlay at least
  // kCompactMinOverlay facts and at least a quarter of the frozen size).
  // Returns true if it compacted.
  bool MaybeCompact();

  size_t size() const { return frozen_.size() + overlay_.size(); }
  bool empty() const { return size() == 0; }
  size_t frozen_size() const { return frozen_.size(); }
  size_t overlay_size() const { return overlay_.size(); }

  const FrozenIndex& frozen() const { return frozen_; }
  const TripleIndex& overlay() const { return overlay_; }

  static constexpr size_t kCompactMinOverlay = 256;

 private:
  FrozenIndex frozen_;
  TripleIndex overlay_;
  // Mirrors the overlay's contents for O(1) membership probes.
  std::unordered_set<Fact, FactHash> overlay_hash_;
};

}  // namespace lsd

#endif  // LSD_STORE_DELTA_INDEX_H_
