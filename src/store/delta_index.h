// Generational triple index: a small list of immutable FrozenIndex
// *segments* (sorted CSR runs, binary-search ranges) plus a small mutable
// TripleIndex overlay, in the spirit of an LSM tree's levels. Inserts go
// to the overlay; bulk runs become new L0 segments; reads fan out to
// every tier. All tiers are kept disjoint at insert time, so
// concatenating their streams is duplicate-free.
//
// This is both the rule engine's "all derived facts" container and (since
// the generational rewrite) its asserted-base snapshot: a closure
// fixpoint is read-mostly, and a long-lived serving tip extends the same
// tiers across epochs, so probes should hit cache-friendly sorted arrays
// instead of a large node-based std::set.
//
// Lifecycle (LSM-style):
//  - InsertRun appends a new frozen segment per bulk round, then applies
//    a geometric tail-merge (merge the newest two segments while the
//    newest is at least half the previous one). Foreground cost is
//    therefore proportional to the run being folded, never to the whole
//    index — the old "overlay >= frozen/4 => rebuild everything" stall is
//    gone (ISSUE 10 satellite 1); the merge-everything step now belongs
//    to the background compactor.
//  - Segments are held by shared_ptr, so Clone() shares them across
//    epochs for free and a background compactor can pin them, build one
//    merged CSR generation off-thread, and SwapMergedPrefix it in with an
//    identity-checked CAS (see store/compactor.h).
//
// Erase is intentionally absent: the closure is monotone, and removing
// from a frozen segment would need tombstones this use case never pays
// for.
#ifndef LSD_STORE_DELTA_INDEX_H_
#define LSD_STORE_DELTA_INDEX_H_

#include <cstddef>
#include <memory>
#include <unordered_set>
#include <vector>

#include "store/fact.h"
#include "store/fact_store.h"
#include "store/frozen_index.h"
#include "store/triple_index.h"

namespace lsd {

class DeltaIndex final : public FactSource {
 public:
  // Resident bytes per tier, for the `stats` surfaces and E9/E16.
  struct Memory {
    FrozenIndex::Memory frozen;  // summed over all segments
    size_t overlay_bytes = 0;    // overlay trees + the shadow hash set
    size_t runs = 0;             // number of frozen segments (generations)
    size_t total() const { return frozen.total() + overlay_bytes; }
  };

  // Starts with all tiers empty.
  DeltaIndex() = default;

  // Starts from an existing frozen run (one segment).
  explicit DeltaIndex(FrozenIndex base) {
    if (base.size() != 0) {
      frozen_count_ = base.size();
      segments_.push_back(
          std::make_shared<const FrozenIndex>(std::move(base)));
    }
  }

  DeltaIndex(DeltaIndex&&) = default;
  DeltaIndex& operator=(DeltaIndex&&) = default;

  // Explicit copy: segments are immutable and shared by pointer (O(1)
  // per segment); the overlay trees and shadow hash are deep-copied.
  // This is how closure tiers travel across epochs (LooseDb::CloneInto)
  // and how a seed survives a failed extension attempt.
  DeltaIndex Clone() const;

  // Inserts into the overlay. Returns true if the fact was in no tier.
  bool Insert(const Fact& f);

  // Bulk-inserts an SRT-sorted, duplicate-free run (facts already present
  // are skipped). Small runs go to the overlay like Insert; runs of at
  // least kL0MinRun new facts become a new frozen segment, followed by a
  // geometric tail-merge (newest two segments merge while the newest is
  // at least half the previous), so the segment list stays logarithmic in
  // the total size while no single insert rebuilds old generations.
  // Returns the number of facts actually added.
  size_t InsertRun(const std::vector<Fact>& run);

  // O(segments * log deg) + O(1): overlay membership is answered by a
  // hash set shadowing the overlay; each segment is one packed binary
  // search over the source's row slice. The background compactor exists
  // precisely to keep the segment count small on this hot path.
  bool Contains(const Fact& f) const override {
    for (const auto& seg : segments_) {
      if (seg->Contains(f)) return true;
    }
    return overlay_hash_.count(f) != 0;
  }

  // Streams every segment (oldest first), then the overlay. Within each
  // tier the permutation order applies, but there is no global order
  // across tiers (the FactSource contract promises no order anyway).
  bool ForEach(const Pattern& p, const FactVisitor& visit) const override;

  // Exact: the tiers are disjoint, so counts add.
  size_t CountMatches(const Pattern& p) const;
  size_t EstimateMatches(const Pattern& p) const override {
    return CountMatches(p);
  }

  // Planner estimate: disjoint tiers, so each tier's uniformity-scaled
  // estimate (against its own distinct-value statistics) adds.
  double EstimateMatchesBound(const Pattern& p,
                              uint8_t bound_mask) const override;

  // Sorted free-position values of a two-bound pattern: the segments'
  // runs (zero copy when a single segment answers alone, the common
  // post-compaction state) merged with the overlay's.
  bool SortedFreeValues(const Pattern& p, std::vector<EntityId>* scratch,
                        SortedIdSpan* out) const override;
  bool CanSortFreeValues(const Pattern& p) const override {
    return p.BoundCount() == 2;
  }

  Memory MemoryUsage() const;

  // All facts across every tier, in SRT order.
  std::vector<Fact> Materialize() const;

  // Builds the single-segment merge of every tier WITHOUT mutating this
  // index: the background compactor runs this on a pinned (immutable)
  // epoch's tiers, off the commit path.
  FrozenIndex BuildMerged() const;

  // Foreground full merge: every segment plus the overlay folds into one
  // segment. Kept for tools, tests, and cold loads; the serving path
  // uses BuildMerged + SwapMergedPrefix instead.
  void Compact();

  // The compactor's publish step. If this index's segment list still
  // starts with exactly `old_segments` (shared_ptr identity — the
  // generations the merge was built from), replaces that prefix with
  // `merged`, drops overlay facts now covered by `merged`, and returns
  // true. Returns false (index untouched) when the prefix diverged —
  // i.e. a foreground tail-merge consumed one of the pinned generations
  // since the plan was made — in which case the caller retries against
  // the current tiers. Segments appended after the pin survive as the
  // suffix; overlay facts inserted after the pin survive the rebuild
  // (they are not in `merged`).
  bool SwapMergedPrefix(
      const std::vector<std::shared_ptr<const FrozenIndex>>& old_segments,
      std::shared_ptr<const FrozenIndex> merged);

  size_t size() const { return frozen_count_ + overlay_.size(); }
  bool empty() const { return size() == 0; }
  size_t frozen_size() const { return frozen_count_; }
  size_t overlay_size() const { return overlay_.size(); }
  size_t segment_count() const { return segments_.size(); }

  const std::vector<std::shared_ptr<const FrozenIndex>>& segments() const {
    return segments_;
  }
  const TripleIndex& overlay() const { return overlay_; }

  // Runs below this many new facts go to the overlay; larger runs become
  // L0 segments.
  static constexpr size_t kL0MinRun = 256;

 private:
  // Appends the facts of `run` (SRT-sorted, duplicate-free) present in
  // no tier onto `out`, preserving order: AppendMissing chained across
  // the segments, then the overlay's hash probe.
  void AppendMissingAll(const std::vector<Fact>& run,
                        std::vector<Fact>* out) const;

  std::vector<std::shared_ptr<const FrozenIndex>> segments_;
  size_t frozen_count_ = 0;  // sum of segment sizes
  TripleIndex overlay_;
  // Mirrors the overlay's contents for O(1) membership probes.
  std::unordered_set<Fact, FactHash> overlay_hash_;
};

}  // namespace lsd

#endif  // LSD_STORE_DELTA_INDEX_H_
