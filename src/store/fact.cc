#include "store/fact.h"

#include "store/entity_table.h"

namespace lsd {

namespace {
std::string PositionString(const EntityTable& entities, EntityId id) {
  if (id == kAnyEntity) return "*";
  if (!entities.IsValid(id)) return "<invalid>";
  return entities.Name(id);
}
}  // namespace

std::string Fact::DebugString(const EntityTable& entities) const {
  return "(" + PositionString(entities, source) + ", " +
         PositionString(entities, relationship) + ", " +
         PositionString(entities, target) + ")";
}

std::string Pattern::DebugString(const EntityTable& entities) const {
  return "(" + PositionString(entities, source) + ", " +
         PositionString(entities, relationship) + ", " +
         PositionString(entities, target) + ")";
}

}  // namespace lsd
