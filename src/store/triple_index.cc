#include "store/triple_index.h"

#include <iterator>

namespace lsd {

namespace {

// Range bounds for a prefix scan. For a prefix (a, b?) of an ordering,
// the range is [ (a, b, 0), (a, b, MAX) ] with unbound trailing
// components saturated to 0 / kAnyEntity (kAnyEntity is UINT32_MAX, the
// maximum id, so it is a safe upper sentinel: real ids never reach it).
struct Bounds {
  Fact lo;
  Fact hi;
};

Bounds SrtBounds(const Pattern& p) {
  Bounds b;
  b.lo = Fact(p.SourceBound() ? p.source : 0,
              p.RelationshipBound() ? p.relationship : 0, 0);
  b.hi = Fact(p.SourceBound() ? p.source : kAnyEntity,
              p.RelationshipBound() ? p.relationship : kAnyEntity,
              kAnyEntity);
  return b;
}

Bounds RtsBounds(const Pattern& p) {
  Bounds b;
  b.lo = Fact(0, p.relationship, p.TargetBound() ? p.target : 0);
  b.hi = Fact(kAnyEntity, p.relationship,
              p.TargetBound() ? p.target : kAnyEntity);
  return b;
}

Bounds TsrBounds(const Pattern& p) {
  Bounds b;
  b.lo = Fact(p.SourceBound() ? p.source : 0, 0, p.target);
  b.hi = Fact(p.SourceBound() ? p.source : kAnyEntity, kAnyEntity,
              p.target);
  return b;
}

template <typename Set>
bool ScanRange(const Set& set, const Fact& lo, const Fact& hi,
               const Pattern& p, const FactVisitor& visit) {
  auto it = set.lower_bound(lo);
  auto end = set.upper_bound(hi);
  for (; it != end; ++it) {
    if (!p.Matches(*it)) continue;  // defensive; ranges are exact here
    if (!visit(*it)) return false;
  }
  return true;
}

// Whether the fact at `it` is the only one in its set holding its value
// of the leading component (per `same`). Each permutation sorts on its
// leading component first, so equal values are neighbors of `it`.
template <typename Set, typename Same>
bool LoneLeadingValue(const Set& set, typename Set::iterator it,
                      const Same& same) {
  if (it != set.begin() && same(*std::prev(it), *it)) return false;
  auto next = std::next(it);
  return next == set.end() || !same(*it, *next);
}

}  // namespace

bool TripleIndex::Insert(const Fact& f) {
  auto [sit, inserted] = srt_.insert(f);
  if (inserted) {
    auto rit = rts_.insert(f).first;
    auto tit = tsr_.insert(f).first;
    // A position's distinct count grows iff the new fact's value there
    // has no neighbor sharing it (the permutations lead with source,
    // relationship, and target respectively).
    auto src = [](const Fact& a, const Fact& b) {
      return a.source == b.source;
    };
    auto rel = [](const Fact& a, const Fact& b) {
      return a.relationship == b.relationship;
    };
    auto tgt = [](const Fact& a, const Fact& b) {
      return a.target == b.target;
    };
    if (LoneLeadingValue(srt_, sit, src)) ++distinct_sources_;
    if (LoneLeadingValue(rts_, rit, rel)) ++distinct_rels_;
    if (LoneLeadingValue(tsr_, tit, tgt)) ++distinct_targets_;
  }
  return inserted;
}

bool TripleIndex::Erase(const Fact& f) {
  auto sit = srt_.find(f);
  if (sit == srt_.end()) return false;
  auto rit = rts_.find(f);
  auto tit = tsr_.find(f);
  auto src = [](const Fact& a, const Fact& b) {
    return a.source == b.source;
  };
  auto rel = [](const Fact& a, const Fact& b) {
    return a.relationship == b.relationship;
  };
  auto tgt = [](const Fact& a, const Fact& b) {
    return a.target == b.target;
  };
  if (LoneLeadingValue(srt_, sit, src)) --distinct_sources_;
  if (LoneLeadingValue(rts_, rit, rel)) --distinct_rels_;
  if (LoneLeadingValue(tsr_, tit, tgt)) --distinct_targets_;
  srt_.erase(sit);
  rts_.erase(rit);
  tsr_.erase(tit);
  return true;
}

bool TripleIndex::Contains(const Fact& f) const {
  return srt_.count(f) > 0;
}

bool TripleIndex::ForEach(const Pattern& p, const FactVisitor& visit) const {
  if (p.BoundCount() == 3) {
    Fact f(p.source, p.relationship, p.target);
    if (srt_.count(f)) return visit(f);
    return true;
  }
  if (p.SourceBound()) {
    // SRT serves (s), (s,r). (s,t) is better served by TSR.
    if (!p.TargetBound() || p.RelationshipBound()) {
      Bounds b = SrtBounds(p);
      return ScanRange(srt_, b.lo, b.hi, p, visit);
    }
    Bounds b = TsrBounds(p);
    return ScanRange(tsr_, b.lo, b.hi, p, visit);
  }
  if (p.RelationshipBound()) {
    Bounds b = RtsBounds(p);
    return ScanRange(rts_, b.lo, b.hi, p, visit);
  }
  if (p.TargetBound()) {
    Bounds b = TsrBounds(p);
    return ScanRange(tsr_, b.lo, b.hi, p, visit);
  }
  for (const Fact& f : srt_) {
    if (!visit(f)) return false;
  }
  return true;
}

std::vector<Fact> TripleIndex::Match(const Pattern& p) const {
  std::vector<Fact> out;
  ForEach(p, [&out](const Fact& f) {
    out.push_back(f);
    return true;
  });
  return out;
}

size_t TripleIndex::CountMatches(const Pattern& p) const {
  if (p.BoundCount() == 0) return size();
  if (p.BoundCount() == 3) {
    return Contains(Fact(p.source, p.relationship, p.target)) ? 1 : 0;
  }
  // Every partially-bound pattern is an exact contiguous range of one
  // permutation, so the count is the distance between its range bounds —
  // no per-fact pattern test or visitor indirection. (Node-based sets
  // still walk the range, but only the range.)
  if (p.SourceBound()) {
    if (!p.TargetBound() || p.RelationshipBound()) {
      Bounds b = SrtBounds(p);
      return static_cast<size_t>(std::distance(srt_.lower_bound(b.lo),
                                               srt_.upper_bound(b.hi)));
    }
    Bounds b = TsrBounds(p);
    return static_cast<size_t>(std::distance(tsr_.lower_bound(b.lo),
                                             tsr_.upper_bound(b.hi)));
  }
  if (p.RelationshipBound()) {
    Bounds b = RtsBounds(p);
    return static_cast<size_t>(std::distance(rts_.lower_bound(b.lo),
                                             rts_.upper_bound(b.hi)));
  }
  Bounds b = TsrBounds(p);
  return static_cast<size_t>(std::distance(tsr_.lower_bound(b.lo),
                                           tsr_.upper_bound(b.hi)));
}

bool TripleIndex::SortedFreeValues(const Pattern& p,
                                   std::vector<EntityId>* scratch,
                                   SortedIdSpan* out) const {
  if (p.BoundCount() != 2) return false;
  // ForEach walks the permutation whose trailing component is the free
  // position — (s,r,?) the SRT range, (?,r,t) the RTS range, (s,?,t) the
  // TSR range — so the free position streams in strictly ascending order.
  scratch->clear();
  const int free_pos =
      !p.SourceBound() ? 0 : (!p.RelationshipBound() ? 1 : 2);
  ForEach(p, [&](const Fact& f) {
    scratch->push_back(free_pos == 0
                           ? f.source
                           : (free_pos == 1 ? f.relationship : f.target));
    return true;
  });
  out->data = scratch->data();
  out->size = scratch->size();
  return true;
}

void TripleIndex::Clear() {
  srt_.clear();
  rts_.clear();
  tsr_.clear();
  distinct_sources_ = 0;
  distinct_rels_ = 0;
  distinct_targets_ = 0;
}

}  // namespace lsd
