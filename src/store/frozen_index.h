// Read-only sorted-array triple index: the "frozen" storage strategy of
// experiment E9 (DESIGN.md). Built once from a fact set; answers the same
// 8 binding patterns as TripleIndex via binary search over three sorted
// vectors. Denser and faster to scan than the node-based TripleIndex, but
// immutable.
#ifndef LSD_STORE_FROZEN_INDEX_H_
#define LSD_STORE_FROZEN_INDEX_H_

#include <vector>

#include "store/fact.h"

namespace lsd {

class TripleIndex;

class FrozenIndex {
 public:
  // Builds from an arbitrary fact list; duplicates are removed.
  explicit FrozenIndex(std::vector<Fact> facts);

  // Convenience: freezes the contents of a dynamic index.
  static FrozenIndex FromTripleIndex(const TripleIndex& index);

  bool Contains(const Fact& f) const;
  bool ForEach(const Pattern& p, const FactVisitor& visit) const;
  std::vector<Fact> Match(const Pattern& p) const;

  size_t size() const { return srt_.size(); }

 private:
  std::vector<Fact> srt_;
  std::vector<Fact> rts_;
  std::vector<Fact> tsr_;
};

}  // namespace lsd

#endif  // LSD_STORE_FROZEN_INDEX_H_
