// Read-only sorted-array triple index: the "frozen" storage strategy of
// experiment E9 (DESIGN.md). Built once from a fact set; answers the same
// 8 binding patterns as TripleIndex via binary search over three sorted
// vectors. Denser and faster to scan than the node-based TripleIndex, but
// immutable.
//
// FrozenIndex is a FactSource, so frozen runs can be spliced directly
// into match pipelines (the rule engine snapshots the asserted facts
// into a frozen run for the duration of a closure fixpoint, and the
// two-tier DeltaIndex keeps its base tier frozen). CountMatches is exact
// and O(log n): every binding pattern is a contiguous range of one
// permutation, so the count is a distance between two binary searches —
// this is what makes the matcher's kEstimatedCost join order affordable
// over this tier.
#ifndef LSD_STORE_FROZEN_INDEX_H_
#define LSD_STORE_FROZEN_INDEX_H_

#include <algorithm>
#include <vector>

#include "store/fact.h"
#include "store/fact_store.h"

namespace lsd {

class TripleIndex;

class FrozenIndex : public FactSource {
 public:
  // An empty run.
  FrozenIndex() = default;

  // Builds from an arbitrary fact list; duplicates are removed.
  explicit FrozenIndex(std::vector<Fact> facts);

  // Convenience: freezes the contents of a dynamic index.
  static FrozenIndex FromTripleIndex(const TripleIndex& index);

  // Builds base ∪ run in linear time (plus sorting the run, which is
  // assumed small): each permutation is a two-way merge of the base's
  // sorted array with the sorted run. `run` must be SRT-sorted,
  // duplicate-free, and disjoint from `base` — this is the bulk-load
  // path DeltaIndex uses to install a whole closure round without
  // touching the overlay trees.
  static FrozenIndex Merged(const FrozenIndex& base, std::vector<Fact> run);

  // Inline: Contains is the engine's per-candidate dedup probe and runs
  // millions of times per closure.
  bool Contains(const Fact& f) const override {
    return std::binary_search(srt_.begin(), srt_.end(), f, OrderSrt());
  }
  bool ForEach(const Pattern& p, const FactVisitor& visit) const override;

  // Exact number of matches via two binary searches (O(log n)).
  size_t CountMatches(const Pattern& p) const;
  size_t EstimateMatches(const Pattern& p) const override {
    return CountMatches(p);
  }

  // Planner estimate: the exact wildcard count scaled down by the
  // distinct-value statistics gathered at build time (uniformity
  // assumption per masked position).
  double EstimateMatchesBound(const Pattern& p,
                              uint8_t bound_mask) const override;

  // Distinct values per position, counted once at build time.
  size_t DistinctSources() const { return distinct_sources_; }
  size_t DistinctRelationships() const { return distinct_rels_; }
  size_t DistinctTargets() const { return distinct_targets_; }

  // All facts in SRT order.
  const std::vector<Fact>& facts() const { return srt_; }

  size_t size() const { return srt_.size(); }

 private:
  void RecomputeDistinct();

  std::vector<Fact> srt_;
  std::vector<Fact> rts_;
  std::vector<Fact> tsr_;
  size_t distinct_sources_ = 0;
  size_t distinct_rels_ = 0;
  size_t distinct_targets_ = 0;
};

}  // namespace lsd

#endif  // LSD_STORE_FROZEN_INDEX_H_
