// Read-only columnar triple index: the "frozen" storage strategy of
// experiment E9 (DESIGN.md). Built once from a fact set; answers the same
// 8 binding patterns as TripleIndex, but instead of three full sorted
// Fact arrays it keeps one canonical SRT-sorted store in CSR
// (compressed sparse row) form:
//
//   rel_[i], tgt_[i]   relationship/target columns of row i (SRT order);
//   src_offsets_[s]    rows of source s are [src_offsets_[s],
//                      src_offsets_[s+1]) — the source column is implicit,
//                      which is what buys the memory reduction;
//   rts_perm_          row ids in (relationship, target, source) order,
//                      fronted by rel_offsets_ (relationship id -> range);
//   tsr_perm_          row ids in (target, source, relationship) order,
//                      fronted by tgt_offsets_ (target id -> range).
//
// Entity ids are dense (interned), so the offset tables are plain arrays
// indexed by id: every bound-first-position lookup is an O(1) slice, not
// an O(log n) binary search, and iteration over a slice is branch-free
// pointer arithmetic. Per fact this costs 8 bytes of columns + 8 bytes of
// permutations (vs 36 bytes for three Fact copies); the offset tables add
// O(max entity id) once per index, not per fact.
//
// FrozenIndex is a FactSource, so frozen runs can be spliced directly
// into match pipelines (the rule engine snapshots the asserted facts
// into a frozen run for the duration of a closure fixpoint, and the
// two-tier DeltaIndex keeps its base tier frozen). CountMatches is exact:
// O(1) for single-bound patterns (an offset subtraction) and O(log) for
// the rest — this is what makes the matcher's kEstimatedCost join order
// affordable over this tier.
#ifndef LSD_STORE_FROZEN_INDEX_H_
#define LSD_STORE_FROZEN_INDEX_H_

#include <cstdint>
#include <vector>

#include "store/fact.h"
#include "store/fact_store.h"

namespace lsd {

class TripleIndex;

class FrozenIndex : public FactSource {
 public:
  // Resident bytes per tier component, for the `stats` surfaces and the
  // E9 memory accounting.
  struct Memory {
    size_t run_bytes = 0;      // canonical rel/tgt columns
    size_t perm_bytes = 0;     // RTS + TSR permutation arrays
    size_t offset_bytes = 0;   // three CSR offset tables
    size_t total() const { return run_bytes + perm_bytes + offset_bytes; }
  };

  // An empty run.
  FrozenIndex() = default;

  // Builds from an arbitrary fact list; duplicates are removed.
  explicit FrozenIndex(std::vector<Fact> facts);

  // Convenience: freezes the contents of a dynamic index.
  static FrozenIndex FromTripleIndex(const TripleIndex& index);

  // Builds base ∪ run in linear time (plus sorting the run, which is
  // assumed small): the canonical columns are a two-way merge, and the
  // permutations are rebuilt by merging the base's permutation stream
  // with the sorted run through an old-row -> new-row mapping. `run`
  // must be SRT-sorted, duplicate-free, and disjoint from `base` — this
  // is the bulk-load path DeltaIndex uses to install a whole closure
  // round without touching the overlay trees.
  static FrozenIndex Merged(const FrozenIndex& base, std::vector<Fact> run);

  // Inline: Contains is the engine's per-candidate dedup probe and runs
  // millions of times per closure. The source offset narrows the search
  // to one row range; the (relationship, target) pair packs into one
  // 64-bit key, so the binary search is over deg(source), not n.
  bool Contains(const Fact& f) const override {
    const size_t s = f.source;
    if (s + 1 >= src_offsets_.size()) return false;
    uint32_t lo = src_offsets_[s];
    uint32_t hi = src_offsets_[s + 1];
    const uint64_t key = PackRt(f.relationship, f.target);
    while (lo < hi) {
      const uint32_t mid = lo + (hi - lo) / 2;
      const uint64_t k = PackRt(rel_[mid], tgt_[mid]);
      if (k < key) {
        lo = mid + 1;
      } else if (k > key) {
        hi = mid;
      } else {
        return true;
      }
    }
    return false;
  }

  bool ForEach(const Pattern& p, const FactVisitor& visit) const override;

  // Exact match count: an offset subtraction for single-bound patterns,
  // two binary searches within one slice otherwise.
  size_t CountMatches(const Pattern& p) const;
  size_t EstimateMatches(const Pattern& p) const override {
    return CountMatches(p);
  }

  // Planner estimate: the exact wildcard count scaled down by the
  // distinct-value statistics gathered at build time (uniformity
  // assumption per masked position).
  double EstimateMatchesBound(const Pattern& p,
                              uint8_t bound_mask) const override;

  // Sorted distinct values of the single free position of a two-bound
  // pattern. (s, r, ?) is a zero-copy slice of the target column; the
  // other shapes decode one permutation slice into `scratch`.
  bool SortedFreeValues(const Pattern& p, std::vector<EntityId>* scratch,
                        SortedIdSpan* out) const override;
  bool CanSortFreeValues(const Pattern& p) const override {
    return p.BoundCount() == 2;
  }

  // Appends the facts of `run` (SRT-sorted, duplicate-free) that are NOT
  // in this index onto `out`, preserving order: a batched set difference
  // that walks each source's row slice once instead of binary-searching
  // per fact. This is the closure engine's round dedup.
  void AppendMissing(const std::vector<Fact>& run,
                     std::vector<Fact>* out) const;

  // Distinct values per position, counted once at build time.
  size_t DistinctSources() const { return distinct_sources_; }
  size_t DistinctRelationships() const { return distinct_rels_; }
  size_t DistinctTargets() const { return distinct_targets_; }

  // All facts in SRT order, reconstructed from the columns.
  std::vector<Fact> Materialize() const;

  // Strategy for whole-relationship scans, (?, r, ?). kAuto picks per
  // query: dense relationships stream the canonical columns directly
  // (sequential reads, sources decoded for free from the CSR walk),
  // sparse ones gather through the RTS permutation slice. The forced
  // modes exist for benchmarks and tests; note the two paths emit in
  // different (both valid) orders — direct is (source, target) within
  // the relationship, gather is (target, source).
  enum class RelScanMode { kAuto, kDirect, kGather };
  void set_rel_scan_mode(RelScanMode mode) { rel_scan_mode_ = mode; }

  Memory MemoryUsage() const;

  size_t size() const { return rel_.size(); }

 private:
  static uint64_t PackRt(EntityId r, EntityId t) {
    return (static_cast<uint64_t>(r) << 32) | t;
  }

  void BuildFromSorted(std::vector<Fact> facts);
  void RecomputeDistinct();

  // Canonical SRT-sorted store (CSR over the source).
  std::vector<EntityId> rel_;
  std::vector<EntityId> tgt_;
  std::vector<uint32_t> src_offsets_;

  // (r, t, s)-ordered row ids, with a CSR table over the relationship.
  std::vector<uint32_t> rts_perm_;
  std::vector<uint32_t> rel_offsets_;

  // (t, s, r)-ordered row ids, with a CSR table over the target.
  std::vector<uint32_t> tsr_perm_;
  std::vector<uint32_t> tgt_offsets_;

  size_t distinct_sources_ = 0;
  size_t distinct_rels_ = 0;
  size_t distinct_targets_ = 0;

  RelScanMode rel_scan_mode_ = RelScanMode::kAuto;
};

}  // namespace lsd

#endif  // LSD_STORE_FROZEN_INDEX_H_
