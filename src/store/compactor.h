// Background compaction driver for the generational closure tiers.
//
// A serving tip accumulates frozen segments and overlay facts as it
// extends its closure across epochs (LooseDb::View's incremental path);
// left alone, reads pay one probe per segment and the overlay's
// node-based trees grow without bound. The Compactor runs a dedicated
// merge thread that watches the tip's tier *shape* (segment count,
// overlay bytes vs frozen bytes) and, when a trigger fires, runs one
// pin → build → swap cycle supplied by the serving layer
// (SharedStore::CompactOnce): pin the tip, merge its segments + overlay
// into one CSR generation per tier off the commit path, and publish the
// swap through the ordinary group-commit machinery. Pinned readers are
// never stalled — the merge works on an immutable epoch and the swap is
// an identity-checked prefix CAS that retries against whatever epochs
// committed meanwhile (Status::Aborted).
//
// The class itself is mechanism only — thread, trigger policy, stats,
// backpressure accounting — wired to the store through two callbacks, so
// it has no dependency on the serving layer and is unit-testable with
// stub functions.
#ifndef LSD_STORE_COMPACTOR_H_
#define LSD_STORE_COMPACTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

#include "util/status.h"

namespace lsd {

struct CompactionOptions {
  // Trigger policy: a merge is scheduled when EITHER
  //   - any tier holds at least `min_runs` frozen segments, or
  //   - the overlays hold at least `min_overlay_bytes` AND at least
  //     `overlay_ratio` of the frozen bytes.
  // The ratio keeps small stores from churning; the floor keeps an
  // empty store's bucket arrays from looking like 100% overlay.
  size_t min_runs = 4;
  double overlay_ratio = 0.10;
  size_t min_overlay_bytes = 64 * 1024;

  // Merge-thread poll cadence. The thread is also notified after every
  // publish, so this is only the fallback heartbeat.
  uint64_t poll_ms = 50;

  // Writer backpressure: when a tier's segment count runs this far
  // ahead of the merger, each Commit caller sleeps briefly before
  // enqueueing. Writes slow down; reads are NEVER blocked (they pin
  // whatever epoch is published). 0 disables.
  size_t backpressure_runs = 32;
  uint64_t backpressure_sleep_ms = 2;
};

// The shape the trigger policy evaluates: the tip's tier geometry,
// summed (bytes) / maxed (runs) over the base and derived tiers.
struct CompactionShape {
  size_t runs = 0;           // max segment count of any tier
  size_t frozen_bytes = 0;   // total frozen segment bytes
  size_t overlay_bytes = 0;  // total overlay bytes
};

// Point-in-time sample for the `stats` surfaces (lsd_shell, STATS verb).
struct CompactionStats {
  bool running = false;            // merge thread alive
  bool merging = false;            // a merge cycle in flight right now
  uint64_t merges = 0;             // swaps published
  uint64_t aborted = 0;            // cycles lost to the publish race
  uint64_t failures = 0;           // cycles failed with a real error
  uint64_t bytes_merged = 0;       // frozen bytes written by all merges
  uint64_t facts_merged = 0;       // facts folded into merged generations
  uint64_t last_merge_ms = 0;      // duration of the last published merge
  uint64_t backpressure_hits = 0;  // Commit calls that slept
  CompactionShape shape;           // latest sampled tip shape
};

class Compactor {
 public:
  // `sample` reads the current tip's shape; `compact` runs one full
  // pin → build → swap cycle, filling bytes/facts with what the merge
  // folded, and returns OK (published or nothing to do), Aborted (lost
  // the race; the thread just retries on its next tick) or a real
  // error. Both are invoked from the merge thread only.
  using SampleFn = std::function<CompactionShape()>;
  using CompactFn =
      std::function<Status(uint64_t* bytes_merged, uint64_t* facts_merged)>;

  Compactor(const CompactionOptions& options, SampleFn sample,
            CompactFn compact);
  ~Compactor();  // Stop()s

  Compactor(const Compactor&) = delete;
  Compactor& operator=(const Compactor&) = delete;

  // Starts the merge thread (idempotent).
  void Start();
  // Stops and joins the merge thread (idempotent); any in-flight merge
  // cycle completes first.
  void Stop();
  // Wakes the merge thread ahead of its poll tick (publish hook).
  void Notify();

  // The trigger policy, exposed for tests and for the serving layer's
  // own decisions.
  static bool ShouldCompact(const CompactionOptions& options,
                            const CompactionShape& shape);

  // Commit-path hook: sleeps backpressure_sleep_ms when `shape` is at
  // least backpressure_runs segments deep, and tallies the hit. Returns
  // true if it slept.
  bool MaybeBackpressure(const CompactionShape& shape);

  CompactionStats Sample() const;
  const CompactionOptions& options() const { return options_; }

 private:
  void Run();

  const CompactionOptions options_;
  const SampleFn sample_;
  const CompactFn compact_;

  std::mutex mu_;  // guards cv_ wakeups, stop_/notified_, thread_
  std::condition_variable cv_;
  bool stop_ = false;
  bool notified_ = false;
  std::thread thread_;

  std::atomic<bool> running_{false};
  std::atomic<bool> merging_{false};
  std::atomic<uint64_t> merges_{0};
  std::atomic<uint64_t> aborted_{0};
  std::atomic<uint64_t> failures_{0};
  std::atomic<uint64_t> bytes_merged_{0};
  std::atomic<uint64_t> facts_merged_{0};
  std::atomic<uint64_t> last_merge_ms_{0};
  std::atomic<uint64_t> backpressure_hits_{0};
  std::atomic<size_t> shape_runs_{0};
  std::atomic<size_t> shape_frozen_{0};
  std::atomic<size_t> shape_overlay_{0};
};

}  // namespace lsd

#endif  // LSD_STORE_COMPACTOR_H_
