#include "store/text_format.h"

#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace lsd {

namespace {

// Splits "(a, b, c), (d, e, f)" into the parenthesized groups.
StatusOr<std::vector<std::string_view>> SplitTemplates(
    std::string_view text) {
  std::vector<std::string_view> groups;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           (std::isspace(static_cast<unsigned char>(text[i])) ||
            text[i] == ',')) {
      ++i;
    }
    if (i >= text.size()) break;
    if (text[i] != '(') {
      return Status::ParseError("expected '(' in template list near: " +
                                std::string(text.substr(i)));
    }
    size_t close = text.find(')', i);
    if (close == std::string_view::npos) {
      return Status::ParseError("unbalanced '(' in template list");
    }
    groups.push_back(text.substr(i + 1, close - i - 1));
    i = close + 1;
  }
  if (groups.empty()) {
    return Status::ParseError("empty template list");
  }
  return groups;
}

// Parses one term inside a template: "?X" variable, otherwise an entity.
StatusOr<Term> ParseTerm(std::string_view token, EntityTable* entities,
                         std::vector<std::string>* var_names,
                         std::vector<VarConstraint>* var_constraints,
                         bool allow_variables) {
  token = StripWhitespace(token);
  if (token.empty()) {
    return Status::ParseError("empty term in template");
  }
  if (token.front() == '?') {
    if (!allow_variables) {
      return Status::ParseError("variable " + std::string(token) +
                                " not allowed in a fact");
    }
    std::string name = AsciiToUpper(token.substr(1));
    if (name.empty()) {
      return Status::ParseError("'?' must be followed by a variable name");
    }
    for (size_t i = 0; i < var_names->size(); ++i) {
      if ((*var_names)[i] == name) {
        return Term::Var(static_cast<VarId>(i));
      }
    }
    var_names->push_back(name);
    var_constraints->push_back(VarConstraint::kNone);
    return Term::Var(static_cast<VarId>(var_names->size() - 1));
  }
  return Term::Entity(entities->Intern(token));
}

StatusOr<Template> ParseTemplateGroup(
    std::string_view group, EntityTable* entities,
    std::vector<std::string>* var_names,
    std::vector<VarConstraint>* var_constraints, bool allow_variables) {
  std::vector<std::string_view> parts = Split(group, ',');
  if (parts.size() != 3) {
    return Status::ParseError("template must have three positions: (" +
                              std::string(group) + ")");
  }
  LSD_ASSIGN_OR_RETURN(Term s, ParseTerm(parts[0], entities, var_names,
                                         var_constraints, allow_variables));
  LSD_ASSIGN_OR_RETURN(Term r, ParseTerm(parts[1], entities, var_names,
                                         var_constraints, allow_variables));
  LSD_ASSIGN_OR_RETURN(Term t, ParseTerm(parts[2], entities, var_names,
                                         var_constraints, allow_variables));
  return Template(s, r, t);
}

Status ParseWhereClause(std::string_view clause, Rule* rule) {
  // "?R individual, ?Q class"
  for (std::string_view item : Split(clause, ',')) {
    item = StripWhitespace(item);
    if (item.empty()) continue;
    std::vector<std::string_view> words;
    for (std::string_view w : Split(item, ' ')) {
      if (!StripWhitespace(w).empty()) words.push_back(StripWhitespace(w));
    }
    if (words.size() != 2 || words[0].empty() || words[0][0] != '?') {
      return Status::ParseError("bad where-clause item: " +
                                std::string(item));
    }
    std::string var = AsciiToUpper(words[0].substr(1));
    std::string what = AsciiToLower(words[1]);
    VarConstraint constraint;
    if (what == "individual") {
      constraint = VarConstraint::kIndividualRelationship;
    } else if (what == "class") {
      constraint = VarConstraint::kClassRelationship;
    } else {
      return Status::ParseError("unknown constraint '" + what +
                                "' (want individual|class)");
    }
    bool found = false;
    for (size_t i = 0; i < rule->var_names.size(); ++i) {
      if (rule->var_names[i] == var) {
        rule->var_constraints[i] = constraint;
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::ParseError("where-clause names unknown variable ?" +
                                var);
    }
  }
  return Status::OK();
}

}  // namespace

StatusOr<Rule> ParseRuleLine(std::string_view line, RuleKind kind,
                             EntityTable* entities) {
  Rule rule;
  rule.kind = kind;

  size_t colon = line.find(':');
  if (colon == std::string_view::npos) {
    return Status::ParseError("rule is missing 'name:' prefix: " +
                              std::string(line));
  }
  rule.name = AsciiToLower(StripWhitespace(line.substr(0, colon)));
  if (rule.name.empty()) {
    return Status::ParseError("rule has empty name");
  }
  std::string_view rest = line.substr(colon + 1);

  size_t arrow = rest.find("=>");
  if (arrow == std::string_view::npos) {
    return Status::ParseError("rule is missing '=>': " + std::string(line));
  }
  std::string_view body_text = rest.substr(0, arrow);
  std::string_view head_text = rest.substr(arrow + 2);

  std::string_view where_text;
  // "where" splits the head from variable constraints.
  std::string lowered = AsciiToLower(head_text);
  size_t where = lowered.find("where");
  if (where != std::string_view::npos) {
    where_text = head_text.substr(where + 5);
    head_text = head_text.substr(0, where);
  }

  LSD_ASSIGN_OR_RETURN(std::vector<std::string_view> body_groups,
                       SplitTemplates(body_text));
  for (std::string_view g : body_groups) {
    LSD_ASSIGN_OR_RETURN(
        Template t, ParseTemplateGroup(g, entities, &rule.var_names,
                                       &rule.var_constraints, true));
    rule.body.push_back(t);
  }
  LSD_ASSIGN_OR_RETURN(std::vector<std::string_view> head_groups,
                       SplitTemplates(head_text));
  for (std::string_view g : head_groups) {
    LSD_ASSIGN_OR_RETURN(
        Template t, ParseTemplateGroup(g, entities, &rule.var_names,
                                       &rule.var_constraints, true));
    rule.head.push_back(t);
  }
  if (!where_text.empty()) {
    LSD_RETURN_IF_ERROR(ParseWhereClause(where_text, &rule));
  }
  LSD_RETURN_IF_ERROR(rule.Validate());
  return rule;
}

Status ParseText(std::string_view text, FactStore* store,
                 std::vector<Rule>* rules,
                 DefinitionRegistry* definitions) {
  size_t line_no = 0;
  for (std::string_view raw : Split(text, '\n')) {
    ++line_no;
    std::string_view line = StripWhitespace(raw);
    if (line.empty() || line.front() == '#') continue;
    auto fail = [&](const Status& s) {
      return Status::ParseError("line " + std::to_string(line_no) + ": " +
                                s.message());
    };
    if (line.front() == '(') {
      std::vector<std::string> names;  // unused var table for facts
      std::vector<VarConstraint> constraints;
      auto groups = SplitTemplates(line);
      if (!groups.ok()) return fail(groups.status());
      for (std::string_view g : *groups) {
        auto tmpl = ParseTemplateGroup(g, &store->entities(), &names,
                                       &constraints, false);
        if (!tmpl.ok()) return fail(tmpl.status());
        store->Assert(tmpl->Substitute(Binding(0)));
      }
      continue;
    }
    std::string lowered = AsciiToLower(line);
    if (StartsWith(lowered, "@class")) {
      std::string_view name = StripWhitespace(line.substr(6));
      if (name.empty()) return fail(Status::ParseError("@class needs a name"));
      store->MarkClassRelationship(store->entities().Intern(name));
      continue;
    }
    if (StartsWith(lowered, "define ")) {
      if (definitions == nullptr) {
        return fail(Status::ParseError(
            "definitions are not accepted in this context"));
      }
      Status s = definitions->Define(line.substr(7), &store->entities());
      if (!s.ok()) return fail(s);
      continue;
    }
    RuleKind kind;
    std::string_view rest;
    if (StartsWith(lowered, "rule ")) {
      kind = RuleKind::kInference;
      rest = line.substr(5);
    } else if (StartsWith(lowered, "integrity ")) {
      kind = RuleKind::kIntegrity;
      rest = line.substr(10);
    } else {
      return fail(Status::ParseError("unrecognized statement: " +
                                     std::string(line)));
    }
    auto rule = ParseRuleLine(rest, kind, &store->entities());
    if (!rule.ok()) return fail(rule.status());
    if (rules != nullptr) rules->push_back(std::move(*rule));
  }
  return Status::OK();
}

Status LoadTextFile(const std::string& path, FactStore* store,
                    std::vector<Rule>* rules,
                    DefinitionRegistry* definitions) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseText(buffer.str(), store, rules, definitions);
}

std::string SerializeFacts(const FactStore& store) {
  std::string out;
  store.base().ForEach(Pattern(), [&](const Fact& f) {
    out += f.DebugString(store.entities());
    out += "\n";
    return true;
  });
  return out;
}

std::string SerializeRule(const Rule& rule, const EntityTable& entities) {
  std::string out =
      rule.kind == RuleKind::kIntegrity ? "integrity " : "rule ";
  out += rule.name.empty() ? std::string("unnamed") : rule.name;
  out += ": ";
  out += rule.DebugString(entities);
  std::string where;
  for (size_t i = 0; i < rule.var_constraints.size(); ++i) {
    if (rule.var_constraints[i] == VarConstraint::kNone) continue;
    if (!where.empty()) where += ", ";
    where += "?" + rule.var_names[i] + " ";
    where += rule.var_constraints[i] == VarConstraint::kIndividualRelationship
                 ? "individual"
                 : "class";
  }
  if (!where.empty()) out += " where " + where;
  return out;
}

Status SaveTextFile(const std::string& path, const FactStore& store,
                    const std::vector<Rule>& rules) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  out << "# lsd database (generated)\n";
  out << SerializeFacts(store);
  for (const Rule& r : rules) {
    out << SerializeRule(r, store.entities()) << "\n";
  }
  out.flush();
  if (!out) {
    return Status::IoError("write to " + path + " failed");
  }
  return Status::OK();
}

}  // namespace lsd
