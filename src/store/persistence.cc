#include "store/persistence.h"

#include <unistd.h>

#include <cstring>
#include <memory>

#include "store/text_format.h"

namespace lsd {

namespace {

constexpr char kSnapshotMagic[8] = {'L', 'S', 'D', 'S', 'N', 'A', 'P', '1'};
constexpr char kWalMagic[8] = {'L', 'S', 'D', 'W', 'A', 'L', '0', '1'};

// WAL / snapshot record opcodes.
enum WalOp : uint8_t {
  kOpAssert = 1,
  kOpRetract = 2,
  kOpRule = 3,
  kOpEnableRule = 4,
  kOpDisableRule = 5,
};

class Writer {
 public:
  explicit Writer(std::FILE* f) : f_(f) {}

  void U8(uint8_t v) { Raw(&v, 1); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }
  void Raw(const void* data, size_t n) {
    if (ok_ && std::fwrite(data, 1, n, f_) != n) ok_ = false;
  }
  bool ok() const { return ok_; }

 private:
  std::FILE* f_;
  bool ok_ = true;
};

class Reader {
 public:
  explicit Reader(std::FILE* f) : f_(f) {}

  bool U8(uint8_t* v) { return Raw(v, 1); }
  bool U32(uint32_t* v) { return Raw(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Raw(v, sizeof(*v)); }
  bool Str(std::string* s) {
    uint32_t n;
    if (!U32(&n)) return false;
    if (n > (1u << 28)) return false;  // corrupt length guard
    s->resize(n);
    return n == 0 || Raw(s->data(), n);
  }
  bool Raw(void* data, size_t n) {
    return std::fread(data, 1, n, f_) == n;
  }
  bool AtEof() {
    int c = std::fgetc(f_);
    if (c == EOF) return true;
    std::ungetc(c, f_);
    return false;
  }

 private:
  std::FILE* f_;
};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

Status SaveSnapshot(const std::string& path, const FactStore& store,
                    const std::vector<Rule>& rules) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  Writer w(f.get());
  w.Raw(kSnapshotMagic, sizeof(kSnapshotMagic));

  const EntityTable& entities = store.entities();
  w.U32(static_cast<uint32_t>(entities.size()));
  for (EntityId id = 0; id < entities.size(); ++id) {
    w.U8(static_cast<uint8_t>(entities.Kind(id)));
    w.Str(entities.Name(id));
  }

  w.U64(store.size());
  store.base().ForEach(Pattern(), [&](const Fact& fact) {
    w.U32(fact.source);
    w.U32(fact.relationship);
    w.U32(fact.target);
    return true;
  });

  w.U32(static_cast<uint32_t>(rules.size()));
  for (const Rule& r : rules) {
    w.Str(SerializeRule(r, entities));
    w.U8(r.enabled ? 1 : 0);
  }
  if (!w.ok()) return Status::IoError("write to " + path + " failed");
  if (std::fflush(f.get()) != 0) {
    return Status::IoError("flush of " + path + " failed");
  }
  return Status::OK();
}

Status LoadSnapshot(const std::string& path, FactStore* store,
                    std::vector<Rule>* rules) {
  if (store->size() != 0 ||
      store->entities().size() != kNumBuiltinEntities) {
    return Status::FailedPrecondition(
        "LoadSnapshot requires a freshly constructed store");
  }
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return Status::IoError("cannot open " + path);
  }
  Reader r(f.get());
  char magic[8];
  if (!r.Raw(magic, sizeof(magic)) ||
      std::memcmp(magic, kSnapshotMagic, sizeof(magic)) != 0) {
    return Status::DataLoss(path + " is not an lsd snapshot");
  }

  uint32_t entity_count;
  if (!r.U32(&entity_count)) return Status::DataLoss("truncated snapshot");
  EntityTable& entities = store->entities();
  for (uint32_t i = 0; i < entity_count; ++i) {
    uint8_t kind;
    std::string name;
    if (!r.U8(&kind) || !r.Str(&name)) {
      return Status::DataLoss("truncated snapshot entity table");
    }
    EntityId id =
        static_cast<EntityKind>(kind) == EntityKind::kComposed
            ? entities.InternComposed(name)
            : entities.Intern(name);
    if (id != i) {
      return Status::DataLoss("snapshot entity order mismatch at id " +
                              std::to_string(i) + " ('" + name + "')");
    }
  }

  uint64_t fact_count;
  if (!r.U64(&fact_count)) return Status::DataLoss("truncated snapshot");
  for (uint64_t i = 0; i < fact_count; ++i) {
    Fact fact;
    if (!r.U32(&fact.source) || !r.U32(&fact.relationship) ||
        !r.U32(&fact.target)) {
      return Status::DataLoss("truncated snapshot facts");
    }
    store->Assert(fact);
  }

  uint32_t rule_count;
  if (!r.U32(&rule_count)) return Status::DataLoss("truncated snapshot");
  for (uint32_t i = 0; i < rule_count; ++i) {
    std::string text;
    uint8_t enabled;
    if (!r.Str(&text) || !r.U8(&enabled)) {
      return Status::DataLoss("truncated snapshot rules");
    }
    // Rules are stored in .lsd text; strip the keyword and re-parse.
    RuleKind kind = RuleKind::kInference;
    std::string_view body = text;
    if (body.rfind("integrity ", 0) == 0) {
      kind = RuleKind::kIntegrity;
      body = body.substr(10);
    } else if (body.rfind("rule ", 0) == 0) {
      body = body.substr(5);
    }
    LSD_ASSIGN_OR_RETURN(Rule rule, ParseRuleLine(body, kind, &entities));
    rule.enabled = (enabled != 0);
    if (rules != nullptr) rules->push_back(std::move(rule));
  }
  return Status::OK();
}

Wal::~Wal() { Close(); }

Status Wal::Open(const std::string& path, WalSync sync) {
  Close();
  sync_ = sync;
  bool fresh = false;
  std::FILE* probe = std::fopen(path.c_str(), "rb");
  if (probe == nullptr) {
    fresh = true;
  } else {
    std::fseek(probe, 0, SEEK_END);
    fresh = std::ftell(probe) == 0;
    std::fclose(probe);
  }
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::IoError("cannot open WAL " + path);
  }
  path_ = path;
  if (fresh) {
    Writer w(file_);
    w.Raw(kWalMagic, sizeof(kWalMagic));
    if (!w.ok() || std::fflush(file_) != 0) {
      return Status::IoError("cannot initialize WAL " + path);
    }
  }
  return Status::OK();
}

void Wal::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Status Wal::AppendRecord(uint8_t op,
                         const std::vector<std::string>& fields) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("WAL is not open");
  }
  Writer w(file_);
  w.U8(op);
  w.U8(static_cast<uint8_t>(fields.size()));
  for (const std::string& s : fields) w.Str(s);
  if (!w.ok() || std::fflush(file_) != 0) {
    return Status::IoError("WAL append to " + path_ + " failed");
  }
  if (sync_ == WalSync::kFsync && ::fsync(::fileno(file_)) != 0) {
    return Status::IoError("WAL fsync of " + path_ + " failed");
  }
  return Status::OK();
}

Status Wal::AppendAssert(const FactStore& store, const Fact& f) {
  const EntityTable& e = store.entities();
  return AppendRecord(
      kOpAssert, {e.Name(f.source), e.Name(f.relationship), e.Name(f.target)});
}

Status Wal::AppendRetract(const FactStore& store, const Fact& f) {
  const EntityTable& e = store.entities();
  return AppendRecord(
      kOpRetract,
      {e.Name(f.source), e.Name(f.relationship), e.Name(f.target)});
}

Status Wal::AppendRule(const Rule& rule, const EntityTable& entities) {
  return AppendRecord(kOpRule, {SerializeRule(rule, entities)});
}

Status Wal::AppendSetRuleEnabled(const std::string& rule_name,
                                 bool enabled) {
  return AppendRecord(enabled ? kOpEnableRule : kOpDisableRule, {rule_name});
}

Status Wal::Replay(const std::string& path, FactStore* store,
                   std::vector<Rule>* rules) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) return Status::OK();  // no log yet
  Reader r(f.get());
  char magic[8];
  if (r.AtEof()) return Status::OK();
  if (!r.Raw(magic, sizeof(magic)) ||
      std::memcmp(magic, kWalMagic, sizeof(magic)) != 0) {
    return Status::DataLoss(path + " is not an lsd WAL");
  }
  long good_offset = std::ftell(f.get());
  while (!r.AtEof()) {
    uint8_t op, nfields;
    bool torn = false;
    std::vector<std::string> fields;
    if (!r.U8(&op) || !r.U8(&nfields)) {
      torn = true;
    } else {
      fields.resize(nfields);
      for (auto& s : fields) {
        if (!r.Str(&s)) {
          torn = true;
          break;
        }
      }
    }
    if (torn) {
      // A clean tail truncation (crash mid-append) hits EOF mid-record;
      // drop the half-written record by truncating back to the last
      // complete one. Anything else is real corruption.
      if (!std::feof(f.get())) {
        return Status::DataLoss("corrupt WAL record in " + path);
      }
      f.reset();
      if (::truncate(path.c_str(), good_offset) != 0) {
        return Status::IoError("cannot truncate torn WAL " + path);
      }
      return Status::OK();
    }
    switch (op) {
      case kOpAssert:
      case kOpRetract: {
        if (nfields != 3) return Status::DataLoss("bad WAL fact record");
        EntityTable& e = store->entities();
        Fact fact(e.Intern(fields[0]), e.Intern(fields[1]),
                  e.Intern(fields[2]));
        if (op == kOpAssert) {
          store->Assert(fact);
        } else {
          store->Retract(fact);
        }
        break;
      }
      case kOpRule: {
        if (nfields != 1) return Status::DataLoss("bad WAL rule record");
        RuleKind kind = RuleKind::kInference;
        std::string_view body = fields[0];
        if (body.rfind("integrity ", 0) == 0) {
          kind = RuleKind::kIntegrity;
          body = body.substr(10);
        } else if (body.rfind("rule ", 0) == 0) {
          body = body.substr(5);
        }
        LSD_ASSIGN_OR_RETURN(
            Rule rule, ParseRuleLine(body, kind, &store->entities()));
        if (rules != nullptr) rules->push_back(std::move(rule));
        break;
      }
      case kOpEnableRule:
      case kOpDisableRule: {
        if (nfields != 1) return Status::DataLoss("bad WAL toggle record");
        if (rules != nullptr) {
          for (Rule& rule : *rules) {
            if (rule.name == fields[0]) {
              rule.enabled = (op == kOpEnableRule);
            }
          }
        }
        break;
      }
      default:
        return Status::DataLoss("unknown WAL opcode " + std::to_string(op));
    }
    good_offset = std::ftell(f.get());
  }
  return Status::OK();
}

}  // namespace lsd
