#include "store/persistence.h"

#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <memory>

#include "store/text_format.h"
#include "util/crc32c.h"
#include "util/failpoint.h"

namespace lsd {

namespace {

namespace fs = std::filesystem;

constexpr char kSnapshotMagic[8] = {'L', 'S', 'D', 'S', 'N', 'A', 'P', '2'};
constexpr char kWalMagic[8] = {'L', 'S', 'D', 'W', 'A', 'L', '0', '2'};
constexpr size_t kSegmentHeaderBytes = Wal::kSegmentHeaderSize;
// A record length beyond this is certainly corruption, not data.
constexpr uint32_t kMaxRecordBytes = 1u << 28;

// Short aliases for the public WalOpCode values.
constexpr uint8_t kOpAssert = static_cast<uint8_t>(WalOpCode::kAssert);
constexpr uint8_t kOpRetract = static_cast<uint8_t>(WalOpCode::kRetract);
constexpr uint8_t kOpRule = static_cast<uint8_t>(WalOpCode::kRule);
constexpr uint8_t kOpEnableRule =
    static_cast<uint8_t>(WalOpCode::kEnableRule);
constexpr uint8_t kOpDisableRule =
    static_cast<uint8_t>(WalOpCode::kDisableRule);

// File writer with a running CRC32C over everything written (the
// snapshot trailer checks it).
class Writer {
 public:
  explicit Writer(std::FILE* f) : f_(f) {}

  void U8(uint8_t v) { Raw(&v, 1); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }
  void Raw(const void* data, size_t n) {
    crc_ = Crc32cExtend(crc_, data, n);
    if (ok_ && std::fwrite(data, 1, n, f_) != n) ok_ = false;
  }
  // Writes the running checksum itself (excluded from the running sum).
  void Trailer() {
    uint32_t crc = crc_;
    if (ok_ && std::fwrite(&crc, 1, sizeof(crc), f_) != sizeof(crc)) {
      ok_ = false;
    }
  }
  bool ok() const { return ok_; }

 private:
  std::FILE* f_;
  uint32_t crc_ = 0;
  bool ok_ = true;
};

class Reader {
 public:
  explicit Reader(std::FILE* f) : f_(f) {}

  bool U8(uint8_t* v) { return Raw(v, 1); }
  bool U32(uint32_t* v) { return Raw(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Raw(v, sizeof(*v)); }
  bool Str(std::string* s) {
    uint32_t n;
    if (!U32(&n)) return false;
    if (n > kMaxRecordBytes) return false;  // corrupt length guard
    s->resize(n);
    return n == 0 || Raw(s->data(), n);
  }
  bool Raw(void* data, size_t n) {
    if (std::fread(data, 1, n, f_) != n) return false;
    crc_ = Crc32cExtend(crc_, data, n);
    return true;
  }
  // Reads the stored trailer checksum and compares it to the running
  // sum accumulated so far.
  bool Trailer() {
    uint32_t expected = crc_;
    uint32_t stored;
    if (std::fread(&stored, 1, sizeof(stored), f_) != sizeof(stored)) {
      return false;
    }
    return stored == expected;
  }
  bool AtEof() {
    int c = std::fgetc(f_);
    if (c == EOF) return true;
    std::ungetc(c, f_);
    return false;
  }

 private:
  std::FILE* f_;
  uint32_t crc_ = 0;
};

// In-memory record encoder: a WAL record is staged in full, then
// written with one fwrite so a crash can only tear it, not interleave.
class BufWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { buf_.append(reinterpret_cast<char*>(&v), 4); }
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    buf_.append(s.data(), s.size());
  }
  const std::string& str() const { return buf_; }

 private:
  std::string buf_;
};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

std::string SegmentPath(const std::string& base, uint64_t seq) {
  char suffix[16];
  std::snprintf(suffix, sizeof(suffix), ".%06llu",
                static_cast<unsigned long long>(seq));
  return base + suffix;
}

struct SegmentFile {
  uint64_t seq = 0;
  std::string path;
};

// Segments of `base`, sorted by sequence number. A missing directory or
// no matching files is an empty log.
std::vector<SegmentFile> ListSegments(const std::string& base) {
  fs::path base_path(base);
  fs::path dir = base_path.parent_path();
  if (dir.empty()) dir = ".";
  const std::string prefix = base_path.filename().string() + ".";
  std::vector<SegmentFile> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() != prefix.size() + 6 || name.rfind(prefix, 0) != 0) {
      continue;
    }
    const std::string digits = name.substr(prefix.size());
    if (digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    out.push_back({std::strtoull(digits.c_str(), nullptr, 10),
                   entry.path().string()});
  }
  std::sort(out.begin(), out.end(),
            [](const SegmentFile& a, const SegmentFile& b) {
              return a.seq < b.seq;
            });
  return out;
}

struct SegmentHeader {
  uint64_t generation = 0;
  uint64_t seq = 0;
};

bool ReadSegmentHeader(std::FILE* f, SegmentHeader* header) {
  char magic[8];
  if (std::fread(magic, 1, sizeof(magic), f) != sizeof(magic) ||
      std::memcmp(magic, kWalMagic, sizeof(magic)) != 0) {
    return false;
  }
  return std::fread(&header->generation, 1, 8, f) == 8 &&
         std::fread(&header->seq, 1, 8, f) == 8;
}

uint64_t FileSizeOrZero(const std::string& path) {
  std::error_code ec;
  uint64_t n = static_cast<uint64_t>(fs::file_size(path, ec));
  return ec ? 0 : n;
}

// Applies one checksum-valid record to the store. A false return means
// the record is structurally valid bytes but semantically unparsable
// (wrong field count, bad rule text): recovery salvages up to it.
bool ApplyRecord(uint8_t op, const std::vector<std::string>& fields,
                 FactStore* store, std::vector<Rule>* rules) {
  switch (op) {
    case kOpAssert:
    case kOpRetract: {
      if (fields.size() != 3) return false;
      EntityTable& e = store->entities();
      Fact fact(e.Intern(fields[0]), e.Intern(fields[1]),
                e.Intern(fields[2]));
      if (op == kOpAssert) {
        store->Assert(fact);
      } else {
        store->Retract(fact);
      }
      return true;
    }
    case kOpRule: {
      if (fields.size() != 1) return false;
      RuleKind kind = RuleKind::kInference;
      std::string_view body = fields[0];
      if (body.rfind("integrity ", 0) == 0) {
        kind = RuleKind::kIntegrity;
        body = body.substr(10);
      } else if (body.rfind("rule ", 0) == 0) {
        body = body.substr(5);
      }
      auto rule = ParseRuleLine(body, kind, &store->entities());
      if (!rule.ok()) return false;
      if (rules != nullptr) rules->push_back(std::move(rule).value());
      return true;
    }
    case kOpEnableRule:
    case kOpDisableRule: {
      if (fields.size() != 1) return false;
      if (rules != nullptr) {
        for (Rule& rule : *rules) {
          if (rule.name == fields[0]) {
            rule.enabled = (op == kOpEnableRule);
          }
        }
      }
      return true;
    }
    default:
      return false;
  }
}

}  // namespace

std::string WalPosition::ToString() const {
  return "gen " + std::to_string(generation) + ", segment " +
         std::to_string(segment_seq) + ", offset " + std::to_string(offset);
}

std::string RecoveryStats::ToString() const {
  std::string out = "recovered";
  out += snapshot_loaded
             ? " from snapshot (generation " + std::to_string(generation) +
                   ")"
             : " without snapshot";
  out += ", replayed " + std::to_string(records_replayed) + " records (" +
         std::to_string(bytes_replayed) + " bytes) from " +
         std::to_string(segments_replayed) + " segments";
  if (segments_skipped > 0) {
    out += ", skipped " + std::to_string(segments_skipped) +
           " pre-checkpoint segments";
  }
  if (tail_truncated || segments_dropped > 0 || bytes_dropped > 0) {
    out += ", dropped " + std::to_string(bytes_dropped) + " bytes";
    if (segments_dropped > 0) {
      out += " and " + std::to_string(segments_dropped) + " segments";
    }
    if (!detail.empty()) out += " (" + detail + ")";
  }
  return out;
}

Status SaveSnapshot(const std::string& path, const FactStore& store,
                    const std::vector<Rule>& rules, uint64_t generation) {
  LSD_FAILPOINT_RETURN_IF_SET(snapshot.write);
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  Writer w(f.get());
  w.Raw(kSnapshotMagic, sizeof(kSnapshotMagic));
  w.U64(generation);

  const EntityTable& entities = store.entities();
  w.U32(static_cast<uint32_t>(entities.size()));
  for (EntityId id = 0; id < entities.size(); ++id) {
    w.U8(static_cast<uint8_t>(entities.Kind(id)));
    w.Str(entities.Name(id));
  }

  w.U64(store.size());
  store.base().ForEach(Pattern(), [&](const Fact& fact) {
    w.U32(fact.source);
    w.U32(fact.relationship);
    w.U32(fact.target);
    return true;
  });

  w.U32(static_cast<uint32_t>(rules.size()));
  for (const Rule& r : rules) {
    w.Str(SerializeRule(r, entities));
    w.U8(r.enabled ? 1 : 0);
  }
  w.Trailer();
  if (!w.ok()) return Status::IoError("write to " + path + " failed");
  LSD_FAILPOINT(snapshot.flush);
  if (std::fflush(f.get()) != 0) {
    return Status::IoError("flush of " + path + " failed");
  }
  if (::fsync(::fileno(f.get())) != 0) {
    return Status::IoError("fsync of " + path + " failed");
  }
  return Status::OK();
}

Status SaveSnapshotAtomic(const std::string& path, const FactStore& store,
                          const std::vector<Rule>& rules,
                          uint64_t generation) {
  const std::string tmp = path + ".tmp";
  LSD_RETURN_IF_ERROR(SaveSnapshot(tmp, store, rules, generation));
  LSD_FAILPOINT(snapshot.rename);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("cannot rename " + tmp + " over " + path);
  }
  return Status::OK();
}

Status LoadSnapshot(const std::string& path, FactStore* store,
                    std::vector<Rule>* rules, uint64_t* generation) {
  if (store->size() != 0 ||
      store->entities().size() != kNumBuiltinEntities) {
    return Status::FailedPrecondition(
        "LoadSnapshot requires a freshly constructed store");
  }
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return Status::IoError("cannot open " + path);
  }
  Reader r(f.get());
  char magic[8];
  if (!r.Raw(magic, sizeof(magic)) ||
      std::memcmp(magic, kSnapshotMagic, sizeof(magic)) != 0) {
    return Status::DataLoss(path + " is not an lsd snapshot");
  }
  uint64_t gen;
  if (!r.U64(&gen)) return Status::DataLoss("truncated snapshot");
  if (generation != nullptr) *generation = gen;

  uint32_t entity_count;
  if (!r.U32(&entity_count)) return Status::DataLoss("truncated snapshot");
  EntityTable& entities = store->entities();
  entities.Reserve(entity_count);
  for (uint32_t i = 0; i < entity_count; ++i) {
    uint8_t kind;
    std::string name;
    if (!r.U8(&kind) || !r.Str(&name)) {
      return Status::DataLoss("truncated snapshot entity table");
    }
    EntityId id =
        static_cast<EntityKind>(kind) == EntityKind::kComposed
            ? entities.InternComposed(name)
            : entities.Intern(name);
    if (id != i) {
      return Status::DataLoss("snapshot entity order mismatch at id " +
                              std::to_string(i) + " ('" + name + "')");
    }
  }

  uint64_t fact_count;
  if (!r.U64(&fact_count)) return Status::DataLoss("truncated snapshot");
  for (uint64_t i = 0; i < fact_count; ++i) {
    Fact fact;
    if (!r.U32(&fact.source) || !r.U32(&fact.relationship) ||
        !r.U32(&fact.target)) {
      return Status::DataLoss("truncated snapshot facts");
    }
    store->Assert(fact);
  }

  uint32_t rule_count;
  if (!r.U32(&rule_count)) return Status::DataLoss("truncated snapshot");
  std::vector<Rule> parsed;
  for (uint32_t i = 0; i < rule_count; ++i) {
    std::string text;
    uint8_t enabled;
    if (!r.Str(&text) || !r.U8(&enabled)) {
      return Status::DataLoss("truncated snapshot rules");
    }
    // Rules are stored in .lsd text; strip the keyword and re-parse.
    RuleKind kind = RuleKind::kInference;
    std::string_view body = text;
    if (body.rfind("integrity ", 0) == 0) {
      kind = RuleKind::kIntegrity;
      body = body.substr(10);
    } else if (body.rfind("rule ", 0) == 0) {
      body = body.substr(5);
    }
    LSD_ASSIGN_OR_RETURN(Rule rule, ParseRuleLine(body, kind, &entities));
    rule.enabled = (enabled != 0);
    parsed.push_back(std::move(rule));
  }
  // The trailer authenticates everything above; a snapshot that fails
  // it must be rejected wholesale (bit rot in the middle of the entity
  // table silently renames entities — worse than an error).
  if (!r.Trailer()) {
    return Status::DataLoss(path + " failed its checksum");
  }
  if (rules != nullptr) {
    for (Rule& rule : parsed) rules->push_back(std::move(rule));
  }
  return Status::OK();
}

Wal::~Wal() { Close(); }

std::vector<WalSegmentInfo> Wal::Inventory(const std::string& base) {
  std::vector<WalSegmentInfo> out;
  for (const SegmentFile& seg : ListSegments(base)) {
    FilePtr f(std::fopen(seg.path.c_str(), "rb"));
    if (f == nullptr) continue;
    SegmentHeader header;
    if (!ReadSegmentHeader(f.get(), &header) || header.seq != seg.seq) {
      continue;  // unreadable header: Replay will drop it
    }
    out.push_back(WalSegmentInfo{seg.seq, header.generation,
                                 FileSizeOrZero(seg.path), seg.path});
  }
  return out;
}

std::vector<WalSegmentInfo> Wal::SegmentInventory() const {
  return Inventory(base_);
}

void Wal::PublishPosition() {
  std::lock_guard<std::mutex> lock(position_mu_);
  position_ = WalPosition{generation_, segment_seq_, segment_bytes_written_};
  ++position_version_;
  position_cv_.notify_all();
}

WalPosition Wal::durable_position() const {
  std::lock_guard<std::mutex> lock(position_mu_);
  return position_;
}

uint64_t Wal::position_version() const {
  std::lock_guard<std::mutex> lock(position_mu_);
  return position_version_;
}

bool Wal::WaitAppend(uint64_t seen_version,
                     std::chrono::milliseconds timeout) const {
  std::unique_lock<std::mutex> lock(position_mu_);
  return position_cv_.wait_for(lock, timeout, [&] {
    return position_version_ != seen_version;
  });
}

Status Wal::OpenSegment(uint64_t seq, uint64_t generation) {
  const std::string path = SegmentPath(base_, seq);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot create WAL segment " + path);
  }
  Writer w(f);
  w.Raw(kWalMagic, sizeof(kWalMagic));
  w.U64(generation);
  w.U64(seq);
  if (!w.ok() || std::fflush(f) != 0) {
    std::fclose(f);
    return Status::IoError("cannot initialize WAL segment " + path);
  }
  if (options_.sync == WalSync::kFsync && ::fsync(::fileno(f)) != 0) {
    std::fclose(f);
    return Status::IoError("cannot fsync WAL segment " + path);
  }
  if (file_ != nullptr) std::fclose(file_);
  file_ = f;
  segment_seq_ = seq;
  generation_ = generation;
  segment_bytes_written_ = kSegmentHeaderBytes;
  PublishPosition();
  return Status::OK();
}

Status Wal::Open(const std::string& base, const WalOptions& options,
                 uint64_t generation) {
  Close();
  base_ = base;
  options_ = options;
  poisoned_ = false;
  generation_bytes_ = 0;

  std::vector<SegmentFile> segments = ListSegments(base);
  if (segments.empty()) {
    return OpenSegment(1, generation);
  }

  // Append to the newest segment. Replay() ran before us (it is the
  // only safe way to find the append point), so the header is expected
  // to be intact; if it is not, start a fresh segment past it rather
  // than appending into a broken file.
  const SegmentFile& last = segments.back();
  SegmentHeader header;
  bool header_ok = false;
  if (std::FILE* probe = std::fopen(last.path.c_str(), "rb")) {
    header_ok = ReadSegmentHeader(probe, &header);
    std::fclose(probe);
  }
  if (!header_ok) {
    std::remove(last.path.c_str());
    return OpenSegment(last.seq + 1, generation);
  }

  file_ = std::fopen(last.path.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::IoError("cannot open WAL segment " + last.path);
  }
  segment_seq_ = last.seq;
  generation_ = header.generation;
  segment_bytes_written_ = FileSizeOrZero(last.path);
  // Bytes already logged in this generation (the auto-checkpoint
  // trigger keeps counting across reopens).
  for (const SegmentFile& seg : segments) {
    if (std::FILE* probe = std::fopen(seg.path.c_str(), "rb")) {
      SegmentHeader h;
      if (ReadSegmentHeader(probe, &h) && h.generation == generation_) {
        uint64_t size = FileSizeOrZero(seg.path);
        generation_bytes_ +=
            size > kSegmentHeaderBytes ? size - kSegmentHeaderBytes : 0;
      }
      std::fclose(probe);
    }
  }
  PublishPosition();
  return Status::OK();
}

void Wal::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  poisoned_ = false;
}

Status Wal::RotateIfNeeded() {
  if (options_.segment_bytes == 0 ||
      segment_bytes_written_ < options_.segment_bytes) {
    return Status::OK();
  }
  LSD_FAILPOINT_RETURN_IF_SET(wal.rotate);
  return OpenSegment(segment_seq_ + 1, generation_);
}

Status Wal::BeginGeneration(uint64_t generation) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("WAL is not open");
  }
  const uint64_t old_last_seq = segment_seq_;
  LSD_RETURN_IF_ERROR(OpenSegment(old_last_seq + 1, generation));
  // The fresh segment supersedes the partial record of a poisoned log;
  // the snapshot already published the full state.
  poisoned_ = false;
  generation_bytes_ = 0;
  // Crash window: the new-generation segment exists but stale segments
  // linger. Recovery skips them by generation, so this is safe.
  LSD_FAILPOINT(wal.generation.swap);
  for (const SegmentFile& seg : ListSegments(base_)) {
    if (seg.seq <= old_last_seq) std::remove(seg.path.c_str());
  }
  return Status::OK();
}

Status Wal::WriteRecord(const WalRecord& rec, uint64_t* bytes_written) {
  // Stage the full record: [len][crc over len+payload][payload].
  BufWriter payload;
  payload.U8(rec.op);
  payload.U8(static_cast<uint8_t>(rec.fields.size()));
  for (const std::string& s : rec.fields) payload.Str(s);
  const uint32_t len = static_cast<uint32_t>(payload.str().size());
  uint32_t crc = Crc32cExtend(0, &len, sizeof(len));
  crc = Crc32cExtend(crc, payload.str().data(), len);
  std::string record;
  record.reserve(8 + len);
  record.append(reinterpret_cast<const char*>(&len), 4);
  record.append(reinterpret_cast<const char*>(&crc), 4);
  record.append(payload.str());

  // A crash policy here dies before any byte is written; a short-write
  // policy leaves a torn record on disk and poisons the log, exactly
  // like a real partial write would.
  LSD_FAILPOINT_HIT(wal.append.write, fp_write);
  if (fp_write.action == failpoint::Action::kError) {
    poisoned_ = true;
    return Status::IoError("injected WAL append failure at " + base_);
  }
  size_t budget = record.size();
  if (fp_write.action == failpoint::Action::kShortWrite) {
    budget = std::min<size_t>(budget, fp_write.arg);
  }
  if (std::fwrite(record.data(), 1, budget, file_) != budget) {
    poisoned_ = true;
    return Status::IoError("WAL append to " + base_ + " failed");
  }
  if (fp_write.action == failpoint::Action::kShortWrite) {
    std::fflush(file_);  // push the torn bytes where recovery will see them
    poisoned_ = true;
    return Status::IoError("injected short write (" +
                           std::to_string(budget) + " of " +
                           std::to_string(record.size()) + " bytes) at " +
                           base_);
  }
  *bytes_written += record.size();
  return Status::OK();
}

Status Wal::AppendBatch(const std::vector<WalRecord>& records) {
  if (records.empty()) return Status::OK();
  if (file_ == nullptr) {
    return Status::FailedPrecondition("WAL is not open");
  }
  if (poisoned_) {
    return Status::FailedPrecondition(
        "WAL poisoned by an earlier append failure; reopen to salvage");
  }
  // Rotate once, up front: a group never spans segments, so recovery
  // sees it as a contiguous record run (possibly with a torn suffix —
  // exactly the shape salvage already handles).
  LSD_RETURN_IF_ERROR(RotateIfNeeded());

  uint64_t bytes_written = 0;
  for (const WalRecord& rec : records) {
    // The mid-group site: a crash here leaves the earlier records of
    // the group on disk (buffered or flushed) and the rest missing —
    // the torture harness proves recovery still lands on a valid
    // prefix and that no ack was released for any of them.
    LSD_FAILPOINT_HIT(wal.batch.record, fp_rec);
    if (fp_rec.action == failpoint::Action::kError) {
      poisoned_ = true;
      return Status::IoError("injected mid-group append failure at " +
                             base_);
    }
    LSD_RETURN_IF_ERROR(WriteRecord(rec, &bytes_written));
  }

  // One flush, one (optional) fsync for the whole group.
  LSD_FAILPOINT_HIT(wal.append.flush, fp_flush);
  if (fp_flush.action == failpoint::Action::kError ||
      std::fflush(file_) != 0) {
    poisoned_ = true;
    return Status::IoError("WAL flush of " + base_ + " failed");
  }
  if (options_.sync == WalSync::kFsync) {
    // The group's bytes are in the page cache but not yet durable: the
    // crash window the acked-floor invariant is about. A crash here
    // may surface the whole group after recovery (the kernel got the
    // bytes) or none of it — both are fine, because no follower has
    // been acked yet.
    LSD_FAILPOINT_HIT(wal.batch.sync, fp_bsync);
    if (fp_bsync.action == failpoint::Action::kError) {
      poisoned_ = true;
      return Status::IoError("injected pre-fsync failure at " + base_);
    }
    LSD_FAILPOINT_HIT(wal.fsync, fp_sync);
    if (fp_sync.action == failpoint::Action::kError ||
        ::fsync(::fileno(file_)) != 0) {
      // fsync failure leaves durability unknown; refuse further appends
      // so the caller checkpoints or reopens.
      poisoned_ = true;
      return Status::IoError("WAL fsync of " + base_ + " failed");
    }
    fsyncs_.fetch_add(1, std::memory_order_relaxed);
  }
  segment_bytes_written_ += bytes_written;
  generation_bytes_ += bytes_written;
  // The batch is durable (to this log's sync contract): shippers may
  // now read up to the new position and followers may be told about it.
  PublishPosition();
  appended_records_.fetch_add(records.size(), std::memory_order_relaxed);
  append_batches_.fetch_add(1, std::memory_order_relaxed);
  if (records.size() > max_batch_records_.load(std::memory_order_relaxed)) {
    max_batch_records_.store(records.size(), std::memory_order_relaxed);
  }
  return Status::OK();
}

Status Wal::AppendRecord(uint8_t op,
                         const std::vector<std::string>& fields) {
  return AppendBatch({WalRecord{op, fields}});
}

WalRecord WalAssertRecord(const FactStore& store, const Fact& f) {
  const EntityTable& e = store.entities();
  return WalRecord{
      kOpAssert,
      {e.Name(f.source), e.Name(f.relationship), e.Name(f.target)}};
}

WalRecord WalRetractRecord(const FactStore& store, const Fact& f) {
  const EntityTable& e = store.entities();
  return WalRecord{
      kOpRetract,
      {e.Name(f.source), e.Name(f.relationship), e.Name(f.target)}};
}

WalRecord WalRuleRecord(const Rule& rule, const EntityTable& entities) {
  return WalRecord{kOpRule, {SerializeRule(rule, entities)}};
}

WalRecord WalRuleEnabledRecord(const std::string& rule_name, bool enabled) {
  return WalRecord{enabled ? kOpEnableRule : kOpDisableRule, {rule_name}};
}

Status Wal::AppendAssert(const FactStore& store, const Fact& f) {
  WalRecord rec = WalAssertRecord(store, f);
  return AppendRecord(rec.op, rec.fields);
}

Status Wal::AppendRetract(const FactStore& store, const Fact& f) {
  WalRecord rec = WalRetractRecord(store, f);
  return AppendRecord(rec.op, rec.fields);
}

Status Wal::AppendRule(const Rule& rule, const EntityTable& entities) {
  WalRecord rec = WalRuleRecord(rule, entities);
  return AppendRecord(rec.op, rec.fields);
}

Status Wal::AppendSetRuleEnabled(const std::string& rule_name,
                                 bool enabled) {
  WalRecord rec = WalRuleEnabledRecord(rule_name, enabled);
  return AppendRecord(rec.op, rec.fields);
}

Status WalTailReader::Open(uint64_t seq, uint64_t offset) {
  Close();
  const std::string path = SegmentPath(base_, seq);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("WAL segment " + path + " does not exist");
  }
  SegmentHeader header;
  if (!ReadSegmentHeader(f, &header) || header.seq != seq) {
    std::fclose(f);
    return Status::DataLoss("bad segment header in " + path);
  }
  if (offset == 0) offset = Wal::kSegmentHeaderSize;
  if (offset < Wal::kSegmentHeaderSize) {
    std::fclose(f);
    return Status::InvalidArgument("offset " + std::to_string(offset) +
                                   " is inside the segment header");
  }
  if (std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0) {
    std::fclose(f);
    return Status::IoError("cannot seek to offset " +
                           std::to_string(offset) + " of " + path);
  }
  file_ = f;
  seq_ = seq;
  generation_ = header.generation;
  offset_ = offset;
  return Status::OK();
}

void WalTailReader::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

StatusOr<size_t> WalTailReader::Read(uint64_t limit_offset,
                                     size_t max_bytes, std::string* out) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("tail reader is not open");
  }
  if (limit_offset <= offset_ || max_bytes == 0) return size_t{0};
  size_t want = static_cast<size_t>(
      std::min<uint64_t>(limit_offset - offset_, max_bytes));
  size_t start = out->size();
  out->resize(start + want);
  // The writer appends with its own FILE*; clearerr so a previous EOF
  // (we caught up) does not stick after the segment has grown.
  std::clearerr(file_);
  size_t n = std::fread(out->data() + start, 1, want, file_);
  out->resize(start + n);
  if (n < want && std::ferror(file_) != 0) {
    return Status::IoError("read of WAL segment " +
                           SegmentPath(base_, seq_) + " failed");
  }
  offset_ += n;
  return n;
}

void WalRecordParser::Feed(std::string_view data) {
  if (!error_.empty()) return;  // poisoned
  if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > 64 * 1024)) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data);
}

WalRecordParser::Result WalRecordParser::Next(WalRecord* out) {
  if (!error_.empty()) return Result::kError;
  if (buf_.size() - pos_ < 8) return Result::kNeedMore;
  uint32_t len = 0, crc = 0;
  std::memcpy(&len, buf_.data() + pos_, 4);
  std::memcpy(&crc, buf_.data() + pos_ + 4, 4);
  if (len > kMaxRecordBytes) {
    error_ = "implausible record length " + std::to_string(len);
    return Result::kError;
  }
  if (buf_.size() - pos_ < 8 + static_cast<size_t>(len)) {
    return Result::kNeedMore;
  }
  const char* payload = buf_.data() + pos_ + 8;
  uint32_t expected = Crc32cExtend(0, &len, sizeof(len));
  expected = Crc32cExtend(expected, payload, len);
  if (expected != crc) {
    error_ = "record checksum mismatch";
    return Result::kError;
  }
  // Decode op, field count, fields out of the verified payload.
  if (len < 2) {
    error_ = "record payload shorter than its opcode";
    return Result::kError;
  }
  out->op = static_cast<uint8_t>(payload[0]);
  size_t nfields = static_cast<uint8_t>(payload[1]);
  size_t at = 2;
  out->fields.clear();
  for (size_t i = 0; i < nfields; ++i) {
    if (at + 4 > len) {
      error_ = "record field table truncated";
      return Result::kError;
    }
    uint32_t flen;
    std::memcpy(&flen, payload + at, 4);
    at += 4;
    if (at + flen > len) {
      error_ = "record field runs past its payload";
      return Result::kError;
    }
    out->fields.emplace_back(payload + at, flen);
    at += flen;
  }
  if (at != len) {
    error_ = "trailing bytes after record fields";
    return Result::kError;
  }
  pos_ += 8 + len;
  return Result::kRecord;
}

Status Wal::Replay(const std::string& base, FactStore* store,
                   std::vector<Rule>* rules, RecoveryStats* stats,
                   uint64_t min_generation) {
  RecoveryStats local;
  RecoveryStats& s = stats != nullptr ? *stats : local;

  bool damaged = false;  // once set, nothing after the damage is trusted
  for (const SegmentFile& seg : ListSegments(base)) {
    const uint64_t size = FileSizeOrZero(seg.path);
    if (damaged) {
      // Records here may depend on state lost with the damaged prefix;
      // committed-prefix semantics require dropping them.
      s.bytes_dropped += size;
      ++s.segments_dropped;
      if (std::remove(seg.path.c_str()) != 0) {
        return Status::IoError("cannot drop WAL segment " + seg.path);
      }
      continue;
    }
    FilePtr f(std::fopen(seg.path.c_str(), "rb"));
    if (f == nullptr) {
      return Status::IoError("cannot open WAL segment " + seg.path);
    }
    SegmentHeader header;
    if (!ReadSegmentHeader(f.get(), &header) || header.seq != seg.seq) {
      // Unreadable header: the segment contributes nothing, and nothing
      // after it can be trusted either.
      f.reset();
      s.bytes_dropped += size;
      ++s.segments_dropped;
      s.tail_truncated = true;
      damaged = true;
      if (s.detail.empty()) {
        s.detail = "bad segment header in " + seg.path;
      }
      if (std::remove(seg.path.c_str()) != 0) {
        return Status::IoError("cannot drop WAL segment " + seg.path);
      }
      continue;
    }
    if (header.generation < min_generation) {
      // Pre-checkpoint leftovers: the snapshot already contains these
      // records (a crash hit between snapshot rename and segment
      // cleanup). Finish the cleanup now.
      f.reset();
      ++s.segments_skipped;
      if (std::remove(seg.path.c_str()) != 0) {
        return Status::IoError("cannot drop stale WAL segment " + seg.path);
      }
      continue;
    }

    ++s.segments_replayed;
    long good_offset = std::ftell(f.get());
    std::string bad_record_reason;
    for (;;) {
      uint32_t len = 0, crc = 0;
      size_t n = std::fread(&len, 1, 4, f.get());
      if (n == 0 && std::feof(f.get())) {
        break;  // clean end of segment
      }
      bool torn = false;
      std::string payload;
      if (n != 4 || std::fread(&crc, 1, 4, f.get()) != 4) {
        torn = true;  // torn inside the record header
      } else if (len > kMaxRecordBytes) {
        bad_record_reason = "implausible record length";
        torn = true;
      } else {
        payload.resize(len);
        if (len != 0 &&
            std::fread(payload.data(), 1, len, f.get()) != len) {
          torn = true;
        }
      }
      if (!torn) {
        uint32_t expected = Crc32cExtend(0, &len, sizeof(len));
        expected = Crc32cExtend(expected, payload.data(), payload.size());
        if (expected != crc) {
          bad_record_reason = "checksum mismatch";
          torn = true;
        }
      }
      if (!torn) {
        // Decode op, field count, fields out of the verified payload.
        bool parsed = false;
        std::vector<std::string> fields;
        uint8_t op = 0;
        if (payload.size() >= 2) {
          op = static_cast<uint8_t>(payload[0]);
          size_t nfields = static_cast<uint8_t>(payload[1]);
          size_t pos = 2;
          parsed = true;
          for (size_t i = 0; i < nfields && parsed; ++i) {
            if (pos + 4 > payload.size()) {
              parsed = false;
              break;
            }
            uint32_t flen;
            std::memcpy(&flen, payload.data() + pos, 4);
            pos += 4;
            if (pos + flen > payload.size()) {
              parsed = false;
              break;
            }
            fields.emplace_back(payload.data() + pos, flen);
            pos += flen;
          }
          if (parsed && pos != payload.size()) parsed = false;
        }
        if (!parsed || !ApplyRecord(op, fields, store, rules)) {
          bad_record_reason = "unparsable record";
          torn = true;
        }
      }
      if (torn) {
        // Salvage the valid prefix: truncate the damage away so the
        // next append continues from a clean boundary.
        const long file_end = (std::fseek(f.get(), 0, SEEK_END),
                               std::ftell(f.get()));
        f.reset();
        if (::truncate(seg.path.c_str(), good_offset) != 0) {
          return Status::IoError("cannot truncate damaged WAL segment " +
                                 seg.path);
        }
        s.bytes_dropped +=
            static_cast<uint64_t>(file_end - good_offset);
        s.tail_truncated = true;
        damaged = true;
        if (s.detail.empty()) {
          s.detail =
              (bad_record_reason.empty() ? std::string("torn record")
                                         : bad_record_reason) +
              " at offset " + std::to_string(good_offset) + " of " +
              seg.path;
        }
        break;
      }
      ++s.records_replayed;
      long new_offset = std::ftell(f.get());
      s.bytes_replayed += static_cast<uint64_t>(new_offset - good_offset);
      good_offset = new_offset;
    }
  }
  return Status::OK();
}

}  // namespace lsd
