// The serving layer's versioned shared store (Sec 5.2 made multi-user).
//
// The paper's browsing modes are per-user and hypothetical, but the
// database they browse is shared. SharedStore gives many concurrent
// browsers one base: writers funnel through a single-writer commit path
// that publishes immutable *epochs*; readers pin the current epoch with
// one shared_ptr copy under a briefly-held shared lock and then run the
// whole request lock-free on the pinned epoch — a commit publishing
// epoch N+1 never disturbs a reader still working on epoch N.
//
// (The pin could be a single std::atomic<shared_ptr> load, but
// libstdc++'s _Sp_atomic releases its embedded lock bit with a relaxed
// RMW on the reader path, which both TSan and the letter of the memory
// model reject; a shared_mutex-guarded pointer copy is just as cheap
// here and verifiably race-free.)
//
// An epoch is a fully warmed LooseDb that is never mutated again:
// closure, generalization lattice and planner keying are materialized
// before publication (LooseDb::Warm), the entity table is internally
// synchronized (parsing and composed-relationship minting intern on the
// fly), and the plan cache is mutex-guarded — so the epoch is safe for
// any number of reader threads. Internally each epoch's closure sits in
// the PR-1 frozen+delta two-tier index, and its caches are keyed by the
// PR-2 (store, rules) version pair; the commit path reuses that pair to
// detect and skip no-op commits.
//
// Commit = clone-the-tip: copy the newest epoch's facts/rules (O(n)),
// apply the mutation batch to the copy, warm it, publish it. Mutation
// failure discards the copy, so commits are all-or-nothing. Batch
// several mutations into one Commit call to amortize the clone.
#ifndef LSD_SERVER_SHARED_STORE_H_
#define LSD_SERVER_SHARED_STORE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>

#include "core/loose_db.h"
#include "util/status.h"

namespace lsd {

// One published, immutable database state. Readers hold it by
// shared_ptr; it stays alive until the last pinned request finishes,
// however many epochs have been published since.
class Epoch {
 public:
  Epoch(std::unique_ptr<LooseDb> db, uint64_t sequence)
      : db_(std::move(db)), sequence_(sequence) {}

  Epoch(const Epoch&) = delete;
  Epoch& operator=(const Epoch&) = delete;

  // Monotonic publish counter (0 = the bootstrap epoch).
  uint64_t sequence() const { return sequence_; }

  // The epoch's own (store, rules) version key pair — the same keys its
  // internal caches are validated against.
  uint64_t store_version() const { return db_->store_version(); }
  uint64_t rules_version() const { return db_->rules_version(); }

  // The warmed database. Logically const: the only remaining mutations
  // on read paths are entity interning (synchronized) and plan caching
  // (synchronized); facts and rules never change after publication.
  LooseDb& db() const { return *db_; }

 private:
  std::unique_ptr<LooseDb> db_;
  uint64_t sequence_;
};

using EpochPtr = std::shared_ptr<const Epoch>;

class SharedStore {
 public:
  // Publishes an empty (or standard-rules) epoch 0 immediately. Options
  // apply to every epoch (closure threads, composition limit, ...).
  explicit SharedStore(const LooseDbOptions& options = LooseDbOptions());

  SharedStore(const SharedStore&) = delete;
  SharedStore& operator=(const SharedStore&) = delete;

  // Pins the current epoch: one shared_ptr copy under a shared lock
  // held for nanoseconds — never across any query work. Hold the
  // returned pointer for the duration of the request.
  EpochPtr snapshot() const {
    std::shared_lock<std::shared_mutex> lock(tip_mu_);
    return published_;
  }

  // The single-writer commit path. Applies `mutate` to a private clone
  // of the newest epoch, warms it, publishes it, and returns the new
  // epoch. Serialized internally; safe to call from any thread. If
  // `mutate` fails the clone is discarded and nothing is published. If
  // `mutate` changes nothing (the (store, rules) version key pair is
  // unchanged), publication is skipped and the current epoch returned.
  StatusOr<EpochPtr> Commit(
      const std::function<Status(LooseDb&)>& mutate);

  // Total successful Commit calls that published a new epoch.
  uint64_t commits() const { return commits_.load(); }

  // The options every epoch (and session overlay clone) is built with.
  const LooseDbOptions& options() const { return options_; }

 private:
  LooseDbOptions options_;
  std::mutex writer_mu_;             // serializes Commit
  mutable std::shared_mutex tip_mu_;  // guards the published_ pointer only
  EpochPtr published_;
  std::atomic<uint64_t> commits_{0};
};

}  // namespace lsd

#endif  // LSD_SERVER_SHARED_STORE_H_
