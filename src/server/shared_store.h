// The serving layer's versioned shared store (Sec 5.2 made multi-user).
//
// The paper's browsing modes are per-user and hypothetical, but the
// database they browse is shared. SharedStore gives many concurrent
// browsers one base: writers funnel through a group-commit path that
// publishes immutable *epochs*; readers pin the current epoch with
// one shared_ptr copy under a briefly-held shared lock and then run the
// whole request lock-free on the pinned epoch — a commit publishing
// epoch N+1 never disturbs a reader still working on epoch N.
//
// (The pin could be a single std::atomic<shared_ptr> load, but
// libstdc++'s _Sp_atomic releases its embedded lock bit with a relaxed
// RMW on the reader path, which both TSan and the letter of the memory
// model reject; a shared_mutex-guarded pointer copy is just as cheap
// here and verifiably race-free.)
//
// An epoch is a fully warmed LooseDb that is never mutated again:
// closure, generalization lattice and planner keying are materialized
// before publication (LooseDb::Warm), the entity table is internally
// synchronized (parsing and composed-relationship minting intern on the
// fly), and the plan cache is mutex-guarded — so the epoch is safe for
// any number of reader threads. Internally each epoch's closure sits in
// the PR-1 frozen+delta two-tier index, and its caches are keyed by the
// PR-2 (store, rules) version pair; the commit path reuses that pair to
// detect and skip no-op commits.
//
// Commit = GROUP commit (the rocksdb WriteBatch leader/follower shape).
// Every epoch costs a full clone of the tip (O(n)), a warm, and — when
// the store is durable — a WAL append and possibly an fsync; paying
// that per writer caps throughput at 1/(clone+warm+fsync). Instead,
// concurrent Commit callers enqueue their mutation closures as *slots*;
// the first arrival becomes the group leader, drains the whole queue,
// applies every pending slot to ONE clone, logs all of their WAL
// records under ONE fflush+fsync (Wal::AppendBatch), warms ONCE, and
// publishes ONE epoch. Followers just block until the leader marks
// their slot done. N concurrent writers therefore cost ~1 writer, and
// acked-writes/sec scales with the group size (bench_server
// --write-pct measures exactly this).
//
// Slot independence: a slot whose closure fails must not sink its
// group. The leader drops the failed slot and replays the remaining
// slots on a fresh clone, so every surviving slot still gets
// all-or-nothing semantics and a failing writer only fails itself.
// Because of replay, mutation closures may be invoked more than once —
// they must be idempotent in their side effects on captured state
// (write-only output strings, as commands.cc does, are fine).
//
// Ack rule: a follower is released (Commit returns) only after its
// group's WAL batch has returned from fsync AND the epoch is published.
// A crash before the group's fsync may lose the whole group — but no
// client was ever told those writes existed, so the acked-floor
// invariant the torture harness checks still holds.
#ifndef LSD_SERVER_SHARED_STORE_H_
#define LSD_SERVER_SHARED_STORE_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/loose_db.h"
#include "store/compactor.h"
#include "util/status.h"

namespace lsd {

// One published, immutable database state. Readers hold it by
// shared_ptr; it stays alive until the last pinned request finishes,
// however many epochs have been published since.
class Epoch {
 public:
  Epoch(std::unique_ptr<LooseDb> db, uint64_t sequence,
        uint64_t publish_ms = 0, WalPosition wal_pos = WalPosition{})
      : db_(std::move(db)),
        sequence_(sequence),
        publish_ms_(publish_ms),
        wal_pos_(wal_pos) {}

  Epoch(const Epoch&) = delete;
  Epoch& operator=(const Epoch&) = delete;

  // Monotonic publish counter (0 = the bootstrap epoch).
  uint64_t sequence() const { return sequence_; }

  // Wall-clock publish stamp (ms since the Unix epoch; 0 when the
  // epoch predates stamping, e.g. the constructor's bootstrap epoch).
  // Replication ships this stamp with every chunk so a follower can
  // compute lag_ms entirely in the primary's clock domain.
  uint64_t publish_ms() const { return publish_ms_; }

  // The durable WAL position this epoch reflects: every record at or
  // below it is fsynced AND folded into db(). Zero when the store is
  // not durable. The log shipper treats the tip epoch's position as
  // its watermark — bytes past it are fsynced but unacked, and must
  // never reach a follower.
  const WalPosition& wal_pos() const { return wal_pos_; }

  // The epoch's own (store, rules) version key pair — the same keys its
  // internal caches are validated against.
  uint64_t store_version() const { return db_->store_version(); }
  uint64_t rules_version() const { return db_->rules_version(); }

  // The warmed database. Logically const: the only remaining mutations
  // on read paths are entity interning (synchronized) and plan caching
  // (synchronized); facts and rules never change after publication.
  LooseDb& db() const { return *db_; }

 private:
  std::unique_ptr<LooseDb> db_;
  uint64_t sequence_;
  uint64_t publish_ms_;
  WalPosition wal_pos_;
};

using EpochPtr = std::shared_ptr<const Epoch>;

// Durability knobs for SharedStore::OpenDurable.
struct SharedStoreDurability {
  WalSync sync = WalSync::kFsync;
  // WAL segment rotation threshold (0 disables rotation).
  uint64_t segment_bytes = 4ull << 20;
  // Leader-side auto-checkpoint: once this many bytes of WAL records
  // accumulate since the last checkpoint, the leader snapshots the tip
  // and swaps the log to a fresh generation. 0 disables.
  uint64_t checkpoint_bytes = 0;
};

// A point-in-time sample of the group-commit machinery (the `stats`
// verb's group-commit block).
struct GroupCommitStats {
  uint64_t groups = 0;          // commit groups processed
  uint64_t slots_acked = 0;     // mutation slots acked OK
  uint64_t slots_rejected = 0;  // slots failed by their own closure
  uint64_t max_group = 0;       // largest group of slots
  uint64_t queue_depth = 0;     // slots waiting right now
  uint64_t wal_records = 0;     // records batch-appended to the WAL
  uint64_t wal_batches = 0;     // AppendBatch calls (fsync opportunities)
  uint64_t fsyncs = 0;          // fsyncs actually issued
  double mean_group() const {
    return groups == 0 ? 0.0
                       : static_cast<double>(slots_acked + slots_rejected) /
                             static_cast<double>(groups);
  }
};

class SharedStore {
 public:
  // Publishes an empty (or standard-rules) epoch 0 immediately. Options
  // apply to every epoch (closure threads, composition limit, ...).
  explicit SharedStore(const LooseDbOptions& options = LooseDbOptions());
  ~SharedStore();  // stops the background compactor, if any

  SharedStore(const SharedStore&) = delete;
  SharedStore& operator=(const SharedStore&) = delete;

  // Attaches durability: recovers <prefix>.snap + <prefix>.wal.NNNNNN
  // into a fresh bootstrap epoch (replacing the constructor's), then
  // opens the store-owned WAL at the recovered generation. Every
  // subsequent commit group is batch-appended to that log before its
  // epoch publishes. Call once, before any concurrent use. Operator
  // definitions are not persisted (the LooseDb::Open limitation).
  Status OpenDurable(const std::string& path_prefix,
                     const SharedStoreDurability& durability = {});

  // Pins the current epoch: one shared_ptr copy under a shared lock
  // held for nanoseconds — never across any query work. Hold the
  // returned pointer for the duration of the request.
  EpochPtr snapshot() const {
    std::shared_lock<std::shared_mutex> lock(tip_mu_);
    return published_;
  }

  // The group-commit path. Applies `mutate` — possibly together with
  // other callers' mutations — to a private clone of the newest epoch,
  // warms it, publishes it, and returns the new epoch. Safe to call
  // from any thread. If `mutate` fails, its changes are discarded (the
  // rest of its group survives) and nothing of it is published. If the
  // whole group changes nothing (the (store, rules) version key pair is
  // unchanged), publication is skipped and the current epoch returned.
  // `mutate` may run more than once (group replay after another slot
  // fails); it must tolerate re-invocation.
  StatusOr<EpochPtr> Commit(
      const std::function<Status(LooseDb&)>& mutate);

  // Swaps in a whole replacement database as the new tip — the
  // follower-resync path (src/replication/): a snapshot streamed from
  // the primary is Recover()ed into `db`, then published here as one
  // epoch stamped with the snapshot's WAL position. Warms before
  // publishing. NOT for use concurrently with Commit writers: a commit
  // group racing this call could publish a clone of the pre-replace
  // tip afterwards, silently undoing the replacement. Followers are
  // single-writer (only the replication client mutates), which is the
  // one place this is called.
  StatusOr<EpochPtr> ReplaceTip(std::unique_ptr<LooseDb> db,
                                const WalPosition& wal_pos);

  // Wall-clock now, ms since the Unix epoch — the clock every epoch's
  // publish_ms is stamped with.
  static uint64_t NowMs();

  // The store-owned WAL, for replication's read-side APIs (segment
  // inventory, durable_position, WaitAppend — all thread-safe). Appends
  // remain leader-only. Check durable() first; the object exists but is
  // closed on a non-durable store.
  const Wal& wal() const { return wal_; }

  // The durability path prefix ("" when not durable). The log shipper
  // derives scratch snapshot paths from it.
  const std::string& save_prefix() const { return save_prefix_; }

  // Total commit groups that published a new epoch.
  uint64_t commits() const { return commits_.load(); }

  // Group-commit observability. Cheap; callable from any thread.
  GroupCommitStats group_stats() const;

  // Durability observability: whether a WAL is attached, what recovery
  // found, and the first append/checkpoint failure since (if any).
  bool durable() const { return wal_.is_open(); }
  const RecoveryStats& last_recovery() const { return last_recovery_; }
  Status wal_status() const;

  // The options every epoch (and session overlay clone) is built with.
  const LooseDbOptions& options() const { return options_; }

  // ---- Background compaction ---------------------------------------------
  // Starts the merge thread: it watches the tip's tier shape and, when
  // the trigger policy fires, folds the accumulated closure segments +
  // overlays into one CSR generation per tier, publishing the swap as an
  // ordinary (record-free) commit. Works on primaries and followers
  // alike — compaction writes no WAL records, so shipped bytes are
  // unchanged and each side compacts independently. FailedPrecondition
  // on incremental-maintenance stores (different derived representation).
  Status EnableCompaction(const CompactionOptions& options = {});
  // Stops and joins the merge thread (idempotent; also run by ~SharedStore).
  void StopCompaction();
  bool compaction_enabled() const { return compactor_ != nullptr; }
  // Zeroed stats when compaction was never enabled.
  CompactionStats compaction_stats() const;

  // One synchronous pin → build → swap cycle with bounded retries
  // against the publish race; what the merge thread runs per trigger,
  // public so tests and torture harnesses can drive compaction
  // deterministically. Accumulates the merged generations' sizes into
  // the out-params (which may be null). Returns OK when the tip was
  // already compact.
  Status CompactOnce(uint64_t* bytes_merged = nullptr,
                     uint64_t* facts_merged = nullptr);

  // The tip's tier geometry (the compaction trigger's input).
  CompactionShape SampleShape() const;

 private:
  // One waiting Commit call. Lives on its caller's stack; the leader
  // fills result/epoch, then marks it done under queue_mu_.
  struct CommitSlot {
    const std::function<Status(LooseDb&)>* mutate = nullptr;
    Status result;
    EpochPtr epoch;
    bool done = false;
  };

  // Commit minus the writer backpressure — the compactor's own publishes
  // must never be throttled by the backlog they are draining.
  StatusOr<EpochPtr> CommitInternal(
      const std::function<Status(LooseDb&)>& mutate);

  // Leader duties: clone the tip once, apply every slot, batch-log,
  // warm, publish. Fills every slot's result/epoch. Called without
  // queue_mu_ held; only one leader runs at a time.
  void ProcessGroup(std::vector<CommitSlot*> group);
  // Applies `slots` in order to a fresh clone of the tip. On a slot
  // failure, fills that slot's result, swaps it out of `slots`, and
  // returns false (caller re-clones and replays). On success, returns
  // true with the clone and its captured WAL records in the out-params.
  bool ApplySlots(std::vector<CommitSlot*>* slots,
                  std::unique_ptr<LooseDb>* out_db,
                  std::vector<WalRecord>* out_records, EpochPtr* out_tip);
  void MaybeCheckpoint(const EpochPtr& tip);

  LooseDbOptions options_;
  mutable std::shared_mutex tip_mu_;  // guards the published_ pointer only
  EpochPtr published_;
  std::atomic<uint64_t> commits_{0};

  // The commit queue. queue_mu_ guards queue_, leader_active_, and
  // every slot's done flag; the leader works outside the lock.
  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<CommitSlot*> queue_;
  bool leader_active_ = false;

  // Durability (leader-only once attached; see OpenDurable).
  Wal wal_;
  std::string save_prefix_;
  uint64_t checkpoint_bytes_ = 0;
  RecoveryStats last_recovery_;
  mutable std::mutex wal_error_mu_;
  Status wal_error_;  // first batch-append/checkpoint failure

  // Group-commit counters (leader writes, stats readers sample).
  std::atomic<uint64_t> groups_{0};
  std::atomic<uint64_t> slots_acked_{0};
  std::atomic<uint64_t> slots_rejected_{0};
  std::atomic<uint64_t> max_group_{0};

  // Background compaction (EnableCompaction). Created once, then only
  // read concurrently; destroyed by ~SharedStore after Stop().
  std::unique_ptr<Compactor> compactor_;
};

}  // namespace lsd

#endif  // LSD_SERVER_SHARED_STORE_H_
