// Shared resource-governance state: the overload monitor's DEGRADED
// flag plus the cancellation counters every session folds into STATS.
//
// One GovernanceState is owned by the server and shared read/write with
// every session (like the SessionRegistry pointer): the reactor updates
// the overload flag from queue depth, workers record per-request
// outcomes, and sessions consult the flag for the shed decision and
// bump the shed counter themselves. Everything mutable is atomic — no
// lock is ever taken on this struct.
#ifndef LSD_SERVER_GOVERNANCE_H_
#define LSD_SERVER_GOVERNANCE_H_

#include <atomic>
#include <cstdint>

#include "util/budget.h"

namespace lsd {

struct GovernanceState {
  // ---- Config (set before Start(), read-only afterwards) -----------------

  // Planner cost estimate (estimated candidate enumerations) above which
  // a request is shed while the server is DEGRADED. Cheap probes — a
  // bound pattern enumerating a handful of facts — stay far below this;
  // unbound joins and whole-closure walks blow past it.
  uint64_t shed_cost_threshold = 1 << 16;
  // Cumulative step allowance across one session's lifetime (0 =
  // unlimited). A session that spends it gets typed budget errors for
  // further reads/writes; control verbs keep working.
  uint64_t session_step_budget = 0;

  // ---- Overload monitor ---------------------------------------------------

  // Set by the reactor with hysteresis on the pending-request queue
  // depth (enter at >= 1/2 max_queued_requests, leave at <= 1/4), so
  // the flag does not flap at the boundary.
  std::atomic<bool> degraded{false};
  std::atomic<uint64_t> degrade_entries{0};  // times DEGRADED was entered
  std::atomic<size_t> queue_depth{0};        // last observed depth

  // ---- Outcome counters ---------------------------------------------------

  std::atomic<uint64_t> cancelled_deadline{0};
  std::atomic<uint64_t> cancelled_budget{0};
  std::atomic<uint64_t> cancelled_disconnect{0};
  std::atomic<uint64_t> cancelled_shed{0};
  // Worst single-request execution time observed since start.
  std::atomic<uint64_t> worst_request_ms{0};

  void CountCancel(CancelReason reason, uint64_t n = 1) {
    switch (reason) {
      case CancelReason::kDeadline:
        cancelled_deadline.fetch_add(n, std::memory_order_relaxed);
        break;
      case CancelReason::kBudget:
        cancelled_budget.fetch_add(n, std::memory_order_relaxed);
        break;
      case CancelReason::kDisconnect:
        cancelled_disconnect.fetch_add(n, std::memory_order_relaxed);
        break;
      case CancelReason::kShed:
        cancelled_shed.fetch_add(n, std::memory_order_relaxed);
        break;
      case CancelReason::kNone:
        break;
    }
  }

  uint64_t total_cancelled() const {
    return cancelled_deadline.load(std::memory_order_relaxed) +
           cancelled_budget.load(std::memory_order_relaxed) +
           cancelled_disconnect.load(std::memory_order_relaxed) +
           cancelled_shed.load(std::memory_order_relaxed);
  }

  void RecordElapsedMs(uint64_t ms) {
    uint64_t cur = worst_request_ms.load(std::memory_order_relaxed);
    while (ms > cur && !worst_request_ms.compare_exchange_weak(
                           cur, ms, std::memory_order_relaxed)) {
    }
  }
};

}  // namespace lsd

#endif  // LSD_SERVER_GOVERNANCE_H_
