#include "server/session.h"

#include <utility>

namespace lsd {

StatusOr<ServerSession::PinnedDb> ServerSession::Pin() {
  EpochPtr epoch = store_->snapshot();
  last_epoch_sequence_ = epoch->sequence();
  PinnedDb pinned;
  pinned.epoch = epoch;
  if (hypo_retracts_.empty() && hypo_asserts_.empty()) {
    overlay_db_ = nullptr;  // drop a stale materialization eagerly
    pinned.db = &epoch->db();
    return pinned;
  }
  if (overlay_db_ == nullptr ||
      overlay_epoch_sequence_ != epoch->sequence() ||
      overlay_built_version_ != overlay_version_) {
    LooseDbOptions options = store_->options();
    options.standard_rules = false;
    auto clone = std::make_unique<LooseDb>(options);
    LSD_RETURN_IF_ERROR(epoch->db().CloneInto(clone.get()));
    for (const NamedFact& f : hypo_retracts_) {
      // A fact retracted globally since the hypothesis was posed is
      // already absent — the hypothesis holds vacuously.
      (void)clone->Retract(f.source, f.relationship, f.target);
    }
    for (const NamedFact& f : hypo_asserts_) {
      clone->Assert(f.source, f.relationship, f.target);
    }
    overlay_db_ = std::move(clone);
    overlay_epoch_sequence_ = epoch->sequence();
    overlay_built_version_ = overlay_version_;
  }
  // No Warm(): the overlay db is private to this session's thread, so
  // its caches may fill lazily like any single-user LooseDb. That lazy
  // fill (a whole-closure rebuild) is exactly the expensive read the
  // request budget must govern — safe here precisely because the clone
  // is single-thread-owned (a tripped rebuild leaves the stale cache
  // untouched; the next request's View() simply retries).
  overlay_db_->set_read_budget(budget_);
  pinned.db = overlay_db_.get();
  pinned.overlaid = true;
  return pinned;
}

std::string ServerSession::Breadcrumbs() const {
  std::string out;
  for (size_t i = 0; i < trail_.size(); ++i) {
    if (i > 0) out += " > ";
    if (i == trail_pos_) {
      out += "[" + trail_[i] + "]";
    } else {
      out += trail_[i];
    }
  }
  return out;
}

std::shared_ptr<ServerSession> SessionRegistry::Create(size_t max_sessions) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sessions_.size() >= max_sessions) return nullptr;
  uint64_t id = next_id_++;
  auto session = std::make_shared<ServerSession>(id, store_);
  session->set_registry(this);
  session->set_replication(replication_);
  session->set_governance(governance_);
  sessions_.emplace(id, session);
  return session;
}

void SessionRegistry::Remove(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  sessions_.erase(id);
}

size_t SessionRegistry::live() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

uint64_t SessionRegistry::total_created() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_id_ - 1;
}

}  // namespace lsd
