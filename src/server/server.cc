#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

#include "server/protocol.h"
#include "util/failpoint.h"

namespace lsd {

namespace {

void SetSocketTimeout(int fd, int which, std::chrono::milliseconds ms) {
  if (ms.count() <= 0) return;
  struct timeval tv;
  tv.tv_sec = ms.count() / 1000;
  tv.tv_usec = (ms.count() % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, which, &tv, sizeof(tv));
}

}  // namespace

LsdServer::LsdServer(SharedStore* store, const ServerOptions& options)
    : store_(store), options_(options), registry_(store) {}

LsdServer::~LsdServer() { Stop(); }

Status LsdServer::Start() {
  if (running_.load()) return Status::FailedPrecondition("server running");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(listen_fd_, options_.listen_backlog) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                    &len) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError(std::string("getsockname: ") +
                           std::strerror(errno));
  }
  port_ = ntohs(addr.sin_port);

  running_.store(true);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void LsdServer::Stop() {
  running_.store(false);
  if (int fd = listen_fd_.exchange(-1); fd >= 0) {
    // shutdown() unblocks accept() on Linux; close() completes it.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (acceptor_.joinable()) acceptor_.join();

  // Unblock connection threads stuck in read(), then join them all.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (auto& [id, fd] : open_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (;;) {
    std::thread t;
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      if (connections_.empty()) break;
      auto it = connections_.begin();
      t = std::move(it->second);
      connections_.erase(it);
    }
    if (t.joinable()) t.join();
  }
  std::lock_guard<std::mutex> lock(conn_mu_);
  finished_.clear();
}

void LsdServer::ReapFinished() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (uint64_t id : finished_) {
      auto it = connections_.find(id);
      if (it == connections_.end()) continue;
      done.push_back(std::move(it->second));
      connections_.erase(it);
    }
    finished_.clear();
  }
  for (auto& t : done) {
    if (t.joinable()) t.join();
  }
}

void LsdServer::AcceptLoop() {
  while (running_.load()) {
    int listen_fd = listen_fd_.load();
    if (listen_fd < 0) break;
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket closed by Stop()
    }
    if (!running_.load()) {
      ::close(fd);
      break;
    }
    ReapFinished();
    LSD_FAILPOINT(server.accept);
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    SetSocketTimeout(fd, SO_RCVTIMEO, options_.io_timeout);
    SetSocketTimeout(fd, SO_SNDTIMEO, options_.io_timeout);

    std::lock_guard<std::mutex> lock(conn_mu_);
    uint64_t conn_id = next_conn_id_++;
    open_fds_[conn_id] = fd;
    connections_[conn_id] =
        std::thread([this, fd, conn_id] { HandleConnection(fd, conn_id); });
  }
}

void LsdServer::HandleConnection(int fd, uint64_t conn_id) {
  std::shared_ptr<ServerSession> session =
      registry_.Create(options_.max_sessions);
  if (session == nullptr) {
    // Bounded admission: greet with busy and hang up. The client sees
    // deterministic backpressure instead of an unbounded queue.
    rejected_.fetch_add(1);
    (void)WriteAll(fd, FrameResponse(
                           Status::FailedPrecondition("server busy"), ""));
  } else {
    std::string banner = "lsd server ready, session " +
                         std::to_string(session->id()) + ", epoch " +
                         std::to_string(store_->snapshot()->sequence());
    if (WriteAll(fd, FrameResponse(Status::OK(), banner)).ok()) {
      LineReader reader(fd);
      reader.set_max_idle_timeouts(options_.io_retries);
      std::string line;
      while (running_.load() && reader.ReadLine(&line)) {
        // An injected read failure models the kernel dropping the
        // connection under us mid-request.
        LSD_FAILPOINT_HIT(server.read, read_fault);
        if (read_fault.action == failpoint::Action::kError) break;
        if (line == "quit" || line == "exit") {
          (void)WriteAll(fd, FrameResponse(Status::OK(), "bye"));
          break;
        }
        if (line.empty()) continue;
        auto start = std::chrono::steady_clock::now();
        StatusOr<std::string> result = session->Execute(line);
        auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start);
        requests_served_.fetch_add(1);
        bool overran = options_.request_timeout.count() > 0 &&
                       elapsed > options_.request_timeout;
        if (overran) {
          (void)WriteAll(
              fd, FrameResponse(Status::FailedPrecondition(
                                    "request deadline exceeded (" +
                                    std::to_string(elapsed.count()) + "ms)"),
                                ""));
          break;
        }
        // An injected write failure drops the response on the floor and
        // hangs up, exactly like a send-buffer error would: the client
        // sees a dead connection and must retry elsewhere.
        LSD_FAILPOINT_HIT(server.write, write_fault);
        if (write_fault.action == failpoint::Action::kError) break;
        Status write_status =
            result.ok()
                ? WriteAll(fd, FrameResponse(Status::OK(), result.value()))
                : WriteAll(fd, FrameResponse(result.status(), ""));
        if (!write_status.ok()) break;
      }
    }
    registry_.Remove(session->id());
  }

  ::close(fd);
  std::lock_guard<std::mutex> lock(conn_mu_);
  open_fds_.erase(conn_id);
  finished_.push_back(conn_id);
}

}  // namespace lsd
