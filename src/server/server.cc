#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <optional>
#include <string>
#include <utility>

#include "util/failpoint.h"

namespace lsd {

namespace {

using Clock = std::chrono::steady_clock;

// The one-line error text both protocols carry (newlines would break
// the text framing's status line).
std::string ErrorLine(const Status& status) {
  std::string s = status.ToString();
  size_t nl = s.find('\n');
  return nl == std::string::npos ? s : s.substr(0, nl);
}

}  // namespace

LsdServer::LsdServer(SharedStore* store, const ServerOptions& options)
    : store_(store), options_(options), registry_(store) {
  registry_.set_replication(options_.replication);
  governance_.shed_cost_threshold = options_.shed_cost_threshold;
  governance_.session_step_budget = options_.session_step_budget;
  registry_.set_governance(&governance_);
  if (options_.worker_threads == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    options_.worker_threads = hw == 0 ? 1 : hw;
  }
  if (options_.max_inflight_per_connection == 0) {
    options_.max_inflight_per_connection = 1;
  }
  if (options_.max_queued_requests == 0) options_.max_queued_requests = 1;
}

LsdServer::~LsdServer() { Stop(); }

Status LsdServer::Start() {
  if (running_.load()) return Status::FailedPrecondition("server running");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  auto fail = [this](const char* what) {
    Status s = Status::IoError(std::string(what) + ": " +
                               std::strerror(errno));
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    listen_fd_ = epoll_fd_ = wake_fd_ = -1;
    return s;
  };
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, options_.listen_backlog) != 0) {
    return fail("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                    &len) != 0) {
    return fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return fail("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) return fail("eventfd");

  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    return fail("epoll_ctl(listen)");
  }
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    return fail("epoll_ctl(wake)");
  }

  shutting_down_.store(false);
  stop_workers_ = false;
  running_.store(true);
  reactor_ = std::thread([this] { ReactorLoop(); });
  workers_.reserve(options_.worker_threads);
  for (size_t i = 0; i < options_.worker_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void LsdServer::Stop() {
  if (!running_.exchange(false)) return;
  shutting_down_.store(true);
  uint64_t one = 1;
  (void)!::write(wake_fd_, &one, sizeof(one));
  if (reactor_.joinable()) reactor_.join();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stop_workers_ = true;
  }
  queue_cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  epoll_fd_ = wake_fd_ = -1;
}

// ---- Reactor -------------------------------------------------------------

void LsdServer::ReactorLoop() {
  std::vector<struct epoll_event> events(256);
  std::optional<Clock::time_point> shutdown_started;
  for (;;) {
    int timeout_ms = -1;
    if (shutdown_started.has_value()) {
      timeout_ms = 10;
    } else if (options_.io_timeout.count() > 0) {
      timeout_ms = static_cast<int>(std::min<int64_t>(
          50, std::max<int64_t>(1, options_.io_timeout.count())));
    }
    int n = ::epoll_wait(epoll_fd_, events.data(),
                         static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const uint32_t what = events[i].events;
      if (fd == listen_fd_) {
        AcceptNew();
        continue;
      }
      if (fd == wake_fd_) {
        uint64_t drain;
        while (::read(wake_fd_, &drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // closed earlier in this batch
      ConnPtr conn = it->second;
      if ((what & EPOLLERR) != 0 ||
          ((what & EPOLLHUP) != 0 && (what & EPOLLIN) == 0)) {
        CloseConnection(conn);
        continue;
      }
      if ((what & EPOLLIN) != 0) HandleReadable(conn);
      if ((what & EPOLLOUT) != 0 && conn->fd >= 0) FlushOut(conn);
    }
    DrainWakeList();
    ResumePaused();
    IdleSweep();
    UpdateDegraded();

    if (shutting_down_.load() && !shutdown_started.has_value()) {
      // Graceful drain: stop accepting, stop reading, keep executing
      // and flushing what is already in flight.
      shutdown_started = Clock::now();
      if (listen_fd_ >= 0) {
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
        ::close(listen_fd_);
        listen_fd_ = -1;
      }
      for (auto& [cfd, conn] : conns_) {
        bool writable;
        {
          std::lock_guard<std::mutex> lock(conn->mu);
          writable = conn->out_pos < conn->out.size();
        }
        UpdateInterest(conn, false, writable);
      }
    }
    if (shutdown_started.has_value() &&
        (Drained() ||
         Clock::now() - *shutdown_started > options_.shutdown_drain)) {
      break;
    }
  }
  // Close whatever is left (drained connections, or busy ones past the
  // drain deadline).
  std::vector<ConnPtr> leftover;
  leftover.reserve(conns_.size());
  for (auto& [fd, conn] : conns_) leftover.push_back(conn);
  for (const ConnPtr& conn : leftover) CloseConnection(conn);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void LsdServer::AcceptNew() {
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN, or the listen socket went away
    }
    if (shutting_down_.load()) {
      ::close(fd);
      return;
    }
    LSD_FAILPOINT(server.accept);
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->last_read = Clock::now();
    conn->session = registry_.Create(options_.max_sessions);
    if (conn->session == nullptr) {
      // Bounded admission: greet with busy and hang up once the
      // greeting flushes. Established sessions are never load-shed
      // this way — over-capacity *requests* pause reads instead.
      rejected_.fetch_add(1);
      conn->out =
          FrameResponse(Status::FailedPrecondition("server busy"), "");
      conn->close_after_out = true;
    } else {
      conn->out = FrameResponse(
          Status::OK(),
          "lsd server ready, session " +
              std::to_string(conn->session->id()) + ", epoch " +
              std::to_string(store_->snapshot()->sequence()));
    }

    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = conn->session != nullptr ? static_cast<uint32_t>(EPOLLIN) : 0u;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      if (conn->session != nullptr) registry_.Remove(conn->session->id());
      ::close(fd);
      continue;
    }
    conn->interest = ev.events;
    conns_[fd] = conn;
    FlushOut(conn);  // the greeting usually fits in the send buffer
  }
}

void LsdServer::HandleReadable(const ConnPtr& conn) {
  if (conn->fd < 0 || conn->paused || shutting_down_.load()) return;
  char chunk[16384];
  ssize_t n = ::read(conn->fd, chunk, sizeof(chunk));
  if (n == 0) {
    CloseConnection(conn);  // EOF
    return;
  }
  if (n < 0) {
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) return;
    CloseConnection(conn);
    return;
  }
  conn->last_read = Clock::now();
  if (conn->mode == Connection::Mode::kBinary) {
    conn->parser.Feed(std::string_view(chunk, static_cast<size_t>(n)));
  } else {
    conn->in_buf.append(chunk, static_cast<size_t>(n));
  }
  ParseRequests(conn);
}

void LsdServer::ParseRequests(const ConnPtr& conn) {
  if (conn->fd < 0 || shutting_down_.load()) return;
  for (;;) {
    bool draining;
    bool conn_full;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->dead) return;
      draining = conn->close_after_out;
      conn_full = conn->inflight >= options_.max_inflight_per_connection;
    }
    if (draining) return;  // quitting: ignore anything else buffered
    const bool queue_full =
        queued_requests_.load(std::memory_order_relaxed) >=
        options_.max_queued_requests;
    if (conn_full || queue_full) {
      // Backpressure: stop reading; leftover bytes stay buffered and
      // are re-parsed when requests drain.
      if (!conn->paused) {
        conn->paused = true;
        paused_fds_.insert(conn->fd);
        paused_count_.store(paused_fds_.size(), std::memory_order_relaxed);
        reads_paused_.fetch_add(1);
        bool writable;
        {
          std::lock_guard<std::mutex> lock(conn->mu);
          writable = conn->out_pos < conn->out.size();
        }
        UpdateInterest(conn, false, writable);
      }
      return;
    }

    // Sniff the protocol from the first byte the connection sends.
    if (conn->mode == Connection::Mode::kUnknown) {
      if (conn->in_buf.empty()) break;
      if (static_cast<uint8_t>(conn->in_buf[0]) == kBinaryMagic0) {
        conn->mode = Connection::Mode::kBinary;
        conn->parser.Feed(conn->in_buf);
        conn->in_buf.clear();
        conn->in_buf.shrink_to_fit();
      } else {
        conn->mode = Connection::Mode::kText;
      }
    }

    PendingRequest request;
    if (conn->mode == Connection::Mode::kText) {
      size_t nl = conn->in_buf.find('\n');
      if (nl == std::string::npos) {
        if (conn->in_buf.size() > options_.max_text_line_bytes) {
          CloseConnection(conn);  // unterminated-line flood
          return;
        }
        break;
      }
      std::string line = conn->in_buf.substr(0, nl);
      conn->in_buf.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;  // blank lines draw no response
      request.binary = false;
      request.command = std::move(line);
    } else {
      BinaryFrame frame;
      switch (conn->parser.Next(&frame)) {
        case BinaryFrameParser::Result::kNeedMore:
          goto done;
        case BinaryFrameParser::Result::kError:
          CloseConnection(conn);  // framing is lost; nothing to salvage
          return;
        case BinaryFrameParser::Result::kFrame:
          break;
      }
      if (frame.type != FrameType::kRequest &&
          frame.type != FrameType::kMutation) {
        CloseConnection(conn);
        return;
      }
      request.binary = true;
      request.mutation = (frame.type == FrameType::kMutation);
      request.id = frame.request_id;
      request.command = std::move(frame.payload);
    }

    // An injected read failure models the kernel dropping the
    // connection under us mid-request.
    LSD_FAILPOINT_HIT(server.read, read_fault);
    if (read_fault.action == failpoint::Action::kError) {
      CloseConnection(conn);
      return;
    }
    EnqueueRequest(conn, std::move(request));
  }
done:
  if (conn->paused) {
    conn->paused = false;
    paused_fds_.erase(conn->fd);
    paused_count_.store(paused_fds_.size(), std::memory_order_relaxed);
  }
  bool writable;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    writable = conn->out_pos < conn->out.size();
  }
  UpdateInterest(conn, true, writable);
}

bool LsdServer::EnqueueRequest(const ConnPtr& conn,
                               PendingRequest request) {
  bool schedule = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->dead || conn->close_after_out) return false;
    conn->pending.push_back(std::move(request));
    ++conn->inflight;
    if (!conn->scheduled) {
      conn->scheduled = true;
      schedule = true;
    }
  }
  queued_requests_.fetch_add(1);
  if (schedule) {
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      ready_.push_back(conn);
    }
    queue_cv_.notify_one();
  }
  return true;
}

void LsdServer::FlushOut(const ConnPtr& conn) {
  if (conn->fd < 0) return;
  bool close_now = false;
  bool want_write = false;
  bool draining;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    while (conn->out_pos < conn->out.size()) {
      // An outbound buffer flush is the reactor's write(2) site; the
      // blocking front end's failpoint semantics (drop the response,
      // hang up) live in the worker instead — see ExecuteOne.
      ssize_t n = ::write(conn->fd, conn->out.data() + conn->out_pos,
                          conn->out.size() - conn->out_pos);
      if (n > 0) {
        conn->out_pos += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        want_write = true;
        break;
      }
      close_now = true;  // peer reset
      break;
    }
    if (conn->out_pos >= conn->out.size()) {
      conn->out.clear();
      conn->out_pos = 0;
      if (conn->close_after_out && conn->inflight == 0 &&
          conn->pending.empty()) {
        close_now = true;
      }
    }
    draining = conn->close_after_out;
  }
  if (close_now) {
    CloseConnection(conn);
    return;
  }
  const bool readable = conn->session != nullptr && !conn->paused &&
                        !draining && !shutting_down_.load();
  UpdateInterest(conn, readable, want_write);
}

void LsdServer::UpdateInterest(const ConnPtr& conn, bool readable,
                               bool writable) {
  if (conn->fd < 0) return;
  uint32_t mask =
      (readable ? EPOLLIN : 0u) | (writable ? EPOLLOUT : 0u);
  if (mask == conn->interest) return;
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = mask;
  ev.data.fd = conn->fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev) == 0) {
    conn->interest = mask;
  }
}

void LsdServer::CloseConnection(const ConnPtr& conn) {
  if (conn->fd < 0) return;
  const int fd = conn->fd;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->dead = true;
    // Nobody is waiting for the answers anymore: cancel the request a
    // worker is executing right now (it unwinds at its next budget
    // check) and drop everything still queued, counting both as
    // disconnect cancellations.
    if (conn->active_budget != nullptr) {
      conn->active_budget->Cancel(CancelReason::kDisconnect);
    }
    if (!conn->pending.empty()) {
      governance_.CountCancel(CancelReason::kDisconnect,
                              conn->pending.size());
      queued_requests_.fetch_sub(conn->pending.size());
      conn->inflight -= conn->pending.size();
      conn->pending.clear();
    }
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  conn->fd = -1;
  conns_.erase(fd);
  paused_fds_.erase(fd);
  paused_count_.store(paused_fds_.size(), std::memory_order_relaxed);
  if (conn->session != nullptr) registry_.Remove(conn->session->id());
}

void LsdServer::DrainWakeList() {
  std::vector<ConnPtr> list;
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    list.swap(wake_list_);
  }
  for (const ConnPtr& conn : list) {
    if (conn->fd < 0) continue;
    FlushOut(conn);
  }
}

void LsdServer::ResumePaused() {
  if (paused_fds_.empty() || shutting_down_.load()) return;
  if (queued_requests_.load(std::memory_order_relaxed) >=
      options_.max_queued_requests) {
    return;
  }
  std::vector<int> fds(paused_fds_.begin(), paused_fds_.end());
  for (int fd : fds) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) {
      paused_fds_.erase(fd);
      paused_count_.store(paused_fds_.size(), std::memory_order_relaxed);
      continue;
    }
    ConnPtr conn = it->second;
    bool conn_full;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn_full = conn->inflight >= options_.max_inflight_per_connection;
    }
    if (conn_full) continue;
    conn->paused = false;
    paused_fds_.erase(fd);
    paused_count_.store(paused_fds_.size(), std::memory_order_relaxed);
    // Re-parse what is already buffered before re-arming the socket;
    // ParseRequests re-pauses if the caps fill again.
    ParseRequests(conn);
  }
}

void LsdServer::IdleSweep() {
  if (options_.io_timeout.count() <= 0 || shutting_down_.load()) return;
  const auto budget = options_.io_timeout * (options_.io_retries + 1);
  const auto now = Clock::now();
  std::vector<ConnPtr> idle;
  for (auto& [fd, conn] : conns_) {
    if (now - conn->last_read <= budget) continue;
    bool busy;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      busy = conn->inflight > 0 || !conn->pending.empty() ||
             conn->out_pos < conn->out.size() || conn->close_after_out;
    }
    if (!busy) idle.push_back(conn);
  }
  for (const ConnPtr& conn : idle) CloseConnection(conn);
}

// Overload monitor (reactor thread): flips the DEGRADED flag on the
// pending-queue depth with hysteresis — enter at >= 1/2
// max_queued_requests, leave at <= 1/4 — so the flag cannot flap at a
// single boundary. While DEGRADED, sessions shed requests whose planner
// cost estimate exceeds the shed threshold (see commands.cc); cheap
// requests keep flowing, which is what drains the queue.
void LsdServer::UpdateDegraded() {
  const size_t depth = queued_requests_.load(std::memory_order_relaxed);
  governance_.queue_depth.store(depth, std::memory_order_relaxed);
  const size_t enter = options_.max_queued_requests / 2;
  const size_t leave = options_.max_queued_requests / 4;
  if (!governance_.degraded.load(std::memory_order_relaxed)) {
    if (enter > 0 && depth >= enter) {
      governance_.degraded.store(true, std::memory_order_relaxed);
      governance_.degrade_entries.fetch_add(1, std::memory_order_relaxed);
    }
  } else if (depth <= leave) {
    governance_.degraded.store(false, std::memory_order_relaxed);
  }
}

bool LsdServer::Drained() {
  if (queued_requests_.load() != 0) return false;
  for (auto& [fd, conn] : conns_) {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->inflight > 0 || !conn->pending.empty() ||
        conn->out_pos < conn->out.size()) {
      return false;
    }
  }
  return true;
}

// ---- Workers -------------------------------------------------------------

void LsdServer::WorkerLoop() {
  for (;;) {
    ConnPtr conn;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [this] { return stop_workers_ || !ready_.empty(); });
      if (ready_.empty()) return;  // stop_workers_ and nothing left
      conn = std::move(ready_.front());
      ready_.pop_front();
    }
    // This worker owns the connection until its pending queue is
    // empty: per-session execution is serialized by construction.
    for (;;) {
      PendingRequest request;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        if (conn->dead || conn->pending.empty()) {
          conn->scheduled = false;
          break;
        }
        request = std::move(conn->pending.front());
        conn->pending.pop_front();
      }
      queued_requests_.fetch_sub(1);
      ExecuteOne(conn, std::move(request));
    }
    FlushFromWorker(conn);
  }
}

// Batch-end flush from the worker that just drained a connection's
// pending queue: one send() for the whole window of responses, skipping
// the reactor round trip entirely when the socket accepts the bytes.
// Safe because all out-buffer access and every send/write on the fd
// happens under conn->mu, and CloseConnection marks the connection dead
// under that lock before closing the fd. Anything the fast path cannot
// finish is handed back to the reactor: EAGAIN (EPOLLOUT arming), a
// write error or pending hangup (closes are reactor-owned), or any
// paused connection fleet-wide — finished requests may have freed
// queue/inflight budget, and only a reactor pass can re-arm those
// reads.
void LsdServer::FlushFromWorker(const ConnPtr& conn) {
  bool notify = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->dead) return;
    while (conn->out_pos < conn->out.size()) {
      ssize_t n = ::send(conn->fd, conn->out.data() + conn->out_pos,
                         conn->out.size() - conn->out_pos, MSG_NOSIGNAL);
      if (n > 0) {
        conn->out_pos += static_cast<size_t>(n);
        continue;
      }
      if (errno == EINTR) continue;
      notify = true;
      break;
    }
    if (!notify) {
      conn->out.clear();
      conn->out_pos = 0;
      if (conn->close_after_out) notify = true;
    }
  }
  if (notify || paused_count_.load(std::memory_order_relaxed) > 0) {
    NotifyReactor(conn);
  }
}

void LsdServer::ExecuteOne(const ConnPtr& conn, PendingRequest request) {
  if (!request.mutation &&
      (request.command == "quit" || request.command == "exit")) {
    // Trailing newline so binary clients (which get the payload raw,
    // not line-framed) print it like every Execute result.
    QueueResponse(conn, request, Status::OK(), "bye\n", /*hangup=*/true);
    return;
  }
  std::shared_ptr<ServerSession> session = conn->session;
  if (session == nullptr) {
    QueueResponse(conn, request,
                  Status::FailedPrecondition("server busy"), "",
                  /*hangup=*/true);
    return;
  }
  // Hard per-request deadline + step cap, enforced cooperatively: the
  // budget is threaded through every eval loop and the worker unwinds
  // with a typed error at the next check. Published under conn->mu so
  // CloseConnection can cancel it (kDisconnect) from the reactor.
  std::shared_ptr<QueryBudget> budget;
  if (options_.request_timeout.count() > 0 ||
      options_.max_steps_per_request > 0) {
    const auto deadline =
        options_.request_timeout.count() > 0
            ? QueryBudget::Clock::now() + options_.request_timeout
            : QueryBudget::Clock::time_point::max();
    budget = std::make_shared<QueryBudget>(deadline,
                                           options_.max_steps_per_request);
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->dead) {
      // The peer is already gone; let the request die at its first
      // budget check instead of running to completion for nobody.
      budget->Cancel(CancelReason::kDisconnect);
    } else {
      conn->active_budget = budget;
    }
  }
  session->set_request_budget(budget.get());
  auto start = Clock::now();
  StatusOr<std::string> result =
      request.mutation ? session->ExecuteBatchMutation(request.command)
                       : session->Execute(request.command);
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      Clock::now() - start);
  session->set_request_budget(nullptr);
  if (budget != nullptr) {
    session->AccumulateSteps(budget->steps());
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->active_budget.reset();
  }
  requests_served_.fetch_add(1);
  governance_.RecordElapsedMs(static_cast<uint64_t>(elapsed.count()));
  // A budget-typed failure counts under its cancel reason. Unlike the
  // old soft deadline there is no hangup: the worker unwound cleanly,
  // session state is intact, and cheap pipelined requests behind the
  // poisoned one still deserve their answers.
  if (!result.ok() && budget != nullptr && budget->cancelled() &&
      (result.status().IsDeadlineExceeded() ||
       result.status().IsCancelled() ||
       result.status().IsResourceExhausted())) {
    governance_.CountCancel(budget->cancel_reason());
  }
  // An injected write failure drops the response on the floor and
  // hangs up, exactly like a send-buffer error would: the client sees
  // a dead connection and must retry.
  LSD_FAILPOINT_HIT(server.write, write_fault);
  if (write_fault.action == failpoint::Action::kError) {
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      --conn->inflight;
      conn->close_after_out = true;
      if (!conn->pending.empty()) {
        queued_requests_.fetch_sub(conn->pending.size());
        conn->inflight -= conn->pending.size();
        conn->pending.clear();
      }
    }
    NotifyReactor(conn);
    return;
  }
  if (result.ok()) {
    QueueResponse(conn, request, Status::OK(), result.value(), false);
  } else {
    QueueResponse(conn, request, result.status(), "", false);
  }
}

void LsdServer::QueueResponse(const ConnPtr& conn,
                              const PendingRequest& request,
                              const Status& status,
                              std::string_view payload, bool hangup) {
  std::string frame;
  if (request.binary) {
    frame = EncodeFrame(status.ok() ? FrameType::kOk : FrameType::kErr,
                        request.id,
                        status.ok() ? payload
                                    : std::string_view(ErrorLine(status)));
  } else {
    frame = FrameResponse(status, payload);
  }
  // Queuing a response does not wake the reactor: the worker that owns
  // this connection flushes the whole batch itself when the pending
  // queue drains (FlushFromWorker), which batches a pipelined window's
  // responses into a single send(). Only the dead-connection
  // bookkeeping path notifies, so shutdown drain accounting never
  // waits on a flush that will not happen.
  bool notify = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    --conn->inflight;
    if (!conn->dead) {
      conn->out += frame;
      if (hangup) {
        conn->close_after_out = true;
        if (!conn->pending.empty()) {
          queued_requests_.fetch_sub(conn->pending.size());
          conn->inflight -= conn->pending.size();
          conn->pending.clear();
        }
      }
    } else {
      notify = true;
    }
  }
  if (notify) NotifyReactor(conn);
}

void LsdServer::NotifyReactor(const ConnPtr& conn) {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    wake_list_.push_back(conn);
  }
  uint64_t one = 1;
  (void)!::write(wake_fd_, &one, sizeof(one));
}

}  // namespace lsd
