#include "server/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace lsd {

namespace {

// First line of a (possibly multi-line) error message; newlines inside
// the status line would break the framing.
std::string FirstLine(const std::string& s) {
  size_t nl = s.find('\n');
  return nl == std::string::npos ? s : s.substr(0, nl);
}

}  // namespace

std::string FrameResponse(const Status& status, std::string_view payload) {
  std::string out;
  if (status.ok()) {
    out = "OK\n";
    size_t start = 0;
    while (start < payload.size()) {
      size_t nl = payload.find('\n', start);
      std::string_view line = nl == std::string_view::npos
                                  ? payload.substr(start)
                                  : payload.substr(start, nl - start);
      if (!line.empty() && line.front() == '.') out += '.';
      out.append(line);
      out += '\n';
      if (nl == std::string_view::npos) break;
      start = nl + 1;
    }
  } else {
    out = "ERR " + FirstLine(status.ToString()) + "\n";
  }
  out += ".\n";
  return out;
}

Status WriteAll(int fd, std::string_view data) {
  while (!data.empty()) {
    // MSG_NOSIGNAL: a peer hanging up mid-stream must surface as EPIPE
    // to the caller, not kill the process (the replication client and
    // shipper both live in-process with their tests and servers).
    ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) {
      n = ::write(fd, data.data(), data.size());
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("write failed: ") +
                             std::strerror(errno));
    }
    data.remove_prefix(static_cast<size_t>(n));
  }
  return Status::OK();
}

bool LineReader::ReadLine(std::string* line) {
  int idle_timeouts = 0;
  for (;;) {
    size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      *line = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      if (!line->empty() && line->back() == '\r') line->pop_back();
      return true;
    }
    char chunk[4096];
    ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;  // signal, not a peer problem
      // A receive timeout (SO_RCVTIMEO) mid-line is retryable: the
      // peer may just be writing slowly. Only consecutive timeouts
      // with zero progress count against the budget.
      if ((errno == EAGAIN || errno == EWOULDBLOCK) &&
          idle_timeouts < max_idle_timeouts_) {
        ++idle_timeouts;
        continue;
      }
      return false;
    }
    if (n == 0) return false;  // EOF
    idle_timeouts = 0;
    buf_.append(chunk, static_cast<size_t>(n));
  }
}

namespace {

inline void PutU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

inline void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v & 0xFFFFFFFFu));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

inline uint32_t GetU32(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

inline uint64_t GetU64(const unsigned char* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         (static_cast<uint64_t>(GetU32(p + 4)) << 32);
}

}  // namespace

std::string EncodeFrame(FrameType type, uint64_t request_id,
                        std::string_view payload) {
  std::string out;
  out.reserve(kBinaryHeaderSize + payload.size());
  out.push_back(static_cast<char>(kBinaryMagic0));
  out.push_back(static_cast<char>(kBinaryMagic1));
  out.push_back(static_cast<char>(kBinaryMagic2));
  out.push_back(static_cast<char>(kBinaryVersion));
  out.push_back(static_cast<char>(type));
  out.append(3, '\0');  // reserved
  PutU64(&out, request_id);
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  out.append(payload);
  return out;
}

void BinaryFrameParser::Feed(std::string_view data) {
  if (!error_.empty()) return;  // poisoned: framing is lost
  // Compact the consumed prefix before it dominates the buffer.
  if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > 64 * 1024)) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data);
}

BinaryFrameParser::Result BinaryFrameParser::Next(BinaryFrame* out) {
  if (!error_.empty()) return Result::kError;
  if (buf_.size() - pos_ < kBinaryHeaderSize) return Result::kNeedMore;
  const unsigned char* h =
      reinterpret_cast<const unsigned char*>(buf_.data()) + pos_;
  if (h[0] != kBinaryMagic0 || h[1] != kBinaryMagic1 ||
      h[2] != kBinaryMagic2) {
    error_ = "bad frame magic";
    return Result::kError;
  }
  if (h[3] != kBinaryVersion) {
    error_ = "unsupported frame version " + std::to_string(h[3]);
    return Result::kError;
  }
  if (h[4] > kMaxFrameType) {
    error_ = "unknown frame type " + std::to_string(h[4]);
    return Result::kError;
  }
  if (h[5] != 0 || h[6] != 0 || h[7] != 0) {
    error_ = "nonzero reserved header bytes";
    return Result::kError;
  }
  const uint32_t len = GetU32(h + 16);
  if (len > kMaxBinaryPayload) {
    error_ = "frame payload of " + std::to_string(len) +
             " bytes exceeds the " + std::to_string(kMaxBinaryPayload) +
             "-byte limit";
    return Result::kError;
  }
  if (buf_.size() - pos_ < kBinaryHeaderSize + len) return Result::kNeedMore;
  out->type = static_cast<FrameType>(h[4]);
  out->request_id = GetU64(h + 8);
  out->payload.assign(buf_, pos_ + kBinaryHeaderSize, len);
  pos_ += kBinaryHeaderSize + len;
  return Result::kFrame;
}

StatusOr<BinaryFrame> ReadFrame(int fd, BinaryFrameParser* parser) {
  for (;;) {
    BinaryFrame frame;
    switch (parser->Next(&frame)) {
      case BinaryFrameParser::Result::kFrame:
        return frame;
      case BinaryFrameParser::Result::kError:
        return Status::IoError("malformed frame: " + parser->error());
      case BinaryFrameParser::Result::kNeedMore:
        break;
    }
    char chunk[4096];
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("read failed: ") +
                             std::strerror(errno));
    }
    if (n == 0) return Status::IoError("connection closed mid-frame");
    parser->Feed(std::string_view(chunk, static_cast<size_t>(n)));
  }
}

std::string EncodeMutationPayload(const std::vector<MutationOp>& ops) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(ops.size()));
  for (const MutationOp& op : ops) {
    out.push_back(op.retract ? '\x02' : '\x01');
    for (const std::string* field :
         {&op.source, &op.relationship, &op.target}) {
      PutU32(&out, static_cast<uint32_t>(field->size()));
      out.append(*field);
    }
  }
  return out;
}

Status DecodeMutationPayload(std::string_view payload,
                             std::vector<MutationOp>* out) {
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(payload.data());
  size_t pos = 0;
  auto remaining = [&] { return payload.size() - pos; };
  if (remaining() < 4) {
    return Status::InvalidArgument("mutation payload shorter than its count");
  }
  const uint32_t count = GetU32(p + pos);
  pos += 4;
  out->clear();
  out->reserve(std::min<uint32_t>(count, 4096));
  for (uint32_t i = 0; i < count; ++i) {
    if (remaining() < 1) {
      return Status::InvalidArgument("mutation payload truncated at op " +
                                     std::to_string(i));
    }
    const uint8_t op = p[pos++];
    if (op != 1 && op != 2) {
      return Status::InvalidArgument("unknown mutation opcode " +
                                     std::to_string(op));
    }
    MutationOp parsed;
    parsed.retract = (op == 2);
    for (std::string* field :
         {&parsed.source, &parsed.relationship, &parsed.target}) {
      if (remaining() < 4) {
        return Status::InvalidArgument("mutation payload truncated at op " +
                                       std::to_string(i));
      }
      const uint32_t len = GetU32(p + pos);
      pos += 4;
      if (remaining() < len) {
        return Status::InvalidArgument("mutation field length " +
                                       std::to_string(len) +
                                       " runs past the payload");
      }
      field->assign(payload.data() + pos, len);
      pos += len;
    }
    out->push_back(std::move(parsed));
  }
  if (pos != payload.size()) {
    return Status::InvalidArgument("trailing bytes after mutation " +
                                   std::to_string(count));
  }
  return Status::OK();
}

StatusOr<WireResponse> ReadResponse(LineReader* reader) {
  WireResponse response;
  std::string line;
  if (!reader->ReadLine(&line)) {
    return Status::IoError("connection closed before response");
  }
  if (line == "OK") {
    response.ok = true;
  } else if (line.rfind("ERR ", 0) == 0) {
    response.ok = false;
    response.error = line.substr(4);
  } else {
    return Status::IoError("malformed response status line: " + line);
  }
  for (;;) {
    if (!reader->ReadLine(&line)) {
      return Status::IoError("connection closed mid-response");
    }
    if (line == ".") break;
    if (!line.empty() && line.front() == '.') line.erase(0, 1);
    response.payload += line;
    response.payload += '\n';
  }
  return response;
}

}  // namespace lsd
