#include "server/protocol.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace lsd {

namespace {

// First line of a (possibly multi-line) error message; newlines inside
// the status line would break the framing.
std::string FirstLine(const std::string& s) {
  size_t nl = s.find('\n');
  return nl == std::string::npos ? s : s.substr(0, nl);
}

}  // namespace

std::string FrameResponse(const Status& status, std::string_view payload) {
  std::string out;
  if (status.ok()) {
    out = "OK\n";
    size_t start = 0;
    while (start < payload.size()) {
      size_t nl = payload.find('\n', start);
      std::string_view line = nl == std::string_view::npos
                                  ? payload.substr(start)
                                  : payload.substr(start, nl - start);
      if (!line.empty() && line.front() == '.') out += '.';
      out.append(line);
      out += '\n';
      if (nl == std::string_view::npos) break;
      start = nl + 1;
    }
  } else {
    out = "ERR " + FirstLine(status.ToString()) + "\n";
  }
  out += ".\n";
  return out;
}

Status WriteAll(int fd, std::string_view data) {
  while (!data.empty()) {
    ssize_t n = ::write(fd, data.data(), data.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("write failed: ") +
                             std::strerror(errno));
    }
    data.remove_prefix(static_cast<size_t>(n));
  }
  return Status::OK();
}

bool LineReader::ReadLine(std::string* line) {
  int idle_timeouts = 0;
  for (;;) {
    size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      *line = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      if (!line->empty() && line->back() == '\r') line->pop_back();
      return true;
    }
    char chunk[4096];
    ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;  // signal, not a peer problem
      // A receive timeout (SO_RCVTIMEO) mid-line is retryable: the
      // peer may just be writing slowly. Only consecutive timeouts
      // with zero progress count against the budget.
      if ((errno == EAGAIN || errno == EWOULDBLOCK) &&
          idle_timeouts < max_idle_timeouts_) {
        ++idle_timeouts;
        continue;
      }
      return false;
    }
    if (n == 0) return false;  // EOF
    idle_timeouts = 0;
    buf_.append(chunk, static_cast<size_t>(n));
  }
}

StatusOr<WireResponse> ReadResponse(LineReader* reader) {
  WireResponse response;
  std::string line;
  if (!reader->ReadLine(&line)) {
    return Status::IoError("connection closed before response");
  }
  if (line == "OK") {
    response.ok = true;
  } else if (line.rfind("ERR ", 0) == 0) {
    response.ok = false;
    response.error = line.substr(4);
  } else {
    return Status::IoError("malformed response status line: " + line);
  }
  for (;;) {
    if (!reader->ReadLine(&line)) {
      return Status::IoError("connection closed mid-response");
    }
    if (line == ".") break;
    if (!line.empty() && line.front() == '.') line.erase(0, 1);
    response.payload += line;
    response.payload += '\n';
  }
  return response;
}

}  // namespace lsd
