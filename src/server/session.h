// A server-side browsing session: one connected client's private state
// over the shared store. Everything the paper makes interactive and
// per-user lives here — the navigation trail (Sec 4.1) and hypothetical
// retractions (Sec 5.2's "browsing by probing" without touching the
// database) — while asserts, retracts and rule changes go through the
// SharedStore commit path and become visible to every session.
//
// Hypothetical mutations form the session-local *overlay*: a list of
// retractions/assertions that exist only for this session. While the
// overlay is non-empty, the session reads through a private
// materialization — a clone of the pinned epoch with the overlay
// applied, closure recomputed — so the hypothesis propagates through
// inference exactly as a real mutation would, yet no other session can
// observe it. An empty overlay reads the shared epoch directly (the
// fast path: shared closure, lattice, and plan cache).
//
// Thread model: a session is owned by one connection and accessed by
// one thread at a time; different sessions run fully in parallel.
#ifndef LSD_SERVER_SESSION_H_
#define LSD_SERVER_SESSION_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "server/governance.h"
#include "server/protocol.h"
#include "server/shared_store.h"
#include "util/budget.h"
#include "util/status.h"

namespace lsd {

// A fact as the client spelled it; resolved against an epoch on use.
// Names, not ids: ids are only stable within one epoch's entity table.
struct NamedFact {
  std::string source, relationship, target;
};

class SessionRegistry;
class ReplicationMonitor;

class ServerSession {
 public:
  ServerSession(uint64_t id, SharedStore* store)
      : id_(id), store_(store) {}

  ServerSession(const ServerSession&) = delete;
  ServerSession& operator=(const ServerSession&) = delete;

  uint64_t id() const { return id_; }

  // Lets STATS report the session census; set by SessionRegistry.
  void set_registry(const SessionRegistry* registry) {
    registry_ = registry;
  }

  // Marks this session as serving on a read-only follower: mutations
  // are rejected ("read-only follower"), reads gate on the monitor's
  // staleness bound ("ERR stale" past it), and stats grows a
  // replication block. Null (the default) means primary semantics.
  void set_replication(const ReplicationMonitor* replication) {
    replication_ = replication;
  }

  // Shared governance state (overload flag, shed threshold, counters);
  // set by SessionRegistry like the registry pointer. Null means
  // ungoverned (library/test use).
  void set_governance(GovernanceState* governance) {
    governance_ = governance;
  }

  // The budget of the request currently executing, set by the worker
  // around Execute()/ExecuteBatchMutation() and cleared after. Threaded
  // into every read verb's eval options and checked before any commit
  // slot enqueues; also governs the session-private overlay's lazy
  // closure rebuild (see Pin()).
  void set_request_budget(const QueryBudget* budget) {
    budget_ = budget;
    if (overlay_db_ != nullptr) overlay_db_->set_read_budget(budget);
  }

  // Folds one finished request's charged steps into the session's
  // cumulative tally (per-session budgets; see
  // ServerOptions::session_step_budget).
  void AccumulateSteps(uint64_t steps) { steps_used_ += steps; }
  uint64_t steps_used() const { return steps_used_; }

  // Executes one command line (the lsd_shell grammar plus the server
  // verbs: hypo, session, ping) and returns the rendered output. An
  // error Status carries the message the protocol layer reports as ERR.
  StatusOr<std::string> Execute(std::string_view line);

  // Executes the payload of a binary kMutation frame: decodes the
  // batch and lands every op in ONE group-commit slot (one clone, one
  // WAL fsync, one epoch shared with the rest of the group). Returns
  // the added/present/removed/missing tally, or InvalidArgument for a
  // malformed payload (nothing mutates).
  StatusOr<std::string> ExecuteBatchMutation(std::string_view payload);

  uint64_t requests() const { return requests_; }
  size_t overlay_size() const {
    return hypo_retracts_.size() + hypo_asserts_.size();
  }

  // The epoch serving this session's current request (after the overlay
  // is applied this is the overlay's base). Exposed for tests.
  uint64_t last_epoch_sequence() const { return last_epoch_sequence_; }

 private:
  // The database this request reads: the pinned shared epoch, or the
  // session's private overlay materialization. `epoch` keeps the base
  // alive either way.
  struct PinnedDb {
    EpochPtr epoch;
    LooseDb* db = nullptr;
    bool overlaid = false;
  };
  StatusOr<PinnedDb> Pin();

  // Last budget check before a mutation enqueues its commit slot (the
  // point of no return — after enqueue, a cancel waits for the ack).
  Status CheckBudget() const {
    return budget_ == nullptr ? Status::OK() : budget_->Check();
  }
  // Planner-style cost estimate (candidate enumerations) for the shed
  // decision; computed against the shared snapshot, never the overlay.
  uint64_t EstimateCost(const std::string& cmd, const std::string& rest);

  // Command handlers (commands.cc).
  StatusOr<std::string> CommitMutations(const std::vector<MutationOp>& ops);
  StatusOr<std::string> ExecuteHypo(std::string_view rest);
  StatusOr<std::string> ExecuteVisit(const std::string& entity);
  StatusOr<std::string> ExecuteBackForward(bool back);
  StatusOr<std::string> RenderStats();
  std::string Breadcrumbs() const;

  uint64_t id_;
  SharedStore* store_;
  const SessionRegistry* registry_ = nullptr;
  const ReplicationMonitor* replication_ = nullptr;
  GovernanceState* governance_ = nullptr;
  const QueryBudget* budget_ = nullptr;  // current request's, or null
  uint64_t steps_used_ = 0;  // cumulative charged steps, all requests
  uint64_t requests_ = 0;
  uint64_t last_epoch_sequence_ = 0;

  // Session-local hypothetical overlay.
  std::vector<NamedFact> hypo_retracts_;
  std::vector<NamedFact> hypo_asserts_;
  uint64_t overlay_version_ = 0;  // bumped on any hypo change

  // Materialized overlay cache, keyed by (epoch sequence, overlay
  // version); rebuilt when either moves.
  std::unique_ptr<LooseDb> overlay_db_;
  uint64_t overlay_epoch_sequence_ = 0;
  uint64_t overlay_built_version_ = 0;

  // Navigation trail (Sec 4.1), as entity names.
  std::vector<std::string> trail_;
  size_t trail_pos_ = 0;

  // Session-local limit(n): one browser's composition bound must not
  // change another's.
  int composition_limit_ = -1;  // -1 = inherit the epoch's
};

// The registry of live sessions — the server's admission bookkeeping
// and the STATS verb's census. Thread-safe.
class SessionRegistry {
 public:
  explicit SessionRegistry(SharedStore* store) : store_(store) {}

  // Follower mode: every session created from here on carries the
  // monitor (see ServerSession::set_replication). Set before Start().
  void set_replication(const ReplicationMonitor* replication) {
    replication_ = replication;
  }

  // Governance plumbing: every session created from here on shares the
  // server's overload/cancellation state. Set before Start().
  void set_governance(GovernanceState* governance) {
    governance_ = governance;
  }

  // Creates a session or returns null if `max_sessions` are live
  // (admission control; the caller reports backpressure to the client).
  std::shared_ptr<ServerSession> Create(size_t max_sessions);
  void Remove(uint64_t id);

  size_t live() const;
  uint64_t total_created() const;

 private:
  SharedStore* store_;
  const ReplicationMonitor* replication_ = nullptr;
  GovernanceState* governance_ = nullptr;
  mutable std::mutex mu_;
  std::map<uint64_t, std::shared_ptr<ServerSession>> sessions_;
  uint64_t next_id_ = 1;
};

}  // namespace lsd

#endif  // LSD_SERVER_SESSION_H_
