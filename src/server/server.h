// The TCP front end: an epoll reactor plus a small worker pool serving
// the lsd wire protocols over a SharedStore.
//
// One reactor thread owns every socket: it accepts nonblockingly,
// reads request bytes, parses them (text lines or binary frames — the
// first byte a connection sends picks its mode), and queues parsed
// requests onto a bounded MPMC run queue drained by `worker_threads`
// workers. Workers execute requests against the connection's session —
// one connection is owned by at most one worker at a time, so session
// state needs no locking — and append responses to the connection's
// outbound buffer; the reactor flushes those buffers, re-arming
// EPOLLOUT while a partial write is pending. Total threads are
// O(workers), independent of the session count, which is what lets one
// process hold thousands of mostly-idle browsing sessions.
//
// Backpressure is flow control, not errors: when a connection exceeds
// its in-flight request cap, or the global pending queue is full, the
// reactor simply stops reading from the offending sockets (EPOLLIN
// de-armed) until requests drain — the kernel's TCP window then pushes
// back on the client. Admission (`max_sessions`) still bounds live
// sessions: surplus connections are greeted with "ERR server busy" and
// closed, which is what lsd_client's backoff-and-retry keys on.
#ifndef LSD_SERVER_SERVER_H_
#define LSD_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "server/governance.h"
#include "server/protocol.h"
#include "server/session.h"
#include "server/shared_store.h"
#include "util/budget.h"
#include "util/status.h"

namespace lsd {

struct ServerOptions {
  // 0 picks an ephemeral port; read it back with port() after Start().
  uint16_t port = 0;
  // Admission bound: concurrent sessions beyond this are rejected with
  // "ERR server busy" at connect time. The reactor makes sessions cost
  // a few kilobytes instead of an OS thread, so the default is sized
  // for thousands of browsers, not dozens.
  size_t max_sessions = 4096;
  int listen_backlog = 1024;
  // Hard per-request execution deadline; 0 disables. Enforced
  // cooperatively via a QueryBudget threaded through every long eval
  // loop: the worker unwinds with a typed "DeadlineExceeded" error,
  // session state (trail, overlay) is untouched, and — unlike the old
  // soft deadline — the connection stays open, so cheap pipelined
  // requests behind a poisoned one still get served.
  std::chrono::milliseconds request_timeout{10'000};
  // Per-request step cap charged through the same budget (0 =
  // unlimited): total facts enumerated/joined across all eval loops.
  uint64_t max_steps_per_request = 0;
  // Cumulative step allowance for one session's whole lifetime (0 =
  // unlimited). Spent sessions get typed budget errors on reads/writes.
  uint64_t session_step_budget = 0;
  // While DEGRADED (pending queue >= 1/2 max_queued_requests, with
  // hysteresis), requests whose planner cost estimate exceeds this are
  // shed with a typed error; cheap probes keep flowing.
  uint64_t shed_cost_threshold = 1 << 16;
  // Idle receive budget: a connection that sends no bytes for
  // io_timeout * (io_retries + 1) while nothing of its is queued or
  // executing is declared dead and closed. 0 disables. (The two-knob
  // shape is kept from the blocking front end: io_timeout is the poll
  // granularity, io_retries the zero-progress tolerance; any received
  // byte resets the budget.)
  //
  // Default 15s * (4+1) = 75s idle allowance. Non-zero by default
  // because an idle-connection flood would otherwise hold all
  // max_sessions admission slots forever; the trade-off is that a
  // genuinely quiet interactive browser is disconnected after ~75
  // silent seconds and must reconnect (lsd_client retries transparently
  // but loses session-local state: trail, hypotheticals, limit). Deploy
  // with 0 only behind a front end that polices idleness itself.
  std::chrono::milliseconds io_timeout{15'000};
  int io_retries = 4;
  // Worker pool size; 0 means hardware_concurrency (min 1).
  size_t worker_threads = 0;
  // Bounded global pending-request queue: requests parsed but not yet
  // executed. When full, the reactor pauses reading instead of
  // erroring established sessions.
  size_t max_queued_requests = 1024;
  // Per-connection in-flight cap: parsed-but-unanswered requests one
  // connection may have (its effective pipeline window server-side).
  size_t max_inflight_per_connection = 64;
  // A text request line longer than this is a protocol error.
  size_t max_text_line_bytes = 1 << 20;
  // How long Stop() lets in-flight requests drain and responses flush
  // before closing connections that are still busy.
  std::chrono::milliseconds shutdown_drain{5'000};
  // Non-null turns this into a read-only follower front end: sessions
  // reject mutations and gate reads on the monitor's staleness bound
  // (lsd_serve --follow). Must outlive the server.
  const ReplicationMonitor* replication = nullptr;
};

class LsdServer {
 public:
  LsdServer(SharedStore* store, const ServerOptions& options);
  ~LsdServer();

  LsdServer(const LsdServer&) = delete;
  LsdServer& operator=(const LsdServer&) = delete;

  // Binds, listens, and starts the reactor and worker threads.
  Status Start();
  // Stops accepting, drains in-flight requests (bounded by
  // shutdown_drain), closes every connection, and joins all threads.
  // Safe to call twice; the destructor calls it.
  void Stop();

  // The bound port (after Start()).
  uint16_t port() const { return port_; }

  const SessionRegistry& registry() const { return registry_; }
  // Overload / cancellation observability (also folded into STATS).
  const GovernanceState& governance() const { return governance_; }
  uint64_t requests_served() const { return requests_served_.load(); }
  uint64_t rejected_connections() const { return rejected_.load(); }
  size_t worker_count() const { return workers_.size(); }
  // Connections currently paused for backpressure (observability).
  uint64_t reads_paused() const { return reads_paused_.load(); }

 private:
  // One parsed request waiting for (or undergoing) execution.
  struct PendingRequest {
    uint64_t id = 0;  // binary request id; unused in text mode
    bool binary = false;
    bool mutation = false;  // kMutation frame: command is a batch payload
    std::string command;
  };

  // All state of one client connection. The reactor owns the fd and
  // the parse-side fields; `mu` guards everything workers touch.
  struct Connection {
    int fd = -1;
    std::shared_ptr<ServerSession> session;  // null: busy-rejected

    enum class Mode { kUnknown, kText, kBinary };
    Mode mode = Mode::kUnknown;
    std::string in_buf;         // text-mode partial line buffer
    BinaryFrameParser parser;   // binary-mode incremental decoder
    std::chrono::steady_clock::time_point last_read;
    uint32_t interest = 0;      // currently registered epoll events
    bool paused = false;        // EPOLLIN de-armed for backpressure

    std::mutex mu;
    std::deque<PendingRequest> pending;
    bool scheduled = false;     // queued for / owned by a worker
    size_t inflight = 0;        // pending + currently executing
    // The budget of the request this connection is executing right now;
    // CloseConnection cancels it (kDisconnect) so a dead peer's query
    // stops burning a worker.
    std::shared_ptr<QueryBudget> active_budget;
    std::string out;            // response bytes awaiting write
    size_t out_pos = 0;
    bool close_after_out = false;  // hang up once `out` drains
    bool dead = false;          // fd closed; workers discard results
  };
  using ConnPtr = std::shared_ptr<Connection>;

  void ReactorLoop();
  void WorkerLoop();

  // Reactor-side helpers (reactor thread only unless noted).
  void AcceptNew();
  void HandleReadable(const ConnPtr& conn);
  void ParseRequests(const ConnPtr& conn);
  bool EnqueueRequest(const ConnPtr& conn, PendingRequest request);
  void FlushOut(const ConnPtr& conn);
  void FlushFromWorker(const ConnPtr& conn);
  void UpdateInterest(const ConnPtr& conn, bool readable, bool writable);
  void CloseConnection(const ConnPtr& conn);
  void DrainWakeList();
  void ResumePaused();
  void IdleSweep();
  void UpdateDegraded();
  bool Drained();

  // Worker-side helpers.
  void ExecuteOne(const ConnPtr& conn, PendingRequest request);
  void QueueResponse(const ConnPtr& conn, const PendingRequest& request,
                     const Status& status, std::string_view payload,
                     bool hangup);
  void NotifyReactor(const ConnPtr& conn);

  SharedStore* store_;
  ServerOptions options_;
  SessionRegistry registry_;
  GovernanceState governance_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: workers and Stop() wake the reactor
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> shutting_down_{false};

  std::thread reactor_;
  std::vector<std::thread> workers_;

  // Reactor-owned connection table, keyed by fd.
  std::unordered_map<int, ConnPtr> conns_;
  std::unordered_set<int> paused_fds_;

  // The bounded MPMC run queue: connections with pending requests,
  // each present at most once (Connection::scheduled).
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<ConnPtr> ready_;
  bool stop_workers_ = false;

  // Connections whose output/accounting changed on a worker thread and
  // need reactor attention (flush, close, un-pause).
  std::mutex wake_mu_;
  std::vector<ConnPtr> wake_list_;

  // Requests admitted (parsed into a pending queue) but not yet popped
  // by a worker — the global backpressure gauge.
  std::atomic<size_t> queued_requests_{0};

  // Mirror of paused_fds_.size() (reactor-owned set), readable from
  // workers: a batch-end flush must wake the reactor whenever any
  // connection sits paused, since finishing requests frees the budget
  // that lets ResumePaused re-arm those reads.
  std::atomic<size_t> paused_count_{0};

  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> reads_paused_{0};
};

}  // namespace lsd

#endif  // LSD_SERVER_SERVER_H_
