// The TCP front end: thread-per-connection serving of the lsd wire
// protocol over a SharedStore. Each accepted connection owns one
// ServerSession; admission is bounded (connections beyond max_sessions
// are greeted with "ERR server busy" and closed — backpressure, not
// queueing), socket IO can carry an idle timeout, and each request has
// a soft execution deadline after which the connection is dropped
// (runaway-query protection: the reply is still correct, but a client
// that exceeds the budget loses its session).
#ifndef LSD_SERVER_SERVER_H_
#define LSD_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "server/session.h"
#include "server/shared_store.h"
#include "util/status.h"

namespace lsd {

struct ServerOptions {
  // 0 picks an ephemeral port; read it back with port() after Start().
  uint16_t port = 0;
  // Admission bound: concurrent sessions beyond this are rejected with
  // "ERR server busy" at connect time.
  size_t max_sessions = 64;
  int listen_backlog = 64;
  // Soft per-request execution deadline; 0 disables. A request that
  // overruns still gets its (late) reply, then the connection closes.
  std::chrono::milliseconds request_timeout{10'000};
  // SO_RCVTIMEO/SO_SNDTIMEO on client sockets; 0 disables. Bounds how
  // long an idle or stalled client can pin a connection thread.
  std::chrono::milliseconds io_timeout{0};
  // How many consecutive zero-progress receive timeouts to tolerate
  // before declaring the client gone (so io_timeout becomes a poll
  // granularity, not a hard per-line deadline; any received byte
  // resets the count). The effective idle budget per request line is
  // io_timeout * (io_retries + 1).
  int io_retries = 4;
};

class LsdServer {
 public:
  LsdServer(SharedStore* store, const ServerOptions& options);
  ~LsdServer();

  LsdServer(const LsdServer&) = delete;
  LsdServer& operator=(const LsdServer&) = delete;

  // Binds, listens, and starts the acceptor thread.
  Status Start();
  // Stops accepting, unblocks and joins every connection thread. Safe
  // to call twice; the destructor calls it.
  void Stop();

  // The bound port (after Start()).
  uint16_t port() const { return port_; }

  const SessionRegistry& registry() const { return registry_; }
  uint64_t requests_served() const { return requests_served_.load(); }
  uint64_t rejected_connections() const { return rejected_.load(); }

 private:
  void AcceptLoop();
  void HandleConnection(int fd, uint64_t conn_id);
  void ReapFinished();

  SharedStore* store_;
  ServerOptions options_;
  SessionRegistry registry_;

  // Atomic because Stop() clears it from another thread while the
  // acceptor is blocked in accept() on it.
  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread acceptor_;

  std::mutex conn_mu_;
  std::unordered_map<uint64_t, std::thread> connections_;
  std::unordered_map<uint64_t, int> open_fds_;
  std::vector<uint64_t> finished_;
  uint64_t next_conn_id_ = 1;

  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> rejected_{0};
};

}  // namespace lsd

#endif  // LSD_SERVER_SERVER_H_
