#include "server/shared_store.h"

#include <algorithm>
#include <chrono>

#include "util/failpoint.h"

namespace lsd {

SharedStore::SharedStore(const LooseDbOptions& options)
    : options_(options) {
  auto db = std::make_unique<LooseDb>(options_);
  // An empty closure always computes; ignore the (impossible) failure
  // rather than throw from a constructor.
  (void)db->Warm();
  published_ = std::make_shared<const Epoch>(std::move(db), 0);
}

SharedStore::~SharedStore() { StopCompaction(); }

Status SharedStore::OpenDurable(const std::string& path_prefix,
                                const SharedStoreDurability& durability) {
  if (wal_.is_open()) {
    return Status::FailedPrecondition("store is already durable");
  }
  // Recover into a fresh bootstrap epoch. The epoch must never own the
  // log (epochs are immutable and short-lived; the store outlives them
  // all), so recovery runs attach-less and the store opens the Wal
  // itself at the recovered generation.
  auto db = std::make_unique<LooseDb>(options_);
  LSD_RETURN_IF_ERROR(db->Recover(path_prefix));
  last_recovery_ = db->last_recovery();
  LSD_RETURN_IF_ERROR(db->Warm());
  save_prefix_ = path_prefix;
  checkpoint_bytes_ = durability.checkpoint_bytes;
  WalOptions wal_options{durability.sync, durability.segment_bytes};
  // Open the log BEFORE publishing, so the bootstrap epoch carries the
  // recovered durable position (replication's shipping watermark).
  LSD_RETURN_IF_ERROR(wal_.Open(path_prefix + ".wal", wal_options,
                                last_recovery_.generation));
  {
    std::unique_lock<std::shared_mutex> tip_lock(tip_mu_);
    published_ = std::make_shared<const Epoch>(std::move(db), 0, NowMs(),
                                               wal_.durable_position());
  }
  return Status::OK();
}

uint64_t SharedStore::NowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

StatusOr<EpochPtr> SharedStore::ReplaceTip(std::unique_ptr<LooseDb> db,
                                           const WalPosition& wal_pos) {
  LSD_RETURN_IF_ERROR(db->Warm());
  std::unique_lock<std::shared_mutex> tip_lock(tip_mu_);
  auto epoch = std::make_shared<const Epoch>(
      std::move(db), published_->sequence() + 1, NowMs(), wal_pos);
  published_ = epoch;
  return EpochPtr(epoch);
}

StatusOr<EpochPtr> SharedStore::Commit(
    const std::function<Status(LooseDb&)>& mutate) {
  // Writer backpressure: when the tip's segment backlog runs far ahead
  // of the merger, slow this writer down before it enqueues — never a
  // reader, which pins whatever epoch is already published.
  if (compactor_ != nullptr) {
    compactor_->MaybeBackpressure(SampleShape());
  }
  return CommitInternal(mutate);
}

StatusOr<EpochPtr> SharedStore::CommitInternal(
    const std::function<Status(LooseDb&)>& mutate) {
  // A failure here models the commit dying before any work: readers
  // keep the old tip, nothing is half-published, no slot is enqueued.
  LSD_FAILPOINT_RETURN_IF_SET(store.commit.begin);

  CommitSlot slot;
  slot.mutate = &mutate;
  std::unique_lock<std::mutex> lock(queue_mu_);
  queue_.push_back(&slot);
  if (leader_active_) {
    // Follower: a leader is already draining the queue and will pick
    // this slot up in its next group. Wait for the verdict; the leader
    // writes result/epoch before setting done under queue_mu_, so the
    // reads below are ordered.
    queue_cv_.wait(lock, [&slot] { return slot.done; });
  } else {
    // Leader: drain groups until the queue is empty, then abdicate.
    // The first group contains our own slot; later groups are slots
    // that arrived while we worked.
    leader_active_ = true;
    while (!queue_.empty()) {
      std::vector<CommitSlot*> group(queue_.begin(), queue_.end());
      queue_.clear();
      lock.unlock();
      ProcessGroup(group);
      lock.lock();
      for (CommitSlot* s : group) s->done = true;
      queue_cv_.notify_all();
    }
    leader_active_ = false;
  }
  lock.unlock();

  if (!slot.result.ok()) return slot.result;
  return slot.epoch;
}

bool SharedStore::ApplySlots(std::vector<CommitSlot*>* slots,
                             std::unique_ptr<LooseDb>* out_db,
                             std::vector<WalRecord>* out_records,
                             EpochPtr* out_tip) {
  EpochPtr tip = snapshot();

  // Clone the tip into a private working copy — ONCE for the whole
  // group. The clone must start with clean containers; the tip's facts
  // already include any standard seed facts, so the copy skips
  // re-seeding.
  LooseDbOptions clone_options = options_;
  clone_options.standard_rules = false;
  auto next = std::make_unique<LooseDb>(clone_options);
  Status cloned = tip->db().CloneInto(next.get());
  if (!cloned.ok()) {
    // Environmental, not a slot's fault: the whole group fails.
    for (CommitSlot* s : *slots) s->result = cloned;
    slots->clear();
    return false;
  }

  out_records->clear();
  if (wal_.is_open()) next->set_mutation_capture(out_records);
  for (size_t i = 0; i < slots->size(); ++i) {
    Status applied = (*(*slots)[i]->mutate)(*next);
    if (!applied.ok()) {
      // The clone may hold this slot's partial mutations (and its WAL
      // records); poison only the slot, then replay the survivors on a
      // fresh clone so each still gets all-or-nothing semantics.
      (*slots)[i]->result = applied;
      slots->erase(slots->begin() + i);
      next->set_mutation_capture(nullptr);
      return false;
    }
  }
  next->set_mutation_capture(nullptr);

  *out_db = std::move(next);
  *out_tip = std::move(tip);
  return true;
}

void SharedStore::ProcessGroup(std::vector<CommitSlot*> group) {
  const uint64_t group_size = group.size();
  groups_.fetch_add(1, std::memory_order_relaxed);
  if (group_size > max_group_.load(std::memory_order_relaxed)) {
    max_group_.store(group_size, std::memory_order_relaxed);
  }

  // `group` shrinks as slots fail; each shrink replays the remainder
  // on a fresh clone (failures are rare — the common path clones once).
  std::unique_ptr<LooseDb> next;
  std::vector<WalRecord> records;
  EpochPtr tip;
  while (!group.empty()) {
    if (ApplySlots(&group, &next, &records, &tip)) break;
  }
  slots_rejected_.fetch_add(group_size - group.size(),
                            std::memory_order_relaxed);
  if (group.empty()) return;  // every slot failed; results already set

  // No-op group: nothing to log, warm, or publish. A compaction-only
  // group changes no logical content but DOES bump the storage
  // generation — it must still publish, or the merged tiers would be
  // lost with the clone.
  const bool logical_noop =
      next->store_version() == tip->db().store_version() &&
      next->rules_version() == tip->db().rules_version() &&
      next->definitions().all().size() ==
          tip->db().definitions().all().size();
  if (logical_noop &&
      next->storage_generation() == tip->db().storage_generation()) {
    for (CommitSlot* s : group) {
      s->result = Status::OK();
      s->epoch = tip;
    }
    slots_acked_.fetch_add(group.size(), std::memory_order_relaxed);
    return;
  }

  // Publish barrier: materialize every cache before readers can see the
  // epoch, so their const reads never write. A crash or failure
  // injected here proves the mutated clone is invisible until the
  // published_ swap below.
  LSD_FAILPOINT_HIT(store.commit.publish, fp_publish);
  Status publish = fp_publish.action == failpoint::Action::kError
                       ? Status::IoError("injected commit-publish failure")
                       : next->Warm();

  // Durability barrier: the whole group's records under one
  // fflush+fsync. Only after AppendBatch returns may any follower be
  // acked; a failure (or crash) here fails the group wholesale and
  // publishes nothing — no client ever saw these writes.
  if (publish.ok() && wal_.is_open()) {
    publish = wal_.AppendBatch(records);
    if (!publish.ok()) {
      std::lock_guard<std::mutex> error_lock(wal_error_mu_);
      if (wal_error_.ok()) wal_error_ = publish;
    }
  }
  if (!publish.ok()) {
    for (CommitSlot* s : group) s->result = publish;
    return;
  }

  // Stamp the epoch with NOW and with the log's durable position: the
  // AppendBatch above has returned, so every byte at or below this
  // position is both fsynced and folded into `next`. The shipper reads
  // these stamps off the tip.
  const WalPosition wal_pos =
      wal_.is_open() ? wal_.durable_position() : WalPosition{};
  auto epoch = std::make_shared<const Epoch>(
      std::move(next), tip->sequence() + 1, NowMs(), wal_pos);
  {
    std::unique_lock<std::shared_mutex> tip_lock(tip_mu_);
    // A logical no-op (compaction-only) publish must not clobber a tip
    // that changed under it: on a follower, ReplaceTip (snapshot resync)
    // bypasses the commit queue, and publishing a clone of the
    // pre-replace tip would silently undo the replacement. Logical
    // groups cannot race this way (followers are single-writer), so
    // only the storage-only publish pays the check; the compactor
    // simply retries against the new tip.
    if (logical_noop && published_ != tip) {
      tip_lock.unlock();
      for (CommitSlot* s : group) {
        s->result = Status::Aborted(
            "tip replaced during a storage-only publish");
      }
      slots_rejected_.fetch_add(group.size(), std::memory_order_relaxed);
      return;
    }
    published_ = epoch;
  }
  commits_.fetch_add(1);
  slots_acked_.fetch_add(group.size(), std::memory_order_relaxed);
  for (CommitSlot* s : group) {
    s->result = Status::OK();
    s->epoch = epoch;
  }
  if (compactor_ != nullptr) compactor_->Notify();
  MaybeCheckpoint(epoch);
}

void SharedStore::MaybeCheckpoint(const EpochPtr& tip) {
  if (checkpoint_bytes_ == 0 || !wal_.is_open() ||
      wal_.generation_bytes() < checkpoint_bytes_) {
    return;
  }
  // The LooseDb::Save checkpoint sequence, leader-side: publish the
  // tip's snapshot stamped G+1 (atomic rename), then swap the log to a
  // fresh G+1 segment and drop the old ones. Each step is individually
  // crash-safe; a failure only delays the next checkpoint attempt.
  const uint64_t next_generation = wal_.generation() + 1;
  Status s = SaveSnapshotAtomic(save_prefix_ + ".snap", tip->db().store(),
                                tip->db().rules(), next_generation);
  if (s.ok()) {
    LSD_FAILPOINT(checkpoint.swap);
    s = wal_.BeginGeneration(next_generation);
  }
  if (!s.ok()) {
    std::lock_guard<std::mutex> error_lock(wal_error_mu_);
    if (wal_error_.ok()) wal_error_ = s;
  }
}

Status SharedStore::EnableCompaction(const CompactionOptions& options) {
  if (options_.incremental_maintenance) {
    return Status::FailedPrecondition(
        "background compaction requires the batch (non-incremental) "
        "closure");
  }
  if (compactor_ != nullptr) {
    return Status::FailedPrecondition("compaction is already enabled");
  }
  compactor_ = std::make_unique<Compactor>(
      options, [this] { return SampleShape(); },
      [this](uint64_t* bytes, uint64_t* facts) {
        return CompactOnce(bytes, facts);
      });
  compactor_->Start();
  return Status::OK();
}

void SharedStore::StopCompaction() {
  if (compactor_ == nullptr) return;
  compactor_->Stop();
  compactor_.reset();  // EnableCompaction may be called again
}

CompactionStats SharedStore::compaction_stats() const {
  return compactor_ == nullptr ? CompactionStats{} : compactor_->Sample();
}

CompactionShape SharedStore::SampleShape() const {
  EpochPtr tip = snapshot();
  auto mem = tip->db().MemoryUsage();
  CompactionShape shape;
  if (!mem.ok()) return shape;  // cold/failed closure: nothing to fold
  shape.runs = std::max(mem->base.runs, mem->derived.runs);
  shape.frozen_bytes = mem->base.frozen.total() + mem->derived.frozen.total();
  shape.overlay_bytes = mem->base.overlay_bytes + mem->derived.overlay_bytes;
  return shape;
}

Status SharedStore::CompactOnce(uint64_t* bytes_merged,
                                uint64_t* facts_merged) {
  // The pin → build → swap cycle. Building the merged generations is
  // the expensive part and runs entirely against the pinned, immutable
  // epoch — no lock held, readers and writers undisturbed. The swap
  // goes through the ordinary commit path, whose clone transplants the
  // tip's tiers by shared pointer; if commits that landed meanwhile
  // tail-merged one of the pinned segments away, the install aborts and
  // the cycle retries from the fresh tip (bounded: under sustained
  // hostile interleaving the backlog keeps growing and the NEXT cycle
  // picks it up — compaction is an optimization, never load-bearing).
  static constexpr int kMaxAttempts = 4;
  Status last = Status::OK();
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    EpochPtr pin = snapshot();
    // Crash window while merging off-thread: nothing of the merge is
    // visible anywhere — recovery must find every acked write and no
    // trace of the half-built generation.
    LSD_FAILPOINT(compact.merge);
    auto plan_or = pin->db().BuildCompactionPlan();
    if (!plan_or.ok()) return plan_or.status();
    if (plan_or->empty()) return Status::OK();
    const LooseDb::CompactionPlan& plan = *plan_or;
    uint64_t bytes = 0;
    uint64_t facts = 0;
    for (const LooseDb::TierPlan* tp : {&plan.base, &plan.derived}) {
      if (tp->merged != nullptr) {
        bytes += tp->merged->MemoryUsage().total();
        facts += tp->merged->size();
      }
    }
    auto published = CommitInternal(
        [&plan](LooseDb& db) { return db.InstallCompactedTiers(plan); });
    if (published.ok()) {
      if (bytes_merged != nullptr) *bytes_merged += bytes;
      if (facts_merged != nullptr) *facts_merged += facts;
      return Status::OK();
    }
    last = published.status();
    if (!last.IsAborted()) return last;
  }
  return last;
}

GroupCommitStats SharedStore::group_stats() const {
  GroupCommitStats stats;
  stats.groups = groups_.load(std::memory_order_relaxed);
  stats.slots_acked = slots_acked_.load(std::memory_order_relaxed);
  stats.slots_rejected = slots_rejected_.load(std::memory_order_relaxed);
  stats.max_group = max_group_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stats.queue_depth = queue_.size();
  }
  stats.wal_records = wal_.appended_records();
  stats.wal_batches = wal_.append_batches();
  stats.fsyncs = wal_.fsyncs();
  return stats;
}

Status SharedStore::wal_status() const {
  std::lock_guard<std::mutex> lock(wal_error_mu_);
  return wal_error_;
}

}  // namespace lsd
