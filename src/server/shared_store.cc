#include "server/shared_store.h"

#include "util/failpoint.h"

namespace lsd {

SharedStore::SharedStore(const LooseDbOptions& options)
    : options_(options) {
  auto db = std::make_unique<LooseDb>(options_);
  // An empty closure always computes; ignore the (impossible) failure
  // rather than throw from a constructor.
  (void)db->Warm();
  published_ = std::make_shared<const Epoch>(std::move(db), 0);
}

StatusOr<EpochPtr> SharedStore::Commit(
    const std::function<Status(LooseDb&)>& mutate) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  // A failure here models the commit dying before any work: readers
  // keep the old tip, nothing is half-published.
  LSD_FAILPOINT_RETURN_IF_SET(store.commit.begin);
  EpochPtr tip = snapshot();

  // Clone the tip into a private working copy. The clone must start
  // with clean containers; the tip's facts already include any standard
  // seed facts, so the copy skips re-seeding.
  LooseDbOptions clone_options = options_;
  clone_options.standard_rules = false;
  auto next = std::make_unique<LooseDb>(clone_options);
  LSD_RETURN_IF_ERROR(tip->db().CloneInto(next.get()));

  const uint64_t store_before = next->store_version();
  const uint64_t rules_before = next->rules_version();
  const size_t defs_before = next->definitions().all().size();
  LSD_RETURN_IF_ERROR(mutate(*next));
  if (next->store_version() == store_before &&
      next->rules_version() == rules_before &&
      next->definitions().all().size() == defs_before) {
    return tip;  // no-op commit: nothing to publish
  }

  // Publish barrier: materialize every cache before readers can see the
  // epoch, so their const reads never write. A crash or failure
  // injected here proves the mutated clone is invisible until the
  // published_ swap below.
  LSD_FAILPOINT_RETURN_IF_SET(store.commit.publish);
  LSD_RETURN_IF_ERROR(next->Warm());

  auto epoch =
      std::make_shared<const Epoch>(std::move(next), tip->sequence() + 1);
  {
    std::unique_lock<std::shared_mutex> tip_lock(tip_mu_);
    published_ = epoch;
  }
  commits_.fetch_add(1);
  return epoch;
}

}  // namespace lsd
