// ServerSession::Execute — the wire command grammar. Deliberately the
// lsd_shell grammar (assert/retract/rule/query/probe/nav/assoc/...), so
// a transcript that works in the single-user shell works against the
// server, plus the server-only verbs:
//
//   hypo assert|retract (S,R,T)   session-local hypothetical mutation
//   hypo list | hypo clear        inspect / drop the overlay
//   session                       this session's state
//   stats                         shared-store + session statistics
//   ping                          liveness probe
//
// Reads run against the session's pinned epoch (or its hypothetical
// overlay); writes go through SharedStore::Commit and become visible to
// all sessions at the next epoch.
#include <cstdio>
#include <sstream>
#include <string>

#include "browse/dot_export.h"
#include "query/table_formatter.h"
#include "replication/monitor.h"
#include "server/session.h"
#include "store/text_format.h"
#include "util/string_util.h"

namespace lsd {

namespace {

// Parses "(S, R, T)" into a ground fact, interning entities in `db`.
StatusOr<Fact> ParseGroundFact(LooseDb& db, std::string_view text) {
  auto q = ParseQuery(text, &db.entities());
  if (!q.ok()) return q.status();
  if (q->root()->kind != NodeKind::kAtom ||
      q->root()->atom.HasVariables()) {
    return Status::InvalidArgument("expected a ground template (S, R, T)");
  }
  return q->root()->atom.Substitute(Binding(0));
}

std::string RenderProbe(const ProbeResult& probe,
                        const EntityTable& entities) {
  if (probe.original_succeeded) {
    return FormatResult(probe.original_result, entities);
  }
  std::string out = probe.Menu(entities);
  for (size_t i = 0; i < probe.successes.size(); ++i) {
    out += std::to_string(i + 1) + ") " +
           probe.successes[i].query.DebugString(entities) + "\n" +
           FormatResult(probe.successes[i].result, entities);
  }
  return out;
}

// The verbs that mutate the shared store; a read-only follower rejects
// them. (hypo stays allowed: the overlay is session-local and never
// reaches the commit path; limit/save likewise.)
bool IsMutationVerb(const std::string& cmd) {
  return cmd == "assert" || cmd == "retract" || cmd == "assert*" ||
         cmd == "retract*" || cmd == "rule" || cmd == "integrity" ||
         cmd == "define" || cmd == "include" || cmd == "exclude" ||
         cmd == "load";
}

// The verbs that read the pinned epoch and therefore fall under the
// bounded-staleness contract on a follower. Control verbs (ping,
// session, stats, help, hypo, limit, save) stay answerable even when
// stale — they are how an operator diagnoses the staleness.
bool IsGatedReadVerb(const std::string& cmd) {
  return cmd == "query" || cmd == "call" || cmd == "probe" ||
         cmd == "nav" || cmd == "visit" || cmd == "back" ||
         cmd == "forward" || cmd == "assoc" || cmd == "try" ||
         cmd == "near" || cmd == "dist" || cmd == "relation" ||
         cmd == "dot" || cmd == "check" || cmd == "rules";
}

std::string Percent(uint64_t part, uint64_t whole) {
  if (whole == 0) return "n/a";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%",
                100.0 * static_cast<double>(part) /
                    static_cast<double>(whole));
  return buf;
}

uint64_t SaturatingMul(uint64_t a, uint64_t b) {
  if (a != 0 && b > UINT64_MAX / a) return UINT64_MAX;
  return a * b;
}

uint64_t SaturatingAdd(uint64_t a, uint64_t b) {
  return b > UINT64_MAX - a ? UINT64_MAX : a + b;
}

// Join-cost upper bound of a formula against a closure: per-atom
// candidate estimates, multiplied across conjunctions and summed across
// disjunctions (shared-variable selectivity is ignored — this is a shed
// heuristic, not a plan). A single bound probe prices at its handful of
// index hits; an unbound join saturates.
uint64_t EstimateFormula(const ClosureView& view, const AstNode* node,
                         const Binding& unbound) {
  switch (node->kind) {
    case NodeKind::kAtom:
      return view.EstimateMatches(node->atom.Bind(unbound));
    case NodeKind::kAnd: {
      uint64_t cost = 1;
      for (const auto& child : node->children) {
        cost = SaturatingMul(cost,
                             EstimateFormula(view, child.get(), unbound));
      }
      return cost;
    }
    case NodeKind::kOr: {
      uint64_t cost = 0;
      for (const auto& child : node->children) {
        cost = SaturatingAdd(cost,
                             EstimateFormula(view, child.get(), unbound));
      }
      return cost;
    }
    case NodeKind::kExists:
    case NodeKind::kForall:
      return EstimateFormula(view, node->children[0].get(), unbound);
  }
  return 0;
}

}  // namespace

// The shed-policy price of one request, in estimated candidate
// enumerations, computed against the shared snapshot (never the
// overlay — building the overlay can itself be the expensive part, and
// a pending rebuild is priced in explicitly). Verbs we can see inside
// (query/probe) are priced by the planner's per-atom estimates;
// unbounded searches (assoc/near/dist/check/dot and operator calls,
// whose expansion we do not pre-resolve) are priced at one full closure
// scan; navigation at the entity's degree; control verbs and point
// mutations at zero.
uint64_t ServerSession::EstimateCost(const std::string& cmd,
                                     const std::string& rest) {
  EpochPtr epoch = store_->snapshot();
  LooseDb& db = epoch->db();
  uint64_t cost = 0;
  if (overlay_size() > 0 &&
      (overlay_db_ == nullptr ||
       overlay_epoch_sequence_ != epoch->sequence() ||
       overlay_built_version_ != overlay_version_)) {
    // A stale overlay means this request starts with a clone + full
    // closure recompute, whatever the verb.
    cost = db.store().size();
  }
  auto view = db.View();
  if (!view.ok()) return cost;  // unwarmed epoch: price what we know
  const ClosureView& v = **view;
  const uint64_t full_scan = v.EstimateMatches(Pattern());
  if (cmd == "query" || cmd == "probe") {
    auto q = ParseQuery(rest, &db.entities());
    // A malformed query is cheap: Execute will reject it at parse time.
    if (!q.ok()) return cost;
    return SaturatingAdd(
        cost, EstimateFormula(v, q->root(), Binding(q->num_vars())));
  }
  if (cmd == "call" || cmd == "assoc" || cmd == "near" || cmd == "dist" ||
      cmd == "check" || cmd == "dot" || cmd == "relation") {
    return SaturatingAdd(cost, full_scan);
  }
  if (cmd == "nav" || cmd == "visit" || cmd == "back" || cmd == "forward") {
    std::string entity = rest.substr(0, rest.find(' '));
    if (cmd == "back" || cmd == "forward") {
      entity = trail_.empty() ? std::string() : trail_[trail_pos_];
    }
    auto id = db.entities().Lookup(entity);
    if (!id.has_value()) return cost;
    return SaturatingAdd(
        cost,
        SaturatingAdd(
            v.EstimateMatches(Pattern(*id, kAnyEntity, kAnyEntity)),
            v.EstimateMatches(Pattern(kAnyEntity, kAnyEntity, *id))));
  }
  return cost;
}

// The shared landing strip for both batched-mutation front ends (the
// text assert*/retract* verbs and the binary kMutation frame): every op
// of the batch goes into ONE SharedStore commit slot, so it shares its
// group's single clone + warm + WAL fsync + epoch. The closure only
// counts and mutates — it is re-invocation safe (group replay after
// another slot fails resets the tallies).
StatusOr<std::string> ServerSession::CommitMutations(
    const std::vector<MutationOp>& ops) {
  if (ops.empty()) return std::string("empty batch\n");
  // Pre-enqueue cancellation point: abort here and nothing mutated;
  // past Commit() the slot is in its group and the cancel waits for
  // the ack (see the commit-path comment in Execute()).
  LSD_RETURN_IF_ERROR(CheckBudget());
  size_t added = 0, present = 0, removed = 0, missing = 0;
  auto epoch = store_->Commit([&](LooseDb& db) -> Status {
    added = present = removed = missing = 0;
    for (const MutationOp& op : ops) {
      if (!op.retract) {
        Fact f(db.entities().Intern(op.source),
               db.entities().Intern(op.relationship),
               db.entities().Intern(op.target));
        db.Assert(f) ? ++added : ++present;
      } else {
        auto s = db.entities().Lookup(op.source);
        auto r = db.entities().Lookup(op.relationship);
        auto t = db.entities().Lookup(op.target);
        if (!s.has_value() || !r.has_value() || !t.has_value() ||
            !db.Retract(Fact(*s, *r, *t))) {
          ++missing;
        } else {
          ++removed;
        }
      }
    }
    return Status::OK();
  });
  if (!epoch.ok()) return epoch.status();
  return "added " + std::to_string(added) + ", present " +
         std::to_string(present) + ", removed " + std::to_string(removed) +
         ", missing " + std::to_string(missing) + "\n";
}

StatusOr<std::string> ServerSession::ExecuteBatchMutation(
    std::string_view payload) {
  ++requests_;
  if (replication_ != nullptr) {
    return Status::FailedPrecondition(
        "read-only follower: mutations must go to the primary");
  }
  std::vector<MutationOp> ops;
  LSD_RETURN_IF_ERROR(DecodeMutationPayload(payload, &ops));
  return CommitMutations(ops);
}

StatusOr<std::string> ServerSession::ExecuteHypo(std::string_view rest) {
  std::istringstream in{std::string(rest)};
  std::string sub;
  in >> sub;
  sub = AsciiToLower(sub);
  std::string arg;
  std::getline(in, arg);
  arg = std::string(StripWhitespace(arg));

  if (sub == "clear") {
    size_t n = overlay_size();
    hypo_retracts_.clear();
    hypo_asserts_.clear();
    ++overlay_version_;
    return "dropped " + std::to_string(n) + " hypothetical(s)\n";
  }
  if (sub == "list") {
    std::string out;
    for (const NamedFact& f : hypo_retracts_) {
      out += "retract (" + f.source + ", " + f.relationship + ", " +
             f.target + ")\n";
    }
    for (const NamedFact& f : hypo_asserts_) {
      out += "assert (" + f.source + ", " + f.relationship + ", " +
             f.target + ")\n";
    }
    if (out.empty()) out = "no hypotheticals\n";
    return out;
  }
  if (sub != "assert" && sub != "retract") {
    return Status::InvalidArgument(
        "usage: hypo assert|retract (S,R,T) | hypo list | hypo clear");
  }

  // Validate against the base epoch (not the overlay): interning there
  // is safe, and a hypothetical retraction should name a fact that is
  // actually asserted.
  EpochPtr epoch = store_->snapshot();
  LooseDb& db = epoch->db();
  LSD_ASSIGN_OR_RETURN(Fact f, ParseGroundFact(db, arg));
  const EntityTable& e = db.entities();
  NamedFact named{e.Name(f.source), e.Name(f.relationship),
                  e.Name(f.target)};
  if (sub == "retract") {
    if (!db.store().Contains(f)) {
      return Status::NotFound("fact not asserted in the shared store");
    }
    hypo_retracts_.push_back(std::move(named));
  } else {
    hypo_asserts_.push_back(std::move(named));
  }
  ++overlay_version_;
  return std::string("hypothetical recorded (this session only)\n");
}

StatusOr<std::string> ServerSession::ExecuteVisit(
    const std::string& entity) {
  LSD_ASSIGN_OR_RETURN(PinnedDb pinned, Pin());
  auto id = pinned.db->entities().Lookup(entity);
  if (!id.has_value()) {
    return Status::NotFound("unknown entity: " + entity);
  }
  // Navigate before touching the trail: a cancelled visit must leave
  // the trail exactly as if it never ran.
  LSD_ASSIGN_OR_RETURN(NeighborhoodView hood,
                       pinned.db->Navigate(entity, budget_));
  trail_.resize(trail_.empty() ? 0 : trail_pos_ + 1);
  trail_.push_back(pinned.db->entities().Name(*id));
  trail_pos_ = trail_.size() - 1;
  return Breadcrumbs() + "\n" + hood.Render(pinned.db->entities());
}

StatusOr<std::string> ServerSession::ExecuteBackForward(bool back) {
  if (back && trail_pos_ == 0) {
    return Status::FailedPrecondition("nothing to go back to");
  }
  if (!back && (trail_.empty() || trail_pos_ + 1 >= trail_.size())) {
    return Status::FailedPrecondition("nothing to go forward to");
  }
  // Move the cursor only after the navigation succeeds: a cancelled
  // back/forward leaves the trail position exactly where it was.
  const size_t new_pos = trail_pos_ + (back ? -1 : 1);
  LSD_ASSIGN_OR_RETURN(PinnedDb pinned, Pin());
  LSD_ASSIGN_OR_RETURN(NeighborhoodView hood,
                       pinned.db->Navigate(trail_[new_pos], budget_));
  trail_pos_ = new_pos;
  return Breadcrumbs() + "\n" + hood.Render(pinned.db->entities());
}

StatusOr<std::string> ServerSession::RenderStats() {
  LSD_ASSIGN_OR_RETURN(PinnedDb pinned, Pin());
  LooseDb& db = *pinned.db;
  std::string out;
  out += "epoch:          " + std::to_string(pinned.epoch->sequence()) +
         (pinned.overlaid ? " (+session overlay)" : "") + "\n";
  out += "store version:  " + std::to_string(db.store_version()) + "\n";
  out += "rules version:  " + std::to_string(db.rules_version()) + "\n";
  out += "entities:       " + std::to_string(db.entities().size()) + "\n";
  out += "asserted facts: " + std::to_string(db.store().size()) + "\n";
  auto view = db.View();
  if (view.ok() && db.closure_stats() != nullptr) {
    out += "derived facts:  " +
           std::to_string(db.closure_stats()->derived_facts) + " (in " +
           std::to_string(db.closure_stats()->rounds) + " rounds)\n";
  }
  auto mem = db.MemoryUsage();
  if (mem.ok()) {
    out += "base tier:      " + std::to_string(mem->base.total()) +
           " bytes (frozen " + std::to_string(mem->base.frozen.total()) +
           " in " + std::to_string(mem->base.runs) + " segments, overlay " +
           std::to_string(mem->base.overlay_bytes) + ")\n";
    out += "derived tier:   " + std::to_string(mem->derived.total()) +
           " bytes (frozen " + std::to_string(mem->derived.frozen.total()) +
           " in " + std::to_string(mem->derived.runs) +
           " segments, overlay " +
           std::to_string(mem->derived.overlay_bytes) + ")\n";
  }
  out += "rules:          " + std::to_string(db.rules().size()) + "\n";
  const uint64_t hits = db.planner_hits();
  const uint64_t misses = db.planner_misses();
  out += "planner cache:  " + std::to_string(db.planner_plan_count()) +
         " plans, " + std::to_string(hits) + " hits / " +
         std::to_string(misses) + " misses (" +
         Percent(hits, hits + misses) + " hit rate)\n";
  out += "commits:        " + std::to_string(store_->commits()) + "\n";
  const GroupCommitStats gc = store_->group_stats();
  {
    char mean[32];
    std::snprintf(mean, sizeof(mean), "%.2f", gc.mean_group());
    out += "group commit:   " + std::to_string(gc.groups) +
           " groups, mean size " + mean + ", max " +
           std::to_string(gc.max_group) + ", queue depth " +
           std::to_string(gc.queue_depth) + "\n";
    out += "commit slots:   " + std::to_string(gc.slots_acked) +
           " acked / " + std::to_string(gc.slots_rejected) +
           " rejected\n";
  }
  if (store_->durable()) {
    out += "wal:            " + std::to_string(gc.wal_records) +
           " records in " + std::to_string(gc.wal_batches) +
           " batches, " + std::to_string(gc.fsyncs) + " fsyncs (" +
           std::to_string(gc.slots_acked) + " writes acked)" +
           (store_->wal_status().ok() ? "" : " [DEGRADED]") + "\n";
  }
  if (store_->compaction_enabled()) {
    const CompactionStats cs = store_->compaction_stats();
    out += std::string("compaction:     ") +
           (cs.merging ? "merging" : (cs.running ? "idle" : "stopped")) +
           ", " + std::to_string(cs.merges) + " merges (" +
           std::to_string(cs.aborted) + " aborted, " +
           std::to_string(cs.failures) + " failed)\n";
    out += "  generations:  " + std::to_string(cs.shape.runs) +
           " runs pending, frozen " +
           std::to_string(cs.shape.frozen_bytes) + " bytes, overlay " +
           std::to_string(cs.shape.overlay_bytes) + " bytes\n";
    out += "  merged:       " + std::to_string(cs.facts_merged) +
           " facts / " + std::to_string(cs.bytes_merged) +
           " bytes, last merge " + std::to_string(cs.last_merge_ms) +
           " ms, backpressure hits " +
           std::to_string(cs.backpressure_hits) + "\n";
  }
  if (replication_ != nullptr) {
    const ReplicationStatus rs = replication_->Sample();
    const ReplicationBounds& rb = replication_->bounds();
    out += std::string("replication:    follower, ") +
           (rs.connected ? "connected" : "disconnected") +
           (rs.ever_synced ? "" : ", never synced") + "\n";
    out += "repl lag:       " + std::to_string(rs.lag_ms) + " ms / " +
           std::to_string(rs.lag_bytes) + " bytes (bound " +
           (rb.max_lag_ms == 0 ? std::string("inf")
                               : std::to_string(rb.max_lag_ms)) +
           " ms / " +
           (rb.max_lag_bytes == 0 ? std::string("inf")
                                  : std::to_string(rb.max_lag_bytes)) +
           " bytes, silence " + std::to_string(rs.silence_ms) + " ms)\n";
    out += "repl epochs:    applied " + std::to_string(rs.applied_epoch) +
           " / primary " + std::to_string(rs.primary_epoch) + "\n";
    out += "repl position:  " + rs.applied_pos.ToString() + ", " +
           std::to_string(rs.chunks_applied) + " chunks, " +
           std::to_string(rs.records_applied) + " records, " +
           std::to_string(rs.snapshots_loaded) + " snapshots, " +
           std::to_string(rs.reconnects) + " reconnects\n";
  }
  if (registry_ != nullptr) {
    out += "sessions:       " + std::to_string(registry_->live()) +
           " live / " + std::to_string(registry_->total_created()) +
           " total\n";
  }
  if (governance_ != nullptr) {
    const bool degraded = governance_->degraded.load();
    out += std::string("governance:     ") +
           (degraded ? "DEGRADED (queue depth " +
                           std::to_string(governance_->queue_depth.load()) +
                           ")"
                     : "normal") +
           ", " + std::to_string(governance_->degrade_entries.load()) +
           " episode(s), shed threshold " +
           std::to_string(governance_->shed_cost_threshold) + "\n";
    out += "cancelled:      " + std::to_string(governance_->total_cancelled()) +
           " (deadline " +
           std::to_string(governance_->cancelled_deadline.load()) +
           ", budget " + std::to_string(governance_->cancelled_budget.load()) +
           ", disconnect " +
           std::to_string(governance_->cancelled_disconnect.load()) +
           ", shed " + std::to_string(governance_->cancelled_shed.load()) +
           ")\n";
    out += "worst request:  " +
           std::to_string(governance_->worst_request_ms.load()) + " ms\n";
  }
  out += "session:        #" + std::to_string(id_) + ", " +
         std::to_string(requests_) + " request(s), overlay " +
         std::to_string(overlay_size()) + ", " +
         std::to_string(steps_used_) + " steps\n";
  return out;
}

StatusOr<std::string> ServerSession::Execute(std::string_view line) {
  ++requests_;
  std::string_view stripped = StripWhitespace(line);
  if (stripped.empty()) return std::string();
  std::istringstream in{std::string(stripped)};
  std::string cmd;
  in >> cmd;
  cmd = AsciiToLower(cmd);
  std::string rest;
  std::getline(in, rest);
  rest = std::string(StripWhitespace(rest));

  // ---- Follower contract -------------------------------------------------
  // A follower's store is the primary's, replayed: writes belong on the
  // primary, and reads are only honest within the staleness bound.
  if (replication_ != nullptr) {
    if (IsMutationVerb(cmd)) {
      return Status::FailedPrecondition(
          "read-only follower: mutations must go to the primary");
    }
    if (IsGatedReadVerb(cmd)) {
      LSD_RETURN_IF_ERROR(replication_->CheckReadable());
    }
  }

  // ---- Resource governance -----------------------------------------------
  // Control verbs (ping, session, stats, hypo, ...) are never shed or
  // budget-gated: they are how a client observes the very overload that
  // is rejecting its queries.
  const bool governed = IsMutationVerb(cmd) || IsGatedReadVerb(cmd);
  if (governance_ != nullptr && governed) {
    if (governance_->session_step_budget > 0 &&
        steps_used_ >= governance_->session_step_budget) {
      governance_->CountCancel(CancelReason::kBudget);
      return Status::ResourceExhausted(
          "session step budget exhausted (" + std::to_string(steps_used_) +
          " steps used)");
    }
    // Graceful degradation: while overloaded, shed only requests the
    // planner prices as expensive — cheap probes keep flowing, and
    // point mutations (priced at zero unless they drag an overlay
    // rebuild) keep committing.
    if (governance_->degraded.load(std::memory_order_relaxed) &&
        EstimateCost(cmd, rest) > governance_->shed_cost_threshold) {
      governance_->CountCancel(CancelReason::kShed);
      return QueryBudget::CancelStatus(CancelReason::kShed);
    }
  }
  // Operation-boundary check: a request arriving already cancelled (or
  // past its deadline after queue wait) is refused before any work —
  // the in-loop tickers only settle every kStride iterations, so a
  // small read could otherwise slip through an expired budget.
  if (governed) {
    LSD_RETURN_IF_ERROR(CheckBudget());
  }

  // ---- Server verbs ------------------------------------------------------
  if (cmd == "ping") return std::string("pong\n");
  if (cmd == "hypo") return ExecuteHypo(rest);
  if (cmd == "session") {
    std::string out = "session #" + std::to_string(id_) + "\n";
    out += "requests:  " + std::to_string(requests_) + "\n";
    out += "overlay:   " + std::to_string(overlay_size()) +
           " hypothetical(s)\n";
    out += "steps:     " + std::to_string(steps_used_) + "\n";
    out += "epoch:     " + std::to_string(last_epoch_sequence_) + "\n";
    if (!trail_.empty()) out += "trail:     " + Breadcrumbs() + "\n";
    return out;
  }
  if (cmd == "stats") return RenderStats();
  if (cmd == "help") {
    return std::string(
        "commands: assert|retract (S,R,T) · assert*|retract* (S,R,T)..\n"
        "          rule/integrity NAME: b => h\n"
        "          define NAME(?P..) := F · call NAME(args..)\n"
        "          query F · probe F · nav E · visit E · back · forward\n"
        "          assoc S T · try E · near E [r] · dist A B · dot [E]\n"
        "          relation CLASS R T [R T..] · limit N ·"
        " include/exclude NAME\n"
        "          hypo assert|retract (S,R,T) · hypo list · hypo clear\n"
        "          rules · check · save PREFIX · stats · session · ping\n");
  }

  // ---- Shared writes (commit path) ---------------------------------------
  // Cancellation composes with group commit: this is the last budget
  // check before a slot enqueues, which is the point of no return —
  // once Commit() is called the slot rides its group to the ack, so a
  // deadline or disconnect that fires mid-commit waits for the ack
  // rather than tearing a half-applied mutation. (CommitMutations
  // re-checks for the batched paths.)
  if (IsMutationVerb(cmd)) LSD_RETURN_IF_ERROR(CheckBudget());
  if (cmd == "assert*" || cmd == "retract*") {
    // Batched form: many facts, one commit slot. Names are resolved
    // against the pinned tip (interning there is safe — hypo does the
    // same); a parse failure rejects this whole batch before it ever
    // enqueues, so it cannot fail any other writer's slot.
    EpochPtr pinned = store_->snapshot();
    LooseDb& pdb = pinned->db();
    std::vector<MutationOp> ops;
    size_t pos = 0;
    while (true) {
      size_t open = rest.find('(', pos);
      if (open == std::string::npos) break;
      size_t close = rest.find(')', open);
      if (close == std::string::npos) {
        return Status::InvalidArgument("unbalanced '(' in batch");
      }
      std::string_view chunk =
          std::string_view(rest).substr(open, close - open + 1);
      LSD_ASSIGN_OR_RETURN(Fact f, ParseGroundFact(pdb, chunk));
      const EntityTable& e = pdb.entities();
      ops.push_back(MutationOp{cmd == "retract*", e.Name(f.source),
                               e.Name(f.relationship), e.Name(f.target)});
      pos = close + 1;
    }
    if (ops.empty()) {
      return Status::InvalidArgument("usage: " + cmd +
                                     " (S,R,T) [(S,R,T) ...]");
    }
    return CommitMutations(ops);
  }
  if (cmd == "assert" || cmd == "retract") {
    std::string out;
    auto epoch = store_->Commit([&](LooseDb& db) -> Status {
      LSD_ASSIGN_OR_RETURN(Fact f, ParseGroundFact(db, rest));
      if (cmd == "assert") {
        out = db.Assert(f) ? "added\n" : "already present\n";
      } else {
        out = db.Retract(f) ? "removed\n" : "not asserted\n";
      }
      return Status::OK();
    });
    if (!epoch.ok()) return epoch.status();
    return out;
  }
  if (cmd == "rule" || cmd == "integrity") {
    auto epoch = store_->Commit([&](LooseDb& db) {
      return db.DefineRule(rest, cmd == "rule" ? RuleKind::kInference
                                               : RuleKind::kIntegrity);
    });
    if (!epoch.ok()) return epoch.status();
    return std::string("defined\n");
  }
  if (cmd == "define") {
    auto epoch =
        store_->Commit([&](LooseDb& db) { return db.DefineOperator(rest); });
    if (!epoch.ok()) return epoch.status();
    return std::string("defined\n");
  }
  if (cmd == "include" || cmd == "exclude") {
    auto epoch = store_->Commit([&](LooseDb& db) {
      return db.SetRuleEnabled(AsciiToLower(rest), cmd == "include");
    });
    if (!epoch.ok()) return epoch.status();
    return std::string(cmd == "include" ? "included\n" : "excluded\n");
  }
  if (cmd == "load") {
    auto epoch =
        store_->Commit([&](LooseDb& db) { return db.LoadTextFile(rest); });
    if (!epoch.ok()) return epoch.status();
    return std::string("loaded\n");
  }

  // ---- Session-local settings --------------------------------------------
  if (cmd == "limit") {
    int n = 0;
    if (!(std::istringstream(rest) >> n)) {
      return Status::InvalidArgument("usage: limit N");
    }
    composition_limit_ = n;
    return "limit(" + std::to_string(n) + ") (this session)\n";
  }

  // ---- Reads (pinned epoch or overlay) -----------------------------------
  LSD_ASSIGN_OR_RETURN(PinnedDb pinned, Pin());
  LooseDb& db = *pinned.db;

  EvalOptions eval_options;
  eval_options.budget = budget_;
  if (cmd == "query") {
    LSD_ASSIGN_OR_RETURN(ResultSet r, db.Query(rest, eval_options));
    return FormatResult(r, db.entities());
  }
  if (cmd == "call") {
    LSD_ASSIGN_OR_RETURN(ResultSet r, db.Call(rest, eval_options));
    return FormatResult(r, db.entities());
  }
  if (cmd == "probe") {
    ProbeOptions probe_options;
    probe_options.budget = budget_;
    LSD_ASSIGN_OR_RETURN(ProbeResult probe, db.Probe(rest, probe_options));
    return RenderProbe(probe, db.entities());
  }
  if (cmd == "nav") {
    LSD_ASSIGN_OR_RETURN(NeighborhoodView hood, db.Navigate(rest, budget_));
    return hood.Render(db.entities());
  }
  if (cmd == "visit") return ExecuteVisit(rest);
  if (cmd == "back") return ExecuteBackForward(/*back=*/true);
  if (cmd == "forward") return ExecuteBackForward(/*back=*/false);
  if (cmd == "assoc") {
    std::istringstream args(rest);
    std::string s, t;
    args >> s >> t;
    auto sid = db.entities().Lookup(s);
    auto tid = db.entities().Lookup(t);
    if (!sid.has_value() || !tid.has_value()) {
      return Status::NotFound("unknown entity: " +
                              (sid.has_value() ? t : s));
    }
    LSD_ASSIGN_OR_RETURN(const ClosureView* view, db.View());
    Navigator navigator(view, &db.entities());
    CompositionOptions options;
    options.budget = budget_;
    options.limit = composition_limit_ >= 0 ? composition_limit_
                                            : db.composition_limit();
    LSD_ASSIGN_OR_RETURN(std::vector<Association> assocs,
                         navigator.Associations(*sid, *tid, options));
    return navigator.RenderAssociations(*sid, *tid, assocs);
  }
  if (cmd == "try") {
    return db.Try(rest);
  }
  if (cmd == "near") {
    std::istringstream args(rest);
    std::string entity;
    int radius = 2;
    args >> entity >> radius;
    LSD_ASSIGN_OR_RETURN(std::vector<NearbyEntity> nearby,
                         db.Nearby(entity, radius, budget_));
    std::string out;
    for (const NearbyEntity& n : nearby) {
      out += "  " + std::to_string(n.distance) + "  " +
             db.entities().Name(n.entity) + "\n";
    }
    return out;
  }
  if (cmd == "dist") {
    std::istringstream args(rest);
    std::string a, b;
    args >> a >> b;
    LSD_ASSIGN_OR_RETURN(std::optional<int> d,
                         db.SemanticDistance(a, b, /*max_radius=*/4,
                                             budget_));
    if (d.has_value()) {
      return "semantic distance " + std::to_string(*d) + "\n";
    }
    return std::string("not connected within the search radius\n");
  }
  if (cmd == "relation") {
    std::istringstream args(rest);
    std::string klass;
    args >> klass;
    std::vector<std::pair<std::string, std::string>> columns;
    std::string rel, target;
    while (args >> rel >> target) columns.emplace_back(rel, target);
    if (klass.empty() || columns.empty()) {
      return Status::InvalidArgument(
          "usage: relation CLASS R1 T1 [R2 T2 ...]");
    }
    LSD_ASSIGN_OR_RETURN(RelationTable table, db.Relation(klass, columns));
    return table.Render(db.entities());
  }
  if (cmd == "dot") {
    LSD_ASSIGN_OR_RETURN(const ClosureView* view, db.View());
    if (rest.empty()) return ExportDot(*view);
    auto id = db.entities().Lookup(rest);
    if (!id.has_value()) {
      return Status::NotFound("unknown entity: " + rest);
    }
    return ExportNeighborhoodDot(*view, *id, 2);
  }
  if (cmd == "check") {
    LSD_ASSIGN_OR_RETURN(std::vector<IntegrityViolation> violations,
                         db.FindIntegrityViolations());
    if (violations.empty()) {
      return std::string("closure is contradiction-free\n");
    }
    std::string out;
    for (const auto& v : violations) out += "  " + v.description + "\n";
    return out;
  }
  if (cmd == "rules") {
    std::string out;
    for (const Rule& r : db.rules()) {
      out += std::string("  [") + (r.enabled ? 'x' : ' ') + "] " +
             SerializeRule(r, db.entities()) + "\n";
    }
    return out;
  }
  if (cmd == "save") {
    // Snapshot the pinned epoch — a consistent point-in-time image even
    // while other sessions keep committing.
    LSD_RETURN_IF_ERROR(
        SaveSnapshot(rest + ".snap", db.store(), db.rules()));
    return "saved " + rest + ".snap\n";
  }

  return Status::InvalidArgument("unknown command '" + cmd +
                                 "'; try 'help'");
}

}  // namespace lsd
