// The lsd wire protocol: line-based, text, human-debuggable with nc.
//
// Request:  one line, the lsd_shell command grammar (see commands.cc).
// Response: a status line, payload lines, and a terminator line:
//
//   OK                          |   ERR <message>
//   <payload line 1>            |   .
//   <payload line 2>
//   .
//
// Payload lines that start with '.' are dot-stuffed ("." -> "..", SMTP
// style) so the terminator stays unambiguous; ReadResponse unstuffs.
// The server sends one greeting frame on connect (OK + banner, or
// ERR server busy when admission control rejects the connection).
#ifndef LSD_SERVER_PROTOCOL_H_
#define LSD_SERVER_PROTOCOL_H_

#include <string>
#include <string_view>

#include "util/status.h"

namespace lsd {

// Renders a full response frame from a command outcome.
std::string FrameResponse(const Status& status, std::string_view payload);

// Writes all of `data` to `fd`, retrying short writes. IoError on
// failure (including a send timeout).
Status WriteAll(int fd, std::string_view data);

// Buffered \n-line reader over a socket (or pipe) fd.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  // Tolerate up to `n` consecutive receive timeouts (EAGAIN /
  // EWOULDBLOCK under SO_RCVTIMEO) before ReadLine gives up; every
  // received byte resets the count, so a slow writer that keeps
  // trickling data never trips it. 0 (the default) fails on the first
  // timeout.
  void set_max_idle_timeouts(int n) { max_idle_timeouts_ = n; }

  // Reads one line, stripping the trailing \n (and \r\n). Returns false
  // on EOF or error with nothing buffered. EINTR is always retried;
  // timeouts are retried per set_max_idle_timeouts.
  bool ReadLine(std::string* line);

 private:
  int fd_;
  int max_idle_timeouts_ = 0;
  std::string buf_;
};

// A parsed response frame (client side).
struct WireResponse {
  bool ok = false;
  std::string error;    // ERR message when !ok
  std::string payload;  // unstuffed payload lines, '\n'-joined
};

// Reads one complete frame. IoError if the connection dies mid-frame.
StatusOr<WireResponse> ReadResponse(LineReader* reader);

}  // namespace lsd

#endif  // LSD_SERVER_PROTOCOL_H_
