// The lsd wire protocols. Two request framings share one connection
// port; the server sniffs the first byte a client sends after the
// greeting and locks the connection into that mode.
//
// TEXT (default, human-debuggable with nc):
//
// Request:  one line, the lsd_shell command grammar (see commands.cc).
// Response: a status line, payload lines, and a terminator line:
//
//   OK                          |   ERR <message>
//   <payload line 1>            |   .
//   <payload line 2>
//   .
//
// Payload lines that start with '.' are dot-stuffed ("." -> "..", SMTP
// style) so the terminator stays unambiguous; ReadResponse unstuffs.
// The server sends one greeting frame on connect (OK + banner, or
// ERR server busy when admission control rejects the connection). The
// greeting is always a text frame — binary clients read it with the
// text reader before sending their first binary frame.
//
// BINARY (length-prefixed, pipelined):
//
//   offset  size  field
//   0       1     magic0 = 0xB5   (non-ASCII: never begins a text line)
//   1       1     magic1 = 'L'
//   2       1     magic2 = 'S'
//   3       1     version = 1
//   4       1     type: 0 request, 1 OK response, 2 ERR response,
//                 3 batch-mutation request, 4 subscribe, 5 log chunk,
//                 6 heartbeat, 7 snapshot chunk (4-7: replication
//                 port only; see src/replication/wire.h)
//   5       3     reserved, must be 0
//   8       8     request id (little-endian u64, chosen by the client)
//   16      4     payload length (little-endian u32, <= 16 MiB)
//   20      n     payload (request: command line; response: output or
//                 error message — raw bytes, no dot-stuffing)
//
// A type-3 (batch mutation) frame carries many asserts/retracts in one
// request; the server lands the whole batch in ONE group-commit slot
// (one clone + one WAL fsync + one epoch with the rest of its group).
// Its payload:
//
//   u32 count, then count ops of:
//     u8  op       1 = assert, 2 = retract
//     u32 len, bytes   source entity name
//     u32 len, bytes   relationship name
//     u32 len, bytes   target name
//
// The response is an ordinary type-1/2 frame; on OK the payload is the
// "added A / present B / removed C / missing D" tally (see
// commands.cc). A malformed payload (unknown opcode, bad lengths)
// rejects the whole frame and mutates nothing; a retract of an absent
// fact or unknown entity is NOT an error — it just counts toward the
// "missing" tally while the rest of the batch applies.
//
// Clients may pipeline: any number of request frames can be in flight
// on one connection, and each response carries the request id it
// answers, so responses correlate even if they complete out of order.
// (The server currently executes one connection's requests in FIFO
// order — per-session state demands serialization — but clients must
// match by id, not position.) A malformed frame (bad magic, unknown
// version, nonzero reserved bytes, oversized length) is a protocol
// error: the server closes the connection.
#ifndef LSD_SERVER_PROTOCOL_H_
#define LSD_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace lsd {

// Renders a full response frame from a command outcome.
std::string FrameResponse(const Status& status, std::string_view payload);

// Writes all of `data` to `fd`, retrying short writes. IoError on
// failure (including a send timeout).
Status WriteAll(int fd, std::string_view data);

// Buffered \n-line reader over a socket (or pipe) fd.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  // Tolerate up to `n` consecutive receive timeouts (EAGAIN /
  // EWOULDBLOCK under SO_RCVTIMEO) before ReadLine gives up; every
  // received byte resets the count, so a slow writer that keeps
  // trickling data never trips it. 0 (the default) fails on the first
  // timeout.
  void set_max_idle_timeouts(int n) { max_idle_timeouts_ = n; }

  // Reads one line, stripping the trailing \n (and \r\n). Returns false
  // on EOF or error with nothing buffered. EINTR is always retried;
  // timeouts are retried per set_max_idle_timeouts.
  bool ReadLine(std::string* line);

 private:
  int fd_;
  int max_idle_timeouts_ = 0;
  std::string buf_;
};

// A parsed response frame (client side).
struct WireResponse {
  bool ok = false;
  std::string error;    // ERR message when !ok
  std::string payload;  // unstuffed payload lines, '\n'-joined
};

// Reads one complete frame. IoError if the connection dies mid-frame.
StatusOr<WireResponse> ReadResponse(LineReader* reader);

// ---- Binary framing ------------------------------------------------------

inline constexpr uint8_t kBinaryMagic0 = 0xB5;  // the mode-sniff byte
inline constexpr uint8_t kBinaryMagic1 = 'L';
inline constexpr uint8_t kBinaryMagic2 = 'S';
inline constexpr uint8_t kBinaryVersion = 1;
inline constexpr size_t kBinaryHeaderSize = 20;
// Oversized-length frames are protocol errors, not allocation requests.
inline constexpr uint32_t kMaxBinaryPayload = 16u << 20;

enum class FrameType : uint8_t {
  kRequest = 0,
  kOk = 1,
  kErr = 2,
  kMutation = 3,  // batch-mutation request (see payload layout above)

  // Replication frames (src/replication/): the same header framing on
  // the primary's replication port. The browse port never accepts them
  // (the server closes the connection), and the parser accepts them
  // everywhere so one framer serves both endpoints. Payload layouts
  // live in src/replication/wire.h.
  kSubscribe = 4,  // follower -> primary: resume from {gen, seg, offset}
  kLogChunk = 5,   // primary -> follower: raw WAL record bytes + position
  kHeartbeat = 6,  // primary -> follower: liveness + staleness metadata
  kSnapshot = 7,   // primary -> follower: snapshot chunk (cold catch-up)
};
inline constexpr uint8_t kMaxFrameType =
    static_cast<uint8_t>(FrameType::kSnapshot);

struct BinaryFrame {
  FrameType type = FrameType::kRequest;
  uint64_t request_id = 0;
  std::string payload;
};

// Renders one wire-ready frame (header + payload).
std::string EncodeFrame(FrameType type, uint64_t request_id,
                        std::string_view payload);

// Incremental decoder: feed arbitrary byte chunks (dribbled, coalesced,
// many frames at once), pull complete frames out. Once an error is
// reported the parser stays poisoned — the connection is unrecoverable
// because framing has been lost.
class BinaryFrameParser {
 public:
  enum class Result {
    kFrame,     // *out filled with the next complete frame
    kNeedMore,  // no complete frame buffered yet
    kError,     // protocol violation; see error()
  };

  // Appends raw bytes to the internal buffer.
  void Feed(std::string_view data);

  Result Next(BinaryFrame* out);

  const std::string& error() const { return error_; }

  // Bytes buffered but not yet consumed by complete frames.
  size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::string buf_;
  size_t pos_ = 0;  // consumed prefix, compacted lazily
  std::string error_;
};

// Blocking convenience for clients and tests: reads exactly one frame
// from `fd` (EINTR-retrying). IoError on EOF or a malformed frame.
StatusOr<BinaryFrame> ReadFrame(int fd, BinaryFrameParser* parser);

// ---- Batch mutations (FrameType::kMutation payloads) ---------------------

struct MutationOp {
  bool retract = false;  // false = assert
  std::string source, relationship, target;
};

// Renders the payload of a kMutation frame.
std::string EncodeMutationPayload(const std::vector<MutationOp>& ops);

// Parses a kMutation payload. InvalidArgument on a truncated or
// malformed payload (unknown opcode, lengths past the end, trailing
// garbage); `out` is left in an unspecified state on error.
Status DecodeMutationPayload(std::string_view payload,
                             std::vector<MutationOp>* out);

}  // namespace lsd

#endif  // LSD_SERVER_PROTOCOL_H_
