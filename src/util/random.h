// Deterministic pseudo-random utilities for workload generation.
// All lsd generators are seeded explicitly so experiments reproduce.
#ifndef LSD_UTIL_RANDOM_H_
#define LSD_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lsd {

// xoshiro256** — small, fast, good-quality; independent of libstdc++'s
// distribution implementations so streams are stable across platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t Next();

  // Uniform in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound);

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform in [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

 private:
  uint64_t s_[4];
};

// Samples from a Zipf(s) distribution over {0, .., n-1}. Precomputes the
// CDF once; sampling is a binary search.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double exponent);

  size_t Sample(Rng& rng) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace lsd

#endif  // LSD_UTIL_RANDOM_H_
