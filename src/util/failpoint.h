// Deterministic fault injection for torture-testing the durability and
// serving stack (the paper defers implementation concerns to Sec 6.2;
// a store that owns its own persistence has to own its failure testing
// too, the way RocksDB does with its SyncPoint/FaultInjection layers).
//
// A *failpoint* is a named site compiled into IO / commit paths:
//
//   LSD_FAILPOINT(wal.fsync);                       // crash or delay here
//   LSD_FAILPOINT_RETURN_IF_SET(wal.append.write);  // or inject an error
//   LSD_FAILPOINT_HIT(wal.append.write, hit);       // or inspect the hit
//
// Tests (or the LSD_FAILPOINTS environment variable) attach a *policy*
// to a site: return-error, short-write (the caller truncates its write
// to `arg` bytes), crash-here (immediate _exit, no buffer flushing —
// a faithful process kill), or delay. Policies trigger deterministically:
// optional skip count, fire limit, and a probability drawn from a
// per-site RNG seeded by SetSeed(), so a failing torture run replays
// exactly with the same seed.
//
// Zero overhead when disabled: with the LSD_FAILPOINTS cmake option OFF
// the macros compile to nothing (no branch, no site string in the
// binary). When compiled in but unarmed, a site costs one relaxed
// atomic load.
//
// Environment syntax (parsed once at process start):
//   LSD_FAILPOINTS="site=action[(arg)][@skip][*max_fires][%prob];..."
//   LSD_FAILPOINTS="seed=42;wal.append.write=error%0.01;wal.fsync=crash@3"
// Actions: error | crash | delay(ms) | short(bytes) | off.
#ifndef LSD_UTIL_FAILPOINT_H_
#define LSD_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

#ifndef LSD_FAILPOINTS_ENABLED
#define LSD_FAILPOINTS_ENABLED 0
#endif

namespace lsd {
namespace failpoint {

enum class Action : uint8_t {
  kOff = 0,
  kError,       // caller returns Status::IoError
  kShortWrite,  // caller writes only the first `arg` bytes, then errors
  kCrash,       // _exit(kCrashExitStatus) at the site
  kDelay,       // sleep `arg` milliseconds at the site
};

// The exit status a crash-here failpoint dies with, so harnesses can
// tell an injected kill from a real bug.
constexpr int kCrashExitStatus = 113;

struct Policy {
  Action action = Action::kOff;
  uint64_t arg = 0;         // delay ms / short-write byte budget
  uint32_t skip = 0;        // let the first `skip` hits pass untouched
  int32_t max_fires = -1;   // stop firing after this many (-1: unlimited)
  double probability = 1.0; // per-hit firing probability (seeded RNG)
};

// What a site evaluation decided. Error/short-write outcomes are acted
// on by the caller; crash/delay have already happened by the time the
// caller sees the hit.
struct Hit {
  Action action = Action::kOff;
  uint64_t arg = 0;
  bool fired() const { return action != Action::kOff; }
};

// Attaches (or with kOff, detaches) a policy. Resets the site's hit and
// fire counters. Thread-safe.
void Set(const std::string& site, const Policy& policy);
void Clear(const std::string& site);
void ClearAll();

// Seeds every site's probability stream. Call before Set/Configure for
// reproducible probabilistic policies.
void SetSeed(uint64_t seed);

// Parses the LSD_FAILPOINTS grammar above and installs the policies.
Status Configure(const std::string& spec);

// Times the site was evaluated while any policy was armed, and times
// its own policy fired. 0 for unknown sites.
uint64_t Hits(const std::string& site);
uint64_t Fires(const std::string& site);

// Every site that currently has a policy or has been evaluated while
// armed, sorted. (Sites register lazily on first evaluation.)
std::vector<std::string> KnownSites();

// True when at least one policy is armed (test observability).
bool Armed();

// RAII policy for tests: Set on construction, Clear on destruction.
class Scoped {
 public:
  Scoped(std::string site, const Policy& policy) : site_(std::move(site)) {
    Set(site_, policy);
  }
  ~Scoped() { Clear(site_); }
  Scoped(const Scoped&) = delete;
  Scoped& operator=(const Scoped&) = delete;

 private:
  std::string site_;
};

namespace internal {

extern std::atomic<uint32_t> g_armed;

// Slow path: looks up the site's policy, applies skip/limit/probability,
// executes crash/delay inline, and returns error/short-write hits to
// the caller. Registers the site on first evaluation.
Hit Evaluate(const char* site);

}  // namespace internal
}  // namespace failpoint
}  // namespace lsd

#if LSD_FAILPOINTS_ENABLED

// Evaluates a site for crash/delay injection (error outcomes ignored).
#define LSD_FAILPOINT(site)                                              \
  do {                                                                   \
    if (::lsd::failpoint::internal::g_armed.load(                        \
            std::memory_order_relaxed) != 0) {                           \
      (void)::lsd::failpoint::internal::Evaluate(#site);                 \
    }                                                                    \
  } while (0)

// Evaluates a site; on an injected error, returns IoError from the
// enclosing Status-returning function.
#define LSD_FAILPOINT_RETURN_IF_SET(site)                                \
  do {                                                                   \
    if (::lsd::failpoint::internal::g_armed.load(                        \
            std::memory_order_relaxed) != 0) {                           \
      ::lsd::failpoint::Hit _lsd_fp_hit =                                \
          ::lsd::failpoint::internal::Evaluate(#site);                   \
      if (_lsd_fp_hit.action == ::lsd::failpoint::Action::kError) {      \
        return ::lsd::Status::IoError(                                   \
            "injected failure at failpoint '" #site "'");                \
      }                                                                  \
    }                                                                    \
  } while (0)

// Declares `var` (a failpoint::Hit) describing this evaluation, for
// callers that must act on short-write budgets themselves.
#define LSD_FAILPOINT_HIT(site, var)                                     \
  ::lsd::failpoint::Hit var;                                             \
  do {                                                                   \
    if (::lsd::failpoint::internal::g_armed.load(                        \
            std::memory_order_relaxed) != 0) {                           \
      var = ::lsd::failpoint::internal::Evaluate(#site);                 \
    }                                                                    \
  } while (0)

#else  // !LSD_FAILPOINTS_ENABLED

#define LSD_FAILPOINT(site) \
  do {                      \
  } while (0)
#define LSD_FAILPOINT_RETURN_IF_SET(site) \
  do {                                    \
  } while (0)
#define LSD_FAILPOINT_HIT(site, var) ::lsd::failpoint::Hit var

#endif  // LSD_FAILPOINTS_ENABLED

#endif  // LSD_UTIL_FAILPOINT_H_
