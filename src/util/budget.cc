#include "util/budget.h"

namespace lsd {

std::string_view CancelReasonName(CancelReason reason) {
  switch (reason) {
    case CancelReason::kNone:
      return "none";
    case CancelReason::kDeadline:
      return "deadline";
    case CancelReason::kBudget:
      return "budget";
    case CancelReason::kDisconnect:
      return "disconnect";
    case CancelReason::kShed:
      return "shed";
  }
  return "unknown";
}

Status QueryBudget::CancelStatus(CancelReason reason) {
  switch (reason) {
    case CancelReason::kDeadline:
      return Status::DeadlineExceeded("request deadline exceeded");
    case CancelReason::kBudget:
      return Status::ResourceExhausted("step budget exceeded");
    case CancelReason::kDisconnect:
      return Status::Cancelled("cancelled: client disconnected");
    case CancelReason::kShed:
      return Status::ResourceExhausted(
          "shed: server overloaded, expensive query rejected");
    case CancelReason::kNone:
      break;
  }
  return Status::Cancelled("cancelled");
}

}  // namespace lsd
