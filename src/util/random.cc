#include "util/random.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lsd {

namespace {
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return NextDouble() < p;
}

ZipfSampler::ZipfSampler(size_t n, double exponent) {
  assert(n > 0);
  cdf_.resize(n);
  double sum = 0;
  for (size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cdf_[i] = sum;
  }
  for (size_t i = 0; i < n; ++i) cdf_[i] /= sum;
}

size_t ZipfSampler::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace lsd
