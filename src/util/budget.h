// Cooperative cancellation and resource budgets for long-running
// evaluation. A QueryBudget is a shared token carrying a hard deadline,
// a step cap, and an atomic cancel flag; every long loop in the stack
// (matcher enumeration, merge joins, closure rounds, probing waves,
// proximity BFS, composition DFS, navigation scans) holds a pointer to
// one and checks it at coarse boundaries.
//
// Cost model: the per-iteration fast path must be nearly free, so loops
// do not call QueryBudget::Charge directly — they go through a local
// BudgetTicker whose Tick() is a plain decrement that only falls through
// to the shared token (atomic add + clock read) once every kStride
// iterations. Each thread of a parallel phase gets its own ticker over
// the shared budget; the step counter is atomic, so caps are enforced
// across threads.
//
// A null budget pointer means "ungoverned" everywhere and costs one
// branch per stride at most; all existing single-user paths (lsd_shell,
// library embedding) pass nullptr and behave exactly as before.
#ifndef LSD_UTIL_BUDGET_H_
#define LSD_UTIL_BUDGET_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace lsd {

// Why a request was cancelled; stamped into the token by the canceller
// and folded into the typed Status the worker unwinds with.
enum class CancelReason : uint8_t {
  kNone = 0,
  kDeadline,    // hard per-request deadline passed
  kBudget,      // cumulative step budget spent
  kDisconnect,  // peer went away; nobody is waiting for the answer
  kShed,        // overload monitor shed this query before/while running
};

std::string_view CancelReasonName(CancelReason reason);

class QueryBudget {
 public:
  using Clock = std::chrono::steady_clock;

  QueryBudget() = default;
  // deadline: absolute point after which Charge() fails (no deadline if
  // omitted). max_steps: cap on total charged steps, 0 = unlimited.
  explicit QueryBudget(Clock::time_point deadline, uint64_t max_steps = 0)
      : deadline_(deadline), has_deadline_(true), max_steps_(max_steps) {}
  explicit QueryBudget(std::chrono::milliseconds timeout,
                       uint64_t max_steps = 0)
      : QueryBudget(Clock::now() + timeout, max_steps) {}

  QueryBudget(const QueryBudget&) = delete;
  QueryBudget& operator=(const QueryBudget&) = delete;

  // Stamps the cancel flag. Safe from any thread; first reason wins so a
  // late disconnect does not relabel a deadline kill.
  void Cancel(CancelReason reason) const {
    uint8_t expected = 0;
    cancelled_.compare_exchange_strong(expected,
                                       static_cast<uint8_t>(reason),
                                       std::memory_order_relaxed);
  }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed) != 0;
  }
  CancelReason cancel_reason() const {
    return static_cast<CancelReason>(
        cancelled_.load(std::memory_order_relaxed));
  }

  uint64_t steps() const { return steps_.load(std::memory_order_relaxed); }
  bool has_deadline() const { return has_deadline_; }
  Clock::time_point deadline() const { return deadline_; }

  // Charges `n` steps and reports whether evaluation may continue. The
  // typed error names what tripped: cancel flag > deadline > step cap.
  // Members are mutable so a `const QueryBudget*` threads through const
  // read paths; Charge is logically const (it only advances accounting).
  Status Charge(uint64_t n) const {
    const uint8_t flag = cancelled_.load(std::memory_order_relaxed);
    if (flag != 0) return CancelStatus(static_cast<CancelReason>(flag));
    if (has_deadline_ && Clock::now() >= deadline_) {
      Cancel(CancelReason::kDeadline);
      return CancelStatus(CancelReason::kDeadline);
    }
    const uint64_t used = steps_.fetch_add(n, std::memory_order_relaxed) + n;
    if (max_steps_ != 0 && used > max_steps_) {
      Cancel(CancelReason::kBudget);
      return CancelStatus(CancelReason::kBudget);
    }
    return Status::OK();
  }

  // Charge(0): re-checks flag/deadline without consuming budget. Use at
  // phase boundaries (wave end, round start, pre-commit).
  Status Check() const { return Charge(0); }

  // The typed Status a tripped budget unwinds with; also used by the
  // server to classify replies without string matching.
  static Status CancelStatus(CancelReason reason);

 private:
  mutable std::atomic<uint8_t> cancelled_{0};
  Clock::time_point deadline_{};
  bool has_deadline_ = false;
  uint64_t max_steps_ = 0;
  mutable std::atomic<uint64_t> steps_{0};
};

// Per-thread amortizer over a shared QueryBudget. Tick() costs one
// decrement + branch until the stride is spent, then settles the whole
// stride against the shared token (one atomic add, one clock read).
class BudgetTicker {
 public:
  // One clock read / atomic settle per this many Tick()s. Chosen so even
  // ~100ns/iteration loops check the clock every ~100µs — far inside any
  // practical deadline grace — while keeping overhead under measurement
  // noise (bench-verified ≤2%).
  static constexpr uint32_t kStride = 1024;

  explicit BudgetTicker(const QueryBudget* budget)
      : budget_(budget), countdown_(kStride) {}

  // Per-iteration fast path: true while evaluation may continue. Returns
  // bool, not Status — constructing even an OK Status per enumerated
  // fact (its empty message string) is measurable in the matcher's
  // tightest loop. On false the trip's typed status is in trip().
  bool TickOk() {
    if (budget_ == nullptr || --countdown_ != 0) return true;
    countdown_ = kStride;
    trip_ = budget_->Charge(kStride);
    return trip_.ok();
  }

  // Status-returning convenience for call sites outside per-fact loops.
  Status Tick() { return TickOk() ? Status::OK() : trip_; }

  // The typed error of the settle that tripped; OK until TickOk() has
  // returned false.
  const Status& trip() const { return trip_; }

  const QueryBudget* budget() const { return budget_; }

 private:
  const QueryBudget* budget_;
  uint32_t countdown_;
  Status trip_;
};

}  // namespace lsd

#endif  // LSD_UTIL_BUDGET_H_
