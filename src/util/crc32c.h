// CRC32C (Castagnoli polynomial, the checksum RocksDB/LevelDB use for
// their logs). Software slicing-by-8 table implementation: the WAL's
// records are small and appended on the single writer path, so a few
// GB/s is far beyond what the log ever needs; no SSE4.2 dependency.
//
// Burst-error property: CRC32C detects every error burst shorter than
// 32 bits, so any single flipped byte anywhere in a checked record is
// caught deterministically, not just probabilistically.
#ifndef LSD_UTIL_CRC32C_H_
#define LSD_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace lsd {

// Extends `crc` (the running checksum, 0 for a fresh one) over
// `data[0, n)`. Compose by chaining calls.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

}  // namespace lsd

#endif  // LSD_UTIL_CRC32C_H_
