// Exception-free error handling for lsd, in the spirit of
// absl::Status / rocksdb::Status. A Status is either OK or carries an
// error code plus a human-readable message. StatusOr<T> couples a Status
// with a value that is present exactly when the status is OK.
#ifndef LSD_UTIL_STATUS_H_
#define LSD_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace lsd {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kDataLoss,
  kIntegrityViolation,  // closure contains contradictory facts
  kParseError,          // query / fact-file syntax error
  kIoError,
  kDeadlineExceeded,    // request overran its hard deadline
  kCancelled,           // caller abandoned the request (disconnect etc.)
  kResourceExhausted,   // step/row budget spent, or load shed
  kAborted,             // optimistic-concurrency conflict; safe to retry
};

// Returns the canonical name for a code, e.g. "InvalidArgument".
std::string_view StatusCodeToString(StatusCode code);

class Status {
 public:
  // An OK status. Cheap: no allocation.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status IntegrityViolation(std::string msg) {
    return Status(StatusCode::kIntegrityViolation, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsIntegrityViolation() const {
    return code_ == StatusCode::kIntegrityViolation;
  }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

template <typename T>
class StatusOr {
 public:
  // Intentionally implicit, so `return MakeThing();` and
  // `return Status::NotFound(...)` both work, mirroring absl::StatusOr.
  StatusOr(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }
  StatusOr(T value) : status_(), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates a non-OK status out of the current function.
#define LSD_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::lsd::Status _st = (expr);              \
    if (!_st.ok()) return _st;               \
  } while (0)

// Evaluates a StatusOr expression; on error returns the status, otherwise
// moves the value into `lhs`.
#define LSD_ASSIGN_OR_RETURN(lhs, expr)      \
  LSD_ASSIGN_OR_RETURN_IMPL(                 \
      LSD_STATUS_CONCAT(_statusor_, __LINE__), lhs, expr)
#define LSD_ASSIGN_OR_RETURN_IMPL(var, lhs, expr) \
  auto var = (expr);                              \
  if (!var.ok()) return var.status();             \
  lhs = std::move(var).value()
#define LSD_STATUS_CONCAT(a, b) LSD_STATUS_CONCAT_IMPL(a, b)
#define LSD_STATUS_CONCAT_IMPL(a, b) a##b

}  // namespace lsd

#endif  // LSD_UTIL_STATUS_H_
