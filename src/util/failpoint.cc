#include "util/failpoint.h"

#include <time.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

#include "util/string_util.h"

namespace lsd {
namespace failpoint {

namespace internal {
std::atomic<uint32_t> g_armed{0};
}  // namespace internal

namespace {

struct SiteState {
  Policy policy;
  uint64_t hits = 0;
  uint64_t fires = 0;
  uint64_t rng_stream = 0;  // seed ^ site hash, advanced per draw
};

struct Registry {
  std::mutex mu;
  std::map<std::string, SiteState> sites;
  uint64_t seed = 0x105DFA14;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: usable during shutdown
  return *r;
}

uint64_t SiteStream(uint64_t seed, const std::string& site) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return seed ^ h;
}

// splitmix64 step: cheap, stateless-per-draw, deterministic stream.
double NextProbabilityDraw(uint64_t* stream) {
  uint64_t z = (*stream += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) / 9007199254740992.0;  // [0,1)
}

void RecountArmedLocked(Registry& r) {
  uint32_t armed = 0;
  for (const auto& [name, state] : r.sites) {
    if (state.policy.action != Action::kOff) ++armed;
  }
  internal::g_armed.store(armed, std::memory_order_relaxed);
}

// Parses one "site=action[(arg)][@skip][*max][%prob]" entry.
Status ParseEntry(std::string_view entry) {
  size_t eq = entry.find('=');
  if (eq == std::string_view::npos) {
    return Status::InvalidArgument("failpoint entry missing '=': " +
                                   std::string(entry));
  }
  std::string site(StripWhitespace(entry.substr(0, eq)));
  std::string rest(StripWhitespace(entry.substr(eq + 1)));
  if (site.empty() || rest.empty()) {
    return Status::InvalidArgument("empty failpoint entry: " +
                                   std::string(entry));
  }
  if (site == "seed") {
    SetSeed(std::strtoull(rest.c_str(), nullptr, 10));
    return Status::OK();
  }

  Policy policy;
  // Peel modifiers off the tail, rightmost first.
  auto peel = [&](char marker, double* out_d, uint64_t* out_u) {
    size_t pos = rest.rfind(marker);
    if (pos == std::string::npos) return;
    std::string value = rest.substr(pos + 1);
    rest.resize(pos);
    if (out_d != nullptr) *out_d = std::atof(value.c_str());
    if (out_u != nullptr) {
      *out_u = std::strtoull(value.c_str(), nullptr, 10);
    }
  };
  double prob = 1.0;
  uint64_t skip = 0, max_fires_raw = 0;
  bool has_max = rest.find('*') != std::string::npos;
  peel('%', &prob, nullptr);
  peel('*', nullptr, &max_fires_raw);
  peel('@', nullptr, &skip);
  policy.probability = prob;
  policy.skip = static_cast<uint32_t>(skip);
  policy.max_fires = has_max ? static_cast<int32_t>(max_fires_raw) : -1;

  std::string action = rest;
  uint64_t arg = 0;
  size_t paren = rest.find('(');
  if (paren != std::string::npos && rest.back() == ')') {
    action = rest.substr(0, paren);
    arg = std::strtoull(
        rest.substr(paren + 1, rest.size() - paren - 2).c_str(), nullptr,
        10);
  }
  policy.arg = arg;
  if (action == "off") {
    policy.action = Action::kOff;
  } else if (action == "error") {
    policy.action = Action::kError;
  } else if (action == "short") {
    policy.action = Action::kShortWrite;
  } else if (action == "crash") {
    policy.action = Action::kCrash;
  } else if (action == "delay") {
    policy.action = Action::kDelay;
  } else {
    return Status::InvalidArgument("unknown failpoint action '" + action +
                                   "' in: " + std::string(entry));
  }
  Set(site, policy);
  return Status::OK();
}

#if LSD_FAILPOINTS_ENABLED
// Arms policies from the environment before main() runs, so every
// binary (tools, benches, forked torture children) honors
// LSD_FAILPOINTS without explicit plumbing.
const bool g_env_configured = [] {
  const char* spec = std::getenv("LSD_FAILPOINTS");
  if (spec != nullptr && *spec != '\0') {
    Status s = Configure(spec);
    if (!s.ok()) {
      // Deliberately loud: a typo silently disarming a torture run is
      // worse than noise on stderr.
      std::fprintf(stderr, "LSD_FAILPOINTS: %s\n", s.ToString().c_str());
    }
  }
  return true;
}();
#endif

}  // namespace

void Set(const std::string& site, const Policy& policy) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  SiteState& state = r.sites[site];
  state.policy = policy;
  state.hits = 0;
  state.fires = 0;
  state.rng_stream = SiteStream(r.seed, site);
  RecountArmedLocked(r);
}

void Clear(const std::string& site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(site);
  if (it != r.sites.end()) it->second.policy = Policy{};
  RecountArmedLocked(r);
}

void ClearAll() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [name, state] : r.sites) state.policy = Policy{};
  RecountArmedLocked(r);
}

void SetSeed(uint64_t seed) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.seed = seed;
  for (auto& [name, state] : r.sites) {
    state.rng_stream = SiteStream(seed, name);
  }
}

Status Configure(const std::string& spec) {
  size_t start = 0;
  while (start <= spec.size()) {
    size_t end = spec.find_first_of(";,", start);
    if (end == std::string::npos) end = spec.size();
    std::string_view entry =
        StripWhitespace(std::string_view(spec).substr(start, end - start));
    if (!entry.empty()) {
      LSD_RETURN_IF_ERROR(ParseEntry(entry));
    }
    start = end + 1;
  }
  return Status::OK();
}

uint64_t Hits(const std::string& site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.hits;
}

uint64_t Fires(const std::string& site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.fires;
}

std::vector<std::string> KnownSites() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::string> names;
  names.reserve(r.sites.size());
  for (const auto& [name, state] : r.sites) names.push_back(name);
  return names;
}

bool Armed() {
  return internal::g_armed.load(std::memory_order_relaxed) != 0;
}

namespace internal {

Hit Evaluate(const char* site) {
  Hit hit;
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.sites.find(site);
    if (it == r.sites.end()) {
      // Lazy registration: the site becomes visible to KnownSites().
      SiteState& fresh = r.sites[site];
      fresh.rng_stream = SiteStream(r.seed, site);
      ++fresh.hits;
      return hit;
    }
    SiteState& state = it->second;
    uint64_t hit_index = state.hits++;
    const Policy& p = state.policy;
    if (p.action == Action::kOff) return hit;
    if (hit_index < p.skip) return hit;
    if (p.max_fires >= 0 &&
        state.fires >= static_cast<uint64_t>(p.max_fires)) {
      return hit;
    }
    if (p.probability < 1.0 &&
        NextProbabilityDraw(&state.rng_stream) >= p.probability) {
      return hit;
    }
    ++state.fires;
    hit.action = p.action;
    hit.arg = p.arg;
  }
  // Act outside the lock: a crash must not leave the registry mutex in
  // a poisoned state for atexit paths, and a delay must not serialize
  // every other site behind it.
  switch (hit.action) {
    case Action::kCrash:
      // _exit, not exit: no stream flushing, no atexit hooks — exactly
      // what a SIGKILL-style crash does to user-space buffers.
      ::_exit(kCrashExitStatus);
      break;
    case Action::kDelay: {
      struct timespec ts;
      ts.tv_sec = static_cast<time_t>(hit.arg / 1000);
      ts.tv_nsec = static_cast<long>(hit.arg % 1000) * 1000000L;
      ::nanosleep(&ts, nullptr);
      hit.action = Action::kOff;  // already served; caller need not act
      break;
    }
    default:
      break;
  }
  return hit;
}

}  // namespace internal

}  // namespace failpoint
}  // namespace lsd
