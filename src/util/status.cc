#include "util/status.h"

namespace lsd {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kIntegrityViolation:
      return "IntegrityViolation";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kAborted:
      return "Aborted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace lsd
