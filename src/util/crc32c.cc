#include "util/crc32c.h"

#include <array>

namespace lsd {

namespace {

constexpr uint32_t kPoly = 0x82f63b78u;  // reflected CRC32C polynomial

struct Tables {
  // t[k][b]: the CRC contribution of byte value b at lag k (slicing-by-8).
  uint32_t t[8][256];
};

constexpr Tables BuildTables() {
  Tables tables{};
  for (uint32_t b = 0; b < 256; ++b) {
    uint32_t crc = b;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    tables.t[0][b] = crc;
  }
  for (int k = 1; k < 8; ++k) {
    for (uint32_t b = 0; b < 256; ++b) {
      uint32_t crc = tables.t[k - 1][b];
      tables.t[k][b] = tables.t[0][crc & 0xff] ^ (crc >> 8);
    }
  }
  return tables;
}

constexpr Tables kTables = BuildTables();

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  while (n >= 8) {
    // Little-endian-agnostic: combine bytes explicitly.
    uint32_t low = crc ^ (static_cast<uint32_t>(p[0]) |
                          static_cast<uint32_t>(p[1]) << 8 |
                          static_cast<uint32_t>(p[2]) << 16 |
                          static_cast<uint32_t>(p[3]) << 24);
    crc = kTables.t[7][low & 0xff] ^ kTables.t[6][(low >> 8) & 0xff] ^
          kTables.t[5][(low >> 16) & 0xff] ^ kTables.t[4][low >> 24] ^
          kTables.t[3][p[4]] ^ kTables.t[2][p[5]] ^ kTables.t[1][p[6]] ^
          kTables.t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = kTables.t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace lsd
