// Small string helpers shared across lsd modules.
#ifndef LSD_UTIL_STRING_UTIL_H_
#define LSD_UTIL_STRING_UTIL_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lsd {

// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

// Splits on `sep`, keeping empty pieces.
std::vector<std::string_view> Split(std::string_view s, char sep);

// Uppercases ASCII letters. Entity names in lsd are case-preserving but
// the paper's examples are uppercase; loaders normalize with this.
std::string AsciiToUpper(std::string_view s);
std::string AsciiToLower(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// Parses a string as a finite double. Accepts optional leading '$' (the
// paper writes salaries as $25000) and optional thousands-free integer or
// decimal forms. Returns nullopt for anything else.
std::optional<double> ParseNumericEntity(std::string_view s);

// Joins pieces with `sep`.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

}  // namespace lsd

#endif  // LSD_UTIL_STRING_UTIL_H_
