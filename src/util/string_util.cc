#include "util/string_util.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdlib>

namespace lsd {

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> Split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string AsciiToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = std::toupper(static_cast<unsigned char>(c));
  return out;
}

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = std::tolower(static_cast<unsigned char>(c));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::optional<double> ParseNumericEntity(std::string_view s) {
  if (!s.empty() && s.front() == '$') s.remove_prefix(1);
  if (s.empty()) return std::nullopt;
  // Reject forms std::from_chars would accept but we do not want as
  // numeric entities (hex, inf, nan handled by rejecting alpha starts).
  double value = 0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  if (!std::isfinite(value)) return std::nullopt;
  return value;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

}  // namespace lsd
