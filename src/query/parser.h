// Recursive-descent parser for the query language.
//
//   formula  := and_expr ('or' and_expr)*
//   and_expr := unary ('and' unary)*
//   unary    := ('exists'|'forall') variable+ unary
//             | '(' formula ')'          (when not an atom)
//             | atom
//   atom     := '(' term ',' term ',' term ')'
//   term     := entity | '?'name | '*'
//
// '*' mints a fresh anonymous free variable per occurrence (the paper's
// navigation shorthand, Sec 4.1). Entity names are interned into the
// supplied table.
#ifndef LSD_QUERY_PARSER_H_
#define LSD_QUERY_PARSER_H_

#include <string_view>

#include "query/ast.h"
#include "store/entity_table.h"
#include "util/status.h"

namespace lsd {

StatusOr<Query> ParseQuery(std::string_view text, EntityTable* entities);

}  // namespace lsd

#endif  // LSD_QUERY_PARSER_H_
