#include "query/ast.h"

#include <algorithm>

#include "store/entity_table.h"

namespace lsd {

std::unique_ptr<AstNode> AstNode::Atom(Template t) {
  auto node = std::make_unique<AstNode>();
  node->kind = NodeKind::kAtom;
  node->atom = t;
  return node;
}

std::unique_ptr<AstNode> AstNode::And(
    std::vector<std::unique_ptr<AstNode>> children) {
  auto node = std::make_unique<AstNode>();
  node->kind = NodeKind::kAnd;
  node->children = std::move(children);
  return node;
}

std::unique_ptr<AstNode> AstNode::Or(
    std::vector<std::unique_ptr<AstNode>> children) {
  auto node = std::make_unique<AstNode>();
  node->kind = NodeKind::kOr;
  node->children = std::move(children);
  return node;
}

std::unique_ptr<AstNode> AstNode::Exists(VarId var,
                                         std::unique_ptr<AstNode> child) {
  auto node = std::make_unique<AstNode>();
  node->kind = NodeKind::kExists;
  node->quantified_var = var;
  node->children.push_back(std::move(child));
  return node;
}

std::unique_ptr<AstNode> AstNode::Forall(VarId var,
                                         std::unique_ptr<AstNode> child) {
  auto node = std::make_unique<AstNode>();
  node->kind = NodeKind::kForall;
  node->quantified_var = var;
  node->children.push_back(std::move(child));
  return node;
}

std::unique_ptr<AstNode> AstNode::Clone() const {
  auto node = std::make_unique<AstNode>();
  node->kind = kind;
  node->atom = atom;
  node->quantified_var = quantified_var;
  node->children.reserve(children.size());
  for (const auto& c : children) node->children.push_back(c->Clone());
  return node;
}

namespace {

void CollectFreeVars(const AstNode& node, std::vector<VarId>& bound,
                     std::vector<VarId>& out) {
  switch (node.kind) {
    case NodeKind::kAtom: {
      std::vector<VarId> vars;
      node.atom.CollectVars(&vars);
      for (VarId v : vars) {
        if (std::find(bound.begin(), bound.end(), v) != bound.end()) {
          continue;
        }
        if (std::find(out.begin(), out.end(), v) == out.end()) {
          out.push_back(v);
        }
      }
      break;
    }
    case NodeKind::kAnd:
    case NodeKind::kOr:
      for (const auto& c : node.children) {
        CollectFreeVars(*c, bound, out);
      }
      break;
    case NodeKind::kExists:
    case NodeKind::kForall:
      bound.push_back(node.quantified_var);
      CollectFreeVars(*node.children[0], bound, out);
      bound.pop_back();
      break;
  }
}

std::string NodeString(const AstNode& node, const EntityTable& entities,
                       const std::vector<std::string>& var_names) {
  switch (node.kind) {
    case NodeKind::kAtom:
      return node.atom.DebugString(entities, var_names);
    case NodeKind::kAnd:
    case NodeKind::kOr: {
      std::string sep = node.kind == NodeKind::kAnd ? " and " : " or ";
      std::string out;
      for (size_t i = 0; i < node.children.size(); ++i) {
        if (i > 0) out += sep;
        const AstNode& c = *node.children[i];
        bool paren = c.kind == NodeKind::kOr || c.kind == NodeKind::kAnd;
        if (paren) out += "(";
        out += NodeString(c, entities, var_names);
        if (paren) out += ")";
      }
      return out;
    }
    case NodeKind::kExists:
    case NodeKind::kForall: {
      std::string kw = node.kind == NodeKind::kExists ? "exists" : "forall";
      std::string var = node.quantified_var < var_names.size()
                            ? var_names[node.quantified_var]
                            : "v" + std::to_string(node.quantified_var);
      return kw + " ?" + var + " (" +
             NodeString(*node.children[0], entities, var_names) + ")";
    }
  }
  return "<bad node>";
}

}  // namespace

std::vector<VarId> AstNode::FreeVars() const {
  std::vector<VarId> bound;
  std::vector<VarId> out;
  CollectFreeVars(*this, bound, out);
  return out;
}

Query Query::Clone() const {
  return Query(root_->Clone(), var_names_);
}

std::string Query::DebugString(const EntityTable& entities) const {
  if (root_ == nullptr) return "<empty>";
  return NodeString(*root_, entities, var_names_);
}

}  // namespace lsd
