#include "query/evaluator.h"

#include <algorithm>
#include <set>

#include "rules/matcher.h"

namespace lsd {

namespace {

// Recursive evaluation machinery. Bindings are threaded through a single
// Binding object; each node unbinds what it bound before returning.
class EvalContext {
 public:
  EvalContext(const FactSource& view, const EntityTable& entities,
              JoinOrder join_order, PlannerCache* planner, bool merge_join,
              const QueryBudget* budget)
      : view_(view),
        entities_(entities),
        join_order_(join_order),
        planner_(planner),
        merge_join_(merge_join),
        budget_(budget) {}

  // Enumerates extensions of `b` satisfying `node`. `emit` returns false
  // to stop; `stopped` distinguishes early stop from exhaustion.
  Status Eval(const AstNode& node, Binding& b, const BindingVisitor& emit,
              bool& stopped) {
    switch (node.kind) {
      case NodeKind::kAtom:
        return EvalAtom(node, b, emit, stopped);
      case NodeKind::kAnd:
        return EvalAnd(node, b, emit, stopped);
      case NodeKind::kOr:
        return EvalOr(node, b, emit, stopped);
      case NodeKind::kExists:
        return EvalExists(node, b, emit, stopped);
      case NodeKind::kForall:
        return EvalForall(node, b, emit, stopped);
    }
    return Status::Internal("bad AST node kind");
  }

 private:
  Status EvalAtom(const AstNode& node, Binding& b,
                  const BindingVisitor& emit, bool& stopped) {
    std::vector<AtomSpec> specs{AtomSpec{node.atom, &view_}};
    Status status = MatchConjunction(
        std::move(specs), b, nullptr,
        [&](const Binding& bb) {
          if (!emit(bb)) {
            stopped = true;
            return false;
          }
          return true;
        },
        join_order_, planner_, merge_join_, budget_);
    return status;
  }

  Status EvalAnd(const AstNode& node, Binding& b,
                 const BindingVisitor& emit, bool& stopped) {
    // Atom children are joined by the matcher (ordered per the active
    // JoinOrder policy — by default a static cost-based plan); complex
    // children are chained afterwards, left to right, under each atom
    // match.
    std::vector<Template> atoms;
    std::vector<const AstNode*> complex;
    for (const auto& c : node.children) {
      if (c->kind == NodeKind::kAtom) {
        atoms.push_back(c->atom);
      } else {
        complex.push_back(c.get());
      }
    }

    Status status = Status::OK();
    std::function<bool(size_t, Binding&)> chain = [&](size_t i,
                                                      Binding& bb) -> bool {
      if (!status.ok() || stopped) return false;
      if (i == complex.size()) {
        if (!emit(bb)) {
          stopped = true;
          return false;
        }
        return true;
      }
      Status s = Eval(*complex[i], bb,
                      [&](const Binding&) { return chain(i + 1, bb); },
                      stopped);
      if (!s.ok()) status = s;
      return status.ok() && !stopped;
    };

    if (atoms.empty()) {
      chain(0, b);
      return status;
    }
    Status match_status = MatchConjunction(
        view_, atoms, b, nullptr,
        [&](const Binding&) { return chain(0, b); }, join_order_, planner_,
        merge_join_, budget_);
    if (!match_status.ok()) return match_status;
    return status;
  }

  Status EvalOr(const AstNode& node, Binding& b, const BindingVisitor& emit,
                bool& stopped) {
    // Safety: all branches must agree on their free variables, so a
    // satisfying tuple is well-defined.
    std::vector<VarId> expected = node.children[0]->FreeVars();
    std::sort(expected.begin(), expected.end());
    for (const auto& c : node.children) {
      std::vector<VarId> got = c->FreeVars();
      std::sort(got.begin(), got.end());
      if (got != expected) {
        return Status::InvalidArgument(
            "unsafe disjunction: branches bind different variables");
      }
    }
    std::vector<VarId> free = node.FreeVars();
    std::set<std::vector<EntityId>> seen;
    for (const auto& c : node.children) {
      Status s = Eval(*c, b,
                      [&](const Binding& bb) {
                        if (!seen.insert(bb.Project(free)).second) {
                          return true;  // already produced by a branch
                        }
                        return emit(bb);
                      },
                      stopped);
      if (!s.ok()) return s;
      if (stopped) break;
    }
    return Status::OK();
  }

  Status EvalExists(const AstNode& node, Binding& b,
                    const BindingVisitor& emit, bool& stopped) {
    const VarId qvar = node.quantified_var;
    // Shadow any outer binding of the quantified variable.
    const bool was_bound = b.IsBound(qvar);
    const EntityId old_value = was_bound ? b.Get(qvar) : kAnyEntity;
    b.Unset(qvar);

    std::vector<VarId> free = node.FreeVars();
    std::set<std::vector<EntityId>> seen;
    Status s = Eval(*node.children[0], b,
                    [&](const Binding& bb) {
                      if (!seen.insert(bb.Project(free)).second) {
                        return true;  // same witness tuple, new ?qvar
                      }
                      return emit(bb);
                    },
                    stopped);
    b.Unset(qvar);
    if (was_bound) b.Set(qvar, old_value);
    return s;
  }

  Status EvalForall(const AstNode& node, Binding& b,
                    const BindingVisitor& emit, bool& stopped) {
    const VarId qvar = node.quantified_var;
    // All other free variables must already be bound: a universal can
    // only be *checked*, not used to generate bindings.
    for (VarId v : node.FreeVars()) {
      if (!b.IsBound(v)) {
        return Status::InvalidArgument(
            "unsafe universal quantification: variable is unbound when "
            "the forall is checked; reorder the query");
      }
    }
    const bool was_bound = b.IsBound(qvar);
    const EntityId old_value = was_bound ? b.Get(qvar) : kAnyEntity;

    bool holds_for_all = true;
    const size_t n = entities_.size();
    BudgetTicker ticker(budget_);
    for (EntityId e = 0; e < n && holds_for_all; ++e) {
      if (!ticker.TickOk()) {
        b.Unset(qvar);
        if (was_bound) b.Set(qvar, old_value);
        return ticker.trip();
      }
      if (entities_.Kind(e) != EntityKind::kRegular) continue;
      b.Unset(qvar);
      b.Set(qvar, e);
      bool found = false;
      bool inner_stopped = false;
      Status s = Eval(*node.children[0], b,
                      [&](const Binding&) {
                        found = true;
                        return false;  // one witness suffices
                      },
                      inner_stopped);
      if (!s.ok()) {
        b.Unset(qvar);
        if (was_bound) b.Set(qvar, old_value);
        return s;
      }
      if (!found) holds_for_all = false;
    }
    b.Unset(qvar);
    if (was_bound) b.Set(qvar, old_value);
    if (holds_for_all) {
      if (!emit(b)) stopped = true;
    }
    return Status::OK();
  }

  const FactSource& view_;
  const EntityTable& entities_;
  JoinOrder join_order_;
  PlannerCache* planner_;
  bool merge_join_;
  const QueryBudget* budget_;
};

}  // namespace

StatusOr<ResultSet> Evaluator::Evaluate(const Query& query,
                                        const EvalOptions& options) const {
  if (query.root() == nullptr) {
    return Status::InvalidArgument("empty query");
  }
  ResultSet result;
  std::vector<VarId> free = query.FreeVars();
  result.column_vars = free;
  for (VarId v : free) result.columns.push_back(query.var_names()[v]);
  result.is_proposition = free.empty();

  std::set<std::vector<EntityId>> rows;
  Binding binding(query.num_vars());
  bool stopped = false;
  EvalContext ctx(*view_, *entities_, options.join_order, options.planner,
                  options.merge_join, options.budget);
  Status status = ctx.Eval(
      *query.root(), binding,
      [&](const Binding& b) {
        if (result.is_proposition) {
          result.truth = true;
          return false;  // one witness settles a proposition
        }
        rows.insert(b.Project(free));
        if (options.first_row_only) return false;
        if (rows.size() >= options.max_rows) {
          result.truncated = true;
          return false;
        }
        return true;
      },
      stopped);
  if (!status.ok()) return status;
  result.rows.assign(rows.begin(), rows.end());
  return result;
}

}  // namespace lsd
