// Abstract syntax for the paper's retrieval language (Sec 2.7):
// templates are the atomic formulas; formulas are closed under
// conjunction, disjunction, and existential/universal quantification.
// A query is a formula; its value is the set of tuples of entities that
// satisfy it when substituted for its free variables. A formula with no
// free variables is a proposition.
#ifndef LSD_QUERY_AST_H_
#define LSD_QUERY_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "rules/template.h"
#include "util/status.h"

namespace lsd {

class EntityTable;

enum class NodeKind : uint8_t {
  kAtom,    // a template
  kAnd,     // conjunction of children
  kOr,      // disjunction of children
  kExists,  // (∃ var) child
  kForall,  // (∀ var) child
};

struct AstNode {
  NodeKind kind = NodeKind::kAtom;
  Template atom;  // kAtom only
  std::vector<std::unique_ptr<AstNode>> children;
  VarId quantified_var = 0;  // kExists / kForall; child is children[0]

  static std::unique_ptr<AstNode> Atom(Template t);
  static std::unique_ptr<AstNode> And(
      std::vector<std::unique_ptr<AstNode>> children);
  static std::unique_ptr<AstNode> Or(
      std::vector<std::unique_ptr<AstNode>> children);
  static std::unique_ptr<AstNode> Exists(VarId var,
                                         std::unique_ptr<AstNode> child);
  static std::unique_ptr<AstNode> Forall(VarId var,
                                         std::unique_ptr<AstNode> child);

  std::unique_ptr<AstNode> Clone() const;

  // Variables free in this node (not bound by a quantifier within it),
  // deduplicated, in first-occurrence order.
  std::vector<VarId> FreeVars() const;
};

// A parsed query: AST plus the variable name table. Variable ids index
// var_names.
class Query {
 public:
  Query() = default;
  Query(std::unique_ptr<AstNode> root, std::vector<std::string> var_names)
      : root_(std::move(root)), var_names_(std::move(var_names)) {}

  Query(Query&&) = default;
  Query& operator=(Query&&) = default;

  const AstNode* root() const { return root_.get(); }
  AstNode* mutable_root() { return root_.get(); }
  void set_root(std::unique_ptr<AstNode> root) { root_ = std::move(root); }

  const std::vector<std::string>& var_names() const { return var_names_; }
  size_t num_vars() const { return var_names_.size(); }

  std::vector<VarId> FreeVars() const { return root_->FreeVars(); }
  bool IsProposition() const { return FreeVars().empty(); }

  Query Clone() const;

  // Renders the formula, e.g.
  // "(?X, IN, BOOK) and exists ?Y ((?X, AUTHOR, ?Y))".
  std::string DebugString(const EntityTable& entities) const;

 private:
  std::unique_ptr<AstNode> root_;
  std::vector<std::string> var_names_;
};

}  // namespace lsd

#endif  // LSD_QUERY_AST_H_
