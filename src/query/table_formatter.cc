#include "query/table_formatter.h"

#include <algorithm>

#include "util/string_util.h"

namespace lsd {

void TableFormatter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TableFormatter::Render() const {
  const size_t ncols = headers_.size();
  std::vector<size_t> widths(ncols);
  auto cell_width = [](const std::string& s) {
    size_t w = 0;
    for (std::string_view line : Split(s, '\n')) w = std::max(w, line.size());
    return w;
  };
  for (size_t c = 0; c < ncols; ++c) widths[c] = cell_width(headers_[c]);
  for (const auto& row : rows_) {
    for (size_t c = 0; c < ncols; ++c) {
      widths[c] = std::max(widths[c], cell_width(row[c]));
    }
  }

  auto rule_line = [&] {
    std::string out = "+";
    for (size_t c = 0; c < ncols; ++c) {
      out += std::string(widths[c] + 2, '-');
      out += "+";
    }
    out += "\n";
    return out;
  };
  auto render_cells = [&](const std::vector<std::string>& cells) {
    // Explode multi-line cells into stacked physical lines.
    std::vector<std::vector<std::string_view>> parts(ncols);
    size_t height = 1;
    for (size_t c = 0; c < ncols; ++c) {
      for (std::string_view line : Split(cells[c], '\n')) {
        parts[c].push_back(line);
      }
      height = std::max(height, parts[c].size());
    }
    std::string out;
    for (size_t h = 0; h < height; ++h) {
      out += "|";
      for (size_t c = 0; c < ncols; ++c) {
        std::string_view text = h < parts[c].size() ? parts[c][h] : "";
        out += " ";
        out += text;
        out += std::string(widths[c] - text.size() + 1, ' ');
        out += "|";
      }
      out += "\n";
    }
    return out;
  };

  std::string out = rule_line();
  out += render_cells(headers_);
  out += rule_line();
  for (const auto& row : rows_) out += render_cells(row);
  if (!rows_.empty()) out += rule_line();
  return out;
}

std::string FormatResult(const ResultSet& result,
                         const EntityTable& entities) {
  if (result.is_proposition) {
    return result.truth ? "true\n" : "false\n";
  }
  TableFormatter table(result.columns);
  for (const auto& row : result.rows) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (EntityId e : row) cells.push_back(entities.Name(e));
    table.AddRow(std::move(cells));
  }
  std::string out = table.Render();
  if (result.truncated) out += "(truncated)\n";
  return out;
}

}  // namespace lsd
