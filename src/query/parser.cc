#include "query/parser.h"

#include "query/lexer.h"
#include "util/string_util.h"

namespace lsd {

namespace {

class Parser {
 public:
  Parser(std::vector<Token> tokens, EntityTable* entities)
      : tokens_(std::move(tokens)), entities_(entities) {}

  StatusOr<Query> Run() {
    auto root = ParseFormula();
    if (!root.ok()) return root.status();
    if (Peek().kind != TokenKind::kEnd) {
      return Error("unexpected trailing input");
    }
    return Query(std::move(*root), std::move(var_names_));
  }

 private:
  using NodeResult = StatusOr<std::unique_ptr<AstNode>>;

  const Token& Peek() const { return tokens_[pos_]; }
  Token Take() { return tokens_[pos_++]; }

  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + " (offset " +
                              std::to_string(Peek().offset) + ")");
  }

  VarId InternVar(std::string_view name) {
    std::string upper = AsciiToUpper(name);
    for (size_t i = 0; i < var_names_.size(); ++i) {
      if (var_names_[i] == upper) return static_cast<VarId>(i);
    }
    var_names_.push_back(std::move(upper));
    return static_cast<VarId>(var_names_.size() - 1);
  }

  VarId FreshAnonymousVar() {
    var_names_.push_back("_" + std::to_string(++anon_counter_));
    return static_cast<VarId>(var_names_.size() - 1);
  }

  NodeResult ParseFormula() {
    auto first = ParseAndExpr();
    if (!first.ok()) return first;
    if (Peek().kind != TokenKind::kOr) return first;
    std::vector<std::unique_ptr<AstNode>> children;
    children.push_back(std::move(*first));
    while (Peek().kind == TokenKind::kOr) {
      Take();
      auto next = ParseAndExpr();
      if (!next.ok()) return next;
      children.push_back(std::move(*next));
    }
    return AstNode::Or(std::move(children));
  }

  NodeResult ParseAndExpr() {
    auto first = ParseUnary();
    if (!first.ok()) return first;
    if (Peek().kind != TokenKind::kAnd) return first;
    std::vector<std::unique_ptr<AstNode>> children;
    children.push_back(std::move(*first));
    while (Peek().kind == TokenKind::kAnd) {
      Take();
      auto next = ParseUnary();
      if (!next.ok()) return next;
      children.push_back(std::move(*next));
    }
    return AstNode::And(std::move(children));
  }

  NodeResult ParseUnary() {
    const Token& tok = Peek();
    if (tok.kind == TokenKind::kExists || tok.kind == TokenKind::kForall) {
      bool exists = tok.kind == TokenKind::kExists;
      Take();
      std::vector<VarId> vars;
      while (Peek().kind == TokenKind::kVariable) {
        vars.push_back(InternVar(Take().text));
      }
      if (vars.empty()) {
        return Error("quantifier needs at least one ?variable");
      }
      auto child = ParseUnary();
      if (!child.ok()) return child;
      std::unique_ptr<AstNode> node = std::move(*child);
      // Innermost variable binds closest.
      for (auto it = vars.rbegin(); it != vars.rend(); ++it) {
        node = exists ? AstNode::Exists(*it, std::move(node))
                      : AstNode::Forall(*it, std::move(node));
      }
      return node;
    }
    if (tok.kind != TokenKind::kLParen) {
      return Error("expected '(', 'exists' or 'forall'");
    }
    // '(' starts either an atom or a parenthesized formula: a formula
    // begins with '(', 'exists' or 'forall'; an atom's first position is
    // a term.
    const Token& next = tokens_[pos_ + 1];
    if (next.kind == TokenKind::kLParen || next.kind == TokenKind::kExists ||
        next.kind == TokenKind::kForall) {
      Take();  // '('
      auto inner = ParseFormula();
      if (!inner.ok()) return inner;
      if (Peek().kind != TokenKind::kRParen) {
        return Error("expected ')'");
      }
      Take();
      return inner;
    }
    return ParseAtom();
  }

  NodeResult ParseAtom() {
    if (Take().kind != TokenKind::kLParen) {
      return Error("expected '(' to start a template");
    }
    Term terms[3];
    for (int i = 0; i < 3; ++i) {
      auto term = ParseTerm();
      if (!term.ok()) return term.status();
      terms[i] = *term;
      if (i < 2) {
        if (Peek().kind != TokenKind::kComma) {
          return Error("expected ',' in template");
        }
        Take();
      }
    }
    if (Peek().kind != TokenKind::kRParen) {
      return Error("expected ')' to close template");
    }
    Take();
    return AstNode::Atom(Template(terms[0], terms[1], terms[2]));
  }

  StatusOr<Term> ParseTerm() {
    Token tok = Take();
    switch (tok.kind) {
      case TokenKind::kStar:
        return Term::Var(FreshAnonymousVar());
      case TokenKind::kVariable:
        return Term::Var(InternVar(tok.text));
      case TokenKind::kEntity:
        return Term::Entity(entities_->Intern(tok.text));
      default:
        return Status::ParseError("expected a term (entity, ?var or *) at "
                                  "offset " +
                                  std::to_string(tok.offset));
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  EntityTable* entities_;
  std::vector<std::string> var_names_;
  int anon_counter_ = 0;
};

}  // namespace

StatusOr<Query> ParseQuery(std::string_view text, EntityTable* entities) {
  LSD_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens), entities);
  return parser.Run();
}

}  // namespace lsd
