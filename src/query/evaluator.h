// Query evaluation over a closure view (Sec 2.7).
//
// Semantics: the value of a query Q(x1..xn) is the set of entity tuples
// that satisfy it; a closed formula is a proposition with a truth value.
// Per the paper, a template predicate is satisfied when it matches a
// non-empty set of facts in the database closure.
//
// Safety restrictions (reported as InvalidArgument):
//   - every disjunct of an 'or' must have the same free variables;
//   - a 'forall' may only be checked once its other free variables are
//     bound (place it after the atoms that bind them);
//   - comparison atoms need at least one bound operand.
// Universal quantification ranges over the active domain: all regular
// (non-builtin, non-composed) interned entities.
#ifndef LSD_QUERY_EVALUATOR_H_
#define LSD_QUERY_EVALUATOR_H_

#include <string>
#include <vector>

#include "query/ast.h"
#include "rules/matcher.h"
#include "store/entity_table.h"
#include "store/fact_store.h"
#include "util/status.h"

namespace lsd {

struct EvalOptions {
  // Stops enumeration after this many result rows; the result is marked
  // truncated rather than failing.
  size_t max_rows = 1'000'000;

  // Probing only needs to know whether a query succeeds; stop at the
  // first satisfying row. Pushed down into the join: the matcher's
  // enumeration short-circuits at the first complete binding instead of
  // materializing rows that are then discarded.
  bool first_row_only = false;

  // Conjunct ordering policy (ablation E11). The default is the static
  // cost-based, connectivity-aware planner; kBoundCount (the former
  // default) and kFixed remain as ablations.
  JoinOrder join_order = JoinOrder::kEstimatedCost;

  // Order-exploiting merge-join execution path (galloping intersection
  // of sorted frozen-tier runs when two conjuncts share their only free
  // variable). Off is an ablation: results are identical either way.
  bool merge_join = true;

  // Optional shared plan cache for kEstimatedCost. Borrowed; may be
  // null (each conjunction is then planned on the spot). Callers
  // evaluating many same-shaped queries against one closure snapshot
  // (e.g. a probing wave) should share one cache.
  PlannerCache* planner = nullptr;

  // Optional cooperative cancellation / deadline token. Borrowed; must
  // outlive the Evaluate call. Ticked per enumerated fact inside the
  // matcher and per candidate entity in universal quantification; a
  // tripped budget aborts evaluation with its typed error
  // (DeadlineExceeded / ResourceExhausted / Cancelled).
  const QueryBudget* budget = nullptr;
};

struct ResultSet {
  std::vector<std::string> columns;   // free variable names, query order
  std::vector<VarId> column_vars;
  std::vector<std::vector<EntityId>> rows;  // sorted, duplicate-free
  bool is_proposition = false;
  bool truth = false;  // propositions only
  bool truncated = false;

  // The paper's success criterion (Sec 5): non-empty answer / true
  // proposition.
  bool Success() const { return is_proposition ? truth : !rows.empty(); }
};

class Evaluator {
 public:
  // Both borrowed; must outlive the evaluator.
  Evaluator(const FactSource* view, const EntityTable* entities)
      : view_(view), entities_(entities) {}

  StatusOr<ResultSet> Evaluate(const Query& query,
                               const EvalOptions& options = {}) const;

 private:
  const FactSource* view_;
  const EntityTable* entities_;
};

}  // namespace lsd

#endif  // LSD_QUERY_EVALUATOR_H_
