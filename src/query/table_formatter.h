// ASCII table rendering for query results and browsing views, in the
// spirit of the paper's example tables (Sec 4.1, 6.1).
#ifndef LSD_QUERY_TABLE_FORMATTER_H_
#define LSD_QUERY_TABLE_FORMATTER_H_

#include <string>
#include <vector>

#include "query/evaluator.h"
#include "store/entity_table.h"

namespace lsd {

// Generic fixed-width table. Cells may be multi-line (embedded '\n'),
// which renders as stacked values in one row — the paper's non-first-
// normal-form relation() output (Sec 6.1).
class TableFormatter {
 public:
  explicit TableFormatter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells);

  std::string Render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Renders a ResultSet: single free variable -> one column; otherwise a
// table with one column per free variable. Propositions render as
// "true"/"false".
std::string FormatResult(const ResultSet& result,
                         const EntityTable& entities);

}  // namespace lsd

#endif  // LSD_QUERY_TABLE_FORMATTER_H_
