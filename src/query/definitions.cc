#include "query/definitions.h"

#include <algorithm>

#include "query/parser.h"
#include "util/string_util.h"

namespace lsd {

namespace {

// Splits "name(a, b, c)" into the name and raw argument tokens.
Status SplitCall(std::string_view text, std::string* name,
                 std::vector<std::string>* args) {
  text = StripWhitespace(text);
  size_t open = text.find('(');
  if (open == std::string_view::npos || text.back() != ')') {
    return Status::ParseError("expected name(arg, ...): " +
                              std::string(text));
  }
  *name = AsciiToLower(StripWhitespace(text.substr(0, open)));
  if (name->empty()) {
    return Status::ParseError("missing definition name");
  }
  std::string_view inner = text.substr(open + 1, text.size() - open - 2);
  if (!StripWhitespace(inner).empty()) {
    for (std::string_view piece : Split(inner, ',')) {
      piece = StripWhitespace(piece);
      if (piece.empty()) {
        return Status::ParseError("empty argument in call: " +
                                  std::string(text));
      }
      args->push_back(std::string(piece));
    }
  }
  return Status::OK();
}

// Replaces occurrences of the variable `from` with `to` in a subtree.
void SubstituteVar(AstNode* node, VarId from, Term to) {
  switch (node->kind) {
    case NodeKind::kAtom:
      for (int i = 0; i < 3; ++i) {
        Term& term = node->atom.at(i);
        if (term.is_variable() && term.var() == from) term = to;
      }
      break;
    case NodeKind::kAnd:
    case NodeKind::kOr:
      for (auto& c : node->children) SubstituteVar(c.get(), from, to);
      break;
    case NodeKind::kExists:
    case NodeKind::kForall:
      // A quantifier shadowing the parameter stops the substitution.
      if (node->quantified_var == from) return;
      SubstituteVar(node->children[0].get(), from, to);
      break;
  }
}

}  // namespace

Status DefinitionRegistry::Define(std::string_view text,
                                  EntityTable* entities) {
  size_t sep = text.find(":=");
  if (sep == std::string_view::npos) {
    return Status::ParseError(
        "definition needs ':=' between head and body");
  }
  std::string name;
  std::vector<std::string> raw_params;
  LSD_RETURN_IF_ERROR(
      SplitCall(text.substr(0, sep), &name, &raw_params));

  Definition definition;
  definition.name = std::move(name);
  for (const std::string& p : raw_params) {
    if (p.empty() || p[0] != '?') {
      return Status::ParseError("definition parameters must be "
                                "?variables, got: " +
                                p);
    }
    definition.params.push_back(AsciiToUpper(p.substr(1)));
  }
  LSD_ASSIGN_OR_RETURN(definition.body,
                       ParseQuery(text.substr(sep + 2), entities));

  // Every parameter must occur free in the body; extra free variables
  // are allowed (they become output columns of every invocation).
  std::vector<VarId> free = definition.body.FreeVars();
  for (const std::string& p : definition.params) {
    bool found = false;
    for (VarId v : free) {
      if (definition.body.var_names()[v] == p) found = true;
    }
    if (!found) {
      return Status::ParseError("parameter ?" + p +
                                " does not occur free in the body");
    }
  }
  return Add(std::move(definition));
}

Status DefinitionRegistry::Add(Definition definition) {
  if (Has(definition.name)) {
    return Status::AlreadyExists("definition '" + definition.name +
                                 "' already exists");
  }
  definitions_.push_back(std::move(definition));
  return Status::OK();
}

bool DefinitionRegistry::Has(std::string_view name) const {
  return Find(name) != nullptr;
}

const Definition* DefinitionRegistry::Find(std::string_view name) const {
  std::string lower = AsciiToLower(name);
  for (const Definition& d : definitions_) {
    if (d.name == lower) return &d;
  }
  return nullptr;
}

std::vector<std::string> DefinitionRegistry::Names() const {
  std::vector<std::string> out;
  out.reserve(definitions_.size());
  for (const Definition& d : definitions_) out.push_back(d.name);
  return out;
}

StatusOr<Query> DefinitionRegistry::ParseCall(std::string_view text,
                                              EntityTable* entities) const {
  std::string name;
  std::vector<std::string> args;
  LSD_RETURN_IF_ERROR(SplitCall(text, &name, &args));
  return Instantiate(name, args, entities);
}

StatusOr<Query> DefinitionRegistry::Instantiate(
    std::string_view name, const std::vector<std::string>& args,
    EntityTable* entities) const {
  const Definition* definition = Find(name);
  if (definition == nullptr) {
    return Status::NotFound("no definition named '" + std::string(name) +
                            "'");
  }
  if (args.size() != definition->params.size()) {
    return Status::InvalidArgument(
        "'" + definition->name + "' takes " +
        std::to_string(definition->params.size()) + " argument(s), got " +
        std::to_string(args.size()));
  }

  Query query = definition->body.Clone();
  std::vector<std::string> var_names = query.var_names();

  int anon = 0;
  for (size_t i = 0; i < args.size(); ++i) {
    // Locate the parameter's variable id in the body's table.
    VarId param = 0;
    bool found = false;
    for (size_t v = 0; v < var_names.size(); ++v) {
      if (var_names[v] == definition->params[i]) {
        param = static_cast<VarId>(v);
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::Internal("definition parameter vanished");
    }
    const std::string& arg = args[i];
    Term replacement;
    if (arg == "*") {
      var_names.push_back("_CALL" + std::to_string(++anon));
      replacement =
          Term::Var(static_cast<VarId>(var_names.size() - 1));
    } else if (arg[0] == '?') {
      std::string requested = AsciiToUpper(arg.substr(1));
      if (requested.empty()) {
        return Status::ParseError("'?' needs a variable name");
      }
      // Reuse an argument variable if two parameters are bound to the
      // same name; otherwise mint it.
      VarId id = kAnyEntity;
      for (size_t v = 0; v < var_names.size(); ++v) {
        if (var_names[v] == requested &&
            (v >= definition->body.var_names().size() ||
             requested == definition->params[i])) {
          // Only merge with variables we minted for this call, never
          // with the body's internal variables.
          if (v >= definition->body.var_names().size()) {
            id = static_cast<VarId>(v);
          }
        }
      }
      if (id == kAnyEntity) {
        var_names.push_back(requested);
        id = static_cast<VarId>(var_names.size() - 1);
      }
      replacement = Term::Var(id);
    } else {
      replacement = Term::Entity(entities->Intern(arg));
    }
    SubstituteVar(query.mutable_root(), param, replacement);
  }

  return Query(query.mutable_root()->Clone(), std::move(var_names));
}

}  // namespace lsd
