#include "query/lexer.h"

#include <cctype>

#include "util/string_util.h"

namespace lsd {

namespace {

bool IsDelimiter(char c) {
  return c == '(' || c == ')' || c == ',' || c == '*' || c == '?' ||
         std::isspace(static_cast<unsigned char>(c));
}

}  // namespace

StatusOr<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < input.size()) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    switch (c) {
      case '(':
        tokens.push_back({TokenKind::kLParen, "(", i++});
        continue;
      case ')':
        tokens.push_back({TokenKind::kRParen, ")", i++});
        continue;
      case ',':
        tokens.push_back({TokenKind::kComma, ",", i++});
        continue;
      case '*':
        tokens.push_back({TokenKind::kStar, "*", i++});
        continue;
      case '?': {
        size_t start = ++i;
        while (i < input.size() && !IsDelimiter(input[i])) ++i;
        if (i == start) {
          return Status::ParseError(
              "'?' must be followed by a variable name (offset " +
              std::to_string(start - 1) + ")");
        }
        tokens.push_back({TokenKind::kVariable,
                          std::string(input.substr(start, i - start)),
                          start - 1});
        continue;
      }
      default: {
        size_t start = i;
        while (i < input.size() && !IsDelimiter(input[i])) ++i;
        std::string word(input.substr(start, i - start));
        std::string lower = AsciiToLower(word);
        TokenKind kind = TokenKind::kEntity;
        if (lower == "and") {
          kind = TokenKind::kAnd;
        } else if (lower == "or") {
          kind = TokenKind::kOr;
        } else if (lower == "exists") {
          kind = TokenKind::kExists;
        } else if (lower == "forall") {
          kind = TokenKind::kForall;
        }
        tokens.push_back({kind, std::move(word), start});
        continue;
      }
    }
  }
  tokens.push_back({TokenKind::kEnd, "", input.size()});
  return tokens;
}

}  // namespace lsd
