// Tokenizer for the concrete query syntax:
//
//   (?X, IN, BOOK) and exists ?Y ((?X, AUTHOR, ?Y) or (?X, EDITOR, ?Y))
//   (JOHN, *, *)                       -- '*' is an anonymous variable
//
// Keywords (case-insensitive, reserved): and, or, exists, forall.
// Entity tokens may contain any characters except whitespace, '(', ')',
// ',', '?' and '*'; '?' introduces a named variable.
#ifndef LSD_QUERY_LEXER_H_
#define LSD_QUERY_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace lsd {

enum class TokenKind : uint8_t {
  kLParen,
  kRParen,
  kComma,
  kStar,
  kVariable,  // text = name without '?'
  kEntity,    // text = raw entity token
  kAnd,
  kOr,
  kExists,
  kForall,
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  size_t offset = 0;  // byte offset in the input, for error messages
};

// Tokenizes the whole input. The last token is always kEnd.
StatusOr<std::vector<Token>> Tokenize(std::string_view input);

}  // namespace lsd

#endif  // LSD_QUERY_LEXER_H_
