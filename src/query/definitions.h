// The Sec 6.1 definition facility: "implement new retrieval operators,
// based on the standard query language". A definition is a named,
// parameterized query:
//
//   author-of(?B, ?A) := (?B, IN, BOOK) and (?B, AUTHOR, ?A)
//
// Invocations substitute arguments for the parameters and yield an
// ordinary Query:
//
//   author-of(B-LOGIC, ?WHO)   ->  (B-LOGIC, IN, BOOK) and
//                                  (B-LOGIC, AUTHOR, ?WHO)
//
// Arguments may be entities, ?variables, or * (fresh anonymous
// variable). The built-in try(e) operator is definable this way in
// spirit; relation() is not (it changes the output shape), which is why
// those remain native operators.
#ifndef LSD_QUERY_DEFINITIONS_H_
#define LSD_QUERY_DEFINITIONS_H_

#include <string>
#include <vector>

#include "query/ast.h"
#include "store/entity_table.h"
#include "util/status.h"

namespace lsd {

struct Definition {
  std::string name;                 // lowercase
  std::vector<std::string> params;  // parameter variable names (no '?')
  Query body;                       // params appear as free variables
};

class DefinitionRegistry {
 public:
  DefinitionRegistry() = default;

  DefinitionRegistry(const DefinitionRegistry&) = delete;
  DefinitionRegistry& operator=(const DefinitionRegistry&) = delete;

  // Parses and installs "name(?P1, ?P2, ...) := formula".
  Status Define(std::string_view text, EntityTable* entities);

  Status Add(Definition definition);

  bool Has(std::string_view name) const;
  const Definition* Find(std::string_view name) const;
  std::vector<std::string> Names() const;
  // All installed definitions, definition order (epoch cloning).
  const std::vector<Definition>& all() const { return definitions_; }

  // Parses an invocation "name(arg, ...)" and returns the instantiated
  // query. Each arg is an entity token, "?var" or "*".
  StatusOr<Query> ParseCall(std::string_view text,
                            EntityTable* entities) const;

  // Programmatic instantiation.
  StatusOr<Query> Instantiate(std::string_view name,
                              const std::vector<std::string>& args,
                              EntityTable* entities) const;

 private:
  std::vector<Definition> definitions_;
};

}  // namespace lsd

#endif  // LSD_QUERY_DEFINITIONS_H_
