// LooseDb: the public facade of the library — a loosely structured
// database (Sec 2.6): a set of facts and a set of rules whose closure is
// expected to be contradiction-free, with the standard query language
// and both browsing styles on top.
//
// Typical use:
//
//   lsd::LooseDb db;
//   db.Assert("JOHN", "WORKS-FOR", "SHIPPING");
//   db.Assert("SHIPPING", "IN", "DEPARTMENT");
//   auto result = db.Query("(JOHN, WORKS-FOR, ?X)");   // -> SHIPPING,
//                                                      //    DEPARTMENT
//   auto hood = db.Navigate("JOHN");                   // browsing
//   auto probe = db.Probe("(JOHN, MANAGES, ?X)");      // retraction
//
// The closure is computed lazily and cached; any mutation (facts or
// rules) invalidates it. All operations are Status-based; the library
// never throws.
#ifndef LSD_CORE_LOOSE_DB_H_
#define LSD_CORE_LOOSE_DB_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "browse/navigation.h"
#include "browse/operators.h"
#include "browse/probing.h"
#include "browse/proximity.h"
#include "query/definitions.h"
#include "query/evaluator.h"
#include "query/parser.h"
#include "rules/composition.h"
#include "rules/contradiction.h"
#include "rules/incremental.h"
#include "rules/rule_engine.h"
#include "store/persistence.h"
#include "util/status.h"

namespace lsd {

struct LooseDbOptions {
  // Install the paper's Sec 3 standard rule set and seed facts.
  bool standard_rules = true;
  ClosureOptions closure;
  // Default composition bound; the limit(n) operator (Sec 6.1).
  int composition_limit = 3;
  // Maintain the closure incrementally across Assert/Retract instead of
  // recomputing it (Sec 6.2's "update of data"; see rules/incremental.h).
  // Point updates become cheap; rule changes still trigger a rebuild.
  bool incremental_maintenance = false;
  // Durability of the attached WAL (Save/Open): fsync every record or
  // just flush it to the OS.
  WalSync wal_sync = WalSync::kFlush;
  // WAL segment rotation threshold (0 disables rotation).
  uint64_t wal_segment_bytes = 4ull << 20;
  // Auto-checkpoint: once this many bytes of WAL records accumulate
  // since the last checkpoint, the next logged mutation triggers
  // Checkpoint() (bounded replay on recovery). 0 disables; call
  // Checkpoint()/Save() manually.
  uint64_t checkpoint_bytes = 0;
};

class LooseDb {
 public:
  explicit LooseDb(const LooseDbOptions& options = LooseDbOptions());

  LooseDb(const LooseDb&) = delete;
  LooseDb& operator=(const LooseDb&) = delete;

  // ---- Facts -----------------------------------------------------------

  // Asserts a fact by entity names (interned as needed).
  Fact Assert(std::string_view source, std::string_view relationship,
              std::string_view target);
  bool Assert(const Fact& f);
  bool Retract(const Fact& f);
  // Retracts by names; NotFound if any name is unknown or the fact is
  // not asserted.
  Status Retract(std::string_view source, std::string_view relationship,
                 std::string_view target);

  // Marks a relationship as a class relationship (Sec 2.2).
  void MarkClassRelationship(std::string_view relationship);

  FactStore& store() { return store_; }
  const FactStore& store() const { return store_; }
  EntityTable& entities() { return store_.entities(); }
  const EntityTable& entities() const { return store_.entities(); }

  // ---- Rules -----------------------------------------------------------

  // Parses and installs "name: (body...) => (head...) [where ...]".
  Status DefineRule(std::string_view text,
                    RuleKind kind = RuleKind::kInference);
  Status AddRule(Rule rule);

  // include(rule)/exclude(rule) (Sec 6.1). NotFound for unknown names.
  Status SetRuleEnabled(std::string_view name, bool enabled);
  bool IsRuleEnabled(std::string_view name) const;

  const std::vector<Rule>& rules() const { return rules_; }

  // limit(n) (Sec 6.1): bound on composition chain length; 1 disables.
  void SetCompositionLimit(int n) { composition_limit_ = n; }
  int composition_limit() const { return composition_limit_; }

  // ---- Versions & cloning ------------------------------------------------

  // The (store, rules) version key pair all internal caches (closure,
  // lattice, planner) are keyed by. Observability breadcrumb for the
  // shell's `stats` and the server's STATS verb; the serving layer also
  // uses the pair to detect no-op commits.
  uint64_t store_version() const { return store_.version(); }
  uint64_t rules_version() const { return rules_version_; }

  // Pre-materializes every lazily computed cache (closure, lattice,
  // planner keying) so subsequent const reads never write the cache
  // fields. A warmed database whose facts and rules no longer change is
  // safe for concurrent readers: the entity table is internally
  // synchronized, the planner cache is mutex-guarded, and everything
  // else is read-only. This is the serving layer's publish barrier.
  Status Warm() const;

  // Copies facts, entities (ids preserved), rules, operator definitions
  // and the composition limit into `out`, which must be freshly
  // constructed with standard_rules = false (clean containers). The
  // clone's caches start cold; its version counters restart. WAL
  // attachment is not cloned. This is the serving layer's copy-on-commit
  // path.
  Status CloneInto(LooseDb* out) const;

  // Planner-cache observability (hit rate across this database's life).
  uint64_t planner_hits() const { return planner_.hits(); }
  uint64_t planner_misses() const { return planner_.misses(); }
  size_t planner_plan_count() const { return planner_.plan_count(); }

  // ---- Closure & integrity ----------------------------------------------

  // The queryable closure; recomputed if facts or rules changed.
  StatusOr<const ClosureView*> View() const;
  // Stats of the last computed closure (null before the first View()).
  const ClosureStats* closure_stats() const;

  // Per-tier resident bytes of the closure's storage (experiment E9
  // observability; the shell's `stats` and the server's STATS verb
  // report the breakdown). Computes the closure first if it is stale.
  // In incremental-maintenance mode the derived tier is a plain triple
  // index; its bytes are reported as overlay bytes with no frozen run.
  struct StorageMemory {
    DeltaIndex::Memory base;      // generational snapshot of the asserted
                                  // facts (segments + overlay)
    DeltaIndex::Memory derived;   // derived tier, same shape
    size_t total() const { return base.total() + derived.total(); }
  };
  StatusOr<StorageMemory> MemoryUsage() const;

  // ---- Background compaction ---------------------------------------------
  // A serving tip extends its closure tiers across epochs (see View()),
  // so frozen segments and overlay facts accumulate; the background
  // compactor (store/compactor.h, driven by the serving layer) folds them
  // into one CSR generation per tier. The protocol is pin → build → swap:
  // BuildCompactionPlan reads an immutable, warmed epoch's tiers and
  // merges them off the commit path; InstallCompactedTiers, run inside a
  // later commit's mutation on the unpublished clone, validates that the
  // planned segments are still the tiers' prefix (shared_ptr identity —
  // they travel across epochs by pointer) and swaps the merged generation
  // in. A stale plan (a foreground tail-merge consumed a pinned segment
  // meanwhile) returns Aborted and the caller retries against the current
  // tip. Compaction writes no WAL records: it is a storage-layout change
  // with no logical content, so it is a durability no-op and shipped WAL
  // bytes are unchanged for replication.
  struct TierPlan {
    // The segment prefix the merge was built from (empty = overlay-only
    // fold) and its single-segment replacement (null when the tier had
    // nothing to fold).
    std::vector<std::shared_ptr<const FrozenIndex>> old_segments;
    std::shared_ptr<const FrozenIndex> merged;
    bool trivial() const { return old_segments.empty() && merged == nullptr; }
  };
  struct CompactionPlan {
    TierPlan base;
    TierPlan derived;
    bool empty() const { return base.trivial() && derived.trivial(); }
  };
  StatusOr<CompactionPlan> BuildCompactionPlan() const;
  Status InstallCompactedTiers(const CompactionPlan& plan);
  // Bumped by every InstallCompactedTiers: lets the serving layer tell a
  // compaction-only commit (must publish) from a true no-op (skipped).
  uint64_t storage_generation() const { return storage_generation_; }

  // Sec 2.6: valid databases have contradiction-free closures.
  Status CheckIntegrity() const;
  StatusOr<std::vector<IntegrityViolation>> FindIntegrityViolations() const;

  // ---- Query -----------------------------------------------------------

  StatusOr<lsd::Query> Parse(std::string_view text);
  StatusOr<ResultSet> Run(const lsd::Query& query,
                          const EvalOptions& options = {}) const;
  StatusOr<ResultSet> Query(std::string_view text,
                            const EvalOptions& options = {});

  // The Sec 6.1 definition facility: named retrieval operators defined
  // in the standard query language.
  //   DefineOperator("author-of(?B, ?A) := (?B, AUTHOR, ?A)");
  //   Call("author-of(B-LOGIC, ?WHO)");
  Status DefineOperator(std::string_view text);
  StatusOr<ResultSet> Call(std::string_view call_text,
                           const EvalOptions& options = {});
  const DefinitionRegistry& definitions() const { return definitions_; }

  // ---- Browsing ----------------------------------------------------------
  // Browsing entry points take an optional borrowed QueryBudget; a
  // tripped budget aborts the operation with its typed error. Query/Run/
  // Probe carry theirs inside EvalOptions/ProbeOptions instead.

  // Navigation (Sec 4.1).
  StatusOr<NeighborhoodView> Navigate(
      std::string_view entity, const QueryBudget* budget = nullptr) const;
  // Non-const: composed relationship entities are interned on demand.
  StatusOr<std::vector<Association>> Associations(
      std::string_view source, std::string_view target,
      const QueryBudget* budget = nullptr);
  StatusOr<std::string> RenderAssociations(
      std::string_view source, std::string_view target,
      const QueryBudget* budget = nullptr);

  // Probing (Sec 5).
  StatusOr<ProbeResult> Probe(std::string_view query_text,
                              const ProbeOptions& options = {});
  StatusOr<ProbeResult> Probe(const lsd::Query& query,
                              const ProbeOptions& options = {}) const;

  // Semantic distance (Sec 6.1): shortest fact-chain length between two
  // entities within `max_radius`, or nullopt if unconnected.
  StatusOr<std::optional<int>> SemanticDistance(
      std::string_view a, std::string_view b, int max_radius = 4,
      const QueryBudget* budget = nullptr) const;
  // All entities within `radius` associations of `entity`.
  StatusOr<std::vector<NearbyEntity>> Nearby(
      std::string_view entity, int radius = 2,
      const QueryBudget* budget = nullptr) const;

  // Operators (Sec 6.1).
  StatusOr<std::string> Try(std::string_view entity) const;
  StatusOr<RelationTable> Relation(
      std::string_view klass,
      const std::vector<std::pair<std::string, std::string>>& columns)
      const;

  // ---- Persistence -------------------------------------------------------

  // Loads .lsd text (facts, rules, @class marks) into this database.
  Status LoadText(std::string_view text);
  Status LoadTextFile(const std::string& path);

  // Snapshot + WAL durability. Save() checkpoints: it atomically
  // publishes <prefix>.snap stamped with the next checkpoint generation,
  // swaps the WAL to a fresh same-generation segment, and drops the old
  // segments. Open() loads <prefix>.snap (if present), replays the
  // <prefix>.wal.NNNNNN segments (salvaging any torn/corrupt suffix),
  // and attaches the WAL so subsequent mutations are logged; what
  // recovery found is available via last_recovery(). Known limitation:
  // operator definitions (Sec 6.1) are not persisted — keep them in a
  // .lsd file loaded at startup.
  Status Save(const std::string& path_prefix);
  Status Open(const std::string& path_prefix);

  // Open() minus the WAL attachment: loads the snapshot and replays the
  // segments (salvaging damage, reporting via last_recovery()) but does
  // NOT claim the append point. For callers that own the log themselves
  // — SharedStore's group-commit leader recovers its bootstrap epoch
  // this way and then opens the Wal directly (see server/shared_store.h).
  Status Recover(const std::string& path_prefix);

  // Group-commit capture: while `sink` is non-null, every WAL-shaped
  // mutation record (assert/retract/rule/include/exclude) is pushed
  // onto `sink` instead of the attached log. The serving layer sets a
  // sink on commit clones, then batch-appends the whole commit group's
  // records to its own WAL under one fsync. Callers must clear the sink
  // (set nullptr) before the vector goes out of scope.
  void set_mutation_capture(std::vector<WalRecord>* sink) {
    capture_ = sink;
  }

  // Save() to the prefix this database was Open()ed or last Save()d at.
  // Also triggered automatically by options_.checkpoint_bytes.
  Status Checkpoint();

  // What the last Open() had to do to recover (zeroed if this database
  // was never Open()ed).
  const RecoveryStats& last_recovery() const { return last_recovery_; }

  // The attached log's counters (append/batch/fsync tallies for the
  // shell's `stats`); check wal().is_open() before reading the rest.
  const Wal& wal() const { return wal_; }

  // The first WAL append error since the log was attached, if any.
  // Assert/Retract report success against the in-memory store even if
  // logging fails (the paper's API predates durability); this surfaces
  // the dropped durability so shells and servers can warn.
  const Status& wal_status() const { return wal_error_; }

  // Governs the lazy closure recompute inside View(): while set, a
  // rebuild runs under `budget` and a trip makes View() fail with the
  // budget's typed error (the stale closure cache is left untouched and
  // the next View() simply retries). ONLY safe on a database owned by a
  // single thread — the serving layer sets it on session-private overlay
  // clones, never on shared epochs (whose closures are Warm()ed before
  // publish and thus never recompute under readers).
  void set_read_budget(const QueryBudget* budget) { read_budget_ = budget; }
  const QueryBudget* read_budget() const { return read_budget_; }

 private:
  EntityId MustLookup(std::string_view name, Status* status) const;
  void Invalidate();
  Status LogAssert(const Fact& f);
  Status LogRetract(const Fact& f);
  Status LogRule(const Rule& rule);
  Status MaybeAutoCheckpoint();

  LooseDbOptions options_;
  FactStore store_;
  DefinitionRegistry definitions_;
  std::vector<Rule> rules_;
  uint64_t rules_version_ = 0;
  int composition_limit_;

  MathProvider math_;
  RuleEngine engine_;
  std::vector<WalRecord>* capture_ = nullptr;  // group-commit redirect
  Wal wal_;
  std::string wal_path_;
  std::string save_prefix_;       // where Open/Save attached durability
  Status wal_error_;              // first append failure, if any
  RecoveryStats last_recovery_;
  bool in_checkpoint_ = false;    // re-entrancy guard for auto-checkpoint
  const QueryBudget* read_budget_ = nullptr;  // governs View() rebuilds

  // Closure cache, keyed by (store version, rules version).
  mutable std::unique_ptr<Closure> closure_;
  mutable uint64_t closure_store_version_ = 0;
  mutable uint64_t closure_rules_version_ = 0;

  // Monotone delta since the cached closure was fixed: the facts
  // asserted through Assert() with no intervening retraction or
  // class-relationship marking. View() extends the cached closure with
  // exactly these (RuleEngine::ExtendClosure) instead of recomputing,
  // provided the version arithmetic proves the list is complete: every
  // store-version bump since the closure was keyed must correspond to
  // one captured fact (mutations that bypass Assert — LoadText,
  // Recover, MarkClassRelationship — bump the version without growing
  // the delta and thus force the full recompute).
  mutable std::vector<Fact> closure_delta_;
  mutable bool closure_extension_ok_ = true;
  // Bumped by InstallCompactedTiers (storage layout changed with no
  // logical change); copied by CloneInto.
  uint64_t storage_generation_ = 0;

  // Generalization lattice cache, keyed the same way. Rebuilding the
  // lattice is a full closure scan, and probing needs it on every call.
  mutable std::unique_ptr<GeneralizationLattice> lattice_;
  mutable uint64_t lattice_store_version_ = 0;
  mutable uint64_t lattice_rules_version_ = 0;

  // Query-plan cache shared by Run/Probe, valid for one closure
  // snapshot (same keying). Internally synchronized.
  mutable PlannerCache planner_;
  mutable uint64_t planner_store_version_ = 0;
  mutable uint64_t planner_rules_version_ = 0;

  // Incremental mode state (options_.incremental_maintenance).
  mutable std::unique_ptr<IncrementalClosure> incremental_;
  mutable uint64_t inc_store_version_ = 0;
  mutable uint64_t inc_rules_version_ = 0;

  StatusOr<const GeneralizationLattice*> Lattice() const;
  // The plan cache for the current (store, rules) snapshot, cleared on
  // version mismatch.
  PlannerCache* Planner() const;
  // Applies a point mutation to the incremental closure if it is live.
  void MaintainIncremental(const Fact& f, bool asserted);
};

}  // namespace lsd

#endif  // LSD_CORE_LOOSE_DB_H_
