#include "core/loose_db.h"

#include <algorithm>

#include "rules/builtin_rules.h"
#include "store/text_format.h"
#include "util/failpoint.h"

namespace lsd {

LooseDb::LooseDb(const LooseDbOptions& options)
    : options_(options),
      composition_limit_(options.composition_limit),
      math_(&store_.entities()),
      engine_(&store_, &math_) {
  if (options_.standard_rules) {
    for (const Fact& f : StandardSeedFacts()) store_.Assert(f);
    for (Rule& r : StandardRules()) rules_.push_back(std::move(r));
    ++rules_version_;
  }
}

void LooseDb::Invalidate() {
  // The closure cache is keyed on versions; nothing else to do. Kept as
  // an explicit hook for future cache layers.
}

void LooseDb::MaintainIncremental(const Fact& f, bool asserted) {
  if (!options_.incremental_maintenance || incremental_ == nullptr) return;
  // Only a live, up-to-date incremental closure can absorb a point
  // update; otherwise let View() rebuild it lazily.
  if (inc_rules_version_ != rules_version_ ||
      inc_store_version_ + 1 != store_.version()) {
    incremental_ = nullptr;
    return;
  }
  Status s = asserted ? incremental_->OnAssert(f)
                      : incremental_->OnRetract(f);
  if (!s.ok()) {
    incremental_ = nullptr;  // fall back to a rebuild
    return;
  }
  inc_store_version_ = store_.version();
  // The lattice and plan caches are version-keyed; the bumped store
  // version invalidates them on next use.
}

Status LooseDb::MaybeAutoCheckpoint() {
  if (options_.checkpoint_bytes == 0 || in_checkpoint_ ||
      !wal_.is_open() || save_prefix_.empty() ||
      wal_.generation_bytes() < options_.checkpoint_bytes) {
    return Status::OK();
  }
  in_checkpoint_ = true;
  Status s = Save(save_prefix_);
  in_checkpoint_ = false;
  return s;
}

Status LooseDb::LogAssert(const Fact& f) {
  if (capture_ != nullptr) {
    capture_->push_back(WalAssertRecord(store_, f));
    return Status::OK();
  }
  if (!wal_.is_open()) return Status::OK();
  Status s = wal_.AppendAssert(store_, f);
  if (!s.ok()) {
    if (wal_error_.ok()) wal_error_ = s;
    return s;
  }
  return MaybeAutoCheckpoint();
}

Status LooseDb::LogRetract(const Fact& f) {
  if (capture_ != nullptr) {
    capture_->push_back(WalRetractRecord(store_, f));
    return Status::OK();
  }
  if (!wal_.is_open()) return Status::OK();
  Status s = wal_.AppendRetract(store_, f);
  if (!s.ok()) {
    if (wal_error_.ok()) wal_error_ = s;
    return s;
  }
  return MaybeAutoCheckpoint();
}

Status LooseDb::LogRule(const Rule& rule) {
  if (capture_ != nullptr) {
    capture_->push_back(WalRuleRecord(rule, store_.entities()));
    return Status::OK();
  }
  if (!wal_.is_open()) return Status::OK();
  Status s = wal_.AppendRule(rule, store_.entities());
  if (!s.ok() && wal_error_.ok()) wal_error_ = s;
  return s;
}

Fact LooseDb::Assert(std::string_view source, std::string_view relationship,
                     std::string_view target) {
  Fact f(store_.entities().Intern(source),
         store_.entities().Intern(relationship),
         store_.entities().Intern(target));
  Assert(f);
  return f;
}

bool LooseDb::Assert(const Fact& f) {
  bool inserted = store_.Assert(f);
  if (inserted) {
    // The bool API cannot carry the log's status; a failure is latched
    // in wal_error_ and the poisoned log refuses further appends.
    (void)LogAssert(f);
    MaintainIncremental(f, /*asserted=*/true);
    if (f.relationship == kEntIn && f.target == kEntClassRel) {
      // Marking a class relationship changes which old facts pass the
      // rules' VarConstraints, so the closure is not merely extended by
      // this fact — force the full recompute.
      closure_extension_ok_ = false;
    } else if (closure_extension_ok_) {
      closure_delta_.push_back(f);
    }
  }
  return inserted;
}

bool LooseDb::Retract(const Fact& f) {
  bool erased = store_.Retract(f);
  if (erased) {
    (void)LogRetract(f);
    MaintainIncremental(f, /*asserted=*/false);
    // The closure is only monotone under addition; a retraction may
    // invalidate derived facts, so the extension shortcut is off until
    // the next full recompute.
    closure_extension_ok_ = false;
  }
  return erased;
}

EntityId LooseDb::MustLookup(std::string_view name, Status* status) const {
  auto id = store_.entities().Lookup(name);
  if (!id.has_value()) {
    *status = Status::NotFound("unknown entity: " + std::string(name));
    return kAnyEntity;
  }
  return *id;
}

Status LooseDb::Retract(std::string_view source,
                        std::string_view relationship,
                        std::string_view target) {
  Status status;
  EntityId s = MustLookup(source, &status);
  EntityId r = MustLookup(relationship, &status);
  EntityId t = MustLookup(target, &status);
  if (!status.ok()) return status;
  if (!Retract(Fact(s, r, t))) {
    return Status::NotFound("fact not asserted");
  }
  return Status::OK();
}

void LooseDb::MarkClassRelationship(std::string_view relationship) {
  store_.MarkClassRelationship(store_.entities().Intern(relationship));
}

Status LooseDb::DefineRule(std::string_view text, RuleKind kind) {
  LSD_ASSIGN_OR_RETURN(Rule rule,
                       ParseRuleLine(text, kind, &store_.entities()));
  return AddRule(std::move(rule));
}

Status LooseDb::AddRule(Rule rule) {
  LSD_RETURN_IF_ERROR(rule.Validate());
  for (const Rule& r : rules_) {
    if (r.name == rule.name) {
      return Status::AlreadyExists("rule '" + rule.name +
                                   "' already defined");
    }
  }
  LSD_RETURN_IF_ERROR(LogRule(rule));
  rules_.push_back(std::move(rule));
  ++rules_version_;
  return MaybeAutoCheckpoint();
}

Status LooseDb::SetRuleEnabled(std::string_view name, bool enabled) {
  for (Rule& r : rules_) {
    if (r.name == name) {
      if (r.enabled != enabled) {
        r.enabled = enabled;
        ++rules_version_;
        if (capture_ != nullptr) {
          capture_->push_back(WalRuleEnabledRecord(r.name, enabled));
        } else if (wal_.is_open()) {
          Status s = wal_.AppendSetRuleEnabled(r.name, enabled);
          if (!s.ok()) {
            if (wal_error_.ok()) wal_error_ = s;
            return s;
          }
          return MaybeAutoCheckpoint();
        }
      }
      return Status::OK();
    }
  }
  return Status::NotFound("no rule named '" + std::string(name) + "'");
}

bool LooseDb::IsRuleEnabled(std::string_view name) const {
  for (const Rule& r : rules_) {
    if (r.name == name) return r.enabled;
  }
  return false;
}

StatusOr<const ClosureView*> LooseDb::View() const {
  if (options_.incremental_maintenance) {
    if (incremental_ == nullptr ||
        inc_rules_version_ != rules_version_ ||
        inc_store_version_ != store_.version()) {
      incremental_ =
          std::make_unique<IncrementalClosure>(&store_, &math_, rules_);
      Status s = incremental_->Initialize();
      if (!s.ok()) {
        incremental_ = nullptr;
        return s;
      }
      inc_store_version_ = store_.version();
      inc_rules_version_ = rules_version_;
    }
    return &incremental_->view();
  }
  if (closure_ == nullptr || closure_store_version_ != store_.version() ||
      closure_rules_version_ != rules_version_) {
    ClosureOptions closure_options = options_.closure;
    if (closure_options.budget == nullptr) {
      closure_options.budget = read_budget_;
    }
    // Incremental extension (the serving path's common case): when the
    // only change since the cached closure is a known list of asserted
    // facts, seed a semi-naive fixpoint with exactly that delta on
    // clones of the cached tiers instead of recomputing from scratch.
    // The version arithmetic proves the delta is complete; mutations
    // that bypass Assert bump the version without growing the delta and
    // fail the check. A failed attempt leaves `closure_` untouched (the
    // extension ran on clones), so falling back is safe.
    bool extended = false;
    if (closure_ != nullptr && closure_extension_ok_ &&
        closure_rules_version_ == rules_version_ &&
        !closure_delta_.empty() &&
        store_.version() == closure_store_version_ + closure_delta_.size() &&
        closure_options.strategy == ClosureOptions::Strategy::kSemiNaive) {
      std::vector<Fact> delta = closure_delta_;
      std::sort(delta.begin(), delta.end(), OrderSrt());
      delta.erase(std::unique(delta.begin(), delta.end()), delta.end());
      // A newly asserted fact that the seed closure had *derived* would
      // end up in both tiers (base gains it, derived keeps it), breaking
      // their disjointness; recompute instead.
      bool collision = false;
      for (const Fact& f : delta) {
        if (closure_->derived().Contains(f)) {
          collision = true;
          break;
        }
      }
      if (!collision) {
        auto ext = engine_.ExtendClosure(
            rules_, closure_->base().Clone(), closure_->derived().Clone(),
            closure_->stats(), std::move(delta), closure_options);
        if (ext.ok()) {
          closure_ = std::move(*ext);
          extended = true;
        }
      }
    }
    if (!extended) {
      auto closure = engine_.ComputeClosure(rules_, closure_options);
      if (!closure.ok()) return closure.status();
      closure_ = std::move(*closure);
    }
    closure_store_version_ = store_.version();
    closure_rules_version_ = rules_version_;
    closure_delta_.clear();
    closure_extension_ok_ = true;
  }
  return &closure_->view();
}

const ClosureStats* LooseDb::closure_stats() const {
  return closure_ == nullptr ? nullptr : &closure_->stats();
}

StatusOr<LooseDb::StorageMemory> LooseDb::MemoryUsage() const {
  LSD_RETURN_IF_ERROR(View().status());
  StorageMemory mem;
  if (options_.incremental_maintenance && incremental_ != nullptr) {
    mem.derived.overlay_bytes = incremental_->derived().MemoryUsage();
    return mem;
  }
  mem.base = closure_->base().MemoryUsage();
  mem.derived = closure_->derived().MemoryUsage();
  return mem;
}

StatusOr<const GeneralizationLattice*> LooseDb::Lattice() const {
  LSD_ASSIGN_OR_RETURN(const ClosureView* view, View());
  if (lattice_ == nullptr || lattice_store_version_ != store_.version() ||
      lattice_rules_version_ != rules_version_) {
    lattice_ = std::make_unique<GeneralizationLattice>(
        GeneralizationLattice::Build(*view));
    lattice_store_version_ = store_.version();
    lattice_rules_version_ = rules_version_;
  }
  return lattice_.get();
}

PlannerCache* LooseDb::Planner() const {
  if (planner_store_version_ != store_.version() ||
      planner_rules_version_ != rules_version_) {
    planner_.Clear();
    planner_store_version_ = store_.version();
    planner_rules_version_ = rules_version_;
  }
  return &planner_;
}

Status LooseDb::Warm() const {
  LSD_RETURN_IF_ERROR(View().status());
  LSD_RETURN_IF_ERROR(Lattice().status());
  Planner();  // aligns the planner's version key with the snapshot
  return Status::OK();
}

Status LooseDb::CloneInto(LooseDb* out) const {
  if (out->store_.size() != 0 ||
      out->store_.entities().size() != kNumBuiltinEntities ||
      !out->rules_.empty()) {
    return Status::FailedPrecondition(
        "CloneInto requires a fresh LooseDb with standard_rules = false");
  }
  // Entities, in id order, so every id means the same thing in the clone
  // (the same trick LoadSnapshot uses).
  const EntityTable& src = store_.entities();
  EntityTable& dst = out->store_.entities();
  for (EntityId id = kNumBuiltinEntities; id < src.size(); ++id) {
    EntityId copied = src.Kind(id) == EntityKind::kComposed
                          ? dst.InternComposed(src.Name(id))
                          : dst.Intern(src.Name(id));
    if (copied != id) {
      return Status::Internal("entity id mismatch while cloning: " +
                              src.Name(id));
    }
  }
  store_.base().ForEach(Pattern(), [&](const Fact& f) {
    out->store_.Assert(f);
    return true;
  });
  // The replay above counted only inserts; adopt the source's full
  // mutation clock (inserts + retracts) or an assert following a
  // retract could land the clone back on the source's version and be
  // mistaken for a no-op by the commit path.
  out->store_.set_version(store_.version());
  out->rules_ = rules_;
  ++out->rules_version_;
  out->composition_limit_ = composition_limit_;
  for (const Definition& d : definitions_.all()) {
    Definition copy;
    copy.name = d.name;
    copy.params = d.params;
    copy.body = d.body.Clone();
    LSD_RETURN_IF_ERROR(out->definitions_.Add(std::move(copy)));
  }
  out->storage_generation_ = storage_generation_;
  // Transplant the closure when it is current: the frozen segments
  // travel by shared pointer and the overlays by deep copy, so the
  // commit path inherits the seed closure instead of recomputing it —
  // View() on the clone then extends it with just the commit's new
  // facts. Skipped when either side maintains incrementally (different
  // derived representation) or the closure is stale (the clone would
  // inherit a wrong cache).
  if (!options_.incremental_maintenance &&
      !out->options_.incremental_maintenance && closure_ != nullptr &&
      closure_store_version_ == store_.version() &&
      closure_rules_version_ == rules_version_) {
    out->closure_ = std::make_unique<Closure>(
        &out->store_, &out->math_, closure_->base().Clone(),
        closure_->derived().Clone(), closure_->stats());
    out->closure_store_version_ = out->store_.version();
    out->closure_rules_version_ = out->rules_version_;
    out->closure_delta_.clear();
    out->closure_extension_ok_ = true;
  }
  return Status::OK();
}

StatusOr<LooseDb::CompactionPlan> LooseDb::BuildCompactionPlan() const {
  if (options_.incremental_maintenance) {
    return Status::FailedPrecondition(
        "compaction requires the batch (non-incremental) closure");
  }
  LSD_RETURN_IF_ERROR(View().status());
  CompactionPlan plan;
  auto build = [](const DeltaIndex& tier, TierPlan* tp) {
    // One segment and no overlay is already fully compacted.
    if (tier.segment_count() <= 1 && tier.overlay_size() == 0) return;
    tp->old_segments = tier.segments();
    FrozenIndex merged = tier.BuildMerged();
    if (merged.size() != 0) {
      tp->merged =
          std::make_shared<const FrozenIndex>(std::move(merged));
    }
  };
  build(closure_->base(), &plan.base);
  build(closure_->derived(), &plan.derived);
  return plan;
}

Status LooseDb::InstallCompactedTiers(const CompactionPlan& plan) {
  if (options_.incremental_maintenance) {
    return Status::FailedPrecondition(
        "compaction requires the batch (non-incremental) closure");
  }
  if (plan.empty()) return Status::OK();
  LSD_RETURN_IF_ERROR(View().status());
  // Validate both tiers before mutating either, so a stale plan aborts
  // with the closure fully intact — the swap below can then no longer
  // fail halfway.
  auto prefix_current = [](const TierPlan& tp, const DeltaIndex& tier) {
    if (tp.trivial()) return true;
    const auto& segs = tier.segments();
    if (tp.old_segments.size() > segs.size()) return false;
    for (size_t i = 0; i < tp.old_segments.size(); ++i) {
      if (segs[i].get() != tp.old_segments[i].get()) return false;
    }
    return true;
  };
  if (!prefix_current(plan.base, closure_->base()) ||
      !prefix_current(plan.derived, closure_->derived())) {
    return Status::Aborted(
        "compaction plan is stale: tier generations changed since the pin");
  }
  auto apply = [](const TierPlan& tp, DeltaIndex* tier) -> Status {
    if (tp.trivial()) return Status::OK();
    if (!tier->SwapMergedPrefix(tp.old_segments, tp.merged)) {
      return Status::Internal("compaction swap failed after validation");
    }
    return Status::OK();
  };
  LSD_RETURN_IF_ERROR(apply(plan.base, closure_->mutable_base()));
  // Crash window between the two tier swaps: this runs on an unpublished
  // commit clone and writes no WAL records, so recovery (crash-torture's
  // compact.swap trials) must never see the half-swapped state.
  LSD_FAILPOINT(compact.swap);
  LSD_RETURN_IF_ERROR(apply(plan.derived, closure_->mutable_derived()));
  ++storage_generation_;
  return Status::OK();
}

Status LooseDb::CheckIntegrity() const {
  LSD_ASSIGN_OR_RETURN(const ClosureView* view, View());
  return lsd::CheckIntegrity(*view);
}

StatusOr<std::vector<IntegrityViolation>>
LooseDb::FindIntegrityViolations() const {
  LSD_ASSIGN_OR_RETURN(const ClosureView* view, View());
  return FindViolations(*view);
}

StatusOr<lsd::Query> LooseDb::Parse(std::string_view text) {
  return ParseQuery(text, &store_.entities());
}

StatusOr<ResultSet> LooseDb::Run(const lsd::Query& query,
                                 const EvalOptions& options) const {
  LSD_ASSIGN_OR_RETURN(const ClosureView* view, View());
  Evaluator evaluator(view, &store_.entities());
  EvalOptions effective = options;
  if (effective.planner == nullptr) effective.planner = Planner();
  return evaluator.Evaluate(query, effective);
}

StatusOr<ResultSet> LooseDb::Query(std::string_view text,
                                   const EvalOptions& options) {
  LSD_ASSIGN_OR_RETURN(lsd::Query query, Parse(text));
  return Run(query, options);
}

Status LooseDb::DefineOperator(std::string_view text) {
  return definitions_.Define(text, &store_.entities());
}

StatusOr<ResultSet> LooseDb::Call(std::string_view call_text,
                                  const EvalOptions& options) {
  LSD_ASSIGN_OR_RETURN(
      lsd::Query query,
      definitions_.ParseCall(call_text, &store_.entities()));
  return Run(query, options);
}

StatusOr<NeighborhoodView> LooseDb::Navigate(std::string_view entity,
                                             const QueryBudget* budget) const {
  auto id = store_.entities().Lookup(entity);
  if (!id.has_value()) {
    return Status::NotFound("unknown entity: " + std::string(entity));
  }
  LSD_ASSIGN_OR_RETURN(const ClosureView* view, View());
  Navigator navigator(view, const_cast<EntityTable*>(&store_.entities()));
  return navigator.Neighborhood(*id, budget);
}

StatusOr<std::vector<Association>> LooseDb::Associations(
    std::string_view source, std::string_view target,
    const QueryBudget* budget) {
  Status status;
  EntityId s = MustLookup(source, &status);
  EntityId t = MustLookup(target, &status);
  if (!status.ok()) return status;
  LSD_ASSIGN_OR_RETURN(const ClosureView* view, View());
  Navigator navigator(view, &store_.entities());
  CompositionOptions options;
  options.limit = composition_limit_;
  options.budget = budget;
  return navigator.Associations(s, t, options);
}

StatusOr<std::string> LooseDb::RenderAssociations(std::string_view source,
                                                  std::string_view target,
                                                  const QueryBudget* budget) {
  Status status;
  EntityId s = MustLookup(source, &status);
  EntityId t = MustLookup(target, &status);
  if (!status.ok()) return status;
  LSD_ASSIGN_OR_RETURN(std::vector<Association> assocs,
                       Associations(source, target, budget));
  LSD_ASSIGN_OR_RETURN(const ClosureView* view, View());
  Navigator navigator(view, &store_.entities());
  return navigator.RenderAssociations(s, t, assocs);
}

StatusOr<ProbeResult> LooseDb::Probe(std::string_view query_text,
                                     const ProbeOptions& options) {
  LSD_ASSIGN_OR_RETURN(lsd::Query query, Parse(query_text));
  return Probe(query, options);
}

StatusOr<ProbeResult> LooseDb::Probe(const lsd::Query& query,
                                     const ProbeOptions& options) const {
  LSD_ASSIGN_OR_RETURN(const ClosureView* view, View());
  LSD_ASSIGN_OR_RETURN(const GeneralizationLattice* lattice, Lattice());
  Prober prober(view, lattice, &store_.entities(), Planner());
  return prober.Probe(query, options);
}

StatusOr<std::optional<int>> LooseDb::SemanticDistance(
    std::string_view a, std::string_view b, int max_radius,
    const QueryBudget* budget) const {
  Status status;
  EntityId ea = MustLookup(a, &status);
  EntityId eb = MustLookup(b, &status);
  if (!status.ok()) return status;
  LSD_ASSIGN_OR_RETURN(const ClosureView* view, View());
  ProximityOptions options;
  options.budget = budget;
  return lsd::SemanticDistance(*view, ea, eb, max_radius, options);
}

StatusOr<std::vector<NearbyEntity>> LooseDb::Nearby(
    std::string_view entity, int radius, const QueryBudget* budget) const {
  Status status;
  EntityId e = MustLookup(entity, &status);
  if (!status.ok()) return status;
  LSD_ASSIGN_OR_RETURN(const ClosureView* view, View());
  ProximityOptions options;
  options.budget = budget;
  return lsd::Nearby(*view, e, radius, options);
}

StatusOr<std::string> LooseDb::Try(std::string_view entity) const {
  auto id = store_.entities().Lookup(entity);
  if (!id.has_value()) {
    return Status::NotFound("unknown entity: " + std::string(entity));
  }
  LSD_ASSIGN_OR_RETURN(const ClosureView* view, View());
  return RenderTry(*view, *id);
}

StatusOr<RelationTable> LooseDb::Relation(
    std::string_view klass,
    const std::vector<std::pair<std::string, std::string>>& columns) const {
  Status status;
  EntityId k = MustLookup(klass, &status);
  std::vector<RelationColumnSpec> specs;
  for (const auto& [rel, target_class] : columns) {
    RelationColumnSpec spec;
    spec.relationship = MustLookup(rel, &status);
    spec.target_class = MustLookup(target_class, &status);
    specs.push_back(spec);
  }
  if (!status.ok()) return status;
  LSD_ASSIGN_OR_RETURN(const ClosureView* view, View());
  return RelationOp(*view, k, std::move(specs));
}

Status LooseDb::LoadText(std::string_view text) {
  std::vector<Rule> new_rules;
  LSD_RETURN_IF_ERROR(
      ParseText(text, &store_, &new_rules, &definitions_));
  for (Rule& r : new_rules) {
    LSD_RETURN_IF_ERROR(AddRule(std::move(r)));
  }
  return Status::OK();
}

Status LooseDb::LoadTextFile(const std::string& path) {
  std::vector<Rule> new_rules;
  LSD_RETURN_IF_ERROR(
      lsd::LoadTextFile(path, &store_, &new_rules, &definitions_));
  for (Rule& r : new_rules) {
    LSD_RETURN_IF_ERROR(AddRule(std::move(r)));
  }
  return Status::OK();
}

Status LooseDb::Save(const std::string& path_prefix) {
  const std::string base = path_prefix + ".wal";
  WalOptions wal_options{options_.wal_sync, options_.wal_segment_bytes};
  if (!wal_.is_open() || wal_path_ != base) {
    // Attach to whatever segments already live at this prefix so the
    // checkpoint generation continues past them (a snapshot stamped
    // below a leftover segment's generation would replay stale data).
    wal_.Close();
    LSD_RETURN_IF_ERROR(wal_.Open(base, wal_options, 0));
  }
  // The checkpoint sequence. Each step is individually crash-safe:
  // 1. publish the snapshot (atomic rename) stamped generation G+1;
  //    a crash here recovers from the new snapshot, skipping the old
  //    segments (their generation G predates it);
  // 2. swap the WAL to a fresh segment stamped G+1 and drop the old
  //    segments (BeginGeneration handles its own crash window).
  const uint64_t next_generation = wal_.generation() + 1;
  LSD_RETURN_IF_ERROR(SaveSnapshotAtomic(path_prefix + ".snap", store_,
                                         rules_, next_generation));
  LSD_FAILPOINT(checkpoint.swap);
  LSD_RETURN_IF_ERROR(wal_.BeginGeneration(next_generation));
  wal_path_ = base;
  save_prefix_ = path_prefix;
  wal_error_ = Status::OK();  // the snapshot re-established durability
  return Status::OK();
}

Status LooseDb::Checkpoint() {
  if (save_prefix_.empty()) {
    return Status::FailedPrecondition(
        "Checkpoint() requires a prior Open() or Save()");
  }
  return Save(save_prefix_);
}

Status LooseDb::Open(const std::string& path_prefix) {
  LSD_RETURN_IF_ERROR(Recover(path_prefix));
  wal_path_ = path_prefix + ".wal";
  save_prefix_ = path_prefix;
  wal_error_ = Status::OK();
  WalOptions wal_options{options_.wal_sync, options_.wal_segment_bytes};
  return wal_.Open(wal_path_, wal_options, last_recovery_.generation);
}

Status LooseDb::Recover(const std::string& path_prefix) {
  if (store_.size() != StandardSeedFacts().size() &&
      store_.size() != 0) {
    return Status::FailedPrecondition(
        "Recover() requires a freshly constructed LooseDb");
  }
  last_recovery_ = RecoveryStats();
  uint64_t generation = 0;
  const std::string snap_path = path_prefix + ".snap";
  std::FILE* probe = std::fopen(snap_path.c_str(), "rb");
  if (probe != nullptr) {
    std::fclose(probe);
    // The snapshot contains the seed facts and the standard rules too:
    // load into clean containers.
    if (options_.standard_rules) {
      for (const Fact& f : StandardSeedFacts()) store_.Retract(f);
      rules_.clear();
      ++rules_version_;
    }
    LSD_RETURN_IF_ERROR(
        LoadSnapshot(snap_path, &store_, &rules_, &generation));
    ++rules_version_;
    last_recovery_.snapshot_loaded = true;
  }
  // Replay everything the snapshot does not already contain; segments
  // from generations before the snapshot are checkpoint leftovers.
  LSD_RETURN_IF_ERROR(Wal::Replay(path_prefix + ".wal", &store_, &rules_,
                                  &last_recovery_, generation));
  last_recovery_.generation = generation;
  ++rules_version_;
  return Status::OK();
}

}  // namespace lsd
