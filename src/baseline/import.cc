#include "baseline/import.h"

namespace lsd::baseline {

StatusOr<ImportStats> ImportRelation(const Relation& relation,
                                     ImportShape shape, LooseDb* db) {
  if (relation.arity() == 0) {
    return Status::InvalidArgument("relation " + relation.name() +
                                   " has no columns");
  }
  ImportStats stats;
  EntityTable& entities = db->entities();
  const EntityId relation_entity = entities.Intern(relation.name());
  std::vector<EntityId> column_rels;
  column_rels.reserve(relation.arity());
  for (const std::string& col : relation.columns()) {
    column_rels.push_back(entities.Intern(col));
  }

  size_t row_counter = 0;
  for (const Row& row : relation.rows()) {
    ++stats.rows;
    EntityId subject;
    size_t first_attr;
    if (shape == ImportShape::kKeyed) {
      subject = row[0];
      first_attr = 1;
    } else {
      subject = entities.Intern(relation.name() + "-" +
                                std::to_string(++row_counter));
      ++stats.row_entities_minted;
      first_attr = 0;
    }
    if (db->Assert(Fact(subject, kEntIn, relation_entity))) {
      ++stats.facts_asserted;
    }
    for (size_t c = first_attr; c < row.size(); ++c) {
      if (db->Assert(Fact(subject, column_rels[c], row[c]))) {
        ++stats.facts_asserted;
      }
    }
  }
  return stats;
}

StatusOr<ImportStats> ImportCatalog(Catalog* catalog, ImportShape shape,
                                    LooseDb* db) {
  ImportStats total;
  // Catalog has no iteration API by design; walk names via Get on the
  // known set — so expose iteration here instead.
  for (const std::string& name : catalog->Names()) {
    auto relation = catalog->Get(name);
    if (!relation.ok()) return relation.status();
    LSD_ASSIGN_OR_RETURN(ImportStats s,
                         ImportRelation(**relation, shape, db));
    total.rows += s.rows;
    total.facts_asserted += s.facts_asserted;
    total.row_entities_minted += s.row_entities_minted;
  }
  return total;
}

}  // namespace lsd::baseline
