// Importing structured (relational) databases into a loose store — the
// introduction's second motivation: "unified access to multiple
// databases is much simpler with databases whose architecture does not
// emphasize structure".
//
// Each relation row becomes facts. Two shapes, chosen per relation:
//
//   kKeyed      the first column is treated as the row's identity:
//                 EMP(NAME, DEPT, SALARY) row (JOHN, SHIPPING, $26k) ->
//                   (JOHN, IN, EMP)
//                   (JOHN, DEPT, SHIPPING)
//                   (JOHN, SALARY, $26000)
//
//   kReified    rows with no natural key are reified exactly like the
//               paper's enrollment example (Sec 2.6): a fresh entity
//               names the row:
//                 ENROLL(STUDENT, COURSE, GRADE) row (TOM, CS100, A) ->
//                   (ENROLL-1, IN, ENROLL)
//                   (ENROLL-1, STUDENT, TOM)
//                   (ENROLL-1, COURSE, CS100)
//                   (ENROLL-1, GRADE, A)
//
// Column names become relationship entities; importing two databases
// that disagree on naming is then reconciled with synonym facts
// (Sec 3.3) instead of schema surgery.
#ifndef LSD_BASELINE_IMPORT_H_
#define LSD_BASELINE_IMPORT_H_

#include <string>

#include "baseline/relational.h"
#include "core/loose_db.h"
#include "util/status.h"

namespace lsd::baseline {

enum class ImportShape : uint8_t {
  kKeyed = 0,
  kReified,
};

struct ImportStats {
  size_t rows = 0;
  size_t facts_asserted = 0;
  size_t row_entities_minted = 0;  // kReified only
};

// Imports one relation. The relation's values must be entity ids from
// db->entities() (as produced by e.g. BuildOrgRelational); names are
// resolved through that shared table.
StatusOr<ImportStats> ImportRelation(const Relation& relation,
                                     ImportShape shape, LooseDb* db);

// Imports every relation of a catalog with the given shape.
StatusOr<ImportStats> ImportCatalog(Catalog* catalog, ImportShape shape,
                                    LooseDb* db);

}  // namespace lsd::baseline

#endif  // LSD_BASELINE_IMPORT_H_
