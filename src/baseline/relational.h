// A minimal schema-bound relational engine: the "structured" comparator
// for experiment E6 (DESIGN.md). It plays the role of the conventional
// DBMS the paper's introduction contrasts against: retrieval is fast
// when you know the schema, but the schema must be designed up front and
// restructured when the modeled environment evolves.
//
// Values are interned entity ids from the same EntityTable the loose
// store uses, so E6 compares engines, not string handling.
#ifndef LSD_BASELINE_RELATIONAL_H_
#define LSD_BASELINE_RELATIONAL_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "store/entity_table.h"
#include "util/status.h"

namespace lsd::baseline {

using Row = std::vector<EntityId>;

class Relation {
 public:
  Relation(std::string name, std::vector<std::string> columns)
      : name_(std::move(name)), columns_(std::move(columns)) {}

  const std::string& name() const { return name_; }
  const std::vector<std::string>& columns() const { return columns_; }
  size_t arity() const { return columns_.size(); }
  size_t size() const { return rows_.size(); }
  const std::vector<Row>& rows() const { return rows_; }

  // Column index by name; -1 if absent.
  int ColumnIndex(std::string_view column) const;

  Status Insert(Row row);

  // Builds (or rebuilds) a hash index on one column.
  Status CreateIndex(std::string_view column);
  bool HasIndex(std::string_view column) const;

  // Row indices with rows[col] == value; uses the index when present,
  // otherwise scans.
  std::vector<size_t> Lookup(std::string_view column, EntityId value) const;

  // Schema evolution (the restructuring the paper calls "very difficult
  // and costly" — E6 measures it): adds a column filled with `fill`,
  // invalidating nothing but costing O(rows); drops a column, which
  // rebuilds every row and every index.
  Status AddColumn(std::string name, EntityId fill);
  Status DropColumn(std::string_view column);

 private:
  std::string name_;
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
  // column index -> (value -> row indices)
  std::unordered_map<int, std::unordered_map<EntityId, std::vector<size_t>>>
      indexes_;
};

class Catalog {
 public:
  StatusOr<Relation*> CreateRelation(std::string name,
                                     std::vector<std::string> columns);
  StatusOr<Relation*> Get(std::string_view name);
  Status Drop(std::string_view name);
  std::vector<std::string> Names() const;
  size_t size() const { return relations_.size(); }

 private:
  std::vector<std::unique_ptr<Relation>> relations_;
};

// select: rows of `rel` where column == value, projected onto
// `projection` (column names).
StatusOr<std::vector<Row>> Select(const Relation& rel,
                                  std::string_view column, EntityId value,
                                  const std::vector<std::string>& projection);

// Hash equi-join of a.col_a == b.col_b, projecting (a columns..,
// b columns..) pairs of the matching rows.
StatusOr<std::vector<std::pair<Row, Row>>> HashJoin(const Relation& a,
                                                    std::string_view col_a,
                                                    const Relation& b,
                                                    std::string_view col_b);

}  // namespace lsd::baseline

#endif  // LSD_BASELINE_RELATIONAL_H_
