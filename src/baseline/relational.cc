#include "baseline/relational.h"

#include <algorithm>
#include <memory>

namespace lsd::baseline {

int Relation::ColumnIndex(std::string_view column) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == column) return static_cast<int>(i);
  }
  return -1;
}

Status Relation::Insert(Row row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument("row arity mismatch for " + name_);
  }
  size_t idx = rows_.size();
  for (auto& [col, index] : indexes_) {
    index[row[col]].push_back(idx);
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

Status Relation::CreateIndex(std::string_view column) {
  int col = ColumnIndex(column);
  if (col < 0) {
    return Status::NotFound("no column " + std::string(column) + " in " +
                            name_);
  }
  auto& index = indexes_[col];
  index.clear();
  for (size_t i = 0; i < rows_.size(); ++i) {
    index[rows_[i][col]].push_back(i);
  }
  return Status::OK();
}

bool Relation::HasIndex(std::string_view column) const {
  int col = ColumnIndex(column);
  return col >= 0 && indexes_.count(col) > 0;
}

std::vector<size_t> Relation::Lookup(std::string_view column,
                                     EntityId value) const {
  int col = ColumnIndex(column);
  if (col < 0) return {};
  auto it = indexes_.find(col);
  if (it != indexes_.end()) {
    auto vit = it->second.find(value);
    if (vit == it->second.end()) return {};
    return vit->second;
  }
  std::vector<size_t> out;
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (rows_[i][col] == value) out.push_back(i);
  }
  return out;
}

Status Relation::AddColumn(std::string name, EntityId fill) {
  if (ColumnIndex(name) >= 0) {
    return Status::AlreadyExists("column " + name + " exists in " + name_);
  }
  columns_.push_back(std::move(name));
  for (Row& row : rows_) row.push_back(fill);
  return Status::OK();
}

Status Relation::DropColumn(std::string_view column) {
  int col = ColumnIndex(column);
  if (col < 0) {
    return Status::NotFound("no column " + std::string(column) + " in " +
                            name_);
  }
  columns_.erase(columns_.begin() + col);
  for (Row& row : rows_) row.erase(row.begin() + col);
  // Indexes reference column positions; rebuild them all.
  std::vector<int> indexed;
  for (const auto& [c, _] : indexes_) {
    if (c != col) indexed.push_back(c < col ? c : c - 1);
  }
  indexes_.clear();
  for (int c : indexed) {
    auto& index = indexes_[c];
    for (size_t i = 0; i < rows_.size(); ++i) {
      index[rows_[i][c]].push_back(i);
    }
  }
  return Status::OK();
}

StatusOr<Relation*> Catalog::CreateRelation(
    std::string name, std::vector<std::string> columns) {
  for (const auto& r : relations_) {
    if (r->name() == name) {
      return Status::AlreadyExists("relation " + name + " exists");
    }
  }
  relations_.push_back(
      std::make_unique<Relation>(std::move(name), std::move(columns)));
  return relations_.back().get();
}

StatusOr<Relation*> Catalog::Get(std::string_view name) {
  for (const auto& r : relations_) {
    if (r->name() == name) return r.get();
  }
  return Status::NotFound("no relation " + std::string(name));
}

std::vector<std::string> Catalog::Names() const {
  std::vector<std::string> out;
  out.reserve(relations_.size());
  for (const auto& r : relations_) out.push_back(r->name());
  return out;
}

Status Catalog::Drop(std::string_view name) {
  auto it = std::find_if(relations_.begin(), relations_.end(),
                         [&](const auto& r) { return r->name() == name; });
  if (it == relations_.end()) {
    return Status::NotFound("no relation " + std::string(name));
  }
  relations_.erase(it);
  return Status::OK();
}

StatusOr<std::vector<Row>> Select(const Relation& rel,
                                  std::string_view column, EntityId value,
                                  const std::vector<std::string>& projection) {
  std::vector<int> proj_cols;
  for (const std::string& p : projection) {
    int c = rel.ColumnIndex(p);
    if (c < 0) {
      return Status::NotFound("no column " + p + " in " + rel.name());
    }
    proj_cols.push_back(c);
  }
  if (rel.ColumnIndex(column) < 0) {
    return Status::NotFound("no column " + std::string(column) + " in " +
                            rel.name());
  }
  std::vector<Row> out;
  for (size_t i : rel.Lookup(column, value)) {
    Row row;
    row.reserve(proj_cols.size());
    for (int c : proj_cols) row.push_back(rel.rows()[i][c]);
    out.push_back(std::move(row));
  }
  return out;
}

StatusOr<std::vector<std::pair<Row, Row>>> HashJoin(const Relation& a,
                                                    std::string_view col_a,
                                                    const Relation& b,
                                                    std::string_view col_b) {
  int ca = a.ColumnIndex(col_a);
  int cb = b.ColumnIndex(col_b);
  if (ca < 0 || cb < 0) {
    return Status::NotFound("join column missing");
  }
  std::unordered_map<EntityId, std::vector<size_t>> build;
  for (size_t i = 0; i < a.rows().size(); ++i) {
    build[a.rows()[i][ca]].push_back(i);
  }
  std::vector<std::pair<Row, Row>> out;
  for (const Row& row_b : b.rows()) {
    auto it = build.find(row_b[cb]);
    if (it == build.end()) continue;
    for (size_t i : it->second) {
      out.emplace_back(a.rows()[i], row_b);
    }
  }
  return out;
}

}  // namespace lsd::baseline
