// Parameterized synthetic workloads: random generalization taxonomies
// (probing/closure experiments E1, E4) and Zipf-distributed fact graphs
// (index/navigation experiments E2, E5, E9).
#ifndef LSD_WORKLOAD_RANDOM_GRAPH_H_
#define LSD_WORKLOAD_RANDOM_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/loose_db.h"
#include "store/fact_store.h"

namespace lsd::workload {

struct TaxonomyOptions {
  int depth = 4;   // levels below the roots
  int fanout = 3;  // children per node
  int num_roots = 1;
  // Probability that a node gets a second ISA parent from the level
  // above (turns the tree into a DAG; widens probing retraction sets,
  // since entities then have several minimal generalizations).
  double extra_parent_prob = 0.0;
  uint64_t seed = 7;
};

// A generated taxonomy: levels[0] are roots, levels[d] the nodes d ISA
// steps below them. Node names encode their path ("T0", "T0.2", ...).
struct Taxonomy {
  std::vector<std::vector<std::string>> levels;

  const std::string& Root() const { return levels[0][0]; }
  const std::string& SomeLeaf() const { return levels.back().front(); }
  size_t NumNodes() const;
};

// Asserts the ISA tree into `db` and returns the node names.
Taxonomy BuildRandomTaxonomy(LooseDb* db, const TaxonomyOptions& options);

struct GraphOptions {
  size_t num_entities = 1'000;
  size_t num_relationships = 20;
  size_t num_facts = 10'000;
  double zipf_exponent = 1.1;  // skew of entity popularity
  uint64_t seed = 11;
};

// Asserts num_facts random facts (E<i>, R<j>, E<k>) with Zipf-skewed
// entity popularity (so some entities have high degree, most low).
// Returns the name of the most popular entity (highest expected degree).
std::string BuildZipfGraph(FactStore* store, const GraphOptions& options);
std::string BuildZipfGraph(LooseDb* db, const GraphOptions& options);

}  // namespace lsd::workload

#endif  // LSD_WORKLOAD_RANDOM_GRAPH_H_
