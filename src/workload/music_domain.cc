#include "workload/music_domain.h"

namespace lsd::workload {

void BuildMusicDomain(LooseDb* db) {
  // John's classes (Sec 4.1 first column: PERSON, EMPLOYEE, PET-OWNER,
  // MUSIC-LOVER — PERSON arrives by inference from EMPLOYEE ISA PERSON).
  db->Assert("JOHN", "IN", "EMPLOYEE");
  db->Assert("JOHN", "IN", "PET-OWNER");
  db->Assert("JOHN", "IN", "MUSIC-LOVER");
  db->Assert("EMPLOYEE", "ISA", "PERSON");

  // John's likes: the class CAT, his cats, a composer, a person.
  db->Assert("JOHN", "LIKES", "CAT");
  db->Assert("JOHN", "LIKES", "FELIX");
  db->Assert("JOHN", "LIKES", "HEATHCLIFF");
  db->Assert("JOHN", "LIKES", "MOZART");
  db->Assert("JOHN", "LIKES", "MARY");
  db->Assert("FELIX", "IN", "CAT");
  db->Assert("HEATHCLIFF", "IN", "CAT");

  // Work: SHIPPING is a department, so WORKS-FOR DEPARTMENT is inferred.
  db->Assert("JOHN", "WORKS-FOR", "SHIPPING");
  db->Assert("SHIPPING", "IN", "DEPARTMENT");
  db->Assert("JOHN", "BOSS", "PETER");

  // Favorite music (PC = piano concerto; WAM / PIT / LVB are composer
  // monograms as in the paper's table).
  db->Assert("JOHN", "FAVORITE-MUSIC", "PC#9-WAM");
  db->Assert("JOHN", "FAVORITE-MUSIC", "PC#2-PIT");
  db->Assert("JOHN", "FAVORITE-MUSIC", "S#5-LVB");

  // The concerto's neighborhood (second navigation table).
  db->Assert("PC#9-WAM", "IN", "CONCERTO");
  db->Assert("CONCERTO", "ISA", "CLASSICAL-COMPOSITION");
  db->Assert("CLASSICAL-COMPOSITION", "ISA", "COMPOSITION");
  db->Assert("PC#9-WAM", "COMPOSED-BY", "MOZART");
  db->Assert("PC#9-WAM", "PERFORMED-BY", "SERKIN");
  db->Assert("PC#9-WAM", "PERFORMED-BY", "BARENBOIM");
  db->Assert("PC#2-PIT", "IN", "CONCERTO");
  db->Assert("PC#2-PIT", "COMPOSED-BY", "TCHAIKOVSKY");
  db->Assert("S#5-LVB", "IN", "SYMPHONY");
  db->Assert("SYMPHONY", "ISA", "CLASSICAL-COMPOSITION");
  db->Assert("S#5-LVB", "COMPOSED-BY", "BEETHOVEN");

  // FAVORITE-OF is the inverse of FAVORITE-MUSIC, so the concerto's
  // table shows FAVORITE-OF: JOHN by inference (Sec 3.4).
  db->Assert("FAVORITE-MUSIC", "INV", "FAVORITE-OF");

  // Leopold, for the third navigation table: both a direct association
  // and (from John's side) the composed path
  // FAVORITE-MUSIC.PC#9-WAM.COMPOSED-BY.
  db->Assert("LEOPOLD", "FATHER-OF", "MOZART");
  db->Assert("LEOPOLD", "TAUGHT", "MOZART");

  // Mutual affection between John and Felix (Sec 2.7's proposition).
  db->Assert("FELIX", "LIKES", "JOHN");
}

}  // namespace lsd::workload
