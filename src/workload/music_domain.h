// The paper's running example domain (Sec 4.1): John the music-loving
// employee, Mozart's Piano Concerto No. 9, Leopold Mozart. Built to
// reproduce the three navigation tables (F1-F3 in DESIGN.md).
#ifndef LSD_WORKLOAD_MUSIC_DOMAIN_H_
#define LSD_WORKLOAD_MUSIC_DOMAIN_H_

#include "core/loose_db.h"

namespace lsd::workload {

// Populates `db` with the music browsing scenario. Key entities:
// JOHN, FELIX, HEATHCLIFF (cats), MOZART, PC#9-WAM, PC#2-PIT, S#5-LVB,
// LEOPOLD, SHIPPING, PETER.
void BuildMusicDomain(LooseDb* db);

}  // namespace lsd::workload

#endif  // LSD_WORKLOAD_MUSIC_DOMAIN_H_
