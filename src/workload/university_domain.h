// The campus scenarios of Sections 5.1-5.2: the USC quarterbacks probe,
// the "free things all students love" retraction example, books and
// self-citing authors (Sec 2.7), and Tom's reified enrollment (Sec 2.6).
#ifndef LSD_WORKLOAD_UNIVERSITY_DOMAIN_H_
#define LSD_WORKLOAD_UNIVERSITY_DOMAIN_H_

#include "core/loose_db.h"

namespace lsd::workload {

// Builds the probing scenario so that, exactly as in the paper's menu
// (Sec 5.2), the query (STUDENT, LOVE, ?Z) and (?Z, COSTS, FREE) fails
// while its retractions with FRESHMAN-for-STUDENT and CHEAP-for-FREE
// succeed.
void BuildCampusDomain(LooseDb* db);

// Adds the Sec 2.7 books scenario (citations, authorship) including one
// self-citing author.
void BuildBooksDomain(LooseDb* db);

}  // namespace lsd::workload

#endif  // LSD_WORKLOAD_UNIVERSITY_DOMAIN_H_
