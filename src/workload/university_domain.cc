#include "workload/university_domain.h"

namespace lsd::workload {

void BuildCampusDomain(LooseDb* db) {
  // Generalization hierarchy used by the probing examples (Sec 5.2):
  // FRESHMAN ≺ STUDENT, LOVE ≺ LIKE, FREE ≺ CHEAP, OPERA ≺ MUSIC and
  // OPERA ≺ THEATER, LOVES≡LOVE ≺ ENJOY.
  db->Assert("FRESHMAN", "ISA", "STUDENT");
  db->Assert("SENIOR", "ISA", "STUDENT");
  db->Assert("LOVE", "ISA", "LIKE");
  db->Assert("LIKE", "ISA", "ENJOY");
  db->Assert("FREE", "ISA", "CHEAP");
  db->Assert("OPERA", "ISA", "MUSIC");
  db->Assert("OPERA", "ISA", "THEATER");

  // Facts arranged so the paper's menu comes out with exactly two
  // successes: freshmen love something free; students love something
  // cheap; but nothing students love is free, and nothing students
  // (merely) like is free either.
  db->Assert("FRESHMAN", "LOVE", "MOVIE-NIGHT");
  db->Assert("MOVIE-NIGHT", "COSTS", "FREE");
  db->Assert("STUDENT", "LOVE", "CONCERT-PASS");
  db->Assert("CONCERT-PASS", "COSTS", "CHEAP");

  // The USC probe (Sec 5.1): no quarterback graduated from USC, and the
  // database only records football players having *attended*.
  db->Assert("QUARTERBACK", "ISA", "FOOTBALL-PLAYER");
  db->Assert("FOOTBALL-PLAYER", "ISA", "ATHLETE");
  db->Assert("GRADUATE-OF", "ISA", "ATTENDED");
  db->Assert("BOB", "IN", "QUARTERBACK");
  db->Assert("BOB", "ATTENDED", "USC");
  db->Assert("DAN", "IN", "FOOTBALL-PLAYER");
  db->Assert("DAN", "GRADUATE-OF", "UCLA");

  // Tom's enrollment, reified per Sec 2.6.
  db->Assert("E123", "ENROLL-STUDENT", "TOM");
  db->Assert("E123", "ENROLL-COURSE", "CS100");
  db->Assert("E123", "ENROLL-GRADE", "A");
  db->Assert("TOM", "ENROLLED-IN", "CS100");
  db->Assert("TOM", "ENROLLED-IN", "MATH101");
  db->Assert("SUE", "ENROLLED-IN", "MATH101");
  db->Assert("CS100", "TAUGHT-BY", "HARRY");
  db->Assert("TEACHES", "INV", "TAUGHT-BY");
}

void BuildBooksDomain(LooseDb* db) {
  db->Assert("B-LOGIC", "IN", "BOOK");
  db->Assert("B-DATA", "IN", "BOOK");
  db->Assert("B-SETS", "IN", "BOOK");
  db->Assert("ALICE", "IN", "PERSON");
  db->Assert("CAROL", "IN", "PERSON");
  db->Assert("B-LOGIC", "AUTHOR", "ALICE");
  db->Assert("B-DATA", "AUTHOR", "ALICE");
  db->Assert("B-SETS", "AUTHOR", "CAROL");
  // B-LOGIC cites itself: Alice is a self-citing author (Sec 2.7).
  db->Assert("B-LOGIC", "CITES", "B-LOGIC");
  db->Assert("B-DATA", "CITES", "B-LOGIC");
  db->Assert("B-SETS", "CITES", "B-DATA");
}

}  // namespace lsd::workload
