#include "workload/org_domain.h"

#include "util/random.h"

namespace lsd::workload {

OrgDomain BuildOrgDomain(LooseDb* db, const OrgOptions& options) {
  OrgDomain domain;
  Rng rng(options.seed);

  // Schema-level facts — in this architecture just more facts (Sec 2.6).
  db->Assert("MANAGER", "ISA", "EMPLOYEE");
  db->Assert("EMPLOYEE", "ISA", "PERSON");
  db->Assert("EMPLOYEE", "EARNS", "SALARY");
  db->Assert("EMPLOYEE", "WORKS-FOR", "DEPARTMENT");
  db->Assert("WORKS-FOR", "ISA", "IS-PAID-BY");
  db->Assert("SALARY", "ISA", "COMPENSATION");
  // Note: deliberately NO (WORKS-FOR, INV, EMPLOYS) here. Inverting the
  // class-level fact (EMPLOYEE, WORKS-FOR, DEPARTMENT) and re-applying
  // the membership rules derives (emp, WORKS-FOR, dept) for EVERY pair,
  // which breaks the paper's footnote semantics ("works for at least
  // one department"). See the ClassLevelInversionOverspecializes test.
  db->MarkClassRelationship("TOTAL-NUMBER");
  db->Assert("EMPLOYEE", "TOTAL-NUMBER",
             std::to_string(options.num_employees));
  const bool synonyms = options.synonym_density > 0;
  if (synonyms) {
    db->Assert("EARNS", "SYN", "GETS-PAID");
  }

  for (int d = 0; d < options.num_departments; ++d) {
    std::string dept = "DEPT-" + std::to_string(d);
    domain.departments.push_back(dept);
    db->Assert(dept, "IN", "DEPARTMENT");
  }

  // One manager per department, then rank-and-file reporting to it.
  std::vector<std::string> dept_managers(options.num_departments);
  for (int d = 0; d < options.num_departments; ++d) {
    std::string name = "MGR-" + std::to_string(d);
    dept_managers[d] = name;
    OrgRecord rec;
    rec.name = name;
    rec.department = domain.departments[d];
    rec.salary = 90000 + d * 1000;
    domain.records.push_back(rec);
  }
  for (int i = 0; i < options.num_employees; ++i) {
    OrgRecord rec;
    rec.name = "EMP-" + std::to_string(i);
    int d = static_cast<int>(rng.Uniform(options.num_departments));
    rec.department = domain.departments[d];
    rec.salary = 20000 + static_cast<int>(rng.Uniform(40000));
    rec.manager = dept_managers[d];
    domain.records.push_back(rec);
  }
  if (options.violate_salaries && !domain.records.empty()) {
    // Plant one violation: the last employee out-earns their manager.
    domain.records.back().salary = 200000;
  }

  for (const OrgRecord& rec : domain.records) {
    domain.employees.push_back(rec.name);
    bool is_manager = rec.manager.empty();
    db->Assert(rec.name, "IN", is_manager ? "MANAGER" : "EMPLOYEE");
    db->Assert(rec.name, "WORKS-FOR", rec.department);
    const char* earns =
        (synonyms && rng.Bernoulli(options.synonym_density)) ? "GETS-PAID"
                                                             : "EARNS";
    db->Assert(rec.name, earns, "$" + std::to_string(rec.salary));
    db->Assert("$" + std::to_string(rec.salary), "IN", "SALARY");
    if (!is_manager) {
      db->Assert(rec.name, "MANAGER", rec.manager);
    }
  }

  if (options.salary_integrity_rule) {
    Status s = db->DefineRule(
        "salary-cap: (?X, MANAGER, ?M), (?X, EARNS, ?U), (?M, EARNS, ?V), "
        "(?U, IN, SALARY), (?V, IN, SALARY) => (?V, >=, ?U)",
        RuleKind::kIntegrity);
    (void)s;  // only fails if redefined; generators run once per db
  }
  return domain;
}

void BuildOrgRelational(const OrgDomain& domain, const OrgOptions& options,
                        EntityTable* entities,
                        baseline::Catalog* catalog) {
  (void)options;
  auto emp = catalog->CreateRelation(
      "EMP", {"NAME", "DEPT", "SALARY", "MANAGER"});
  auto dept = catalog->CreateRelation("DEPT", {"NAME"});
  if (!emp.ok() || !dept.ok()) return;
  for (const std::string& d : domain.departments) {
    (*dept)->Insert({entities->Intern(d)});
  }
  const EntityId none = entities->Intern("NONE");
  for (const OrgRecord& rec : domain.records) {
    (*emp)->Insert({entities->Intern(rec.name),
                    entities->Intern(rec.department),
                    entities->Intern("$" + std::to_string(rec.salary)),
                    rec.manager.empty() ? none
                                        : entities->Intern(rec.manager)});
  }
  (*emp)->CreateIndex("NAME");
  (*emp)->CreateIndex("DEPT");
  (*dept)->CreateIndex("NAME");
}

}  // namespace lsd::workload
