// A parameterized organization domain (Sec 2.5, 3.1-3.2 examples):
// employees, managers, departments, numeric salaries, the WORKS-FOR ≺
// IS-PAID-BY generalization, synonym and inversion facts, the
// TOTAL-NUMBER class relationship, and the salary integrity constraint.
// Scales for experiments E6-E8 and doubles as the relation() operator
// demo (Sec 6.1).
#ifndef LSD_WORKLOAD_ORG_DOMAIN_H_
#define LSD_WORKLOAD_ORG_DOMAIN_H_

#include <string>
#include <vector>

#include "baseline/relational.h"
#include "core/loose_db.h"

namespace lsd::workload {

struct OrgOptions {
  int num_employees = 30;
  int num_departments = 4;
  // Fraction of relationship mentions that go through a synonym name
  // (E7 sweeps this).
  double synonym_density = 0.0;
  // Add the integrity rule "an employee never out-earns their manager"
  // and, if violate_salaries, plant one violation.
  bool salary_integrity_rule = true;
  bool violate_salaries = false;
  uint64_t seed = 42;
};

struct OrgRecord {
  std::string name;
  std::string department;
  int salary = 0;
  std::string manager;  // empty for department managers themselves
};

struct OrgDomain {
  std::vector<OrgRecord> records;        // one per employee
  std::vector<std::string> employees;    // entity names
  std::vector<std::string> departments;  // entity names
};

// Populates a LooseDb; returns the generated entity names so benchmarks
// can issue point queries.
OrgDomain BuildOrgDomain(LooseDb* db, const OrgOptions& options);

// Loads the *same* generated organization into the relational baseline
// (EMP(name, dept, salary, manager), DEPT(name)) with indexes on the
// usual access paths — the E6 comparator. Entity names are interned in
// `entities` so values match the loose store's ids.
void BuildOrgRelational(const OrgDomain& domain, const OrgOptions& options,
                        EntityTable* entities,
                        baseline::Catalog* catalog);

}  // namespace lsd::workload

#endif  // LSD_WORKLOAD_ORG_DOMAIN_H_
