#include "workload/random_graph.h"

#include "util/random.h"

namespace lsd::workload {

size_t Taxonomy::NumNodes() const {
  size_t n = 0;
  for (const auto& level : levels) n += level.size();
  return n;
}

Taxonomy BuildRandomTaxonomy(LooseDb* db, const TaxonomyOptions& options) {
  Taxonomy tax;
  Rng rng(options.seed);
  tax.levels.resize(options.depth + 1);
  for (int r = 0; r < options.num_roots; ++r) {
    tax.levels[0].push_back("T" + std::to_string(r));
  }
  for (int d = 1; d <= options.depth; ++d) {
    for (const std::string& parent : tax.levels[d - 1]) {
      for (int c = 0; c < options.fanout; ++c) {
        std::string child = parent + "." + std::to_string(c);
        db->Assert(child, "ISA", parent);
        if (options.extra_parent_prob > 0 &&
            tax.levels[d - 1].size() > 1 &&
            rng.Bernoulli(options.extra_parent_prob)) {
          const std::string& extra = tax.levels[d - 1][rng.Uniform(
              tax.levels[d - 1].size())];
          if (extra != parent) db->Assert(child, "ISA", extra);
        }
        tax.levels[d].push_back(child);
      }
    }
  }
  return tax;
}

namespace {

std::string GraphEntityName(size_t i) { return "E" + std::to_string(i); }
std::string GraphRelName(size_t j) { return "R" + std::to_string(j); }

template <typename AssertFn>
std::string BuildZipfGraphImpl(AssertFn assert_fact,
                               const GraphOptions& options) {
  Rng rng(options.seed);
  ZipfSampler entity_sampler(options.num_entities, options.zipf_exponent);
  for (size_t i = 0; i < options.num_facts; ++i) {
    size_t s = entity_sampler.Sample(rng);
    size_t t = entity_sampler.Sample(rng);
    size_t r = rng.Uniform(options.num_relationships);
    assert_fact(GraphEntityName(s), GraphRelName(r), GraphEntityName(t));
  }
  return GraphEntityName(0);  // rank-1 Zipf entity: highest degree
}

}  // namespace

std::string BuildZipfGraph(FactStore* store, const GraphOptions& options) {
  return BuildZipfGraphImpl(
      [store](const std::string& s, const std::string& r,
              const std::string& t) { store->Assert(s, r, t); },
      options);
}

std::string BuildZipfGraph(LooseDb* db, const GraphOptions& options) {
  return BuildZipfGraphImpl(
      [db](const std::string& s, const std::string& r,
           const std::string& t) { db->Assert(s, r, t); },
      options);
}

}  // namespace lsd::workload
