// E9: storage strategies — the Sec 6.2 open problem. Compares the
// dynamic set-backed TripleIndex against the frozen sorted-array index
// on inserts and scans, and measures snapshot/WAL durability throughput.
//
// Expected shape: the frozen index scans faster (contiguous memory) but
// cannot mutate; snapshot I/O is linear in store size; WAL appends are
// constant-time per record.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>

#include "store/frozen_index.h"
#include "util/random.h"
#include "store/persistence.h"
#include "workload/random_graph.h"

namespace {

lsd::FactStore* BuildStore(size_t num_facts) {
  static auto* cache =
      new std::map<size_t, std::unique_ptr<lsd::FactStore>>();
  auto it = cache->find(num_facts);
  if (it != cache->end()) return it->second.get();
  auto store = std::make_unique<lsd::FactStore>();
  lsd::workload::GraphOptions options;
  options.num_facts = num_facts;
  options.num_entities = std::max<size_t>(100, num_facts / 10);
  lsd::workload::BuildZipfGraph(store.get(), options);
  lsd::FactStore* out = store.get();
  (*cache)[num_facts] = std::move(store);
  return out;
}

void BM_TripleIndexInsert(benchmark::State& state) {
  lsd::Rng rng(1);
  for (auto _ : state) {
    state.PauseTiming();
    lsd::TripleIndex idx;
    const size_t n = static_cast<size_t>(state.range(0));
    state.ResumeTiming();
    for (size_t i = 0; i < n; ++i) {
      idx.Insert(lsd::Fact(static_cast<lsd::EntityId>(rng.Uniform(n / 4)),
                           static_cast<lsd::EntityId>(rng.Uniform(16)),
                           static_cast<lsd::EntityId>(rng.Uniform(n / 4))));
    }
    benchmark::DoNotOptimize(idx.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_FrozenIndexBuild(benchmark::State& state) {
  lsd::FactStore* store = BuildStore(static_cast<size_t>(state.range(0)));
  std::vector<lsd::Fact> facts = store->base().Match(lsd::Pattern());
  for (auto _ : state) {
    lsd::FrozenIndex frozen(facts);
    benchmark::DoNotOptimize(frozen.size());
  }
  state.SetItemsProcessed(state.iterations() * facts.size());
}

enum class ScanVariant {
  kDynamic,       // the set-backed TripleIndex
  kFrozen,        // FrozenIndex, production (auto) strategy
  kFrozenGather,  // FrozenIndex, forced RTS-permutation gather
  kFrozenDirect,  // FrozenIndex, forced canonical-column filter
};

void RunScan(benchmark::State& state, ScanVariant variant) {
  lsd::FactStore* store = BuildStore(static_cast<size_t>(state.range(0)));
  lsd::EntityId rel = *store->entities().Lookup("R0");
  lsd::Pattern p(lsd::kAnyEntity, rel, lsd::kAnyEntity);
  std::unique_ptr<lsd::FrozenIndex> frozen;
  if (variant != ScanVariant::kDynamic) {
    frozen = std::make_unique<lsd::FrozenIndex>(
        lsd::FrozenIndex::FromTripleIndex(store->base()));
    if (variant == ScanVariant::kFrozenGather) {
      frozen->set_rel_scan_mode(lsd::FrozenIndex::RelScanMode::kGather);
    } else if (variant == ScanVariant::kFrozenDirect) {
      frozen->set_rel_scan_mode(lsd::FrozenIndex::RelScanMode::kDirect);
    }
  }
  size_t n = 0;
  for (auto _ : state) {
    n = 0;
    auto count = [&](const lsd::Fact&) {
      ++n;
      return true;
    };
    if (variant == ScanVariant::kDynamic) {
      store->base().ForEach(p, count);
    } else {
      frozen->ForEach(p, count);
    }
    benchmark::DoNotOptimize(n);
  }
  state.counters["matches"] = static_cast<double>(n);
}

void BM_DynamicIndexScan(benchmark::State& state) {
  RunScan(state, ScanVariant::kDynamic);
}
void BM_FrozenIndexScan(benchmark::State& state) {
  RunScan(state, ScanVariant::kFrozen);
}
// The two forced strategies, so regressions in the auto cutover show up
// as BM_FrozenIndexScan drifting away from the better forced number.
void BM_FrozenIndexScanGather(benchmark::State& state) {
  RunScan(state, ScanVariant::kFrozenGather);
}
void BM_FrozenIndexScanDirect(benchmark::State& state) {
  RunScan(state, ScanVariant::kFrozenDirect);
}

void BM_SnapshotSave(benchmark::State& state) {
  lsd::FactStore* store = BuildStore(static_cast<size_t>(state.range(0)));
  std::string path =
      (std::filesystem::temp_directory_path() / "lsd_bench.snap").string();
  for (auto _ : state) {
    lsd::Status s = lsd::SaveSnapshot(path, *store, {});
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() * store->size());
  std::remove(path.c_str());
}

void BM_SnapshotLoad(benchmark::State& state) {
  lsd::FactStore* store = BuildStore(static_cast<size_t>(state.range(0)));
  std::string path =
      (std::filesystem::temp_directory_path() / "lsd_bench_load.snap")
          .string();
  lsd::Status saved = lsd::SaveSnapshot(path, *store, {});
  if (!saved.ok()) {
    state.SkipWithError(saved.ToString().c_str());
    return;
  }
  for (auto _ : state) {
    lsd::FactStore loaded;
    lsd::Status s = lsd::LoadSnapshot(path, &loaded, nullptr);
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(loaded.size());
  }
  state.SetItemsProcessed(state.iterations() * store->size());
  std::remove(path.c_str());
}

void BM_WalAppend(benchmark::State& state) {
  lsd::FactStore store;
  lsd::Fact f = store.Assert("A", "R", "B");
  std::string path =
      (std::filesystem::temp_directory_path() / "lsd_bench.wal").string();
  std::remove((path + ".000001").c_str());
  lsd::Wal wal;
  lsd::WalOptions options;
  options.segment_bytes = 0;  // measure appends, not rotation
  lsd::Status opened = wal.Open(path, options);
  if (!opened.ok()) {
    state.SkipWithError(opened.ToString().c_str());
    return;
  }
  for (auto _ : state) {
    lsd::Status s = wal.AppendAssert(store, f);
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(state.iterations());
  wal.Close();
  std::remove((path + ".000001").c_str());
}

}  // namespace

BENCHMARK(BM_TripleIndexInsert)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FrozenIndexBuild)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DynamicIndexScan)->Arg(10000)->Arg(100000)->Arg(1000000);
BENCHMARK(BM_FrozenIndexScan)->Arg(10000)->Arg(100000)->Arg(1000000);
BENCHMARK(BM_FrozenIndexScanGather)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000);
BENCHMARK(BM_FrozenIndexScanDirect)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000);
BENCHMARK(BM_SnapshotSave)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SnapshotLoad)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WalAppend);
