// E8: integrity-checking cost (Sec 2.5, 3.5): scanning the closure for
// contradictory fact pairs and arithmetic-violating comparisons, with
// and without planted violations, as the organization grows.
//
// Expected shape: the scan is linear in closure size; planted
// violations add detection-report cost but do not change the asymptote.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "core/loose_db.h"
#include "rules/contradiction.h"
#include "workload/org_domain.h"

namespace {

struct IntegrityWorld {
  std::unique_ptr<lsd::LooseDb> db;
  const lsd::ClosureView* view = nullptr;
};

IntegrityWorld* BuildWorld(int employees, bool violate) {
  static auto* cache =
      new std::map<std::pair<int, bool>, std::unique_ptr<IntegrityWorld>>();
  auto key = std::pair(employees, violate);
  auto it = cache->find(key);
  if (it != cache->end()) return it->second.get();
  auto w = std::make_unique<IntegrityWorld>();
  w->db = std::make_unique<lsd::LooseDb>();
  lsd::workload::OrgOptions options;
  options.num_employees = employees;
  options.violate_salaries = violate;
  lsd::workload::BuildOrgDomain(w->db.get(), options);
  // Also declare a linguistic contradiction pair with some facts.
  w->db->Assert("LOVES", "CONTRA", "HATES");
  w->db->Assert("EMP-0", "LOVES", "DEPT-0");
  if (violate) w->db->Assert("EMP-0", "HATES", "DEPT-0");
  auto view = w->db->View();
  w->view = view.ok() ? *view : nullptr;
  IntegrityWorld* out = w.get();
  (*cache)[key] = std::move(w);
  return out;
}

void RunFindViolations(benchmark::State& state, bool violate) {
  IntegrityWorld* w =
      BuildWorld(static_cast<int>(state.range(0)), violate);
  if (w->view == nullptr) {
    state.SkipWithError("closure unavailable");
    return;
  }
  size_t violations = 0;
  size_t closure_size = 0;
  w->view->ForEach(lsd::Pattern(), [&](const lsd::Fact&) {
    ++closure_size;
    return true;
  });
  for (auto _ : state) {
    violations = lsd::FindViolations(*w->view).size();
    benchmark::DoNotOptimize(violations);
  }
  state.counters["closure_facts"] = static_cast<double>(closure_size);
  state.counters["violations"] = static_cast<double>(violations);
}

void BM_IntegrityClean(benchmark::State& state) {
  RunFindViolations(state, false);
}

void BM_IntegrityWithViolations(benchmark::State& state) {
  RunFindViolations(state, true);
}

}  // namespace

BENCHMARK(BM_IntegrityClean)
    ->Arg(100)
    ->Arg(400)
    ->Arg(1600)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IntegrityWithViolations)
    ->Arg(100)
    ->Arg(400)
    ->Arg(1600)
    ->Unit(benchmark::kMillisecond);
