// E7: inference overhead of the synonym and inversion rules (Sec 3.3,
// 3.4). As the synonym density grows, more salary facts are asserted
// under the synonym name GETS-PAID and must be recovered through the
// synonym-substitution rules; this measures the closure cost and the
// answer-time effect.
//
// Expected shape: closure size and time grow roughly linearly with
// synonym density (each synonymous fact doubles), while query answers
// remain identical.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "core/loose_db.h"
#include "workload/org_domain.h"

namespace {

struct SynWorld {
  std::unique_ptr<lsd::LooseDb> db;
  lsd::Query query;
};

SynWorld* BuildWorld(int employees, int density_percent) {
  static auto* cache =
      new std::map<std::pair<int, int>, std::unique_ptr<SynWorld>>();
  auto key = std::pair(employees, density_percent);
  auto it = cache->find(key);
  if (it != cache->end()) return it->second.get();
  auto w = std::make_unique<SynWorld>();
  w->db = std::make_unique<lsd::LooseDb>();
  lsd::workload::OrgOptions options;
  options.num_employees = employees;
  options.synonym_density = density_percent / 100.0;
  options.salary_integrity_rule = false;
  lsd::workload::BuildOrgDomain(w->db.get(), options);
  auto q = w->db->Parse("(?X, EARNS, ?S) and (?S, IN, SALARY)");
  w->query = std::move(*q);
  SynWorld* out = w.get();
  (*cache)[key] = std::move(w);
  return out;
}

void BM_ClosureWithSynonyms(benchmark::State& state) {
  SynWorld* w =
      BuildWorld(static_cast<int>(state.range(0)),
                 static_cast<int>(state.range(1)));
  lsd::MathProvider math(&w->db->store().entities());
  lsd::RuleEngine engine(&w->db->store(), &math);
  size_t derived = 0;
  for (auto _ : state) {
    auto closure = engine.ComputeClosure(w->db->rules());
    if (!closure.ok()) {
      state.SkipWithError(closure.status().ToString().c_str());
      return;
    }
    derived = (*closure)->stats().derived_facts;
  }
  state.counters["derived"] = static_cast<double>(derived);
}

void BM_QueryWithSynonyms(benchmark::State& state) {
  SynWorld* w =
      BuildWorld(static_cast<int>(state.range(0)),
                 static_cast<int>(state.range(1)));
  (void)w->db->View();  // closure computed outside the timed region
  size_t rows = 0;
  for (auto _ : state) {
    auto r = w->db->Run(w->query);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    rows = r->rows.size();
  }
  // Every employee's salary is found regardless of the name it was
  // asserted under.
  state.counters["rows"] = static_cast<double>(rows);
}

}  // namespace

// employees, synonym density (percent).
BENCHMARK(BM_ClosureWithSynonyms)
    ->Args({200, 0})
    ->Args({200, 10})
    ->Args({200, 30})
    ->Args({200, 60})
    ->Args({800, 0})
    ->Args({800, 30})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_QueryWithSynonyms)
    ->Args({200, 0})
    ->Args({200, 30})
    ->Args({800, 0})
    ->Args({800, 30})
    ->Unit(benchmark::kMillisecond);
