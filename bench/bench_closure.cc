// E1: cost of computing the database closure (Sec 2.6) — semi-naive vs
// naive fixpoint, over random taxonomies of growing size. The paper
// promises "repeated application of the rules"; this measures how the
// evaluation strategy changes that cost.
//
// Expected shape: semi-naive beats naive, and the gap widens with store
// size (naive re-derives the full closure every round).
#include <benchmark/benchmark.h>

#include "core/loose_db.h"
#include "workload/random_graph.h"

namespace {

using lsd::ClosureOptions;
using lsd::LooseDb;
using lsd::MathProvider;
using lsd::RuleEngine;

void RunClosure(benchmark::State& state, ClosureOptions::Strategy strategy,
                unsigned num_threads = 1) {
  const int depth = static_cast<int>(state.range(0));
  const int fanout = static_cast<int>(state.range(1));

  LooseDb db;
  lsd::workload::TaxonomyOptions tax;
  tax.depth = depth;
  tax.fanout = fanout;
  auto taxonomy = lsd::workload::BuildRandomTaxonomy(&db, tax);
  // Members on the leaves plus a few class-level facts make the
  // generalization/membership rules do real work.
  for (size_t i = 0; i < taxonomy.levels.back().size(); ++i) {
    db.Assert("M" + std::to_string(i), "IN", taxonomy.levels.back()[i]);
  }
  db.Assert(taxonomy.Root(), "NEEDS", "OXYGEN");

  MathProvider math(&db.store().entities());
  RuleEngine engine(&db.store(), &math);
  ClosureOptions options;
  options.strategy = strategy;
  options.num_threads = num_threads;

  size_t derived = 0, candidates = 0, rounds = 0;
  for (auto _ : state) {
    auto closure = engine.ComputeClosure(db.rules(), options);
    if (!closure.ok()) {
      state.SkipWithError(closure.status().ToString().c_str());
      return;
    }
    derived = (*closure)->stats().derived_facts;
    candidates = (*closure)->stats().candidate_facts;
    rounds = (*closure)->stats().rounds;
    benchmark::DoNotOptimize(*closure);
  }
  state.counters["base_facts"] = static_cast<double>(db.store().size());
  state.counters["derived"] = static_cast<double>(derived);
  state.counters["candidates"] = static_cast<double>(candidates);
  state.counters["rounds"] = static_cast<double>(rounds);
}

// Pinned to one thread so the numbers stay comparable across machines
// (and with historic BENCH_closure.json entries).
void BM_ClosureSemiNaive(benchmark::State& state) {
  RunClosure(state, ClosureOptions::Strategy::kSemiNaive, 1);
}

// num_threads = 0 resolves to hardware_concurrency.
void BM_ClosureSemiNaiveParallel(benchmark::State& state) {
  RunClosure(state, ClosureOptions::Strategy::kSemiNaive, 0);
}

void BM_ClosureNaive(benchmark::State& state) {
  RunClosure(state, ClosureOptions::Strategy::kNaive);
}

}  // namespace

// Bushy taxonomies (depth, fanout) plus deep chains (fanout 1), where
// many rounds make the strategies diverge most.
BENCHMARK(BM_ClosureSemiNaive)
    ->Args({2, 3})
    ->Args({3, 3})
    ->Args({4, 3})
    ->Args({5, 3})
    ->Args({3, 6})
    ->Args({32, 1})
    ->Args({64, 1})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ClosureSemiNaiveParallel)
    ->Args({4, 3})
    ->Args({5, 3})
    ->Args({3, 6})
    ->Args({64, 1})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ClosureNaive)
    ->Args({2, 3})
    ->Args({3, 3})
    ->Args({4, 3})
    ->Args({5, 3})
    ->Args({3, 6})
    ->Args({32, 1})
    ->Args({64, 1})
    ->Unit(benchmark::kMillisecond);
