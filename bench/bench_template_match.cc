// E2: template (primitive query) latency per binding pattern (Sec 2.7).
// The triple index serves every one of the 8 patterns from one of its
// three permutations; this measures each against Zipf fact graphs of
// growing size.
//
// Expected shape: bound patterns are orders of magnitude faster than the
// full scan, and latency tracks result cardinality, not store size.
#include <benchmark/benchmark.h>

#include "store/fact_store.h"
#include "workload/random_graph.h"

namespace {

using lsd::EntityId;
using lsd::FactStore;
using lsd::kAnyEntity;
using lsd::Pattern;

struct Graph {
  FactStore store;
  EntityId hub;
  EntityId rel;
  EntityId tail;
};

Graph* BuildGraph(size_t num_facts) {
  static std::map<size_t, std::unique_ptr<Graph>>* cache =
      new std::map<size_t, std::unique_ptr<Graph>>();
  auto it = cache->find(num_facts);
  if (it != cache->end()) return it->second.get();
  auto g = std::make_unique<Graph>();
  lsd::workload::GraphOptions options;
  options.num_facts = num_facts;
  options.num_entities = std::max<size_t>(100, num_facts / 10);
  std::string hub = lsd::workload::BuildZipfGraph(&g->store, options);
  g->hub = *g->store.entities().Lookup(hub);
  g->rel = *g->store.entities().Lookup("R0");
  g->tail = g->store.entities().Intern("E1");
  Graph* out = g.get();
  (*cache)[num_facts] = std::move(g);
  return out;
}

void RunPattern(benchmark::State& state,
                Pattern (*make)(const Graph&)) {
  Graph* g = BuildGraph(static_cast<size_t>(state.range(0)));
  Pattern p = make(*g);
  size_t matches = 0;
  for (auto _ : state) {
    matches = 0;
    g->store.base().ForEach(p, [&](const lsd::Fact&) {
      ++matches;
      return true;
    });
    benchmark::DoNotOptimize(matches);
  }
  state.counters["matches"] = static_cast<double>(matches);
  state.counters["facts"] = static_cast<double>(g->store.size());
}

void BM_MatchSourceBound(benchmark::State& state) {
  RunPattern(state, +[](const Graph& g) {
    return Pattern(g.hub, kAnyEntity, kAnyEntity);
  });
}
void BM_MatchSourceRelBound(benchmark::State& state) {
  RunPattern(state, +[](const Graph& g) {
    return Pattern(g.hub, g.rel, kAnyEntity);
  });
}
void BM_MatchRelBound(benchmark::State& state) {
  RunPattern(state, +[](const Graph& g) {
    return Pattern(kAnyEntity, g.rel, kAnyEntity);
  });
}
void BM_MatchTargetBound(benchmark::State& state) {
  RunPattern(state, +[](const Graph& g) {
    return Pattern(kAnyEntity, kAnyEntity, g.hub);
  });
}
void BM_MatchSourceTargetBound(benchmark::State& state) {
  RunPattern(state, +[](const Graph& g) {
    return Pattern(g.hub, kAnyEntity, g.tail);
  });
}
void BM_MatchRelTargetBound(benchmark::State& state) {
  RunPattern(state, +[](const Graph& g) {
    return Pattern(kAnyEntity, g.rel, g.hub);
  });
}
void BM_MatchFullyBound(benchmark::State& state) {
  RunPattern(state, +[](const Graph& g) {
    return Pattern(g.hub, g.rel, g.tail);
  });
}
void BM_MatchFullScan(benchmark::State& state) {
  RunPattern(state, +[](const Graph&) { return Pattern(); });
}

}  // namespace

#define LSD_E2_SIZES ->Arg(10000)->Arg(100000)->Arg(1000000)

BENCHMARK(BM_MatchSourceBound) LSD_E2_SIZES;
BENCHMARK(BM_MatchSourceRelBound) LSD_E2_SIZES;
BENCHMARK(BM_MatchRelBound) LSD_E2_SIZES;
BENCHMARK(BM_MatchTargetBound) LSD_E2_SIZES;
BENCHMARK(BM_MatchSourceTargetBound) LSD_E2_SIZES;
BENCHMARK(BM_MatchRelTargetBound) LSD_E2_SIZES;
BENCHMARK(BM_MatchFullyBound) LSD_E2_SIZES;
BENCHMARK(BM_MatchFullScan) LSD_E2_SIZES;
