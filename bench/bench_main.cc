// Shared main for the google-benchmark suites. Exists because Debian's
// prebuilt libbenchmark was itself compiled without NDEBUG, so the stock
// JSONReporter stamps every run with "library_build_type": "debug" no
// matter how this tree was configured. The bench pipeline
// (tools/bench_json.sh) refuses to check in JSON from a non-release
// binary, so the context block must tell the truth about *this* build:
// when --benchmark_format=json is requested we swap in a reporter whose
// context derives the build type from our own NDEBUG.
#include <benchmark/benchmark.h>
#include <unistd.h>

#include <cstring>
#include <ctime>
#include <ostream>
#include <string>

namespace {

#ifdef NDEBUG
constexpr const char kBuildType[] = "release";
#else
constexpr const char kBuildType[] = "debug";
#endif

std::string LocalIso8601() {
  char buf[64];
  std::time_t now = std::time(nullptr);
  std::tm tm_buf;
  localtime_r(&now, &tm_buf);
  std::strftime(buf, sizeof(buf), "%FT%T%z", &tm_buf);
  return buf;
}

std::string HostName() {
  char buf[256];
  if (gethostname(buf, sizeof(buf)) != 0) return "unknown";
  buf[sizeof(buf) - 1] = '\0';
  return buf;
}

// Emits the same context block as the stock JSONReporter, except the
// build type reflects this binary's compilation mode. ReportRuns and
// Finalize are inherited, so the benchmark array is bit-compatible.
class HonestBuildTypeReporter : public benchmark::JSONReporter {
 public:
  bool ReportContext(const Context& context) override {
    std::ostream& out = GetOutputStream();
    const benchmark::CPUInfo& cpu = context.cpu_info;
    out << "{\n  \"context\": {\n";
    out << "    \"date\": \"" << LocalIso8601() << "\",\n";
    out << "    \"host_name\": \"" << HostName() << "\",\n";
    out << "    \"executable\": \"" << Context::executable_name << "\",\n";
    out << "    \"num_cpus\": " << cpu.num_cpus << ",\n";
    out << "    \"mhz_per_cpu\": "
        << static_cast<long>(cpu.cycles_per_second / 1e6) << ",\n";
    out << "    \"cpu_scaling_enabled\": "
        << (cpu.scaling == benchmark::CPUInfo::ENABLED ? "true" : "false")
        << ",\n";
    out << "    \"caches\": [\n";
    for (size_t i = 0; i < cpu.caches.size(); ++i) {
      const auto& c = cpu.caches[i];
      out << "      {\n";
      out << "        \"type\": \"" << c.type << "\",\n";
      out << "        \"level\": " << c.level << ",\n";
      out << "        \"size\": " << c.size << ",\n";
      out << "        \"num_sharing\": " << c.num_sharing << "\n";
      out << "      }" << (i + 1 < cpu.caches.size() ? "," : "") << "\n";
    }
    out << "    ],\n";
    out << "    \"load_avg\": [";
    for (size_t i = 0; i < cpu.load_avg.size(); ++i) {
      out << (i ? "," : "") << cpu.load_avg[i];
    }
    out << "],\n";
    out << "    \"library_build_type\": \"" << kBuildType << "\"\n";
    out << "  },\n";
    out << "  \"benchmarks\": [\n";
    return true;
  }
};

bool WantsJson(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--benchmark_format=json") == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = WantsJson(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (json) {
    HonestBuildTypeReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
  } else {
    benchmark::RunSpecifiedBenchmarks();
  }
  benchmark::Shutdown();
  return 0;
}
