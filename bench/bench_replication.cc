// bench_replication — WAL shipping: follower catch-up and read fan-out.
//
// Two measurements over an in-process primary/follower topology (real
// loopback TCP between shipper and clients, the same path lsd_serve
// --follow uses):
//
//   * catch-up-from-cold: preload a durable primary with N records,
//     then start a cold follower and time how long until its replica
//     provably equals the primary's tip (records/sec, shipped bytes).
//
//   * read fan-out: under a continuous fsync-on write load on the
//     primary, sweep 1/2/4 followers each serving the browsing read
//     mix through a ServerSession gated by its staleness monitor.
//     Aggregate follower reads/sec should scale with follower count —
//     the replicas share nothing — while the write rate and the worst
//     observed staleness stay flat.
//
// Not a google-benchmark suite: the unit of interest is wall-clock
// convergence and aggregate throughput across several threads and
// sockets, reported next to the staleness the readers actually saw.
//
//   bench_replication [--records 20000] [--followers 1,2,4]
//                     [--duration-ms 2000] [--json FILE] [--check]
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "replication/log_shipper.h"
#include "replication/monitor.h"
#include "replication/replication_client.h"
#include "server/session.h"
#include "server/shared_store.h"
#include "workload/university_domain.h"

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

// The read-mostly browsing mix every follower session cycles through
// (mirrors bench_server's, minus the entities the synthetic preload
// does not create).
const char* kReadMix[] = {
    "query (TOM, ENROLLED-IN, ?C)",
    "nav TOM",
    "query (?S, ENROLLED-IN, MATH101)",
    "nav CS100",
    "query (FRESHMAN, LOVE, ?Z)",
    "probe (STUDENT, LOVE, ?Z) and (?Z, COSTS, FREE)",
};
constexpr size_t kReadMixSize = sizeof(kReadMix) / sizeof(kReadMix[0]);

struct Follower {
  lsd::SharedStore store;
  std::unique_ptr<lsd::ReplicationMonitor> monitor;
  std::unique_ptr<lsd::ReplicationClient> client;
};

std::unique_ptr<Follower> StartFollower(uint16_t port,
                                        const std::string& scratch) {
  auto f = std::make_unique<Follower>();
  f->monitor = std::make_unique<lsd::ReplicationMonitor>();
  lsd::ReplicationClientOptions options;
  options.port = port;
  options.scratch_prefix = scratch;
  options.backoff_base_ms = 20;
  f->client = std::make_unique<lsd::ReplicationClient>(
      &f->store, f->monitor.get(), options);
  lsd::Status started = f->client->Start();
  if (!started.ok()) {
    std::fprintf(stderr, "follower start failed: %s\n",
                 started.ToString().c_str());
    std::exit(1);
  }
  return f;
}

bool Converged(Follower& f, lsd::SharedStore& primary) {
  const lsd::ReplicationStatus s = f.monitor->Sample();
  return s.ever_synced && s.lag_bytes == 0 &&
         s.applied_epoch == primary.snapshot()->sequence();
}

// Blocks until the follower's replica equals the primary's current tip.
double WaitConvergedMs(Follower& f, lsd::SharedStore& primary,
                       int timeout_ms) {
  auto t0 = Clock::now();
  auto deadline = t0 + std::chrono::milliseconds(timeout_ms);
  while (!Converged(f, primary)) {
    if (Clock::now() > deadline) {
      std::fprintf(stderr, "follower never converged (lag %llu bytes)\n",
                   static_cast<unsigned long long>(
                       f.monitor->Sample().lag_bytes));
      std::exit(1);
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

struct CatchUpResult {
  size_t records = 0;
  uint64_t wal_bytes = 0;
  double catch_up_ms = 0;
  double records_per_sec = 0;
  uint64_t snapshots = 0;
};

struct FanoutResult {
  int followers = 0;
  double duration_s = 0;
  uint64_t reads = 0;
  double reads_per_sec = 0;
  uint64_t writes = 0;
  double writes_per_sec = 0;
  uint64_t max_lag_ms = 0;
  uint64_t max_lag_bytes = 0;
};

}  // namespace

int main(int argc, char** argv) {
  size_t records = 20000;
  std::vector<int> follower_counts = {1, 2, 4};
  int duration_ms = 2000;
  std::string json_path;
  bool check = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--records" && i + 1 < argc) {
      records = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (arg == "--followers" && i + 1 < argc) {
      follower_counts.clear();
      std::string list = argv[++i];
      size_t pos = 0;
      while (pos < list.size()) {
        size_t comma = list.find(',', pos);
        follower_counts.push_back(
            std::atoi(list.substr(pos, comma - pos).c_str()));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else if (arg == "--duration-ms" && i + 1 < argc) {
      duration_ms = std::atoi(argv[++i]);
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--check") {
      check = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--records N] [--followers 1,2,4] "
                   "[--duration-ms N] [--json FILE] [--check]\n",
                   argv[0]);
      return 2;
    }
  }
  if (check) {
    // Smoke configuration: small, fast, still end-to-end.
    records = 500;
    follower_counts = {1};
    duration_ms = 300;
  }

  std::error_code ec;
  fs::path dir = fs::temp_directory_path() /
                 ("lsd_bench_repl_" + std::to_string(::getpid()));
  fs::create_directories(dir, ec);

  // ---- Primary: durable, fsync-on, shipping -----------------------------
  lsd::SharedStore primary;
  lsd::SharedStoreDurability durability;
  durability.sync = lsd::WalSync::kFsync;
  lsd::Status opened =
      primary.OpenDurable((dir / "primary").string(), durability);
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n", opened.ToString().c_str());
    return 1;
  }
  auto seeded = primary.Commit([&](lsd::LooseDb& db) {
    lsd::workload::BuildCampusDomain(&db);
    return lsd::Status::OK();
  });
  if (!seeded.ok()) return 1;
  // Preload in batches: one record per fact, many facts per fsync.
  for (size_t done = 0; done < records;) {
    size_t batch = std::min<size_t>(256, records - done);
    auto committed = primary.Commit([&](lsd::LooseDb& db) {
      for (size_t i = 0; i < batch; ++i) {
        size_t n = done + i;
        db.Assert("E-" + std::to_string(n),
                  "REL-" + std::to_string(n % 16),
                  "V-" + std::to_string(n));
      }
      return lsd::Status::OK();
    });
    if (!committed.ok()) return 1;
    done += batch;
  }
  uint64_t wal_bytes = 0;
  for (const lsd::WalSegmentInfo& seg : primary.wal().SegmentInventory()) {
    wal_bytes += seg.bytes;
  }

  lsd::LogShipperOptions ship_options;
  ship_options.heartbeat_ms = 100;
  lsd::LogShipper shipper(&primary, ship_options);
  lsd::Status shipping = shipper.Start();
  if (!shipping.ok()) {
    std::fprintf(stderr, "shipper start failed: %s\n",
                 shipping.ToString().c_str());
    return 1;
  }

  // ---- Catch-up from cold ----------------------------------------------
  CatchUpResult catch_up;
  catch_up.records = records;
  catch_up.wal_bytes = wal_bytes;
  {
    auto cold = StartFollower(shipper.port(), (dir / "cold").string());
    catch_up.catch_up_ms = WaitConvergedMs(*cold, primary, 120000);
    catch_up.records_per_sec =
        1000.0 * static_cast<double>(records) / catch_up.catch_up_ms;
    catch_up.snapshots = cold->monitor->Sample().snapshots_loaded;
    if (check) {
      // The replica must answer the paper's golden probe exactly as
      // the primary does.
      lsd::ServerSession on_primary(1, &primary);
      lsd::ServerSession on_follower(1, &cold->store);
      on_follower.set_replication(cold->monitor.get());
      const char* probe = "probe (STUDENT, LOVE, ?Z) and (?Z, COSTS, FREE)";
      auto a = on_primary.Execute(probe);
      auto b = on_follower.Execute(probe);
      if (!a.ok() || !b.ok() || *a != *b) {
        std::fprintf(stderr, "check failed: golden probe diverged\n");
        return 1;
      }
    }
    cold->client->Stop();
  }
  std::printf("# bench_replication: catch-up-from-cold, then follower "
              "read fan-out under fsync-on write load\n");
  std::printf("catch-up: %zu records (%llu WAL bytes) in %.1f ms "
              "(%.0f records/s, %llu snapshots)\n",
              catch_up.records,
              static_cast<unsigned long long>(catch_up.wal_bytes),
              catch_up.catch_up_ms, catch_up.records_per_sec,
              static_cast<unsigned long long>(catch_up.snapshots));

  // ---- Read fan-out under write load ------------------------------------
  std::printf("%9s %12s %13s %12s %13s %10s\n", "followers", "reads",
              "reads/sec", "writes/sec", "max_lag_ms", "max_lag_B");
  std::vector<FanoutResult> fanout;
  for (int count : follower_counts) {
    std::vector<std::unique_ptr<Follower>> followers;
    for (int f = 0; f < count; ++f) {
      followers.push_back(StartFollower(
          shipper.port(),
          (dir / ("f" + std::to_string(count) + "-" + std::to_string(f)))
              .string()));
      WaitConvergedMs(*followers.back(), primary, 120000);
    }

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> writes{0};
    std::thread writer([&] {
      uint64_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        std::string name = "W" + std::to_string(count) + "-" +
                           std::to_string(n++);
        auto committed = primary.Commit([&name](lsd::LooseDb& db) {
          db.Assert(name, "MARKS", "DONE");
          return lsd::Status::OK();
        });
        if (committed.ok()) {
          writes.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });

    std::vector<std::thread> readers;
    std::vector<uint64_t> read_counts(static_cast<size_t>(count), 0);
    std::atomic<uint64_t> max_lag_ms{0};
    std::atomic<uint64_t> max_lag_bytes{0};
    for (int f = 0; f < count; ++f) {
      readers.emplace_back([&, f] {
        Follower& self = *followers[static_cast<size_t>(f)];
        lsd::ServerSession session(static_cast<uint64_t>(f + 1),
                                   &self.store);
        session.set_replication(self.monitor.get());
        uint64_t n = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          auto result = session.Execute(kReadMix[n % kReadMixSize]);
          if (result.ok()) ++read_counts[static_cast<size_t>(f)];
          if (n % 32 == 0) {
            const lsd::ReplicationStatus s = self.monitor->Sample();
            uint64_t seen = max_lag_ms.load(std::memory_order_relaxed);
            while (s.lag_ms > seen &&
                   !max_lag_ms.compare_exchange_weak(seen, s.lag_ms)) {
            }
            seen = max_lag_bytes.load(std::memory_order_relaxed);
            while (s.lag_bytes > seen &&
                   !max_lag_bytes.compare_exchange_weak(seen,
                                                        s.lag_bytes)) {
            }
          }
          ++n;
        }
      });
    }

    auto t0 = Clock::now();
    std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
    stop.store(true);
    for (auto& t : readers) t.join();
    writer.join();
    double elapsed_s =
        std::chrono::duration<double>(Clock::now() - t0).count();

    FanoutResult r;
    r.followers = count;
    r.duration_s = elapsed_s;
    for (uint64_t c : read_counts) r.reads += c;
    r.reads_per_sec = static_cast<double>(r.reads) / elapsed_s;
    r.writes = writes.load();
    r.writes_per_sec = static_cast<double>(r.writes) / elapsed_s;
    r.max_lag_ms = max_lag_ms.load();
    r.max_lag_bytes = max_lag_bytes.load();
    fanout.push_back(r);
    std::printf("%9d %12llu %13.0f %12.0f %13llu %10llu\n", r.followers,
                static_cast<unsigned long long>(r.reads), r.reads_per_sec,
                r.writes_per_sec,
                static_cast<unsigned long long>(r.max_lag_ms),
                static_cast<unsigned long long>(r.max_lag_bytes));

    for (auto& f : followers) f->client->Stop();
    if (check && (r.reads == 0 || r.writes == 0)) {
      std::fprintf(stderr, "check failed: no read or write progress\n");
      return 1;
    }
  }
  shipper.Stop();

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"comment\": \"bench_replication: follower "
           "catch-up-from-cold (records shipped per second until the "
           "replica equals the primary tip) and read fan-out (aggregate "
           "follower reads/sec under a continuous fsync-on write load "
           "on the primary, 1 reader per follower) with the worst "
           "staleness any reader observed; regenerate with "
           "tools/bench_json.sh.\",\n";
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "  \"catch_up\": {\"records\": %zu, \"wal_bytes\": "
                  "%llu, \"catch_up_ms\": %.1f, \"records_per_sec\": "
                  "%.0f, \"snapshots\": %llu},\n  \"fanout\": [\n",
                  catch_up.records,
                  static_cast<unsigned long long>(catch_up.wal_bytes),
                  catch_up.catch_up_ms, catch_up.records_per_sec,
                  static_cast<unsigned long long>(catch_up.snapshots));
    out << buf;
    for (size_t i = 0; i < fanout.size(); ++i) {
      const FanoutResult& r = fanout[i];
      std::snprintf(
          buf, sizeof(buf),
          "    {\"followers\": %d, \"duration_s\": %.2f, \"reads\": "
          "%llu, \"reads_per_sec\": %.0f, \"writes\": %llu, "
          "\"writes_per_sec\": %.0f, \"max_lag_ms\": %llu, "
          "\"max_lag_bytes\": %llu}%s\n",
          r.followers, r.duration_s,
          static_cast<unsigned long long>(r.reads), r.reads_per_sec,
          static_cast<unsigned long long>(r.writes), r.writes_per_sec,
          static_cast<unsigned long long>(r.max_lag_ms),
          static_cast<unsigned long long>(r.max_lag_bytes),
          i + 1 < fanout.size() ? "," : "");
      out << buf;
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }

  fs::remove_all(dir, ec);
  if (check) std::printf("bench_replication --check: ok\n");
  return 0;
}
