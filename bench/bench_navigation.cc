// E5: navigation neighborhood retrieval vs entity degree (Sec 4.1). On
// a Zipf graph the rank-1 hub concentrates a large share of all facts;
// browsing its neighborhood costs proportionally more than a tail
// entity's.
//
// Expected shape: latency tracks entity degree (result size), not total
// store size.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "browse/navigation.h"
#include "rules/closure_view.h"
#include "workload/random_graph.h"

namespace {

struct NavWorld {
  lsd::FactStore store;
  std::unique_ptr<lsd::MathProvider> math;
  std::unique_ptr<lsd::ClosureView> view;
  lsd::EntityId hub;
  lsd::EntityId mid;
  lsd::EntityId tail;
};

NavWorld* BuildWorld(size_t num_facts) {
  static auto* cache = new std::map<size_t, std::unique_ptr<NavWorld>>();
  auto it = cache->find(num_facts);
  if (it != cache->end()) return it->second.get();
  auto w = std::make_unique<NavWorld>();
  lsd::workload::GraphOptions options;
  options.num_facts = num_facts;
  options.num_entities = std::max<size_t>(200, num_facts / 20);
  std::string hub = lsd::workload::BuildZipfGraph(&w->store, options);
  w->math = std::make_unique<lsd::MathProvider>(&w->store.entities());
  w->view = std::make_unique<lsd::ClosureView>(&w->store, nullptr,
                                               w->math.get());
  w->hub = *w->store.entities().Lookup(hub);
  w->mid = w->store.entities().Intern("E20");
  w->tail = w->store.entities().Intern(
      "E" + std::to_string(options.num_entities - 1));
  NavWorld* out = w.get();
  (*cache)[num_facts] = std::move(w);
  return out;
}

void RunNeighborhood(benchmark::State& state,
                     lsd::EntityId NavWorld::* which) {
  NavWorld* w = BuildWorld(static_cast<size_t>(state.range(0)));
  lsd::Navigator navigator(w->view.get(), &w->store.entities());
  lsd::EntityId entity = w->*which;

  size_t groups = 0, neighbors = 0;
  for (auto _ : state) {
    lsd::NeighborhoodView view = *navigator.Neighborhood(entity);
    groups = view.outgoing.size() + view.incoming.size();
    neighbors = 0;
    for (const auto& g : view.outgoing) neighbors += g.entities.size();
    for (const auto& g : view.incoming) neighbors += g.entities.size();
    benchmark::DoNotOptimize(view);
  }
  state.counters["facts"] = static_cast<double>(w->store.size());
  state.counters["groups"] = static_cast<double>(groups);
  state.counters["neighbors"] = static_cast<double>(neighbors);
}

void BM_NeighborhoodHub(benchmark::State& state) {
  RunNeighborhood(state, &NavWorld::hub);
}
void BM_NeighborhoodMid(benchmark::State& state) {
  RunNeighborhood(state, &NavWorld::mid);
}
void BM_NeighborhoodTail(benchmark::State& state) {
  RunNeighborhood(state, &NavWorld::tail);
}

}  // namespace

BENCHMARK(BM_NeighborhoodHub)->Arg(10000)->Arg(100000)->Arg(400000);
BENCHMARK(BM_NeighborhoodMid)->Arg(10000)->Arg(100000)->Arg(400000);
BENCHMARK(BM_NeighborhoodTail)->Arg(10000)->Arg(100000)->Arg(400000);
