// E11 (ablation): conjunct ordering in the matcher. The same query is
// evaluated with three policies:
//   kFixed          left-to-right as written (no optimizer);
//   kBoundCount     dynamic greedy on bound positions (the former
//                   default; no defense against cross products);
//   kEstimatedCost  static cost-based, connectivity-aware plan from
//                   EstimateMatchesBound statistics (the default).
// The test query is written selectivity-hostile: its first conjunct is
// a full wildcard scan, and the most-bound conjunct is an unconnected
// membership test (the bound-count trap).
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "core/loose_db.h"
#include "workload/org_domain.h"

namespace {

struct World {
  std::unique_ptr<lsd::LooseDb> db;
  lsd::Query hostile;    // worst written order
  lsd::Query friendly;   // best written order
  lsd::Query intersect;  // two single-free-variable runs sharing ?X
  lsd::Query disjoint;   // same shape, provably empty intersection
};

World* BuildWorld(int employees) {
  static auto* cache = new std::map<int, std::unique_ptr<World>>();
  auto it = cache->find(employees);
  if (it != cache->end()) return it->second.get();
  auto w = std::make_unique<World>();
  w->db = std::make_unique<lsd::LooseDb>();
  lsd::workload::OrgOptions options;
  options.num_employees = employees;
  options.salary_integrity_rule = false;
  lsd::workload::BuildOrgDomain(w->db.get(), options);
  // "salaries of employees working for DEPT-0", written so the first
  // conjunct is a wildcard join and the selective conjunct comes last.
  auto hostile = w->db->Parse(
      "(?X, ?R, ?S) and (?S, IN, SALARY) and (?X, WORKS-FOR, DEPT-0) "
      "and (?R, =, EARNS)");
  auto friendly = w->db->Parse(
      "(?X, WORKS-FOR, DEPT-0) and (?X, ?R, ?S) and (?R, =, EARNS) "
      "and (?S, IN, SALARY)");
  // "people working for DEPT-0": both conjuncts have ?X as their only
  // free position, so the merge-join kernel can intersect the two
  // sorted runs ((?,IN,PERSON) is a large derived run, the WORKS-FOR
  // run is 1/num_departments of it) instead of enumerating one side
  // and probing per candidate.
  auto intersect = w->db->Parse("(?X, IN, PERSON) and (?X, WORKS-FOR, DEPT-0)");
  // "DEPT-0 employees managed by MGR-1": every DEPT-0 employee reports
  // to MGR-0, so the two balanced runs (each 1/num_departments of the
  // workforce) never meet. Proving emptiness is the nested loop's worst
  // case — one full ground probe per candidate with no early exit —
  // while the merge kernel gallops both runs once.
  auto disjoint =
      w->db->Parse("(?X, WORKS-FOR, DEPT-0) and (?X, MANAGER, MGR-1)");
  w->hostile = std::move(*hostile);
  w->friendly = std::move(*friendly);
  w->intersect = std::move(*intersect);
  w->disjoint = std::move(*disjoint);
  (void)w->db->View();  // closure outside the timed region
  World* out = w.get();
  (*cache)[employees] = std::move(w);
  return out;
}

void RunPolicy(benchmark::State& state, lsd::Query World::* which,
               lsd::JoinOrder order, bool merge_join = true) {
  World* w = BuildWorld(static_cast<int>(state.range(0)));
  lsd::EvalOptions options;
  options.join_order = order;
  options.merge_join = merge_join;
  size_t rows = 0;
  for (auto _ : state) {
    auto r = w->db->Run(w->*which, options);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    rows = r->rows.size();
  }
  state.counters["rows"] = static_cast<double>(rows);
}

void BM_HostileFixed(benchmark::State& state) {
  RunPolicy(state, &World::hostile, lsd::JoinOrder::kFixed);
}
void BM_HostileBoundCount(benchmark::State& state) {
  RunPolicy(state, &World::hostile, lsd::JoinOrder::kBoundCount);
}
void BM_HostileEstimatedCost(benchmark::State& state) {
  RunPolicy(state, &World::hostile, lsd::JoinOrder::kEstimatedCost);
}
void BM_FriendlyFixed(benchmark::State& state) {
  RunPolicy(state, &World::friendly, lsd::JoinOrder::kFixed);
}
void BM_FriendlyBoundCount(benchmark::State& state) {
  RunPolicy(state, &World::friendly, lsd::JoinOrder::kBoundCount);
}
void BM_FriendlyEstimatedCost(benchmark::State& state) {
  RunPolicy(state, &World::friendly, lsd::JoinOrder::kEstimatedCost);
}

// Merge-join ablation: the same intersection query with the
// order-exploiting kernel on (galloping intersection of the two sorted
// runs) and off (enumerate one side, probe the other per candidate).
void BM_IntersectMergeJoin(benchmark::State& state) {
  RunPolicy(state, &World::intersect, lsd::JoinOrder::kEstimatedCost,
            /*merge_join=*/true);
}
void BM_IntersectNestedLoop(benchmark::State& state) {
  RunPolicy(state, &World::intersect, lsd::JoinOrder::kEstimatedCost,
            /*merge_join=*/false);
}
void BM_DisjointMergeJoin(benchmark::State& state) {
  RunPolicy(state, &World::disjoint, lsd::JoinOrder::kEstimatedCost,
            /*merge_join=*/true);
}
void BM_DisjointNestedLoop(benchmark::State& state) {
  RunPolicy(state, &World::disjoint, lsd::JoinOrder::kEstimatedCost,
            /*merge_join=*/false);
}

}  // namespace

#define LSD_E11_SIZES ->Arg(200)->Arg(1000)->Arg(4000)

BENCHMARK(BM_HostileFixed) LSD_E11_SIZES->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HostileBoundCount)
LSD_E11_SIZES->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HostileEstimatedCost)
LSD_E11_SIZES->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FriendlyFixed) LSD_E11_SIZES->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FriendlyBoundCount)
LSD_E11_SIZES->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FriendlyEstimatedCost)
LSD_E11_SIZES->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IntersectMergeJoin)
LSD_E11_SIZES->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IntersectNestedLoop)
LSD_E11_SIZES->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DisjointMergeJoin)
LSD_E11_SIZES->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DisjointNestedLoop)
LSD_E11_SIZES->Unit(benchmark::kMillisecond);
