// bench_server — multi-threaded load generator for the browsing server.
//
// Starts an in-process LsdServer over loopback TCP, seeds the campus
// domain, then sweeps concurrent-session counts. Every session runs the
// same read-mostly browsing mix (queries, navigation, probing — the
// paper's interactive loop) over its own connection, and we report
// aggregate throughput and client-observed latency percentiles.
//
// Not a google-benchmark suite: the unit of interest is end-to-end
// requests per second against the shared store as sessions scale, which
// needs real sockets, real threads, and a latency histogram.
//
//   bench_server [--sessions 1,4,16,64] [--requests N] [--json FILE]

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "server/protocol.h"
#include "server/server.h"
#include "server/shared_store.h"
#include "util/failpoint.h"
#include "workload/university_domain.h"

namespace {

using Clock = std::chrono::steady_clock;

// The request mix one browsing session cycles through: mostly cheap
// point queries and navigation, with a probing wave (the expensive,
// internally parallel operation) every 8th request.
const char* kMix[] = {
    "query (TOM, ENROLLED-IN, ?C)",
    "nav TOM",
    "query (?S, ENROLLED-IN, MATH101)",
    "nav CS100",
    "query (FRESHMAN, LOVE, ?Z)",
    "dist TOM SUE",
    "query (BOB, ATTENDED, ?U)",
    "probe (STUDENT, LOVE, ?Z) and (?Z, COSTS, FREE)",
};
constexpr size_t kMixSize = sizeof(kMix) / sizeof(kMix[0]);

int Connect(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

struct SweepResult {
  int sessions = 0;
  size_t requests = 0;
  size_t errors = 0;   // requests that failed even after a retry
  size_t retries = 0;  // reconnect-and-resend recoveries
  double seconds = 0;
  double throughput_rps = 0;
  double p50_us = 0;
  double p99_us = 0;
};

double PercentileUs(std::vector<int64_t>& ns, double p) {
  if (ns.empty()) return 0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(ns.size() - 1));
  std::nth_element(ns.begin(), ns.begin() + idx, ns.end());
  return static_cast<double>(ns[idx]) / 1000.0;
}

SweepResult RunSweep(uint16_t port, int sessions, int requests_per_session) {
  std::vector<std::thread> clients;
  std::vector<std::vector<int64_t>> latencies(sessions);
  std::vector<size_t> errors(sessions, 0);
  std::vector<size_t> retries(sessions, 0);

  auto start = Clock::now();
  for (int s = 0; s < sessions; ++s) {
    clients.emplace_back([port, s, requests_per_session, &latencies,
                          &errors, &retries] {
      int fd = -1;
      std::unique_ptr<lsd::LineReader> reader;
      // (Re)establishes the connection through the greeting. Injected
      // write failures drop the connection server-side; a resilient
      // client reconnects and resends, which is what we measure.
      auto connect = [&]() -> bool {
        if (fd >= 0) ::close(fd);
        fd = Connect(port);
        if (fd < 0) return false;
        reader = std::make_unique<lsd::LineReader>(fd);
        auto greeting = lsd::ReadResponse(reader.get());
        return greeting.ok() && greeting->ok;
      };
      if (!connect()) {
        errors[s] = static_cast<size_t>(requests_per_session);
        if (fd >= 0) ::close(fd);
        return;
      }
      latencies[s].reserve(static_cast<size_t>(requests_per_session));
      enum class Outcome { kOk, kInBandError, kTransport };
      auto attempt = [&](const char* line) -> Outcome {
        if (!lsd::WriteAll(fd, std::string(line) + "\n").ok()) {
          return Outcome::kTransport;
        }
        auto response = lsd::ReadResponse(reader.get());
        if (!response.ok()) return Outcome::kTransport;
        return response->ok ? Outcome::kOk : Outcome::kInBandError;
      };
      for (int i = 0; i < requests_per_session; ++i) {
        // Offset by session id so sessions are out of phase in the mix.
        const char* line = kMix[(static_cast<size_t>(i) + s) % kMixSize];
        auto t0 = Clock::now();
        Outcome outcome = attempt(line);
        if (outcome == Outcome::kTransport) {
          // Dropped connection: reconnect and resend once.
          ++retries[s];
          outcome = connect() ? attempt(line) : Outcome::kTransport;
        }
        auto t1 = Clock::now();
        if (outcome != Outcome::kOk) {
          ++errors[s];
          if (outcome == Outcome::kTransport && !connect()) break;
          continue;
        }
        latencies[s].push_back(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count());
      }
      (void)lsd::WriteAll(fd, "quit\n");
      ::close(fd);
    });
  }
  for (auto& t : clients) t.join();
  double seconds = std::chrono::duration<double>(Clock::now() - start).count();

  SweepResult result;
  result.sessions = sessions;
  result.seconds = seconds;
  std::vector<int64_t> all;
  for (int s = 0; s < sessions; ++s) {
    all.insert(all.end(), latencies[s].begin(), latencies[s].end());
    result.errors += errors[s];
    result.retries += retries[s];
  }
  result.requests = all.size();
  result.throughput_rps =
      seconds > 0 ? static_cast<double>(all.size()) / seconds : 0;
  result.p50_us = PercentileUs(all, 0.50);
  result.p99_us = PercentileUs(all, 0.99);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<int> session_counts = {1, 4, 16, 64};
  int requests_per_session = 200;
  std::string json_path;
  double fail_writes = 0.0;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--fail-writes" && i + 1 < argc) {
      fail_writes = std::atof(argv[++i]);
    } else if (arg == "--sessions" && i + 1 < argc) {
      session_counts.clear();
      std::string list = argv[++i];
      size_t pos = 0;
      while (pos < list.size()) {
        size_t comma = list.find(',', pos);
        session_counts.push_back(
            std::atoi(list.substr(pos, comma - pos).c_str()));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else if (arg == "--requests" && i + 1 < argc) {
      requests_per_session = std::atoi(argv[++i]);
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--sessions 1,4,16,64] [--requests N] "
                   "[--json FILE] [--fail-writes P]\n",
                   argv[0]);
      return 2;
    }
  }

  lsd::SharedStore store;
  auto seeded = store.Commit([](lsd::LooseDb& db) {
    lsd::workload::BuildCampusDomain(&db);
    return lsd::Status::OK();
  });
  if (!seeded.ok()) {
    std::fprintf(stderr, "seed failed: %s\n",
                 seeded.status().ToString().c_str());
    return 1;
  }

  lsd::ServerOptions options;
  options.port = 0;
  options.max_sessions =
      static_cast<size_t>(
          *std::max_element(session_counts.begin(), session_counts.end())) +
      4;
  lsd::LsdServer server(&store, options);
  lsd::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.ToString().c_str());
    return 1;
  }

  std::printf("# bench_server: %d requests/session, read-mostly mix "
              "(1 probe per %zu requests)\n",
              requests_per_session, kMixSize);
  if (fail_writes > 0) {
    std::printf("# degraded mode: server.write fails with p=%.4f "
                "(clients reconnect and resend)\n",
                fail_writes);
  }
  std::printf("%10s %10s %12s %10s %10s %8s %8s\n", "sessions", "requests",
              "thruput_rps", "p50_us", "p99_us", "errors", "retries");

  std::vector<SweepResult> results;
  // Warm-up: populate the shared plan cache and lattice so the sweep
  // measures steady-state serving, not first-touch materialization.
  (void)RunSweep(server.port(), 1, static_cast<int>(kMixSize));
  if (fail_writes > 0) {
    // Armed after warm-up so cache population is never disrupted.
    char spec[64];
    std::snprintf(spec, sizeof(spec), "server.write=error%%%.6f",
                  fail_writes);
    lsd::Status armed = lsd::failpoint::Configure(spec);
    if (!armed.ok()) {
      std::fprintf(stderr, "cannot arm failpoint: %s\n",
                   armed.ToString().c_str());
      return 1;
    }
#if !LSD_FAILPOINTS_ENABLED
    std::fprintf(stderr,
                 "warning: built without LSD_FAILPOINTS; --fail-writes "
                 "injects nothing\n");
#endif
  }
  for (int sessions : session_counts) {
    SweepResult r = RunSweep(server.port(), sessions, requests_per_session);
    results.push_back(r);
    std::printf("%10d %10zu %12.0f %10.1f %10.1f %8zu %8zu\n", r.sessions,
                r.requests, r.throughput_rps, r.p50_us, r.p99_us, r.errors,
                r.retries);
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"comment\": \"bench_server read-mostly browsing mix "
           "over loopback TCP; regenerate with tools/bench_json.sh. "
           "Aggregate throughput scales with sessions only up to the "
           "host's core count; on a single-core host expect flat "
           "throughput with proportionally growing p50.\",\n"
           "  \"hardware_concurrency\": "
        << std::thread::hardware_concurrency()
        << ",\n  \"requests_per_session\": "
        << requests_per_session << ",\n  \"fail_writes\": " << fail_writes
        << ",\n  \"sweeps\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
      const SweepResult& r = results[i];
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "    {\"sessions\": %d, \"requests\": %zu, "
                    "\"throughput_rps\": %.0f, \"p50_us\": %.1f, "
                    "\"p99_us\": %.1f, \"errors\": %zu, "
                    "\"retries\": %zu}%s\n",
                    r.sessions, r.requests, r.throughput_rps, r.p50_us,
                    r.p99_us, r.errors, r.retries,
                    i + 1 < results.size() ? "," : "");
      out << buf;
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }

  server.Stop();
  return 0;
}
