// bench_server — multiplexed load generator for the browsing server.
//
// Starts an in-process LsdServer over loopback TCP, seeds the campus
// domain, then sweeps concurrent-session counts in both wire protocols:
// the line-oriented text protocol (one request, one response) and the
// length-prefixed binary protocol with request pipelining (up to
// --window frames in flight per connection). Every session runs the
// same read-mostly browsing mix (queries, navigation, probing — the
// paper's interactive loop) over its own connection, and we report
// aggregate throughput and client-observed latency percentiles.
//
// The client side is itself event-driven: a handful of driver threads
// each multiplex their slice of connections with poll(), so a 10k
// session sweep needs ~8 client threads, not 10k. Session counts are
// clamped to what RLIMIT_NOFILE allows (2 fds per session: client end
// plus server end in this same process); the soft limit is raised to
// the hard limit at startup.
//
// Not a google-benchmark suite: the unit of interest is end-to-end
// requests per second against the shared store as sessions scale, which
// needs real sockets and a latency histogram.
//
// Write mix: --write-pct P replaces P% of each session's mix with
// unique `assert` commands (every fact is fresh, so no commit is a
// no-op). With --sync fsync the store runs durable against a scratch
// directory and every commit group costs one real WAL fsync — the
// sweep then measures how group commit amortizes that fsync across
// concurrent writer sessions (acked-writes/sec, group-size stats).
// Writer concurrency is bounded by the server worker pool, so write
// sweeps raise worker_threads to the largest session count instead of
// defaulting to hardware_concurrency.
//
// Hostile mix: --hostile-pct P replaces P% of each session's mix with
// a poison query — a three-atom chain join over a layered bipartite
// graph seeded for the purpose, engineered so the planner has no cheap
// atom to start from and the merge join never engages (every order
// enumerates ~layer³ candidates) yet the result set is empty (no
// three-edge path exists in a three-layer DAG), so the burn is pure
// CPU with O(depth) memory. The server's request deadline
// (--timeout-ms, default 150 when hostile) kills each poison with a
// typed ERR; the client counts those as `cancelled`, not errors, and
// reports the surviving cheap requests' tail (p99.9) so the sweep
// shows what hostile load does to well-behaved sessions.
//
//   bench_server [--sessions 1,4,16,64,256,1024] [--requests N]
//                [--protocols text,binary] [--window N] [--json FILE]
//                [--write-pct P] [--sync fsync|none]
//                [--hostile-pct P] [--timeout-ms N]
//                [--fail-writes P] [--check]

#include <arpa/inet.h>
#include <dirent.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "server/protocol.h"
#include "server/server.h"
#include "server/shared_store.h"
#include "util/failpoint.h"
#include "workload/university_domain.h"

namespace {

using Clock = std::chrono::steady_clock;

// The request mix one browsing session cycles through: mostly cheap
// point queries and navigation, with a probing wave (the expensive,
// internally parallel operation) every 8th request.
const char* kMix[] = {
    "query (TOM, ENROLLED-IN, ?C)",
    "nav TOM",
    "query (?S, ENROLLED-IN, MATH101)",
    "nav CS100",
    "query (FRESHMAN, LOVE, ?Z)",
    "dist TOM SUE",
    "query (BOB, ATTENDED, ?U)",
    "probe (STUDENT, LOVE, ?Z) and (?Z, COSTS, FREE)",
};
constexpr size_t kMixSize = sizeof(kMix) / sizeof(kMix[0]);

// The poison request (--hostile-pct): a chain join whose every atom
// matches the whole FEEDS edge set (2·kPoisonLayer² facts, equal
// estimates, so the planner cannot pick a selective start) and whose
// middle expansion fans out kPoisonLayer ways before the third atom
// kills each candidate — ~kPoisonLayer³ enumerations, zero rows. The
// deadline is expected to fire long before it finishes.
const char* kPoisonQuery =
    "query (?A, FEEDS, ?B) and (?B, FEEDS, ?C) and (?C, FEEDS, ?D)";
constexpr int kPoisonLayer = 256;

// Does this error text carry one of the governance codes? Those are
// expected kills under a hostile mix (deadline, shed, step budget),
// not benchmark failures. Works on both wire shapes: the text status
// line ("ERR DeadlineExceeded: ...") and the binary kErr payload
// ("DeadlineExceeded: ...").
bool IsCancelText(std::string_view text) {
  return text.find("DeadlineExceeded") != std::string_view::npos ||
         text.find("ResourceExhausted") != std::string_view::npos ||
         text.find("Cancelled") != std::string_view::npos;
}

enum class Protocol { kText, kBinary };

const char* ProtocolName(Protocol p) {
  return p == Protocol::kText ? "text" : "binary";
}

int Connect(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void SleepMs(long ms) {
  struct timespec ts;
  ts.tv_sec = ms / 1000;
  ts.tv_nsec = (ms % 1000) * 1000000L;
  ::nanosleep(&ts, nullptr);
}

struct SweepSpec {
  Protocol protocol = Protocol::kText;
  int window = 1;  // in-flight requests per connection (binary only)
  int sessions = 1;
  int requests_per_session = 200;
  int write_pct = 0;    // % of the mix replaced by unique asserts
  int hostile_pct = 0;  // % of the mix replaced by poison queries
  int tag = 0;          // uniquifies write facts across sweeps
};

struct SweepResult {
  Protocol protocol = Protocol::kText;
  int window = 1;
  int sessions = 0;
  size_t requests = 0;
  size_t errors = 0;   // requests that failed even after a retry
  size_t retries = 0;  // reconnect-and-resend recoveries
  double seconds = 0;
  double throughput_rps = 0;
  double p50_us = 0;
  double p99_us = 0;
  // Hostile-mix extras (zero when --hostile-pct 0). Percentiles above
  // exclude hostile requests either way: `cancelled` counts requests
  // the server killed with a governance-typed error (expected under a
  // hostile mix), and p999_us is the cheap requests' p99.9 — the tail
  // the poison load inflates.
  size_t hostile = 0;    // poison requests resolved (killed or finished)
  size_t cancelled = 0;  // governance-typed ERR replies
  double p999_us = 0;
  // Write-mix extras (zero when --write-pct 0).
  size_t writes = 0;  // asserts acked OK
  double writes_per_sec = 0;
  double wp50_us = 0;          // p50 latency of acked writes
  uint64_t groups = 0;         // commit groups this sweep
  double mean_group = 0;       // acked+rejected slots per group
  uint64_t max_group = 0;      // largest group so far (cumulative)
  uint64_t fsyncs = 0;         // WAL fsyncs this sweep
};

double PercentileUs(std::vector<int64_t>& ns, double p) {
  if (ns.empty()) return 0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(ns.size() - 1));
  std::nth_element(ns.begin(), ns.begin() + idx, ns.end());
  return static_cast<double>(ns[idx]) / 1000.0;
}

// A request handed to the socket but not yet answered. `ordinal` is
// both the position in the session's mix and (in binary mode) the
// request id the response must echo. A request is resent at most once
// across reconnects, mirroring the text clients' retry discipline.
struct PendingRequest {
  uint64_t ordinal = 0;
  Clock::time_point sent_at;
  bool resent = false;
  bool write = false;
  bool hostile = false;
};

// One benchmark session: a connection plus its protocol state machine.
// Driven entirely from its owning driver thread, so no locking.
struct Conn {
  int index = 0;  // session number, offsets the mix phase
  int total = 0;
  int fd = -1;
  int sent = 0;  // requests appended to the outbound buffer so far
  int done = 0;  // requests resolved (response seen, or given up)

  std::string out;  // unflushed outbound bytes
  size_t out_pos = 0;
  std::deque<PendingRequest> pending;

  // Binary receive state.
  lsd::BinaryFrameParser parser;
  // Text receive state: raw lines straight off the socket. Dot-stuffing
  // guarantees no payload line is ever exactly ".", so the terminator
  // scan needs no unstuffing.
  std::string in;
  size_t scan_pos = 0;
  bool at_status_line = true;
  bool cur_err = false;
  bool cur_cancel = false;

  size_t errors = 0;
  size_t retries = 0;
  size_t cancelled = 0;
  size_t hostile_done = 0;
  std::vector<int64_t> latencies;
  std::vector<int64_t> write_latencies;
  bool gave_up = false;

  bool finished() const { return gave_up || done >= total; }
};

// Drives one thread's slice of the sweep's connections through poll().
class Driver {
 public:
  Driver(uint16_t port, const SweepSpec& spec, Conn* conns, size_t count)
      : port_(port), spec_(spec), conns_(conns), count_(count) {}

  void Run() {
    for (size_t i = 0; i < count_; ++i) {
      Conn& c = conns_[i];
      if (!Establish(c)) {
        GiveUp(c);
        continue;
      }
      TopUp(c);
      if (!Flush(c)) Reconnect(c);
    }
    std::vector<struct pollfd> fds;
    std::vector<Conn*> polled;
    for (;;) {
      fds.clear();
      polled.clear();
      for (size_t i = 0; i < count_; ++i) {
        Conn& c = conns_[i];
        if (c.finished()) {
          if (c.fd >= 0) {
            ::close(c.fd);
            c.fd = -1;
          }
          continue;
        }
        struct pollfd p;
        p.fd = c.fd;
        p.events = POLLIN;
        if (c.out_pos < c.out.size()) p.events |= POLLOUT;
        p.revents = 0;
        fds.push_back(p);
        polled.push_back(&c);
      }
      if (fds.empty()) return;
      int ready = ::poll(fds.data(), fds.size(), 1000);
      if (ready < 0) {
        if (errno == EINTR) continue;
        for (Conn* c : polled) GiveUp(*c);
        return;
      }
      for (size_t i = 0; i < fds.size(); ++i) {
        Conn& c = *polled[i];
        short ev = fds[i].revents;
        if (ev == 0) continue;
        bool alive = true;
        if ((ev & (POLLIN | POLLHUP | POLLERR)) != 0) {
          alive = ReadAndConsume(c);
        }
        if (alive) {
          TopUp(c);
          alive = Flush(c);
        }
        if (!alive && !c.finished()) Reconnect(c);
      }
    }
  }

 private:
  int EffectiveWindow() const {
    return spec_.protocol == Protocol::kBinary ? spec_.window : 1;
  }

  // Connect + blocking text greeting, then switch nonblocking. The
  // server sends nothing after the greeting until we ask, so a plain
  // LineReader cannot over-read into request/response traffic.
  bool Establish(Conn& c) {
    for (int attempt = 0; attempt < 5; ++attempt) {
      if (attempt > 0) SleepMs(10L << attempt);
      int fd = Connect(port_);
      if (fd < 0) continue;
      lsd::LineReader reader(fd);
      auto greeting = lsd::ReadResponse(&reader);
      if (!greeting.ok() || !greeting->ok) {
        ::close(fd);
        continue;
      }
      int flags = ::fcntl(fd, F_GETFL, 0);
      ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
      c.fd = fd;
      c.out.clear();
      c.out_pos = 0;
      c.parser = lsd::BinaryFrameParser();
      c.in.clear();
      c.scan_pos = 0;
      c.at_status_line = true;
      c.cur_err = false;
      c.cur_cancel = false;
      return true;
    }
    return false;
  }

  void GiveUp(Conn& c) {
    if (c.fd >= 0) {
      ::close(c.fd);
      c.fd = -1;
    }
    c.errors += static_cast<size_t>(c.total - c.done);
    c.done = c.total;
    c.pending.clear();
    c.gave_up = true;
  }

  // Bresenham interleave: spreads write_pct writes evenly through each
  // session's ordinal sequence, deterministically, so a resend after a
  // reconnect regenerates the identical request.
  bool IsWrite(uint64_t ordinal) const {
    const uint64_t p = static_cast<uint64_t>(spec_.write_pct);
    return (ordinal + 1) * p / 100 > ordinal * p / 100;
  }

  // Same deterministic interleave for the poison queries, phase-shifted
  // by the session index so concurrent sessions don't fire their poison
  // in lockstep. Hostile wins over write on an ordinal both claim.
  bool IsHostile(uint64_t ordinal, int session_index) const {
    const uint64_t p = static_cast<uint64_t>(spec_.hostile_pct);
    const uint64_t o = ordinal + static_cast<uint64_t>(session_index);
    return (o + 1) * p / 100 > o * p / 100;
  }

  void AppendRequest(Conn& c, PendingRequest req) {
    std::string line;
    if (spec_.hostile_pct > 0 && IsHostile(req.ordinal, c.index)) {
      req.hostile = true;
      line = kPoisonQuery;
    } else if (spec_.write_pct > 0 && IsWrite(req.ordinal)) {
      // Unique per (sweep, session, ordinal): never a no-op commit, so
      // every acked write really paid for clone + WAL append (+fsync).
      req.write = true;
      char buf[96];
      std::snprintf(buf, sizeof(buf), "assert (W%d-%d-%llu, TOUCHES, HUB)",
                    spec_.tag, c.index,
                    static_cast<unsigned long long>(req.ordinal));
      line = buf;
    } else {
      line = kMix[(req.ordinal + static_cast<uint64_t>(c.index)) % kMixSize];
    }
    if (spec_.protocol == Protocol::kBinary) {
      c.out += lsd::EncodeFrame(lsd::FrameType::kRequest, req.ordinal, line);
    } else {
      c.out += line;
      c.out += '\n';
    }
    c.pending.push_back(req);
  }

  void TopUp(Conn& c) {
    while (!c.finished() && c.sent < c.total &&
           c.pending.size() < static_cast<size_t>(EffectiveWindow())) {
      PendingRequest req;
      req.ordinal = static_cast<uint64_t>(c.sent++);
      req.sent_at = Clock::now();
      AppendRequest(c, req);
    }
  }

  bool Flush(Conn& c) {
    while (c.out_pos < c.out.size()) {
      ssize_t n = ::send(c.fd, c.out.data() + c.out_pos,
                         c.out.size() - c.out_pos, MSG_NOSIGNAL);
      if (n > 0) {
        c.out_pos += static_cast<size_t>(n);
        continue;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return false;
    }
    c.out.clear();
    c.out_pos = 0;
    return true;
  }

  void Complete(Conn& c, bool is_error, bool is_cancel) {
    const PendingRequest req = c.pending.front();
    c.pending.pop_front();
    ++c.done;
    if (req.hostile) ++c.hostile_done;
    if (is_error && is_cancel) {
      // A governance kill (deadline / shed / budget) is the expected
      // fate of a poison query, not a benchmark failure.
      ++c.cancelled;
    } else if (is_error) {
      ++c.errors;
    } else if (!req.hostile) {
      // A hostile request that beats the deadline is dropped from the
      // percentiles either way: the cheap requests' latency is the
      // figure of merit under a hostile mix.
      int64_t ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       Clock::now() - req.sent_at)
                       .count();
      c.latencies.push_back(ns);
      if (req.write) c.write_latencies.push_back(ns);
    }
  }

  bool ConsumeBinary(Conn& c, const char* data, size_t n) {
    c.parser.Feed(std::string_view(data, n));
    for (;;) {
      lsd::BinaryFrame frame;
      switch (c.parser.Next(&frame)) {
        case lsd::BinaryFrameParser::Result::kNeedMore:
          return true;
        case lsd::BinaryFrameParser::Result::kError:
          return false;
        case lsd::BinaryFrameParser::Result::kFrame:
          break;
      }
      // FIFO execution: responses must come back in request order.
      if (c.pending.empty() ||
          frame.request_id != c.pending.front().ordinal) {
        return false;
      }
      Complete(c, frame.type != lsd::FrameType::kOk,
               frame.type == lsd::FrameType::kErr && IsCancelText(frame.payload));
    }
  }

  bool ConsumeText(Conn& c, const char* data, size_t n) {
    c.in.append(data, n);
    size_t nl;
    while ((nl = c.in.find('\n', c.scan_pos)) != std::string::npos) {
      size_t len = nl - c.scan_pos;
      if (len > 0 && c.in[c.scan_pos + len - 1] == '\r') --len;
      std::string_view line(c.in.data() + c.scan_pos, len);
      c.scan_pos = nl + 1;
      if (c.at_status_line) {
        c.cur_err = line.rfind("ERR", 0) == 0;
        c.cur_cancel = c.cur_err && IsCancelText(line);
        c.at_status_line = false;
      } else if (line == ".") {
        if (c.pending.empty()) return false;
        Complete(c, c.cur_err, c.cur_cancel);
        c.at_status_line = true;
      }
    }
    if (c.scan_pos >= c.in.size()) {
      c.in.clear();
      c.scan_pos = 0;
    }
    return true;
  }

  bool ReadAndConsume(Conn& c) {
    char buf[65536];
    for (;;) {
      ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
      if (n > 0) {
        bool consumed = spec_.protocol == Protocol::kBinary
                            ? ConsumeBinary(c, buf, static_cast<size_t>(n))
                            : ConsumeText(c, buf, static_cast<size_t>(n));
        if (!consumed) return false;
        continue;
      }
      if (n == 0) return false;  // EOF
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return false;
    }
  }

  // A dropped connection (e.g. injected write fault) takes the whole
  // in-flight window with it. Reconnect and resend each outstanding
  // request once; a request that dies twice is charged as an error,
  // matching the synchronous clients' retry-once discipline.
  void Reconnect(Conn& c) {
    ::close(c.fd);
    c.fd = -1;
    std::deque<PendingRequest> resend;
    for (PendingRequest& req : c.pending) {
      if (req.resent) {
        ++c.errors;
        ++c.done;
      } else {
        resend.push_back(req);
      }
    }
    c.pending.clear();
    if (c.finished()) return;
    if (!Establish(c)) {
      GiveUp(c);
      return;
    }
    c.retries += resend.size();
    for (PendingRequest& req : resend) {
      req.resent = true;
      AppendRequest(c, req);
    }
    TopUp(c);
    if (!Flush(c)) Reconnect(c);
  }

  const uint16_t port_;
  const SweepSpec spec_;
  Conn* const conns_;
  const size_t count_;
};

SweepResult RunSweep(uint16_t port, const SweepSpec& spec,
                     lsd::SharedStore* store) {
  const lsd::GroupCommitStats before = store->group_stats();
  std::vector<Conn> conns(static_cast<size_t>(spec.sessions));
  for (int s = 0; s < spec.sessions; ++s) {
    conns[static_cast<size_t>(s)].index = s;
    conns[static_cast<size_t>(s)].total = spec.requests_per_session;
    conns[static_cast<size_t>(s)].latencies.reserve(
        static_cast<size_t>(spec.requests_per_session));
  }

  unsigned hw = std::thread::hardware_concurrency();
  size_t drivers = std::min<size_t>(std::max(1u, hw), 8);
  drivers = std::min(drivers, conns.size());

  auto start = Clock::now();
  std::vector<std::thread> threads;
  size_t begin = 0;
  for (size_t d = 0; d < drivers; ++d) {
    size_t share = conns.size() / drivers + (d < conns.size() % drivers);
    threads.emplace_back([port, &spec, &conns, begin, share] {
      Driver(port, spec, conns.data() + begin, share).Run();
    });
    begin += share;
  }
  for (auto& t : threads) t.join();
  double seconds = std::chrono::duration<double>(Clock::now() - start).count();

  SweepResult result;
  result.protocol = spec.protocol;
  result.window = spec.protocol == Protocol::kBinary ? spec.window : 1;
  result.sessions = spec.sessions;
  result.seconds = seconds;
  std::vector<int64_t> all;
  std::vector<int64_t> writes;
  for (Conn& c : conns) {
    all.insert(all.end(), c.latencies.begin(), c.latencies.end());
    writes.insert(writes.end(), c.write_latencies.begin(),
                  c.write_latencies.end());
    result.errors += c.errors;
    result.retries += c.retries;
    result.cancelled += c.cancelled;
    result.hostile += c.hostile_done;
  }
  result.requests = all.size();
  result.throughput_rps =
      seconds > 0 ? static_cast<double>(all.size()) / seconds : 0;
  result.p50_us = PercentileUs(all, 0.50);
  result.p99_us = PercentileUs(all, 0.99);
  result.p999_us = PercentileUs(all, 0.999);
  result.writes = writes.size();
  result.writes_per_sec =
      seconds > 0 ? static_cast<double>(writes.size()) / seconds : 0;
  result.wp50_us = PercentileUs(writes, 0.50);

  const lsd::GroupCommitStats after = store->group_stats();
  result.groups = after.groups - before.groups;
  const uint64_t slots = (after.slots_acked + after.slots_rejected) -
                         (before.slots_acked + before.slots_rejected);
  result.mean_group =
      result.groups > 0
          ? static_cast<double>(slots) / static_cast<double>(result.groups)
          : 0.0;
  result.max_group = after.max_group;  // cumulative high-water mark
  result.fsyncs = after.fsyncs - before.fsyncs;
  return result;
}

// Raise the fd soft limit to the hard limit and report how many
// sessions fit: each needs a client fd and a server fd in this process,
// plus slack for the store, epoll, listener, and stdio.
size_t MaxSessionsForFdLimit() {
  struct rlimit rl;
  if (::getrlimit(RLIMIT_NOFILE, &rl) != 0) return 256;
  if (rl.rlim_cur < rl.rlim_max) {
    rl.rlim_cur = rl.rlim_max;
    (void)::setrlimit(RLIMIT_NOFILE, &rl);
    (void)::getrlimit(RLIMIT_NOFILE, &rl);
  }
  if (rl.rlim_cur <= 64) return 1;
  return static_cast<size_t>((rl.rlim_cur - 64) / 2);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<int> session_counts = {1, 4, 16, 64, 256, 1024};
  std::vector<Protocol> protocols = {Protocol::kText, Protocol::kBinary};
  int requests_per_session = 200;
  int window = 16;
  std::string json_path;
  double fail_writes = 0.0;
  int write_pct = 0;
  int hostile_pct = 0;
  int timeout_ms = -1;  // -1: server default, or 150 when hostile
  bool sync_fsync = false;
  int preload = -1;  // -1: pick a default once write_pct is known
  bool check = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--fail-writes" && i + 1 < argc) {
      fail_writes = std::atof(argv[++i]);
    } else if (arg == "--write-pct" && i + 1 < argc) {
      write_pct = std::clamp(std::atoi(argv[++i]), 0, 100);
    } else if (arg == "--hostile-pct" && i + 1 < argc) {
      hostile_pct = std::clamp(std::atoi(argv[++i]), 0, 100);
    } else if (arg == "--timeout-ms" && i + 1 < argc) {
      timeout_ms = std::max(0, std::atoi(argv[++i]));
    } else if (arg == "--preload" && i + 1 < argc) {
      preload = std::max(0, std::atoi(argv[++i]));
    } else if (arg == "--sync" && i + 1 < argc) {
      std::string mode = argv[++i];
      if (mode == "fsync") {
        sync_fsync = true;
      } else if (mode == "none") {
        sync_fsync = false;
      } else {
        std::fprintf(stderr, "unknown sync mode: %s\n", mode.c_str());
        return 2;
      }
    } else if (arg == "--sessions" && i + 1 < argc) {
      session_counts.clear();
      std::string list = argv[++i];
      size_t pos = 0;
      while (pos < list.size()) {
        size_t comma = list.find(',', pos);
        session_counts.push_back(
            std::atoi(list.substr(pos, comma - pos).c_str()));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else if (arg == "--protocols" && i + 1 < argc) {
      protocols.clear();
      std::string list = argv[++i];
      size_t pos = 0;
      while (pos < list.size()) {
        size_t comma = list.find(',', pos);
        std::string name = list.substr(pos, comma - pos);
        if (name == "text") {
          protocols.push_back(Protocol::kText);
        } else if (name == "binary") {
          protocols.push_back(Protocol::kBinary);
        } else {
          std::fprintf(stderr, "unknown protocol: %s\n", name.c_str());
          return 2;
        }
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else if (arg == "--requests" && i + 1 < argc) {
      requests_per_session = std::atoi(argv[++i]);
    } else if (arg == "--window" && i + 1 < argc) {
      window = std::max(1, std::atoi(argv[++i]));
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--check") {
      check = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--sessions 1,4,16,64,256,1024] "
                   "[--requests N] [--protocols text,binary] [--window N] "
                   "[--json FILE] [--write-pct P] [--sync fsync|none] "
                   "[--hostile-pct P] [--timeout-ms N] "
                   "[--preload N] [--fail-writes P] [--check]\n",
                   argv[0]);
      return 2;
    }
  }
  std::signal(SIGPIPE, SIG_IGN);

  const size_t fd_budget = MaxSessionsForFdLimit();
  std::vector<int> skipped;
  session_counts.erase(
      std::remove_if(session_counts.begin(), session_counts.end(),
                     [&](int s) {
                       if (static_cast<size_t>(s) > fd_budget) {
                         skipped.push_back(s);
                         return true;
                       }
                       return false;
                     }),
      session_counts.end());
  if (session_counts.empty()) {
    std::fprintf(stderr, "fd limit (%zu sessions) rules out every count\n",
                 fd_budget);
    return 1;
  }

  lsd::SharedStore store;
  std::string scratch_dir;
  if (write_pct > 0 && sync_fsync) {
    // Durable write mix: every commit group pays a real fsync against a
    // scratch database, so the sweep measures group-commit amortization
    // rather than in-memory publish cost.
    char tmpl[] = "/tmp/bench_wal.XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) {
      std::perror("mkdtemp");
      return 1;
    }
    scratch_dir = tmpl;
    lsd::SharedStoreDurability durability;
    durability.sync = lsd::WalSync::kFsync;
    lsd::Status opened = store.OpenDurable(scratch_dir + "/bench", durability);
    if (!opened.ok()) {
      std::fprintf(stderr, "open durable failed: %s\n",
                   opened.ToString().c_str());
      return 1;
    }
  }
  auto seeded = store.Commit([](lsd::LooseDb& db) {
    lsd::workload::BuildCampusDomain(&db);
    return lsd::Status::OK();
  });
  if (!seeded.ok()) {
    std::fprintf(stderr, "seed failed: %s\n",
                 seeded.status().ToString().c_str());
    return 1;
  }

  // Hostile mix: seed the poison graph — a three-layer DAG with
  // complete bipartite FEEDS edges between consecutive layers. Every
  // atom of kPoisonQuery estimates the full edge set, the chain fans
  // out kPoisonLayer ways in the middle, and no three-edge path exists,
  // so the query burns ~kPoisonLayer³ enumerations and returns nothing.
  // Disconnected from the campus domain: the cheap mix never touches it.
  if (hostile_pct > 0) {
    auto poisoned = store.Commit([](lsd::LooseDb& db) {
      const char* layers[] = {"HX", "HY", "HZ"};
      for (int l = 0; l < 2; ++l) {
        for (int i = 0; i < kPoisonLayer; ++i) {
          for (int j = 0; j < kPoisonLayer; ++j) {
            char a[32], b[32];
            std::snprintf(a, sizeof(a), "%s%d", layers[l], i);
            std::snprintf(b, sizeof(b), "%s%d", layers[l + 1], j);
            (void)db.Assert(a, "FEEDS", b);
          }
        }
      }
      return lsd::Status::OK();
    });
    if (!poisoned.ok()) {
      std::fprintf(stderr, "poison seed failed: %s\n",
                   poisoned.status().ToString().c_str());
      return 1;
    }
  }

  // Pre-grow the store before write sweeps. A commit clones the tip, so
  // the per-group fixed cost (clone + warm + fsync) scales with store
  // size; without a preload the serial baseline would run against a
  // near-empty store while later, larger sweeps clone everything the
  // earlier ones inserted — flattering the baseline and biasing the
  // group-commit comparison. Sweeps still grow the store as they run,
  // which only penalizes the later (larger) session counts.
  if (preload < 0) preload = write_pct > 0 ? 8000 : 0;
  for (int base = 0; base < preload; base += 1000) {
    const int limit = std::min(base + 1000, preload);
    auto grown = store.Commit([base, limit](lsd::LooseDb& db) {
      for (int i = base; i < limit; ++i) {
        char name[32];
        std::snprintf(name, sizeof(name), "P%d", i);
        (void)db.Assert(name, "TOUCHES", "HUB");
      }
      return lsd::Status::OK();
    });
    if (!grown.ok()) {
      std::fprintf(stderr, "preload failed: %s\n",
                   grown.status().ToString().c_str());
      return 1;
    }
  }

  const int max_sessions_requested =
      *std::max_element(session_counts.begin(), session_counts.end());
  lsd::ServerOptions options;
  options.port = 0;
  options.max_sessions = static_cast<size_t>(max_sessions_requested) + 4;
  // A hostile sweep needs a deadline far below the poison's natural
  // runtime or every poison request occupies a worker for seconds.
  if (timeout_ms < 0 && hostile_pct > 0) timeout_ms = 150;
  if (timeout_ms >= 0) {
    options.request_timeout = std::chrono::milliseconds(timeout_ms);
  }
  if (write_pct > 0) {
    // A commit group can only be as large as the number of workers
    // concurrently blocked in Commit; the default pool (one thread per
    // core) would cap group size at the core count no matter how many
    // writer sessions the sweep opens.
    options.worker_threads = static_cast<size_t>(
        std::min(max_sessions_requested, 128));
  }
  if (hostile_pct > 0) {
    // Poison queries occupy a worker until the deadline fires. On a
    // small default pool (one per core) a handful of them serializes
    // every cheap request behind a 150 ms burn; real deployments run
    // more workers than cores precisely because requests block. Give
    // the cheap mix a fighting chance so the tail columns measure
    // governance, not a starved pool.
    options.worker_threads =
        std::max(options.worker_threads,
                 static_cast<size_t>(std::min(max_sessions_requested, 32)));
  }
  lsd::LsdServer server(&store, options);
  lsd::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.ToString().c_str());
    return 1;
  }

  std::printf("# bench_server: %d requests/session, read-mostly mix "
              "(1 probe per %zu requests), %zu workers\n",
              requests_per_session, kMixSize, server.worker_count());
  if (write_pct > 0) {
    std::printf("# write mix: %d%% unique asserts, sync=%s, %zu facts "
                "preloaded%s\n",
                write_pct, sync_fsync ? "fsync" : "none",
                store.snapshot()->db().store().size(),
                scratch_dir.empty() ? ""
                                    : (" (scratch " + scratch_dir + ")")
                                          .c_str());
  }
  if (!skipped.empty()) {
    std::printf("# skipped session counts over the fd budget (%zu):",
                fd_budget);
    for (int s : skipped) std::printf(" %d", s);
    std::printf("\n");
  }
  if (fail_writes > 0) {
    std::printf("# degraded mode: server.write fails with p=%.4f "
                "(clients reconnect and resend)\n",
                fail_writes);
  }
  if (hostile_pct > 0) {
    std::printf("# hostile mix: %d%% poison queries (~%d^3 enumerations "
                "each), request deadline %d ms; percentiles cover cheap "
                "requests only\n",
                hostile_pct, kPoisonLayer, timeout_ms);
  }
  std::printf("%8s %7s %9s %10s %12s %10s %10s %8s %8s", "protocol",
              "window", "sessions", "requests", "thruput_rps", "p50_us",
              "p99_us", "errors", "retries");
  if (write_pct > 0) {
    std::printf(" %8s %9s %9s %8s %8s %7s", "writes", "w_rps", "wp50_us",
                "groups", "grp_mean", "fsyncs");
  }
  if (hostile_pct > 0) {
    std::printf(" %8s %9s %10s", "hostile", "cancelled", "p999_us");
  }
  std::printf("\n");

  std::vector<SweepResult> results;
  // Warm-up: populate the shared plan cache and lattice so the sweep
  // measures steady-state serving, not first-touch materialization.
  {
    SweepSpec warm;
    warm.sessions = 1;
    warm.requests_per_session = static_cast<int>(kMixSize);
    (void)RunSweep(server.port(), warm, &store);
  }
  if (fail_writes > 0) {
    // Armed after warm-up so cache population is never disrupted.
    char spec[64];
    std::snprintf(spec, sizeof(spec), "server.write=error%%%.6f",
                  fail_writes);
    lsd::Status armed = lsd::failpoint::Configure(spec);
    if (!armed.ok()) {
      std::fprintf(stderr, "cannot arm failpoint: %s\n",
                   armed.ToString().c_str());
      return 1;
    }
#if !LSD_FAILPOINTS_ENABLED
    std::fprintf(stderr,
                 "warning: built without LSD_FAILPOINTS; --fail-writes "
                 "injects nothing\n");
#endif
  }
  int sweep_tag = 0;
  for (Protocol protocol : protocols) {
    for (int sessions : session_counts) {
      SweepSpec spec;
      spec.protocol = protocol;
      spec.window = window;
      spec.sessions = sessions;
      spec.requests_per_session = requests_per_session;
      spec.write_pct = write_pct;
      spec.hostile_pct = hostile_pct;
      spec.tag = ++sweep_tag;
      SweepResult r = RunSweep(server.port(), spec, &store);
      results.push_back(r);
      std::printf("%8s %7d %9d %10zu %12.0f %10.1f %10.1f %8zu %8zu",
                  ProtocolName(r.protocol), r.window, r.sessions, r.requests,
                  r.throughput_rps, r.p50_us, r.p99_us, r.errors, r.retries);
      if (write_pct > 0) {
        std::printf(" %8zu %9.0f %9.1f %8llu %8.2f %7llu", r.writes,
                    r.writes_per_sec, r.wp50_us,
                    static_cast<unsigned long long>(r.groups), r.mean_group,
                    static_cast<unsigned long long>(r.fsyncs));
      }
      if (hostile_pct > 0) {
        std::printf(" %8zu %9zu %10.1f", r.hostile, r.cancelled, r.p999_us);
      }
      std::printf("\n");
      std::fflush(stdout);
    }
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    const char* comment =
        hostile_pct > 0
            ? "bench_server hostile mix: hostile_pct of each session's "
              "requests are poison queries (a chain join with no "
              "selective atom over a seeded layered graph; empty result, "
              "~256^3 enumerations) that the request deadline kills with "
              "a typed error. `cancelled` counts those governance kills "
              "(expected; not errors), `hostile` the poison requests "
              "resolved, and p50/p99/p999 cover only the surviving cheap "
              "requests — the tail shows what hostile load does to "
              "well-behaved sessions. Regenerate with tools/bench_json.sh."
        : write_pct > 0
            ? "bench_server write mix: every counted request is a unique "
              "assert, committed through the group-commit queue "
              "(sync=fsync means one real WAL fsync per commit group "
              "against a scratch durable store; the store is preloaded "
              "so every row's commits clone a comparable tip). The "
              "ratio of writes_per_sec to the sessions=1 row is the "
              "group-commit amortization; mean_group/max_group say how "
              "large the groups actually got, and groups == fsyncs at "
              "sync=fsync. Regenerate with tools/bench_json.sh."
            : "bench_server read-mostly browsing mix over loopback TCP "
              "in both wire protocols; regenerate with "
              "tools/bench_json.sh. Binary rows pipeline up to `window` "
              "requests per connection, so their p50 measures queued "
              "time in the window, not a single round trip. Aggregate "
              "throughput scales with sessions only up to the host's "
              "core count; on a single-core host expect flat throughput "
              "with proportionally growing p50.";
    out << "{\n  \"comment\": \"" << comment << "\",\n"
           "  \"hardware_concurrency\": "
        << std::thread::hardware_concurrency()
        << ",\n  \"requests_per_session\": " << requests_per_session
        << ",\n  \"window\": " << window
        << ",\n  \"write_pct\": " << write_pct << ",\n  \"sync\": \""
        << (sync_fsync ? "fsync" : "none") << "\""
        << ",\n  \"preload\": " << preload
        << ",\n  \"hostile_pct\": " << hostile_pct
        << ",\n  \"timeout_ms\": " << options.request_timeout.count()
        << ",\n  \"fail_writes\": " << fail_writes << ",\n  \"sweeps\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
      const SweepResult& r = results[i];
      char buf[640];
      std::snprintf(buf, sizeof(buf),
                    "    {\"protocol\": \"%s\", \"window\": %d, "
                    "\"sessions\": %d, \"requests\": %zu, "
                    "\"throughput_rps\": %.0f, \"p50_us\": %.1f, "
                    "\"p99_us\": %.1f, \"errors\": %zu, "
                    "\"retries\": %zu, \"writes\": %zu, "
                    "\"writes_per_sec\": %.0f, \"wp50_us\": %.1f, "
                    "\"groups\": %llu, \"mean_group\": %.2f, "
                    "\"max_group\": %llu, \"fsyncs\": %llu, "
                    "\"hostile\": %zu, \"cancelled\": %zu, "
                    "\"p999_us\": %.1f}%s\n",
                    ProtocolName(r.protocol), r.window, r.sessions,
                    r.requests, r.throughput_rps, r.p50_us, r.p99_us,
                    r.errors, r.retries, r.writes, r.writes_per_sec,
                    r.wp50_us, static_cast<unsigned long long>(r.groups),
                    r.mean_group, static_cast<unsigned long long>(r.max_group),
                    static_cast<unsigned long long>(r.fsyncs),
                    r.hostile, r.cancelled, r.p999_us,
                    i + 1 < results.size() ? "," : "");
      out << buf;
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }

  server.Stop();

  if (!scratch_dir.empty()) {
    if (DIR* d = ::opendir(scratch_dir.c_str())) {
      struct dirent* e;
      while ((e = ::readdir(d)) != nullptr) {
        if (std::strcmp(e->d_name, ".") == 0 ||
            std::strcmp(e->d_name, "..") == 0) {
          continue;
        }
        (void)::unlink((scratch_dir + "/" + e->d_name).c_str());
      }
      ::closedir(d);
    }
    (void)::rmdir(scratch_dir.c_str());
  }

  if (check) {
    size_t errors = 0, retries = 0, cancelled = 0, hostile = 0;
    for (const SweepResult& r : results) {
      errors += r.errors;
      retries += r.retries;
      cancelled += r.cancelled;
      hostile += r.hostile;
    }
    if (errors > 0 || (fail_writes == 0 && retries > 0)) {
      std::fprintf(stderr,
                   "--check failed: %zu errors, %zu retries across the "
                   "sweep\n",
                   errors, retries);
      return 1;
    }
    // Hostile mode must actually exercise the governance path: poison
    // queries that all finish under the deadline mean the mix is not
    // hostile at all (mis-sized graph or deadline), and cancellations
    // without a hostile mix mean healthy requests are being killed.
    if (hostile_pct > 0 && cancelled == 0) {
      std::fprintf(stderr,
                   "--check failed: hostile mix (%zu poison requests) "
                   "produced no cancellations\n",
                   hostile);
      return 1;
    }
    if (hostile_pct == 0 && cancelled > 0) {
      std::fprintf(stderr,
                   "--check failed: %zu requests cancelled without a "
                   "hostile mix\n",
                   cancelled);
      return 1;
    }
  }
  return 0;
}
