// bench_recovery — recovery time versus log size, with and without
// checkpoints.
//
// For each record count the bench builds a database twice: once as a
// pure WAL (checkpoint_bytes = 0, so Open() replays every record) and
// once with auto-checkpointing (replay is bounded by the records since
// the last checkpoint; the snapshot carries the rest). It then measures
// cold Open() time (best of three) and reports what recovery did.
//
// Not a google-benchmark suite: each measurement is one cold Open()
// against files just written, and the interesting output is the
// recovery-stats breakdown next to the timing, not iteration throughput.
//
//   bench_recovery [--records 1000,4000,16000] [--json FILE]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/loose_db.h"

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

struct RunResult {
  size_t records = 0;
  bool checkpoints = false;
  double open_ms = 0;
  uint64_t wal_bytes = 0;
  uint64_t snapshot_bytes = 0;
  size_t records_replayed = 0;
  size_t segments_replayed = 0;
  bool snapshot_loaded = false;
};

lsd::LooseDbOptions Options(bool checkpoints) {
  lsd::LooseDbOptions options;
  options.wal_segment_bytes = 1ull << 20;
  options.checkpoint_bytes = checkpoints ? 64ull << 10 : 0;
  return options;
}

// Synthetic unique facts: ~30 bytes of WAL record each, a fresh entity
// pair per fact so replay exercises interning too.
void Fill(lsd::LooseDb& db, size_t records) {
  for (size_t i = 0; i < records; ++i) {
    db.Assert("E-" + std::to_string(i), "REL-" + std::to_string(i % 16),
              "V-" + std::to_string(i));
  }
}

RunResult RunOne(const fs::path& dir, size_t records, bool checkpoints) {
  const std::string prefix =
      (dir / (std::string(checkpoints ? "ckpt" : "wal") + "-" +
              std::to_string(records)))
          .string();
  {
    lsd::LooseDb db(Options(checkpoints));
    lsd::Status opened = db.Open(prefix);
    if (!opened.ok()) {
      std::fprintf(stderr, "open failed: %s\n", opened.ToString().c_str());
      std::exit(1);
    }
    Fill(db, records);
  }

  RunResult result;
  result.records = records;
  result.checkpoints = checkpoints;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(fs::path(prefix).filename().string(), 0) != 0) continue;
    if (name.find(".wal.") != std::string::npos) {
      result.wal_bytes += entry.file_size();
    } else if (name.size() > 5 &&
               name.compare(name.size() - 5, 5, ".snap") == 0) {
      result.snapshot_bytes += entry.file_size();
    }
  }

  result.open_ms = 1e18;
  for (int rep = 0; rep < 3; ++rep) {
    lsd::LooseDb db(Options(checkpoints));
    auto t0 = Clock::now();
    lsd::Status opened = db.Open(prefix);
    double ms = std::chrono::duration<double, std::milli>(Clock::now() - t0)
                    .count();
    if (!opened.ok()) {
      std::fprintf(stderr, "recovery failed: %s\n",
                   opened.ToString().c_str());
      std::exit(1);
    }
    if (ms < result.open_ms) result.open_ms = ms;
    const lsd::RecoveryStats& stats = db.last_recovery();
    result.records_replayed = stats.records_replayed;
    result.segments_replayed = stats.segments_replayed;
    result.snapshot_loaded = stats.snapshot_loaded;
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<size_t> record_counts = {1000, 4000, 16000};
  std::string json_path;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--records" && i + 1 < argc) {
      record_counts.clear();
      std::string list = argv[++i];
      size_t pos = 0;
      while (pos < list.size()) {
        size_t comma = list.find(',', pos);
        record_counts.push_back(static_cast<size_t>(
            std::atoll(list.substr(pos, comma - pos).c_str())));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--records 1000,4000,16000] [--json FILE]\n",
                   argv[0]);
      return 2;
    }
  }

  std::error_code ec;
  fs::path dir =
      fs::temp_directory_path() / ("lsd_bench_recovery_" +
                                   std::to_string(::getpid()));
  fs::create_directories(dir, ec);

  std::printf("# bench_recovery: cold Open() time (best of 3) vs log "
              "size, checkpoints off/on\n");
  std::printf("%9s %6s %10s %10s %10s %10s %9s\n", "records", "ckpt",
              "open_ms", "wal_bytes", "snap_bytes", "replayed", "segments");

  std::vector<RunResult> results;
  for (size_t records : record_counts) {
    for (bool checkpoints : {false, true}) {
      RunResult r = RunOne(dir, records, checkpoints);
      results.push_back(r);
      std::printf("%9zu %6s %10.2f %10llu %10llu %10zu %9zu\n", r.records,
                  r.checkpoints ? "on" : "off", r.open_ms,
                  static_cast<unsigned long long>(r.wal_bytes),
                  static_cast<unsigned long long>(r.snapshot_bytes),
                  r.records_replayed, r.segments_replayed);
    }
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"comment\": \"bench_recovery: cold Open() recovery "
           "time (best of 3) vs WAL size, with checkpoint_bytes=0 vs "
           "64KiB; regenerate with tools/bench_json.sh. With "
           "checkpoints the replayed-record count (and so recovery "
           "time) stays bounded while the pure-WAL variant replays "
           "everything.\",\n  \"runs\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
      const RunResult& r = results[i];
      char buf[320];
      std::snprintf(
          buf, sizeof(buf),
          "    {\"records\": %zu, \"checkpoints\": %s, "
          "\"open_ms\": %.2f, \"wal_bytes\": %llu, "
          "\"snapshot_bytes\": %llu, \"records_replayed\": %zu, "
          "\"segments_replayed\": %zu, \"snapshot_loaded\": %s}%s\n",
          r.records, r.checkpoints ? "true" : "false", r.open_ms,
          static_cast<unsigned long long>(r.wal_bytes),
          static_cast<unsigned long long>(r.snapshot_bytes),
          r.records_replayed, r.segments_replayed,
          r.snapshot_loaded ? "true" : "false",
          i + 1 < results.size() ? "," : "");
      out << buf;
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }

  fs::remove_all(dir, ec);
  return 0;
}
