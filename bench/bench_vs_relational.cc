// E6: the organization/retrieval trade-off of the paper's introduction,
// measured. A schema-bound relational engine against the loose store on
// the same organization data:
//
//   (a) schema-known point query ("EMP-i's department"): the relational
//       engine should win — this is the efficiency the paper concedes;
//   (b) organization-free lookup ("where does EMP-i appear?"): the
//       loose store answers with three range scans, the relational
//       engine must scan every column of every table;
//   (c) structural evolution (a new attribute appears): one Assert in
//       the loose store vs a column addition rewriting every row.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "browse/operators.h"
#include "core/loose_db.h"
#include "workload/org_domain.h"

namespace {

struct OrgWorld {
  std::unique_ptr<lsd::LooseDb> db;
  lsd::workload::OrgDomain domain;
  lsd::baseline::Catalog catalog;
  const lsd::ClosureView* view = nullptr;
};

OrgWorld* BuildWorld(int employees) {
  static auto* cache = new std::map<int, std::unique_ptr<OrgWorld>>();
  auto it = cache->find(employees);
  if (it != cache->end()) return it->second.get();
  auto w = std::make_unique<OrgWorld>();
  w->db = std::make_unique<lsd::LooseDb>();
  lsd::workload::OrgOptions options;
  options.num_employees = employees;
  options.num_departments = std::max(2, employees / 50);
  options.salary_integrity_rule = false;  // E8 measures integrity
  w->domain = lsd::workload::BuildOrgDomain(w->db.get(), options);
  lsd::workload::BuildOrgRelational(w->domain, options,
                                    &w->db->entities(), &w->catalog);
  auto view = w->db->View();  // materialize the closure once, untimed
  w->view = view.ok() ? *view : nullptr;
  OrgWorld* out = w.get();
  (*cache)[employees] = std::move(w);
  return out;
}

void BM_PointQueryLoose(benchmark::State& state) {
  OrgWorld* w = BuildWorld(static_cast<int>(state.range(0)));
  lsd::EntityId emp = *w->db->entities().Lookup("EMP-0");
  lsd::EntityId works = *w->db->entities().Lookup("WORKS-FOR");
  size_t n = 0;
  for (auto _ : state) {
    n = 0;
    w->view->ForEach(lsd::Pattern(emp, works, lsd::kAnyEntity),
                     [&](const lsd::Fact&) {
                       ++n;
                       return true;
                     });
    benchmark::DoNotOptimize(n);
  }
  state.counters["results"] = static_cast<double>(n);
}

void BM_PointQueryRelational(benchmark::State& state) {
  OrgWorld* w = BuildWorld(static_cast<int>(state.range(0)));
  auto emp = w->catalog.Get("EMP");
  if (!emp.ok()) {
    state.SkipWithError("no EMP relation");
    return;
  }
  lsd::EntityId name = *w->db->entities().Lookup("EMP-0");
  size_t n = 0;
  for (auto _ : state) {
    auto rows = lsd::baseline::Select(**emp, "NAME", name, {"DEPT"});
    n = rows.ok() ? rows->size() : 0;
    benchmark::DoNotOptimize(n);
  }
  state.counters["results"] = static_cast<double>(n);
}

void BM_WhereDoesEntityAppearLoose(benchmark::State& state) {
  OrgWorld* w = BuildWorld(static_cast<int>(state.range(0)));
  lsd::EntityId emp = *w->db->entities().Lookup("EMP-0");
  size_t n = 0;
  for (auto _ : state) {
    n = lsd::TryEntity(*w->view, emp).size();
    benchmark::DoNotOptimize(n);
  }
  state.counters["mentions"] = static_cast<double>(n);
}

void BM_WhereDoesEntityAppearRelational(benchmark::State& state) {
  // Without knowing the schema, the relational user must scan every
  // column of every relation (the paper's "extensive scan").
  OrgWorld* w = BuildWorld(static_cast<int>(state.range(0)));
  lsd::EntityId target = *w->db->entities().Lookup("EMP-0");
  const char* names[] = {"EMP", "DEPT"};
  size_t n = 0;
  for (auto _ : state) {
    n = 0;
    for (const char* rel_name : names) {
      auto rel = w->catalog.Get(rel_name);
      if (!rel.ok()) continue;
      for (const auto& row : (*rel)->rows()) {
        for (lsd::EntityId v : row) {
          if (v == target) ++n;
        }
      }
    }
    benchmark::DoNotOptimize(n);
  }
  state.counters["mentions"] = static_cast<double>(n);
}

void BM_EvolutionLoose(benchmark::State& state) {
  // A new attribute appears in the world: assert one fact.
  OrgWorld* w = BuildWorld(static_cast<int>(state.range(0)));
  int i = 0;
  for (auto _ : state) {
    w->db->Assert("EMP-0", "BADGE-" + std::to_string(i++), "ISSUED");
  }
  state.counters["store_facts"] =
      static_cast<double>(w->db->store().size());
}

void BM_EvolutionRelational(benchmark::State& state) {
  // The same change needs a schema alteration touching every row.
  OrgWorld* w = BuildWorld(static_cast<int>(state.range(0)));
  auto emp = w->catalog.Get("EMP");
  if (!emp.ok()) {
    state.SkipWithError("no EMP relation");
    return;
  }
  lsd::EntityId fill = w->db->entities().Intern("UNKNOWN");
  int i = 0;
  for (auto _ : state) {
    std::string col = "BADGE-" + std::to_string(i++);
    benchmark::DoNotOptimize((*emp)->AddColumn(col, fill));
  }
  state.counters["rows_rewritten"] = static_cast<double>((*emp)->size());
}

}  // namespace

#define LSD_E6_SIZES ->Arg(100)->Arg(1000)->Arg(10000)

BENCHMARK(BM_PointQueryLoose) LSD_E6_SIZES;
BENCHMARK(BM_PointQueryRelational) LSD_E6_SIZES;
BENCHMARK(BM_WhereDoesEntityAppearLoose) LSD_E6_SIZES;
BENCHMARK(BM_WhereDoesEntityAppearRelational) LSD_E6_SIZES;
BENCHMARK(BM_EvolutionLoose) LSD_E6_SIZES;
BENCHMARK(BM_EvolutionRelational) LSD_E6_SIZES;
