// E4: cost of automatic retraction (Sec 5.2) as the generalization
// hierarchy changes shape. A probe whose success is planted g waves
// above the query explores a frontier whose width is governed by the
// taxonomy fanout and whose depth is g.
//
// Expected shape: retraction queries attempted grow with fanout x
// number of query constants per wave, and multiplicatively with wave
// depth.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "core/loose_db.h"
#include "workload/random_graph.h"

namespace {

struct ProbeWorld {
  std::unique_ptr<lsd::LooseDb> db;
  lsd::Query query;
};

// Builds a taxonomy and a query (X, TOUCHES, <leaf>) whose only
// success sits `gap` generalization steps above the leaf. `dag_percent`
// controls how many nodes have a second parent: a tree gives every
// entity exactly one minimal generalization, so only DAG-ness widens
// the retraction frontier.
ProbeWorld* BuildWorld(int depth, int fanout, int gap, int dag_percent) {
  static auto* cache = new std::map<std::tuple<int, int, int, int>,
                                    std::unique_ptr<ProbeWorld>>();
  auto key = std::tuple(depth, fanout, gap, dag_percent);
  auto it = cache->find(key);
  if (it != cache->end()) return it->second.get();

  auto w = std::make_unique<ProbeWorld>();
  w->db = std::make_unique<lsd::LooseDb>();
  lsd::workload::TaxonomyOptions tax;
  tax.depth = depth;
  tax.fanout = fanout;
  tax.extra_parent_prob = dag_percent / 100.0;
  auto taxonomy = lsd::workload::BuildRandomTaxonomy(w->db.get(), tax);
  const std::string& leaf = taxonomy.levels.back().front();
  const std::string& target = taxonomy.levels[depth - gap].front();
  w->db->Assert("X", "TOUCHES", target);
  auto q = w->db->Parse("(X, TOUCHES, " + leaf + ")");
  w->query = std::move(*q);
  // Warm the closure and the lattice outside the timed region.
  (void)w->db->Probe(w->query, lsd::ProbeOptions{.max_waves = 1});

  ProbeWorld* out = w.get();
  (*cache)[key] = std::move(w);
  return out;
}

void BM_Probe(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const int fanout = static_cast<int>(state.range(1));
  const int gap = static_cast<int>(state.range(2));
  const int dag_percent = static_cast<int>(state.range(3));
  ProbeWorld* w = BuildWorld(depth, fanout, gap, dag_percent);

  lsd::ProbeOptions options;
  options.max_waves = gap + 1;
  size_t attempted = 0, waves = 0, successes = 0;
  for (auto _ : state) {
    auto probe = w->db->Probe(w->query, options);
    if (!probe.ok()) {
      state.SkipWithError(probe.status().ToString().c_str());
      return;
    }
    attempted = probe->queries_attempted;
    waves = static_cast<size_t>(probe->waves);
    successes = probe->successes.size();
  }
  state.counters["queries_attempted"] = static_cast<double>(attempted);
  state.counters["waves"] = static_cast<double>(waves);
  state.counters["successes"] = static_cast<double>(successes);
}

// Parallel wave evaluation: the same probe at 1/2/4/8 worker threads.
// A wave's candidates are independent existence checks, so wall time
// should drop until the per-candidate work no longer amortizes a
// thread.
void BM_ProbeThreads(benchmark::State& state) {
  ProbeWorld* w = BuildWorld(/*depth=*/6, /*fanout=*/4, /*gap=*/3,
                             /*dag_percent=*/100);
  lsd::ProbeOptions options;
  options.max_waves = 4;
  options.num_threads = static_cast<unsigned>(state.range(0));
  size_t attempted = 0;
  for (auto _ : state) {
    auto probe = w->db->Probe(w->query, options);
    if (!probe.ok()) {
      state.SkipWithError(probe.status().ToString().c_str());
      return;
    }
    attempted = probe->queries_attempted;
  }
  state.counters["queries_attempted"] = static_cast<double>(attempted);
}

}  // namespace

// depth, fanout, gap (waves to success), dag density (percent of nodes
// with a second parent).
BENCHMARK(BM_Probe)
    ->Args({4, 2, 1, 0})
    ->Args({4, 2, 2, 0})
    ->Args({4, 2, 3, 0})
    ->Args({4, 4, 2, 0})
    ->Args({6, 2, 2, 0})
    ->Args({8, 2, 2, 0})
    ->Args({4, 4, 1, 50})
    ->Args({4, 4, 2, 50})
    ->Args({4, 4, 3, 50})
    ->Args({4, 4, 2, 100})
    ->Args({6, 4, 3, 100})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_ProbeThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);
