// E3: composition blow-up vs the limit(n) operator (Sec 3.7, 6.1). The
// paper warns that "augmenting the database with all composition facts
// may have serious effect on the cost of query processing" — this
// measures both the count of materialized composition facts and the
// cost of producing them as the chain-length bound grows.
//
// Expected shape: composed-fact count and time grow super-linearly in n
// until the simple-path bound saturates.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "rules/closure_view.h"
#include "rules/composition.h"
#include "workload/random_graph.h"

namespace {

struct World {
  lsd::FactStore store;
  std::unique_ptr<lsd::MathProvider> math;
  std::unique_ptr<lsd::ClosureView> view;
};

World* BuildWorld(size_t num_facts) {
  static auto* cache = new std::map<size_t, std::unique_ptr<World>>();
  auto it = cache->find(num_facts);
  if (it != cache->end()) return it->second.get();
  auto w = std::make_unique<World>();
  lsd::workload::GraphOptions options;
  options.num_facts = num_facts;
  options.num_entities = num_facts / 4;
  options.zipf_exponent = 0.8;  // mild skew: connected but not absurd
  lsd::workload::BuildZipfGraph(&w->store, options);
  w->math = std::make_unique<lsd::MathProvider>(&w->store.entities());
  w->view = std::make_unique<lsd::ClosureView>(&w->store, nullptr,
                                               w->math.get());
  World* out = w.get();
  (*cache)[num_facts] = std::move(w);
  return out;
}

void BM_MaterializeAll(benchmark::State& state) {
  World* w = BuildWorld(static_cast<size_t>(state.range(0)));
  lsd::CompositionEngine composer(&w->store.entities());
  lsd::CompositionOptions options;
  options.limit = static_cast<int>(state.range(1));
  options.max_results = 5'000'000;

  size_t composed = 0;
  for (auto _ : state) {
    auto result = composer.MaterializeAll(*w->view, options);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    composed = result->size();
    benchmark::DoNotOptimize(composed);
  }
  state.counters["base_facts"] = static_cast<double>(w->store.size());
  state.counters["composed_facts"] = static_cast<double>(composed);
}

void BM_PathsBetween(benchmark::State& state) {
  World* w = BuildWorld(2000);
  lsd::CompositionEngine composer(&w->store.entities());
  lsd::CompositionOptions options;
  options.limit = static_cast<int>(state.range(0));
  lsd::EntityId s = *w->store.entities().Lookup("E0");
  lsd::EntityId t = *w->store.entities().Lookup("E1");

  size_t paths = 0;
  for (auto _ : state) {
    auto result = composer.PathsBetween(*w->view, s, t, options);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    paths = result->size();
    benchmark::DoNotOptimize(paths);
  }
  state.counters["paths"] = static_cast<double>(paths);
}

}  // namespace

BENCHMARK(BM_MaterializeAll)
    ->Args({1000, 1})
    ->Args({1000, 2})
    ->Args({1000, 3})
    ->Args({1000, 4})
    ->Args({4000, 2})
    ->Args({4000, 3})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PathsBetween)->DenseRange(1, 5)->Unit(benchmark::kMillisecond);
