// E10: incremental closure maintenance (Sec 6.2 "update of data") vs
// full recomputation, for point updates against organizations of
// growing size.
//
// Expected shape: full recomputation cost grows with store size;
// incremental assert+retract pairs cost time proportional to the
// consequences of the single fact, nearly independent of store size.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "core/loose_db.h"
#include "rules/incremental.h"
#include "workload/org_domain.h"

namespace {

struct World {
  std::unique_ptr<lsd::LooseDb> db;
  std::unique_ptr<lsd::MathProvider> math;
  std::unique_ptr<lsd::RuleEngine> engine;
  std::unique_ptr<lsd::IncrementalClosure> inc;
};

World* BuildWorld(int employees) {
  static auto* cache = new std::map<int, std::unique_ptr<World>>();
  auto it = cache->find(employees);
  if (it != cache->end()) return it->second.get();
  auto w = std::make_unique<World>();
  w->db = std::make_unique<lsd::LooseDb>();
  lsd::workload::OrgOptions options;
  options.num_employees = employees;
  options.salary_integrity_rule = false;
  lsd::workload::BuildOrgDomain(w->db.get(), options);
  w->math =
      std::make_unique<lsd::MathProvider>(&w->db->store().entities());
  w->engine =
      std::make_unique<lsd::RuleEngine>(&w->db->store(), w->math.get());
  w->inc = std::make_unique<lsd::IncrementalClosure>(
      &w->db->store(), w->math.get(), w->db->rules());
  lsd::Status s = w->inc->Initialize();
  (void)s;
  World* out = w.get();
  (*cache)[employees] = std::move(w);
  return out;
}

void BM_FullRecomputeAfterUpdate(benchmark::State& state) {
  World* w = BuildWorld(static_cast<int>(state.range(0)));
  lsd::FactStore& store = w->db->store();
  lsd::Fact f(store.entities().Intern("EMP-0"),
              store.entities().Intern("MENTORS"),
              store.entities().Intern("EMP-1"));
  size_t derived = 0;
  for (auto _ : state) {
    store.Assert(f);
    auto closure = w->engine->ComputeClosure(w->db->rules());
    if (!closure.ok()) {
      state.SkipWithError(closure.status().ToString().c_str());
      return;
    }
    derived = (*closure)->stats().derived_facts;
    store.Retract(f);
  }
  state.counters["derived"] = static_cast<double>(derived);
  state.counters["base_facts"] = static_cast<double>(store.size());
}

void BM_IncrementalUpdatePair(benchmark::State& state) {
  World* w = BuildWorld(static_cast<int>(state.range(0)));
  lsd::FactStore& store = w->db->store();
  lsd::Fact f(store.entities().Intern("EMP-0"),
              store.entities().Intern("MENTORS"),
              store.entities().Intern("EMP-1"));
  for (auto _ : state) {
    store.Assert(f);
    lsd::Status s1 = w->inc->OnAssert(f);
    store.Retract(f);
    lsd::Status s2 = w->inc->OnRetract(f);
    if (!s1.ok() || !s2.ok()) {
      state.SkipWithError("incremental maintenance failed");
      return;
    }
  }
  state.counters["base_facts"] = static_cast<double>(store.size());
  state.counters["derived"] =
      static_cast<double>(w->inc->derived().size());
}

// A heavier update: retracting a membership fact tears down and partly
// rebuilds the employee's derived facts (DRed both phases).
void BM_IncrementalMembershipChurn(benchmark::State& state) {
  World* w = BuildWorld(static_cast<int>(state.range(0)));
  lsd::FactStore& store = w->db->store();
  lsd::Fact f(store.entities().Intern("EMP-0"),
              store.entities().Intern("IN"),
              store.entities().Intern("EMPLOYEE"));
  for (auto _ : state) {
    if (store.Retract(f)) {
      lsd::Status s = w->inc->OnRetract(f);
      if (!s.ok()) {
        state.SkipWithError(s.ToString().c_str());
        return;
      }
    }
    store.Assert(f);
    lsd::Status s = w->inc->OnAssert(f);
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
  }
  state.counters["base_facts"] = static_cast<double>(store.size());
}

}  // namespace

#define LSD_E10_SIZES ->Arg(100)->Arg(400)->Arg(1600)

BENCHMARK(BM_FullRecomputeAfterUpdate)
LSD_E10_SIZES->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IncrementalUpdatePair)
LSD_E10_SIZES->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IncrementalMembershipChurn)
LSD_E10_SIZES->Unit(benchmark::kMillisecond);
